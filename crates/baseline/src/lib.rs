//! The comparison baseline: a traditional DMA-based network interface
//! with kernel-mediated message passing.
//!
//! The paper motivates SHRIMP against two existing systems:
//!
//! * **Intel DELTA** (§1) — sending and receiving a message costs 67 µs
//!   of software overhead, of which less than 1 µs is hardware latency.
//! * **Intel NX/2 on the iPSC/2** (§5.2) — `csend` takes 222 fast-path
//!   instructions plus a system call and a DMA send interrupt; `crecv`
//!   takes 261 plus a system call and a DMA receive interrupt.
//!
//! This crate models that architecture: every message traverses the
//! kernel on both ends (trap, header/protocol processing, a copy across
//! the user/kernel boundary, DMA setup, completion interrupts), with the
//! same mesh backplane underneath. The message-passing benches run both
//! machines and compare.

pub mod machine;
pub mod model;

pub use machine::{BaselineMachine, MessageTimeline};
pub use model::{BaselineConfig, DELTA_SOFTWARE_OVERHEAD_US, NX2_CRECV_INSTRUCTIONS, NX2_CSEND_INSTRUCTIONS};
