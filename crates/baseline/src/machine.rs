//! End-to-end simulation of kernel-mediated message passing.

use shrimp_mesh::{MeshConfig, MeshNetwork, MeshPacket, MeshShape, NodeId};
use shrimp_sim::{BandwidthResource, SimDuration, SimTime};

use crate::model::BaselineConfig;

/// The per-stage breakdown of one kernel-mediated message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageTimeline {
    /// `csend` trap + kernel fast path.
    pub send_software: SimDuration,
    /// User → system buffer copy on the sender.
    pub send_copy: SimDuration,
    /// DMA setup + injection serialization on the sender.
    pub send_dma: SimDuration,
    /// Backplane transit.
    pub wire: SimDuration,
    /// Receive DMA into the system buffer + completion interrupt.
    pub recv_dma: SimDuration,
    /// `crecv` trap + kernel fast path + dispatch.
    pub recv_software: SimDuration,
    /// System → user buffer copy on the receiver.
    pub recv_copy: SimDuration,
    /// Sender/receiver kernel instructions executed.
    pub instructions: (u64, u64),
}

impl MessageTimeline {
    /// Total end-to-end latency.
    pub fn total(&self) -> SimDuration {
        self.send_software
            + self.send_copy
            + self.send_dma
            + self.wire
            + self.recv_dma
            + self.recv_software
            + self.recv_copy
    }

    /// Software-only overhead (everything except wire and DMA
    /// serialization) — the number the paper contrasts with hardware
    /// latency.
    pub fn software_overhead(&self) -> SimDuration {
        self.send_software + self.send_copy + self.recv_software + self.recv_copy
    }
}

/// A multicomputer with traditional DMA NICs: every message is
/// kernel-mediated on both ends.
///
/// # Examples
///
/// ```
/// use shrimp_baseline::{BaselineMachine, BaselineConfig};
/// use shrimp_mesh::{MeshShape, NodeId};
///
/// let mut m = BaselineMachine::new(BaselineConfig::default(), MeshShape::new(4, 4));
/// let t = m.send_message(NodeId(0), NodeId(15), 1024);
/// assert!(t.software_overhead() > t.wire, "software dominates (the paper's point)");
/// ```
#[derive(Debug)]
pub struct BaselineMachine {
    config: BaselineConfig,
    mesh: MeshNetwork,
    /// Send-side DMA engine per node.
    send_dma: Vec<BandwidthResource>,
    /// Receive-side DMA engine per node.
    recv_dma: Vec<BandwidthResource>,
    now: SimTime,
    messages: u64,
    bytes: u64,
}

impl BaselineMachine {
    /// Builds an idle baseline machine on the same Paragon-class mesh the
    /// SHRIMP model uses.
    pub fn new(config: BaselineConfig, shape: MeshShape) -> Self {
        let n = shape.nodes() as usize;
        BaselineMachine {
            config,
            mesh: MeshNetwork::new(MeshConfig::paragon(shape)),
            send_dma: (0..n)
                .map(|_| BandwidthResource::new(config.dma_bytes_per_sec, config.dma_setup))
                .collect(),
            recv_dma: (0..n)
                .map(|_| BandwidthResource::new(config.dma_bytes_per_sec, config.dma_setup))
                .collect(),
            now: SimTime::ZERO,
            messages: 0,
            bytes: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes moved so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn copy_time(&self, len: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(len.max(1), self.config.copy_bytes_per_sec)
    }

    /// Performs one `csend`/`crecv` pair end to end, advancing simulated
    /// time, and returns the stage breakdown.
    ///
    /// # Panics
    ///
    /// Panics if either node is off-mesh.
    pub fn send_message(&mut self, src: NodeId, dst: NodeId, len: u64) -> MessageTimeline {
        let c = self.config;
        let (send_sw_insn, recv_sw_insn) = (c.csend_instructions, c.crecv_instructions);

        // Sender: trap, fast path, copy to a system buffer, start DMA,
        // take the completion interrupt.
        let send_software = c.syscall_cost + c.cpu_cycle * send_sw_insn + c.interrupt_cost;
        let send_copy = self.copy_time(len);
        let mut t = self.now + send_software + send_copy;
        let send_grant = self.send_dma[src.0 as usize].transfer(t, len.max(1));
        let send_dma = send_grant.end.since(t);
        t = send_grant.end;

        // Wire: one packet through the mesh (kernel-level protocols
        // fragment large messages, but fragmentation does not change who
        // wins, so one packet per message keeps the model simple).
        let mut packet = MeshPacket::new(src, dst, vec![0u8; len.min(60_000) as usize]);
        let wire_start = t;
        while let Err(refused) = self.mesh.try_inject(t, packet) {
            packet = refused;
            let next = self
                .mesh
                .next_event_time()
                .expect("blocked injection implies pending events");
            self.mesh.advance(next);
            t = t.max(next);
        }
        let arrival = loop {
            match self.mesh.eject(dst) {
                Some((_, at)) => break at,
                None => {
                    let next = self
                        .mesh
                        .next_event_time()
                        .expect("in-flight packet implies pending events");
                    self.mesh.advance(next);
                }
            }
        };
        let wire = arrival.since(wire_start);
        t = t.max(arrival);

        // Receiver: DMA into the system buffer, interrupt, then the
        // crecv trap + dispatch + copy out.
        let recv_grant = self.recv_dma[dst.0 as usize].transfer(t, len.max(1));
        let recv_dma = recv_grant.end.since(t) + c.interrupt_cost;
        t = recv_grant.end + c.interrupt_cost;
        let recv_software = c.syscall_cost + c.cpu_cycle * recv_sw_insn;
        let recv_copy = self.copy_time(len);
        t = t + recv_software + recv_copy;

        self.now = t;
        self.messages += 1;
        self.bytes += len;
        MessageTimeline {
            send_software,
            send_copy,
            send_dma,
            wire,
            recv_dma,
            recv_software,
            recv_copy,
            instructions: (send_sw_insn, recv_sw_insn),
        }
    }

    /// Achieved payload throughput over the run so far, bytes/second.
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.now.as_picos() as f64 / 1e12;
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> BaselineMachine {
        BaselineMachine::new(BaselineConfig::default(), MeshShape::new(4, 4))
    }

    #[test]
    fn software_dwarfs_hardware() {
        // The paper's §1 DELTA observation: ~67 us software, <1 us
        // hardware, per send+receive.
        let mut m = machine();
        let t = m.send_message(NodeId(0), NodeId(15), 64);
        let sw = t.software_overhead().as_micros_f64();
        let hw = t.wire.as_micros_f64();
        assert!(sw > 30.0, "software overhead {sw} us");
        assert!(hw < 4.0, "hardware wire time {hw} us");
        assert!(sw / hw > 10.0, "software must dominate: {sw} vs {hw}");
    }

    #[test]
    fn instruction_counts_are_nx2() {
        let mut m = machine();
        let t = m.send_message(NodeId(0), NodeId(1), 16);
        assert_eq!(t.instructions, (222, 261));
    }

    #[test]
    fn timeline_sums() {
        let mut m = machine();
        let before = m.now();
        let t = m.send_message(NodeId(0), NodeId(5), 4096);
        assert_eq!(m.now().since(before), t.total());
        assert_eq!(m.messages(), 1);
        assert_eq!(m.bytes(), 4096);
    }

    #[test]
    fn larger_messages_amortize_overhead() {
        let mut m = machine();
        let small = m.send_message(NodeId(0), NodeId(1), 64);
        let large = m.send_message(NodeId(0), NodeId(1), 65536);
        let small_rate = 64.0 / small.total().as_micros_f64();
        let large_rate = 65536.0 / large.total().as_micros_f64();
        // Per-message overhead amortizes, but kernel copies bound the
        // gain — unlike SHRIMP, where large transfers pay no copies.
        assert!(large_rate > 3.0 * small_rate);
    }

    #[test]
    fn rate_accounting() {
        let mut m = machine();
        for _ in 0..10 {
            m.send_message(NodeId(0), NodeId(1), 8192);
        }
        assert!(m.achieved_rate() > 0.0);
        assert_eq!(m.messages(), 10);
    }
}
