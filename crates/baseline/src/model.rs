//! Cost model of the traditional kernel-mediated path.

use shrimp_sim::SimDuration;

/// NX/2 `csend` fast-path instructions (paper §5.2).
pub const NX2_CSEND_INSTRUCTIONS: u64 = 222;

/// NX/2 `crecv` fast-path instructions (paper §5.2).
pub const NX2_CRECV_INSTRUCTIONS: u64 = 261;

/// Intel DELTA send+receive software overhead in microseconds (paper §1).
pub const DELTA_SOFTWARE_OVERHEAD_US: f64 = 67.0;

/// Parameters of the kernel-mediated baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Base cost of one instruction.
    pub cpu_cycle: SimDuration,
    /// Cost of crossing into the kernel and back (trap + dispatch +
    /// return).
    pub syscall_cost: SimDuration,
    /// Cost of taking and dismissing a DMA completion interrupt.
    pub interrupt_cost: SimDuration,
    /// `csend` kernel fast-path instructions.
    pub csend_instructions: u64,
    /// `crecv` kernel fast-path instructions.
    pub crecv_instructions: u64,
    /// Rate of the kernel's user↔system buffer copies in bytes/second.
    pub copy_bytes_per_sec: u64,
    /// DMA engine setup cost per transfer.
    pub dma_setup: SimDuration,
    /// DMA rate to/from the wire in bytes/second.
    pub dma_bytes_per_sec: u64,
}

impl BaselineConfig {
    /// iPSC/2-class parameters: i386 CPUs, kernel-buffered messages,
    /// DMA with completion interrupts. Instruction counts are the
    /// paper's NX/2 figures.
    pub fn ipsc2() -> Self {
        BaselineConfig {
            cpu_cycle: SimDuration::from_ns(60), // 16 MHz i386, ~1 ipc
            syscall_cost: SimDuration::from_us(5),
            interrupt_cost: SimDuration::from_us(8),
            csend_instructions: NX2_CSEND_INSTRUCTIONS,
            crecv_instructions: NX2_CRECV_INSTRUCTIONS,
            copy_bytes_per_sec: 20_000_000,
            dma_setup: SimDuration::from_us(2),
            dma_bytes_per_sec: 22_000_000, // iPSC/2 Direct-Connect class
        }
    }

    /// The per-side software-only durations (instructions × cycle +
    /// syscall + interrupt), excluding copies — the quantity the DELTA
    /// measurement describes.
    pub fn software_overhead(&self) -> (SimDuration, SimDuration) {
        let send = self.cpu_cycle * self.csend_instructions + self.syscall_cost + self.interrupt_cost;
        let recv = self.cpu_cycle * self.crecv_instructions + self.syscall_cost + self.interrupt_cost;
        (send, recv)
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig::ipsc2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_carry_the_papers_numbers() {
        let c = BaselineConfig::default();
        assert_eq!(c.csend_instructions, 222);
        assert_eq!(c.crecv_instructions, 261);
    }

    #[test]
    fn software_overhead_is_tens_of_microseconds() {
        // The paper's DELTA point: traditional software overhead is on
        // the order of 67 us for send+receive.
        let (s, r) = BaselineConfig::default().software_overhead();
        let total = (s + r).as_micros_f64();
        assert!(
            (30.0..120.0).contains(&total),
            "send+recv software overhead {total} us should be tens of us"
        );
    }
}
