//! Criterion micro-benchmarks of the hot data structures.
//!
//! These are not paper results; they keep the simulator's own fast paths
//! honest (the snoop-path NIPT lookup runs once per bus write, the event
//! queue once per simulated event).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use shrimp_cpu::{Assembler, Cpu, FlatMemory, Reg};
use shrimp_mem::{CacheConfig, CacheModel, PageNum, PhysAddr, Tlb, VirtPageNum};
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::packet::crc32;
use shrimp_nic::{Nipt, OutSegment, PacketFifo, ShrimpPacket, UpdatePolicy, WireHeader};
use shrimp_sim::{EventQueue, SimTime};

fn bench_crc32(c: &mut Criterion) {
    let page = vec![0xa5u8; 4096];
    c.bench_function("crc32/4096B", |b| b.iter(|| crc32(black_box(&page))));
    let word = [0x5au8; 22];
    c.bench_function("crc32/22B_packet", |b| b.iter(|| crc32(black_box(&word))));
}

fn bench_nipt(c: &mut Criterion) {
    let mut nipt = Nipt::new(1024);
    for p in 0..1024u64 {
        if p % 3 == 0 {
            nipt.set_out_segment(
                PageNum::new(p),
                OutSegment::full_page(NodeId(1), PageNum::new(p), UpdatePolicy::AutomaticSingle),
            )
            .expect("segment");
        }
    }
    c.bench_function("nipt/lookup_out", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 4096 + 4) % (1024 * 4096);
            black_box(nipt.lookup_out(PhysAddr::new(addr)))
        })
    });
}

fn bench_fifo(c: &mut Criterion) {
    let header = WireHeader {
        dst_coord: shrimp_mesh::MeshCoord { x: 0, y: 0 },
        src: NodeId(0),
        dst_addr: PhysAddr::new(0),
    };
    c.bench_function("fifo/push_pop", |b| {
        b.iter_batched(
            || {
                (
                    PacketFifo::new(64 * 1024, 32 * 1024),
                    ShrimpPacket::new(header, vec![0u8; 64]),
                )
            },
            |(mut fifo, pkt)| {
                for _ in 0..32 {
                    fifo.try_push(SimTime::ZERO, pkt.clone()).expect("fits");
                }
                while fifo.pop().is_some() {}
                fifo
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.push(SimTime::from_picos((i * 7919) % 4096), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
}

fn bench_mesh_route(c: &mut Criterion) {
    let shape = MeshShape::new(8, 8);
    c.bench_function("mesh/route_64_nodes", |b| {
        b.iter(|| {
            let mut hops = 0u32;
            for a in 0..64u16 {
                for z in 0..64u16 {
                    hops += shape.hops(NodeId(a), NodeId(z)) as u32;
                }
            }
            hops
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/load_stream", |b| {
        b.iter_batched(
            || CacheModel::new(CacheConfig::pentium_l2()),
            |mut cache| {
                for i in 0..4096u64 {
                    cache.load(PhysAddr::new((i * 32) % (512 * 1024)));
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb/lookup_hit", |b| {
        let mut tlb = Tlb::new(64);
        for i in 0..64u64 {
            tlb.insert(
                VirtPageNum::new(i),
                PageNum::new(i),
                shrimp_mem::PageFlags::default(),
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(tlb.lookup(VirtPageNum::new(i)))
        })
    });
}

fn bench_cpu(c: &mut Criterion) {
    c.bench_function("cpu/tight_loop_1k", |b| {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 1000)
            .label("loop")
            .addi(Reg::R1, -1)
            .cmpi(Reg::R1, 0)
            .jnz("loop")
            .halt();
        let program = asm.assemble().expect("assembles");
        b.iter_batched(
            || (Cpu::new(program.clone()), FlatMemory::new(64)),
            |(mut cpu, mut mem)| {
                cpu.run_to_halt(SimTime::ZERO, &mut mem, 10_000).expect("halts");
                cpu
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_crc32,
    bench_nipt,
    bench_fifo,
    bench_event_queue,
    bench_mesh_route,
    bench_cache,
    bench_tlb,
    bench_cpu
);
criterion_main!(benches);
