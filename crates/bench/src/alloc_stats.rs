//! A counting global allocator, enabled by the `alloc-stats` feature.
//!
//! The simspeed benchmark reports *allocations per simulated event* so
//! the packet-arena work has a tracked trajectory: a hot path that
//! stops allocating shows up as this number falling, independent of the
//! machine's wall-clock noise. Counting every `alloc` costs one relaxed
//! atomic increment, which would perturb the paper benchmarks, so the
//! allocator is only installed when `shrimp-bench` is built with
//! `--features alloc-stats`; without it [`allocations`] always returns
//! zero and [`ENABLED`] is `false`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// True when the counting allocator is installed in this build.
pub const ENABLED: bool = cfg!(feature = "alloc-stats");

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting each allocation
/// (reallocations count too; frees do not).
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System` plus a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(feature = "alloc-stats")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Total heap allocations since process start (0 unless [`ENABLED`]).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
