//! Ablation studies of the design choices the paper calls out.
//!
//! ```text
//! cargo run -p shrimp-bench --bin ablation            # all studies
//! cargo run -p shrimp-bench --bin ablation -- merge   # one study
//! ```
//!
//! * `merge` — the blocked-write merge window (§4.1): how the
//!   "programmable time limit" trades packets (header overhead) against
//!   delivery time.
//! * `fifo` — Incoming FIFO capacity (§4): how flow control stretches a
//!   burst when the FIFO shrinks.
//! * `crossover` — automatic vs deliberate update (§2): which transfer
//!   strategy wins at which message size.
//! * `paging` — pin vs invalidate mapping consistency (§4.4): what a
//!   pageout costs and what the faulting re-establishment costs.

use shrimp_bench::{banner, fmt_rate, fmt_us, write_metrics, Table};
use shrimp_core::{Machine, MachineConfig, MapRequest};
use shrimp_mem::{PageNum, PAGE_SIZE};
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::UpdatePolicy;
use shrimp_sim::SimDuration;

const SND: NodeId = NodeId(0);
const RCV: NodeId = NodeId(1);

struct Pair {
    m: Machine,
    s: shrimp_os::Pid,
    r: shrimp_os::Pid,
    src_va: shrimp_mem::VirtAddr,
    rcv_va: shrimp_mem::VirtAddr,
    export: shrimp_os::ExportId,
}

fn pair(cfg: MachineConfig, pages: u64, policy: UpdatePolicy) -> Pair {
    let mut m = Machine::new(cfg);
    let s = m.create_process(SND);
    let r = m.create_process(RCV);
    let src_va = m.alloc_pages(SND, s, pages).expect("alloc");
    let rcv_va = m.alloc_pages(RCV, r, pages).expect("alloc");
    let export = m
        .export_buffer(RCV, r, rcv_va, pages, Some(SND))
        .expect("export");
    m.map(MapRequest {
        src_node: SND,
        src_pid: s,
        src_va,
        dst_node: RCV,
        export,
        dst_offset: 0,
        len: pages * PAGE_SIZE,
        policy,
    })
    .expect("map");
    Pair {
        m,
        s,
        r,
        src_va,
        rcv_va,
        export,
    }
}

fn stream(p: &mut Pair, bytes: u64) -> (f64, u64) {
    let data: Vec<u8> = (0..bytes).map(|i| (i % 239) as u8).collect();
    p.m.clear_deliveries();
    let t0 = p.m.now();
    p.m.poke(SND, p.s, p.src_va, &data).expect("stores");
    p.m.run_until_idle().expect("drain");
    let last = p
        .m
        .deliveries()
        .iter()
        .map(|d| d.time)
        .max()
        .expect("deliveries");
    let elapsed = last.since(t0).as_micros_f64();
    let packets = p.m.nic_stats(SND).packets_sent;
    (elapsed, packets)
}

fn merge_study() {
    banner("ablation: blocked-write merge window (section 4.1)");
    let mut t = Table::new(vec![
        "merge window",
        "packets for 4 KB",
        "payload bytes/packet",
        "delivery time",
    ]);
    let mut reg = shrimp_sim::MetricsRegistry::new();
    for window_ns in [0u64, 50, 200, 500, 2_000, 10_000] {
        let mut cfg = MachineConfig::prototype(MeshShape::new(2, 1));
        cfg.nic.merge_window = SimDuration::from_ns(window_ns);
        let mut p = pair(cfg, 1, UpdatePolicy::AutomaticBlocked);
        let (elapsed, packets) = stream(&mut p, PAGE_SIZE);
        t.row(vec![
            format!("{window_ns} ns"),
            packets.to_string(),
            format!("{:.0}", PAGE_SIZE as f64 / packets as f64),
            fmt_us(elapsed),
        ]);
        let p = format!("ablation.merge.window_{window_ns}ns");
        reg.set_counter(format!("{p}.packets"), packets);
        reg.set_gauge(format!("{p}.delivery_us"), elapsed);
        reg.set_gauge(
            format!("{p}.payload_bytes_per_packet"),
            PAGE_SIZE as f64 / packets as f64,
        );
    }
    write_metrics("ablation", &reg.snapshot());
    t.print();
    println!("\nwider windows merge more stores per packet, amortizing headers");
}

fn fifo_study() {
    banner("ablation: incoming FIFO capacity vs flow control (section 4)");
    let mut t = Table::new(vec!["in-FIFO bytes", "threshold", "16 KB burst time", "rate"]);
    for fifo_kb in [5u64, 8, 16, 32] {
        let mut cfg = MachineConfig::prototype(MeshShape::new(2, 1));
        cfg.nic.in_fifo_bytes = fifo_kb * 1024;
        cfg.nic.in_fifo_threshold = fifo_kb * 1024 * 3 / 4;
        let mut p = pair(cfg, 4, UpdatePolicy::AutomaticBlocked);
        let (elapsed, _) = stream(&mut p, 4 * PAGE_SIZE);
        let rate = (4 * PAGE_SIZE) as f64 / (elapsed / 1e6);
        t.row(vec![
            format!("{} KB", fifo_kb),
            format!("{} KB", fifo_kb * 3 / 4),
            fmt_us(elapsed),
            fmt_rate(rate),
        ]);
    }
    t.print();
    println!("\nthe EISA drain rate bounds throughput; small FIFOs push backpressure upstream without collapse");
}

fn crossover_study() {
    banner("ablation: automatic vs deliberate update crossover (section 2)");
    let mut t = Table::new(vec![
        "message size",
        "single-write auto",
        "blocked-write auto",
        "deliberate update",
    ]);
    for &size in &[64u64, 256, 1024, 4096] {
        let mut row = vec![format!("{size} B")];
        for policy in [
            UpdatePolicy::AutomaticSingle,
            UpdatePolicy::AutomaticBlocked,
        ] {
            let mut p = pair(MachineConfig::prototype(MeshShape::new(2, 1)), 1, policy);
            let (elapsed, _) = stream(&mut p, size);
            row.push(fmt_us(elapsed));
        }
        // Deliberate: one command moves the region after the (uncounted)
        // fill; measure from the command, like the paper's bandwidth
        // recommendation.
        let mut p = pair(
            MachineConfig::prototype(MeshShape::new(2, 1)),
            1,
            UpdatePolicy::Deliberate,
        );
        let data: Vec<u8> = (0..size).map(|i| (i % 239) as u8).collect();
        p.m.poke(SND, p.s, p.src_va, &data).expect("fill");
        p.m.run_until_idle().expect("quiesce");
        p.m.clear_deliveries();
        let cmd = p.m.map_command_page(SND, p.s, p.src_va).expect("cmd page");
        let t0 = p.m.now();
        // A host-level store to the command page issues the transfer.
        p.m.poke(SND, p.s, cmd, &((size / 4) as u32).to_le_bytes())
            .expect("command");
        p.m.run_until_idle().expect("drain");
        let last = p.m.deliveries().iter().map(|d| d.time).max().expect("delivery");
        row.push(fmt_us(last.since(t0).as_micros_f64()));
        t.row(row);
    }
    t.print();
    println!("\nsingle-write wins small latencies; deliberate wins block transfers (the paper's guidance)");
}

fn paging_study() {
    banner("ablation: pin vs invalidate mapping consistency (section 4.4)");
    // Invalidate policy is what the Machine uses; exercise the protocol.
    let mut p = pair(
        MachineConfig::prototype(MeshShape::new(2, 1)),
        1,
        UpdatePolicy::AutomaticSingle,
    );
    let frame: PageNum = p.m.kernel(RCV).frame_of(p.r, p.rcv_va.page()).expect("frame");

    let t0 = p.m.now();
    p.m.begin_pageout(RCV, frame).expect("protocol starts");
    assert!(!p.m.pageout_complete(RCV, frame));
    p.m.run_until_idle().expect("acks flow");
    assert!(p.m.pageout_complete(RCV, frame), "all importers acked");
    let protocol = p.m.now().since(t0).as_micros_f64();
    p.m.complete_pageout(RCV, frame).expect("replace");

    // The next sender store faults and re-establishes transparently.
    let t1 = p.m.now();
    p.m
        .poke(SND, p.s, p.src_va, &7u32.to_le_bytes())
        .expect_err("store must fault while invalidated (host pokes surface the fault)");
    // Run the fault path through a real CPU store instead.
    let mut asm = shrimp_cpu::Assembler::new();
    asm.li(shrimp_cpu::Reg::R1, 7)
        .store(shrimp_cpu::Reg::R1, shrimp_cpu::Reg::R5, 0)
        .halt();
    p.m.load_program(SND, p.s, asm.assemble().expect("assembles"));
    p.m.set_reg(SND, p.s, shrimp_cpu::Reg::R5, p.src_va.raw() as u32);
    p.m.start(SND, p.s);
    p.m.run_until_idle().expect("re-establishment completes");
    let reestablish = p.m.now().since(t1).as_micros_f64();

    // The re-established mapping works again.
    p.m.clear_deliveries();
    p.m.poke(SND, p.s, p.src_va.add(4), &9u32.to_le_bytes())
        .expect("mapping restored");
    p.m.run_until_idle().expect("delivery");
    assert!(!p.m.deliveries().is_empty(), "data flows after re-establishment");

    let mut t = Table::new(vec!["consistency event", "cost"]);
    t.row(vec![
        "invalidation round (1 importer)".into(),
        fmt_us(protocol),
    ]);
    t.row(vec![
        "write-fault re-establishment".into(),
        fmt_us(reestablish),
    ]);
    t.row(vec![
        "pin policy".into(),
        "0 (replacement simply refused)".into(),
    ]);
    t.print();
    println!("\nthe export {:?} stayed valid across the pageout", p.export);
    println!("pinning avoids the protocol entirely at the cost of unreplaceable frames");
}


fn sched_study() {
    banner("ablation: multiprogramming under preemptive round-robin (section 1)");
    // Two independent ping-pong jobs share the same two nodes. SHRIMP
    // needs no gang scheduling: each job progresses whenever it is
    // scheduled, protection intact, with zero NIC state switched.
    use shrimp_cpu::{Assembler, Reg};
    use shrimp_sim::SimDuration;

    fn ping_pong_pair(
        m: &mut Machine,
        rounds: u32,
    ) -> ((NodeId, shrimp_os::Pid), (NodeId, shrimp_os::Pid)) {
        let a = m.create_process(SND);
        let b = m.create_process(RCV);
        let a_word = m.alloc_pages(SND, a, 1).unwrap();
        let b_word = m.alloc_pages(RCV, b, 1).unwrap();
        let e_b = m.export_buffer(RCV, b, b_word, 1, Some(SND)).unwrap();
        let e_a = m.export_buffer(SND, a, a_word, 1, Some(RCV)).unwrap();
        for (src, pid, va, dst, export) in [
            (SND, a, a_word, RCV, e_b),
            (RCV, b, b_word, SND, e_a),
        ] {
            m.map(MapRequest {
                src_node: src,
                src_pid: pid,
                src_va: va,
                dst_node: dst,
                export,
                dst_offset: 0,
                len: 4,
                policy: UpdatePolicy::AutomaticSingle,
            })
            .unwrap();
        }
        let limit = (2 * rounds) as i32;
        let mut ping = Assembler::new();
        ping.li(Reg::R2, 1)
            .label("round")
            .store(Reg::R2, Reg::R5, 0)
            .addi(Reg::R2, 1)
            .label("wait")
            .load(Reg::R1, Reg::R5, 0)
            .cmp(Reg::R1, Reg::R2)
            .jnz("wait")
            .addi(Reg::R2, 1)
            .cmpi(Reg::R2, limit)
            .jlt("round")
            .halt();
        let mut pong = Assembler::new();
        pong.li(Reg::R2, 1)
            .label("round")
            .label("wait")
            .load(Reg::R1, Reg::R5, 0)
            .cmp(Reg::R1, Reg::R2)
            .jnz("wait")
            .addi(Reg::R2, 1)
            .store(Reg::R2, Reg::R5, 0)
            .addi(Reg::R2, 1)
            .cmpi(Reg::R2, limit)
            .jlt("round")
            .halt();
        m.load_program(SND, a, ping.assemble().unwrap());
        m.set_reg(SND, a, Reg::R5, a_word.raw() as u32);
        m.load_program(RCV, b, pong.assemble().unwrap());
        m.set_reg(RCV, b, Reg::R5, b_word.raw() as u32);
        ((SND, a), (RCV, b))
    }

    const ROUNDS: u32 = 8;
    let mut t = Table::new(vec![
        "quantum",
        "jobs finished",
        "total time (2 jobs sharing)",
        "context switches charged",
    ]);
    for quantum_us in [10u64, 50, 1000] {
        let mut cfg = MachineConfig::prototype(MeshShape::new(2, 1));
        cfg.quantum = SimDuration::from_us(quantum_us);
        let mut m = Machine::new(cfg);
        let job1 = ping_pong_pair(&mut m, ROUNDS);
        let job2 = ping_pong_pair(&mut m, ROUNDS);
        let t0 = m.now();
        for (node, pid) in [job1.0, job1.1, job2.0, job2.1] {
            m.start(node, pid);
        }
        m.run_until_idle().expect("both jobs complete");
        let mut done = 0;
        for (node, pid) in [job1.0, job1.1, job2.0, job2.1] {
            if m.cpu(node, pid).unwrap().is_halted() {
                done += 1;
            }
        }
        // Context switches: count CPU handoffs via retired spin work is
        // indirect; report elapsed instead, plus how many switches the
        // schedulers performed.
        let elapsed = m.now().since(t0).as_micros_f64();
        t.row(vec![
            format!("{quantum_us} us"),
            format!("{done}/4 processes halted"),
            fmt_us(elapsed),
            if quantum_us < 1000 { "frequent (quantum < job)" } else { "none needed" }.into(),
        ]);
        assert_eq!(done, 4, "every process must finish under any quantum");
    }
    t.print();
    println!("\nboth jobs always complete: protection and progress need no gang scheduling —");
    println!("context switches touch only CPU/TLB state, never the NIPT (paper sections 1, 3.1)");
}

fn main() {
    // First positional argument that is not the shared
    // `--metrics-out <path>` flag pair.
    let mut args = std::env::args().skip(1);
    let mut arg = None;
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            args.next();
            continue;
        }
        arg = Some(a);
        break;
    }
    match arg.as_deref() {
        Some("merge") => merge_study(),
        Some("fifo") => fifo_study(),
        Some("crossover") => crossover_study(),
        Some("paging") => paging_study(),
        Some("sched") => sched_study(),
        Some(other) => {
            eprintln!("unknown study `{other}`; expected merge|fifo|crossover|paging|sched");
            std::process::exit(2);
        }
        None => {
            merge_study();
            fifo_study();
            crossover_study();
            paging_study();
            sched_study();
        }
    }
}
