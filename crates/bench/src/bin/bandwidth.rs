//! Regenerates the paper's §5.1 **peak bandwidth** result: deliberate-
//! update transfers are EISA-limited to 33 MB/s on the prototype and
//! reach ~70 MB/s on the next-generation datapath; blocked-write
//! automatic update is shown for contrast.
//!
//! The sender is a real mini-ISA program issuing the §4.3 `CMPXCHG`
//! start protocol page by page, overlapping the preparation of the next
//! command with the outgoing DMA of the current one — the paper's
//! recommended usage.
//!
//! ```text
//! cargo run -p shrimp-bench --bin bandwidth
//! ```

use shrimp_bench::{banner, fmt_rate, write_metrics, Table};
use shrimp_core::{Machine, MachineConfig, MapRequest};
use shrimp_cpu::Reg;
use shrimp_mem::PAGE_SIZE;
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::UpdatePolicy;

const SND: NodeId = NodeId(0);
const RCV: NodeId = NodeId(1);

struct Setup {
    m: Machine,
    s: shrimp_os::Pid,
    data_va: shrimp_mem::VirtAddr,
    cmd_delta: u32,
}

fn setup(cfg: MachineConfig, pages: u64, policy: UpdatePolicy) -> Setup {
    let mut m = Machine::new(cfg);
    let s = m.create_process(SND);
    let r = m.create_process(RCV);
    let data_va = m.alloc_pages(SND, s, pages).expect("alloc send");
    let rcv_va = m.alloc_pages(RCV, r, pages).expect("alloc recv");
    let export = m
        .export_buffer(RCV, r, rcv_va, pages, Some(SND))
        .expect("export");
    m.map(MapRequest {
        src_node: SND,
        src_pid: s,
        src_va: data_va,
        dst_node: RCV,
        export,
        dst_offset: 0,
        len: pages * PAGE_SIZE,
        policy,
    })
    .expect("map");

    // One command page per data page; reserved consecutively, so a single
    // delta converts any data address into its command address.
    let mut cmd_delta = 0u32;
    for p in 0..pages {
        let cmd = m
            .map_command_page(SND, s, data_va.add(p * PAGE_SIZE))
            .expect("command page");
        if p == 0 {
            cmd_delta = (cmd.raw() - data_va.raw()) as u32;
        }
    }
    // Fill the source region so transfers are verifiable.
    let payload: Vec<u8> = (0..pages * PAGE_SIZE).map(|i| (i % 253) as u8).collect();
    m.poke(SND, s, data_va, &payload).expect("fill");
    m.run_until_idle().expect("quiesce after fill");
    m.clear_deliveries();
    Setup {
        m,
        s,
        data_va,
        cmd_delta,
    }
}

/// Streams `bytes` with back-to-back deliberate-update page transfers and
/// returns the achieved end-to-end rate in bytes/second, plus the
/// machine for metrics inspection.
fn deliberate_rate(cfg: MachineConfig, bytes: u64) -> (f64, Machine) {
    let pages = bytes.div_ceil(PAGE_SIZE);
    let tail_words = ((bytes - (pages - 1) * PAGE_SIZE) / 4) as u32;
    let mut w = setup(cfg, pages, UpdatePolicy::Deliberate);

    // The §4.3 run-time library routine, shared with msglib.
    let program = shrimp_core::msglib::deliberate_stream_program();

    w.m.load_program(SND, w.s, program);
    w.m.set_reg(SND, w.s, Reg::R5, w.data_va.raw() as u32);
    w.m.set_reg(SND, w.s, Reg::R7, w.cmd_delta);
    w.m.set_reg(SND, w.s, Reg::R3, pages as u32);
    w.m.set_reg(SND, w.s, Reg::R2, (PAGE_SIZE / 4) as u32);
    w.m.set_reg(SND, w.s, Reg::R4, if tail_words == 0 { (PAGE_SIZE / 4) as u32 } else { tail_words });

    let t0 = w.m.now();
    w.m.start(SND, w.s);
    w.m.run_until_idle().expect("stream must drain");
    let last = w
        .m
        .deliveries()
        .iter()
        .map(|d| d.time)
        .max()
        .expect("deliveries recorded");
    let delivered: u64 = w.m.deliveries().iter().map(|d| d.len).sum();
    assert_eq!(delivered, bytes, "every byte must arrive");
    let rate = delivered as f64 / (last.since(t0).as_picos() as f64 / 1e12);
    (rate, w.m)
}

/// Streams `bytes` of blocked-write automatic updates (host stores) and
/// returns the achieved end-to-end rate.
fn blocked_write_rate(cfg: MachineConfig, bytes: u64) -> f64 {
    let pages = bytes.div_ceil(PAGE_SIZE);
    let mut w = setup(cfg, pages, UpdatePolicy::AutomaticBlocked);
    let data: Vec<u8> = (0..bytes).map(|i| (i % 241) as u8).collect();
    let t0 = w.m.now();
    w.m.poke(SND, w.s, w.data_va, &data).expect("stores");
    w.m.run_until_idle().expect("stream must drain");
    let last = w
        .m
        .deliveries()
        .iter()
        .map(|d| d.time)
        .max()
        .expect("deliveries recorded");
    let delivered: u64 = w.m.deliveries().iter().map(|d| d.len).sum();
    assert_eq!(delivered, bytes, "every byte must arrive");
    delivered as f64 / (last.since(t0).as_picos() as f64 / 1e12)
}

fn main() {
    banner("Section 5.1: peak bandwidth (deliberate update)");
    let shape = MeshShape::new(2, 1);

    let mut t = Table::new(vec![
        "transfer size",
        "deliberate (EISA proto)",
        "deliberate (next gen)",
        "blocked-write (proto)",
    ]);
    let sizes: [u64; 7] = [256, 1024, 4096, 8192, 16384, 32768, 65536];
    let mut last_proto = 0.0;
    let mut last_next = 0.0;
    let mut last_machine = None;
    for &size in &sizes {
        let (proto, m) = deliberate_rate(MachineConfig::prototype(shape), size);
        let (next, _) = deliberate_rate(MachineConfig::next_generation(shape), size);
        let blocked = blocked_write_rate(MachineConfig::prototype(shape), size);
        t.row(vec![
            format!("{size} B"),
            fmt_rate(proto),
            fmt_rate(next),
            fmt_rate(blocked),
        ]);
        last_proto = proto;
        last_next = next;
        last_machine = Some(m);
    }
    t.print();

    println!();
    println!(
        "paper: 33 MB/s peak, EISA-limited    -> measured asymptote {}",
        fmt_rate(last_proto)
    );
    println!(
        "paper: ~70 MB/s next generation      -> measured asymptote {}",
        fmt_rate(last_next)
    );
    assert!(
        last_proto > 25e6 && last_proto <= 33e6,
        "prototype must saturate near the EISA limit, got {last_proto}"
    );
    assert!(
        last_next > 55e6 && last_next <= 70e6,
        "next generation must roughly double it, got {last_next}"
    );
    println!("\nboth envelopes hold: the receive-path bus is the bottleneck");

    // Component counters of the largest prototype stream, in the
    // unified schema (nic0.*, mesh.*, machine.*).
    let m = last_machine.expect("at least one size measured");
    write_metrics("bandwidth", &m.metrics_snapshot());
}
