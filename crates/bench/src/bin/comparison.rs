//! Regenerates the paper's two comparison results:
//!
//! * **§5.2** — SHRIMP's user-level `csend`/`crecv` vs the NX/2
//!   kernel implementation (73+78 vs 222+261 instructions, "about 1/4 of
//!   the overhead", plus NX/2's system calls and DMA interrupts).
//! * **§1** — the Intel DELTA motivation: traditional send+receive costs
//!   ~67 µs of software, of which <1 µs is hardware.
//!
//! Plus a three-way NIC-backend table over the mixed workload: the
//! pinned SHRIMP datapath vs the NP-RDMA-style unpinned backend
//! (bounded IOTLB + dynamic map-in) vs the kernel-mediated NX/2
//! baseline — goodput, p50/p99 latency decomposition and the unpinned
//! backend's map-in/IOTLB-miss counters, emitted as
//! `comparison.{shrimp,unpinned,nx2}.*`.
//!
//! ```text
//! cargo run -p shrimp-bench --bin comparison
//! ```

use shrimp_baseline::{BaselineConfig, BaselineMachine};
use shrimp_bench::{banner, fmt_rate, fmt_ratio, fmt_us, write_metrics, Table};
use shrimp_core::msglib;
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::NicBackend;
use shrimp_sim::MetricsRegistry;
use shrimp_workload::{run_scenario, Report, Scenario};

/// The `mixed.shrimp` session mix, parameterized by NIC backend so the
/// two simulated columns see byte-identical offered load.
fn backend_scenario(backend: NicBackend) -> Scenario {
    let nic_line = match backend {
        NicBackend::Shrimp => String::new(),
        b => format!("nic {}\n", b.as_str()),
    };
    let text = format!(
        "scenario backends\n\
         mesh 2x2\n\
         seed 55\n\
         pages 96\n\
         users 6\n\
         {nic_line}\
         session rpc count=6 src=any dst=any requests=3 request=256 response=256 think=1us..8us server=1us..4us\n\
         session stream count=4 src=any dst=any pages=3 gap=1us..3us\n\
         session fanout count=4 src=any leaves=2 rounds=2 bytes=512 think=2us..6us\n\
         session dsm count=6 src=any dst=any pages=2 ops=4 write=64 think=1us..5us\n"
    );
    Scenario::parse(&text).expect("backend scenario is valid")
}

/// Per-backend figures pulled out of a scenario [`Report`].
struct BackendRow {
    goodput_bps: f64,
    e2e_p50_ps: u64,
    e2e_p99_ps: u64,
    dma_p50_ps: u64,
    iotlb_misses: u64,
    map_ins: u64,
}

fn summarize(r: &Report) -> BackendRow {
    let e2e = r.metrics.histogram("latency.e2e").expect("e2e histogram");
    let dma = r.metrics.histogram("latency.dma").expect("dma histogram");
    let sum = |key: &str| {
        (0..4)
            .filter_map(|i| r.metrics.counter(&format!("nic{i}.iotlb.{key}")))
            .sum()
    };
    BackendRow {
        goodput_bps: r.goodput_bytes as f64 / (r.final_time_ps as f64 * 1e-12),
        e2e_p50_ps: e2e.p50,
        e2e_p99_ps: e2e.p99,
        dma_p50_ps: dma.p50,
        iotlb_misses: sum("misses"),
        map_ins: sum("map_ins"),
    }
}

fn emit_backend(reg: &mut MetricsRegistry, name: &str, row: &BackendRow) {
    reg.set_gauge(format!("comparison.{name}.goodput_mbps"), row.goodput_bps / 1e6);
    reg.set_counter(format!("comparison.{name}.latency.e2e.p50_ps"), row.e2e_p50_ps);
    reg.set_counter(format!("comparison.{name}.latency.e2e.p99_ps"), row.e2e_p99_ps);
    reg.set_counter(format!("comparison.{name}.latency.dma.p50_ps"), row.dma_p50_ps);
    reg.set_counter(format!("comparison.{name}.iotlb.misses"), row.iotlb_misses);
    reg.set_counter(format!("comparison.{name}.map_ins"), row.map_ins);
}

const PS_PER_US: f64 = 1e6;

fn main() {
    banner("Section 5.2: csend/crecv vs NX/2");

    let shrimp = msglib::csend_crecv().expect("SHRIMP csend/crecv runs");
    assert!(shrimp.verified, "message must arrive");
    let ours = shrimp.copy_excluded.unwrap_or(shrimp.counts);

    let cfg = BaselineConfig::ipsc2();
    let mut t = Table::new(vec![
        "implementation",
        "csend insns",
        "crecv insns",
        "syscalls",
        "interrupts",
    ]);
    t.row(vec![
        "SHRIMP user-level (this repro)".into(),
        ours.sender.to_string(),
        ours.receiver.to_string(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "SHRIMP user-level (paper)".into(),
        "73".into(),
        "78".into(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "NX/2 on iPSC/2 (paper)".into(),
        cfg.csend_instructions.to_string(),
        cfg.crecv_instructions.to_string(),
        "2".into(),
        "2".into(),
    ]);
    t.print();

    let ratio = ours.total() as f64 / (cfg.csend_instructions + cfg.crecv_instructions) as f64;
    println!(
        "\npaper: SHRIMP ≈ 0.31x of NX/2's fast-path instructions; measured {}",
        fmt_ratio(ratio)
    );
    assert!(
        ratio < 0.5,
        "user-level csend/crecv must stay well under NX/2's instruction counts"
    );

    banner("Section 1: DELTA-style software vs hardware breakdown");
    let mut m = BaselineMachine::new(cfg, MeshShape::new(4, 4));
    let timeline = m.send_message(NodeId(0), NodeId(15), 64);
    let mut t = Table::new(vec!["stage", "time"]);
    for (stage, d) in [
        ("csend trap + kernel fast path", timeline.send_software),
        ("sender user->system copy", timeline.send_copy),
        ("send DMA", timeline.send_dma),
        ("backplane transit (hardware)", timeline.wire),
        ("receive DMA + interrupt", timeline.recv_dma),
        ("crecv trap + dispatch", timeline.recv_software),
        ("receiver system->user copy", timeline.recv_copy),
    ] {
        t.row(vec![stage.into(), format!("{d}")]);
    }
    t.print();

    let sw = timeline.software_overhead().as_micros_f64();
    let hw = timeline.wire.as_micros_f64();
    println!(
        "\npaper (DELTA): ~67 us software, <1 us hardware per send+receive"
    );
    println!(
        "measured (iPSC/2-class baseline): {} software vs {} hardware ({} ratio)",
        fmt_us(sw),
        fmt_us(hw),
        fmt_ratio(sw / hw)
    );
    assert!(sw / hw > 10.0, "software must dominate hardware");

    // SHRIMP's same-size message end to end, for the punchline.
    println!(
        "\nSHRIMP csend+crecv end-to-end (simulated): {}",
        fmt_us(shrimp.elapsed.as_micros_f64())
    );
    println!("kernel-mediated baseline end-to-end:        {}", fmt_us(timeline.total().as_micros_f64()));
    let speedup = timeline.total().as_micros_f64() / shrimp.elapsed.as_micros_f64();
    println!("SHRIMP speedup: {}", fmt_ratio(speedup));
    assert!(speedup > 2.0, "SHRIMP must clearly win end-to-end");

    banner("NIC backends: pinned SHRIMP vs unpinned (NP-RDMA-style) vs NX/2");

    let pinned_report = run_scenario(&backend_scenario(NicBackend::Shrimp)).expect("pinned run");
    let unpinned_report =
        run_scenario(&backend_scenario(NicBackend::Unpinned)).expect("unpinned run");
    let pinned_row = summarize(&pinned_report);
    let unpinned_row = summarize(&unpinned_report);

    // NX/2 moves the same page-sized payload through traps, copies and
    // DMA interrupts; the model is deterministic, so p50 = p99 = total.
    let nx2_timeline = BaselineMachine::new(BaselineConfig::ipsc2(), MeshShape::new(2, 2))
        .send_message(NodeId(0), NodeId(3), 4096);
    let nx2_total_ps = nx2_timeline.total().as_picos();
    let nx2_row = BackendRow {
        goodput_bps: 4096.0 / (nx2_total_ps as f64 * 1e-12),
        e2e_p50_ps: nx2_total_ps,
        e2e_p99_ps: nx2_total_ps,
        dma_p50_ps: (nx2_timeline.send_dma + nx2_timeline.recv_dma).as_picos(),
        iotlb_misses: 0,
        map_ins: 0,
    };

    let mut t = Table::new(vec![
        "backend",
        "goodput",
        "e2e p50",
        "e2e p99",
        "dma p50",
        "iotlb misses",
        "map-ins",
    ]);
    for (name, row) in [
        ("SHRIMP pinned", &pinned_row),
        ("unpinned IOTLB", &unpinned_row),
        ("NX/2 kernel (modeled)", &nx2_row),
    ] {
        t.row(vec![
            name.into(),
            fmt_rate(row.goodput_bps),
            fmt_us(row.e2e_p50_ps as f64 / PS_PER_US),
            fmt_us(row.e2e_p99_ps as f64 / PS_PER_US),
            fmt_us(row.dma_p50_ps as f64 / PS_PER_US),
            row.iotlb_misses.to_string(),
            row.map_ins.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nunpinned slowdown vs pinned (same load, same seed): {}",
        fmt_ratio(unpinned_report.final_time_ps as f64 / pinned_report.final_time_ps as f64)
    );

    assert_eq!(
        unpinned_report.goodput_bytes, pinned_report.goodput_bytes,
        "both backends must deliver the same session payload"
    );
    assert!(
        unpinned_report.final_time_ps > pinned_report.final_time_ps,
        "dynamic map-in must cost simulated time"
    );
    assert!(unpinned_row.iotlb_misses > 0 && unpinned_row.map_ins > 0);
    assert!(
        nx2_row.e2e_p50_ps > pinned_row.e2e_p50_ps,
        "the kernel-mediated baseline must lose to the mapped datapath"
    );

    let mut reg = shrimp_sim::MetricsRegistry::new();
    emit_backend(&mut reg, "shrimp", &pinned_row);
    emit_backend(&mut reg, "unpinned", &unpinned_row);
    emit_backend(&mut reg, "nx2", &nx2_row);
    reg.set_counter("comparison.shrimp.csend_insns", ours.sender);
    reg.set_counter("comparison.shrimp.crecv_insns", ours.receiver);
    reg.set_counter("comparison.nx2.csend_insns", cfg.csend_instructions);
    reg.set_counter("comparison.nx2.crecv_insns", cfg.crecv_instructions);
    reg.set_gauge("comparison.instruction_ratio", ratio);
    reg.set_gauge("comparison.software_vs_hardware_ratio", sw / hw);
    reg.set_gauge("comparison.end_to_end_speedup", speedup);
    write_metrics("comparison", &reg.snapshot());
}
