//! Regenerates the paper's two comparison results:
//!
//! * **§5.2** — SHRIMP's user-level `csend`/`crecv` vs the NX/2
//!   kernel implementation (73+78 vs 222+261 instructions, "about 1/4 of
//!   the overhead", plus NX/2's system calls and DMA interrupts).
//! * **§1** — the Intel DELTA motivation: traditional send+receive costs
//!   ~67 µs of software, of which <1 µs is hardware.
//!
//! ```text
//! cargo run -p shrimp-bench --bin comparison
//! ```

use shrimp_baseline::{BaselineConfig, BaselineMachine};
use shrimp_bench::{banner, fmt_ratio, fmt_us, write_metrics, Table};
use shrimp_core::msglib;
use shrimp_mesh::{MeshShape, NodeId};

fn main() {
    banner("Section 5.2: csend/crecv vs NX/2");

    let shrimp = msglib::csend_crecv().expect("SHRIMP csend/crecv runs");
    assert!(shrimp.verified, "message must arrive");
    let ours = shrimp.copy_excluded.unwrap_or(shrimp.counts);

    let cfg = BaselineConfig::ipsc2();
    let mut t = Table::new(vec![
        "implementation",
        "csend insns",
        "crecv insns",
        "syscalls",
        "interrupts",
    ]);
    t.row(vec![
        "SHRIMP user-level (this repro)".into(),
        ours.sender.to_string(),
        ours.receiver.to_string(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "SHRIMP user-level (paper)".into(),
        "73".into(),
        "78".into(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "NX/2 on iPSC/2 (paper)".into(),
        cfg.csend_instructions.to_string(),
        cfg.crecv_instructions.to_string(),
        "2".into(),
        "2".into(),
    ]);
    t.print();

    let ratio = ours.total() as f64 / (cfg.csend_instructions + cfg.crecv_instructions) as f64;
    println!(
        "\npaper: SHRIMP ≈ 0.31x of NX/2's fast-path instructions; measured {}",
        fmt_ratio(ratio)
    );
    assert!(
        ratio < 0.5,
        "user-level csend/crecv must stay well under NX/2's instruction counts"
    );

    banner("Section 1: DELTA-style software vs hardware breakdown");
    let mut m = BaselineMachine::new(cfg, MeshShape::new(4, 4));
    let timeline = m.send_message(NodeId(0), NodeId(15), 64);
    let mut t = Table::new(vec!["stage", "time"]);
    for (stage, d) in [
        ("csend trap + kernel fast path", timeline.send_software),
        ("sender user->system copy", timeline.send_copy),
        ("send DMA", timeline.send_dma),
        ("backplane transit (hardware)", timeline.wire),
        ("receive DMA + interrupt", timeline.recv_dma),
        ("crecv trap + dispatch", timeline.recv_software),
        ("receiver system->user copy", timeline.recv_copy),
    ] {
        t.row(vec![stage.into(), format!("{d}")]);
    }
    t.print();

    let sw = timeline.software_overhead().as_micros_f64();
    let hw = timeline.wire.as_micros_f64();
    println!(
        "\npaper (DELTA): ~67 us software, <1 us hardware per send+receive"
    );
    println!(
        "measured (iPSC/2-class baseline): {} software vs {} hardware ({} ratio)",
        fmt_us(sw),
        fmt_us(hw),
        fmt_ratio(sw / hw)
    );
    assert!(sw / hw > 10.0, "software must dominate hardware");

    // SHRIMP's same-size message end to end, for the punchline.
    println!(
        "\nSHRIMP csend+crecv end-to-end (simulated): {}",
        fmt_us(shrimp.elapsed.as_micros_f64())
    );
    println!("kernel-mediated baseline end-to-end:        {}", fmt_us(timeline.total().as_micros_f64()));
    let speedup = timeline.total().as_micros_f64() / shrimp.elapsed.as_micros_f64();
    println!("SHRIMP speedup: {}", fmt_ratio(speedup));
    assert!(speedup > 2.0, "SHRIMP must clearly win end-to-end");

    let mut reg = shrimp_sim::MetricsRegistry::new();
    reg.set_counter("comparison.shrimp.csend_insns", ours.sender);
    reg.set_counter("comparison.shrimp.crecv_insns", ours.receiver);
    reg.set_counter("comparison.nx2.csend_insns", cfg.csend_instructions);
    reg.set_counter("comparison.nx2.crecv_insns", cfg.crecv_instructions);
    reg.set_gauge("comparison.instruction_ratio", ratio);
    reg.set_gauge("comparison.software_vs_hardware_ratio", sw / hw);
    reg.set_gauge("comparison.end_to_end_speedup", speedup);
    write_metrics("comparison", &reg.snapshot());
}
