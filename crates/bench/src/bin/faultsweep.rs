//! Charts **goodput vs. link loss rate** for the deliberate-update
//! stream with link-level go-back-N retransmission enabled: the channel
//! drops (and occasionally corrupts) packets, the NICs recover, and the
//! application still sees every byte — at a goodput cost this sweep
//! quantifies. Results are printed and written to
//! `BENCH_faultsweep.metrics.json` in the `shrimp.metrics.v1` schema.
//!
//! ```text
//! cargo run -p shrimp-bench --bin faultsweep
//! ```

use shrimp_bench::{banner, fmt_rate, write_metrics, Table};
use shrimp_core::{Machine, MachineConfig, MapRequest};
use shrimp_cpu::Reg;
use shrimp_mem::PAGE_SIZE;
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::{RetxConfig, UpdatePolicy};
use shrimp_sim::fault::{FaultConfig, LinkFaultConfig};

const SND: NodeId = NodeId(0);
const RCV: NodeId = NodeId(1);

struct Sample {
    loss: f64,
    goodput: f64,
    injected: u64,
    dropped: u64,
    corrupted: u64,
    retransmissions: u64,
    timeouts: u64,
}

/// Streams `pages` pages under the given loss rate and returns the
/// achieved goodput plus the recovery counters.
fn run_point(loss: f64, pages: u64) -> Sample {
    let mut cfg = MachineConfig::prototype(MeshShape::new(2, 1));
    cfg.nic.retx = RetxConfig::reliable();
    cfg.fault = FaultConfig {
        seed: 0xfa57_5eed,
        link: LinkFaultConfig {
            drop_rate: loss,
            // A tenth of the drop rate as bit corruption: the CRC turns
            // those into drops too, exercising the same recovery path.
            corrupt_rate: loss / 10.0,
            ..LinkFaultConfig::default()
        },
        ..FaultConfig::default()
    };

    let bytes = pages * PAGE_SIZE;
    let mut m = Machine::new(cfg);
    let s = m.create_process(SND);
    let r = m.create_process(RCV);
    let data_va = m.alloc_pages(SND, s, pages).expect("alloc send");
    let rcv_va = m.alloc_pages(RCV, r, pages).expect("alloc recv");
    let export = m
        .export_buffer(RCV, r, rcv_va, pages, Some(SND))
        .expect("export");
    m.map(MapRequest {
        src_node: SND,
        src_pid: s,
        src_va: data_va,
        dst_node: RCV,
        export,
        dst_offset: 0,
        len: bytes,
        policy: UpdatePolicy::Deliberate,
    })
    .expect("map");
    let mut cmd_delta = 0u32;
    for p in 0..pages {
        let cmd = m
            .map_command_page(SND, s, data_va.add(p * PAGE_SIZE))
            .expect("command page");
        if p == 0 {
            cmd_delta = (cmd.raw() - data_va.raw()) as u32;
        }
    }
    let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
    m.poke(SND, s, data_va, &payload).expect("fill");
    m.run_until_idle().expect("quiesce after fill");
    m.clear_deliveries();

    let program = shrimp_core::msglib::deliberate_stream_program();
    m.load_program(SND, s, program);
    m.set_reg(SND, s, Reg::R5, data_va.raw() as u32);
    m.set_reg(SND, s, Reg::R7, cmd_delta);
    m.set_reg(SND, s, Reg::R3, pages as u32);
    m.set_reg(SND, s, Reg::R2, (PAGE_SIZE / 4) as u32);
    m.set_reg(SND, s, Reg::R4, (PAGE_SIZE / 4) as u32);

    let t0 = m.now();
    m.start(SND, s);
    m.run_until_idle().expect("stream must drain despite losses");

    let delivered: u64 = m.deliveries().iter().map(|d| d.len).sum();
    assert_eq!(delivered, bytes, "retransmission must recover every byte");
    let arrived = m.peek(RCV, r, rcv_va, bytes).expect("peek");
    assert_eq!(arrived, payload, "destination memory must be uncorrupted");

    let last = m
        .deliveries()
        .iter()
        .map(|d| d.time)
        .max()
        .expect("deliveries recorded");
    let elapsed_s = last.since(t0).as_picos() as f64 / 1e12;
    let mesh = m.mesh_stats().clone();
    let nics: Vec<_> = [SND, RCV].iter().map(|&n| m.nic_stats(n)).collect();
    Sample {
        loss,
        goodput: delivered as f64 / elapsed_s,
        injected: mesh.packets_injected,
        dropped: mesh.packets_dropped,
        corrupted: mesh.packets_corrupted,
        retransmissions: nics.iter().map(|n| n.retransmissions).sum(),
        timeouts: nics.iter().map(|n| n.retx_timeouts).sum(),
    }
}

fn main() {
    banner("Fault sweep: goodput vs. link loss (go-back-N retransmission)");

    let pages = 64u64;
    let losses = [0.0, 0.005, 0.01, 0.02, 0.05];
    let mut t = Table::new(vec![
        "loss rate",
        "goodput",
        "injected",
        "dropped+corrupt",
        "retransmissions",
        "timeouts",
    ]);
    let mut samples = Vec::new();
    for &loss in &losses {
        let s = run_point(loss, pages);
        t.row(vec![
            format!("{:.1}%", loss * 100.0),
            fmt_rate(s.goodput),
            s.injected.to_string(),
            (s.dropped + s.corrupted).to_string(),
            s.retransmissions.to_string(),
            s.timeouts.to_string(),
        ]);
        samples.push(s);
    }
    t.print();

    let ideal = samples[0].goodput;
    let worst = samples.last().expect("nonempty sweep");
    println!(
        "\nloss-free goodput {}; at {:.0}% loss the stream still completes \
         losslessly at {} ({:.0}% of ideal)",
        fmt_rate(ideal),
        worst.loss * 100.0,
        fmt_rate(worst.goodput),
        100.0 * worst.goodput / ideal
    );

    let mut reg = shrimp_sim::MetricsRegistry::new();
    for s in &samples {
        let p = format!("faultsweep.loss_{:.3}", s.loss);
        reg.set_gauge(format!("{p}.goodput_bytes_per_sec"), s.goodput);
        reg.set_counter(format!("{p}.packets_injected"), s.injected);
        reg.set_counter(format!("{p}.packets_dropped"), s.dropped);
        reg.set_counter(format!("{p}.packets_corrupted"), s.corrupted);
        reg.set_counter(format!("{p}.retx.retransmissions"), s.retransmissions);
        reg.set_counter(format!("{p}.retx.timeouts"), s.timeouts);
    }
    write_metrics("faultsweep", &reg.snapshot());
}
