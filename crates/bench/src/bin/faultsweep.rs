//! Charts **goodput vs. link loss rate** for the deliberate-update
//! stream with link-level go-back-N retransmission enabled: the channel
//! drops (and occasionally corrupts) packets, the NICs recover, and the
//! application still sees every byte — at a goodput cost this sweep
//! quantifies. A second sweep charts **goodput vs. link churn rate**:
//! every directed link of a 2×2 mesh fails and repairs on a seeded
//! MTTF/MTTR schedule while a mixed closed-loop workload runs, and the
//! west-first adaptive router detours (or bounces) traffic around the
//! holes. Results are printed and written to
//! `BENCH_faultsweep.metrics.json` in the `shrimp.metrics.v1` schema.
//!
//! ```text
//! cargo run -p shrimp-bench --bin faultsweep
//! ```

use shrimp_bench::{banner, fmt_rate, write_metrics, Table};
use shrimp_core::{Machine, MachineConfig, MapRequest};
use shrimp_cpu::Reg;
use shrimp_mem::PAGE_SIZE;
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::{RetxConfig, UpdatePolicy};
use shrimp_sim::fault::{FaultConfig, LinkFaultConfig};
use shrimp_workload::dsl::Scenario;
use shrimp_workload::run_scenario_observed;

const SND: NodeId = NodeId(0);
const RCV: NodeId = NodeId(1);

struct Sample {
    loss: f64,
    goodput: f64,
    injected: u64,
    dropped: u64,
    corrupted: u64,
    retransmissions: u64,
    timeouts: u64,
}

/// Streams `pages` pages under the given loss rate and returns the
/// achieved goodput plus the recovery counters.
fn run_point(loss: f64, pages: u64) -> Sample {
    let mut cfg = MachineConfig::prototype(MeshShape::new(2, 1));
    cfg.nic.retx = RetxConfig::reliable();
    cfg.fault = FaultConfig {
        seed: 0xfa57_5eed,
        link: LinkFaultConfig {
            drop_rate: loss,
            // A tenth of the drop rate as bit corruption: the CRC turns
            // those into drops too, exercising the same recovery path.
            corrupt_rate: loss / 10.0,
            ..LinkFaultConfig::default()
        },
        ..FaultConfig::default()
    };

    let bytes = pages * PAGE_SIZE;
    let mut m = Machine::new(cfg);
    let s = m.create_process(SND);
    let r = m.create_process(RCV);
    let data_va = m.alloc_pages(SND, s, pages).expect("alloc send");
    let rcv_va = m.alloc_pages(RCV, r, pages).expect("alloc recv");
    let export = m
        .export_buffer(RCV, r, rcv_va, pages, Some(SND))
        .expect("export");
    m.map(MapRequest {
        src_node: SND,
        src_pid: s,
        src_va: data_va,
        dst_node: RCV,
        export,
        dst_offset: 0,
        len: bytes,
        policy: UpdatePolicy::Deliberate,
    })
    .expect("map");
    let mut cmd_delta = 0u32;
    for p in 0..pages {
        let cmd = m
            .map_command_page(SND, s, data_va.add(p * PAGE_SIZE))
            .expect("command page");
        if p == 0 {
            cmd_delta = (cmd.raw() - data_va.raw()) as u32;
        }
    }
    let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
    m.poke(SND, s, data_va, &payload).expect("fill");
    m.run_until_idle().expect("quiesce after fill");
    m.clear_deliveries();

    let program = shrimp_core::msglib::deliberate_stream_program();
    m.load_program(SND, s, program);
    m.set_reg(SND, s, Reg::R5, data_va.raw() as u32);
    m.set_reg(SND, s, Reg::R7, cmd_delta);
    m.set_reg(SND, s, Reg::R3, pages as u32);
    m.set_reg(SND, s, Reg::R2, (PAGE_SIZE / 4) as u32);
    m.set_reg(SND, s, Reg::R4, (PAGE_SIZE / 4) as u32);

    let t0 = m.now();
    m.start(SND, s);
    m.run_until_idle().expect("stream must drain despite losses");

    let delivered: u64 = m.deliveries().iter().map(|d| d.len).sum();
    assert_eq!(delivered, bytes, "retransmission must recover every byte");
    let arrived = m.peek(RCV, r, rcv_va, bytes).expect("peek");
    assert_eq!(arrived, payload, "destination memory must be uncorrupted");

    let last = m
        .deliveries()
        .iter()
        .map(|d| d.time)
        .max()
        .expect("deliveries recorded");
    let elapsed_s = last.since(t0).as_picos() as f64 / 1e12;
    let mesh = m.mesh_stats().clone();
    let nics: Vec<_> = [SND, RCV].iter().map(|&n| m.nic_stats(n)).collect();
    Sample {
        loss,
        goodput: delivered as f64 / elapsed_s,
        injected: mesh.packets_injected,
        dropped: mesh.packets_dropped,
        corrupted: mesh.packets_corrupted,
        retransmissions: nics.iter().map(|n| n.retransmissions).sum(),
        timeouts: nics.iter().map(|n| n.retx_timeouts).sum(),
    }
}

struct ChurnSample {
    /// Mean time to failure per link in µs; `None` = churn-free baseline.
    mttf_us: Option<u64>,
    goodput: f64,
    reroutes: u64,
    bounced: u64,
    retransmissions: u64,
    gbn_bounces: u64,
}

/// Runs the mixed closed-loop workload on a 2×2 mesh (enough path
/// diversity for west-first detours) with every link churning at the
/// given MTTF, fixed MTTR of 5–20 µs, three cycles per link.
fn run_churn_point(mttf_us: Option<u64>) -> ChurnSample {
    let link = match mttf_us {
        // fail ~ Uniform[mttf/2, 3·mttf/2], so the mean up-time is mttf.
        // Cycle count scales inversely with MTTF so every point keeps
        // churning for roughly the same ~1.5 ms of simulated time —
        // otherwise the harshest schedules would burn out before the
        // workload ramps up and measure nothing.
        Some(mttf) => format!(
            "link fail={}us..{}us repair=5us..20us times={}\n",
            mttf / 2,
            mttf + mttf / 2,
            (1500 / (mttf + 13)).max(3),
        ),
        None => String::new(),
    };
    let text = format!(
        "scenario churnsweep\n\
         mesh 2x2\n\
         seed 4242\n\
         pages 96\n\
         users 4\n\
         {link}\
         session rpc count=4 src=any dst=any requests=3 request=256 response=256 think=1us..8us server=1us..4us\n\
         session stream count=4 src=any dst=any pages=3 gap=1us..3us\n\
         session dsm count=4 src=any dst=any pages=2 ops=4 write=64 think=1us..5us\n"
    );
    let sc = Scenario::parse(&text).expect("generated scenario is valid");
    let (r, m) = run_scenario_observed(&sc, Some(1)).expect("churn point completes");
    assert_eq!(r.sessions_completed, sc.total_sessions(), "churn must not lose sessions");
    let mesh = m.mesh_stats();
    let nics: Vec<_> = (0..sc.nodes()).map(|n| m.nic_stats(NodeId(n))).collect();
    ChurnSample {
        mttf_us,
        goodput: r.goodput_bytes as f64 / (r.final_time_ps as f64 / 1e12),
        reroutes: mesh.reroutes,
        bounced: mesh.bounced,
        retransmissions: nics.iter().map(|n| n.retransmissions).sum(),
        gbn_bounces: nics.iter().map(|n| n.gbn_bounces).sum(),
    }
}

fn main() {
    banner("Fault sweep: goodput vs. link loss (go-back-N retransmission)");

    let pages = 64u64;
    let losses = [0.0, 0.005, 0.01, 0.02, 0.05];
    let mut t = Table::new(vec![
        "loss rate",
        "goodput",
        "injected",
        "dropped+corrupt",
        "retransmissions",
        "timeouts",
    ]);
    let mut samples = Vec::new();
    for &loss in &losses {
        let s = run_point(loss, pages);
        t.row(vec![
            format!("{:.1}%", loss * 100.0),
            fmt_rate(s.goodput),
            s.injected.to_string(),
            (s.dropped + s.corrupted).to_string(),
            s.retransmissions.to_string(),
            s.timeouts.to_string(),
        ]);
        samples.push(s);
    }
    t.print();

    let ideal = samples[0].goodput;
    let worst = samples.last().expect("nonempty sweep");
    println!(
        "\nloss-free goodput {}; at {:.0}% loss the stream still completes \
         losslessly at {} ({:.0}% of ideal)",
        fmt_rate(ideal),
        worst.loss * 100.0,
        fmt_rate(worst.goodput),
        100.0 * worst.goodput / ideal
    );

    banner("Churn sweep: goodput vs. link MTTF (west-first adaptive rerouting)");

    let mttfs: [Option<u64>; 5] = [None, Some(400), Some(150), Some(60), Some(25)];
    let mut ct = Table::new(vec![
        "link MTTF",
        "goodput",
        "reroutes",
        "bounced",
        "retransmissions",
        "nic bounces",
    ]);
    let mut churn_samples = Vec::new();
    for &mttf in &mttfs {
        let s = run_churn_point(mttf);
        ct.row(vec![
            match s.mttf_us {
                Some(us) => format!("{us}us"),
                None => "(no churn)".into(),
            },
            fmt_rate(s.goodput),
            s.reroutes.to_string(),
            s.bounced.to_string(),
            s.retransmissions.to_string(),
            s.gbn_bounces.to_string(),
        ]);
        churn_samples.push(s);
    }
    ct.print();

    let churn_ideal = churn_samples[0].goodput;
    let churn_worst = churn_samples.last().expect("nonempty churn sweep");
    println!(
        "\nchurn-free goodput {}; with every link dying on average every \
         {}us the workload still completes losslessly at {} ({:.0}% of ideal)",
        fmt_rate(churn_ideal),
        churn_worst.mttf_us.expect("last point churns"),
        fmt_rate(churn_worst.goodput),
        100.0 * churn_worst.goodput / churn_ideal
    );

    let mut reg = shrimp_sim::MetricsRegistry::new();
    for s in &samples {
        let p = format!("faultsweep.loss_{:.3}", s.loss);
        reg.set_gauge(format!("{p}.goodput_bytes_per_sec"), s.goodput);
        reg.set_counter(format!("{p}.packets_injected"), s.injected);
        reg.set_counter(format!("{p}.packets_dropped"), s.dropped);
        reg.set_counter(format!("{p}.packets_corrupted"), s.corrupted);
        reg.set_counter(format!("{p}.retx.retransmissions"), s.retransmissions);
        reg.set_counter(format!("{p}.retx.timeouts"), s.timeouts);
    }
    for s in &churn_samples {
        let p = match s.mttf_us {
            Some(us) => format!("faultsweep.churn.mttf_{us}us"),
            None => "faultsweep.churn.baseline".into(),
        };
        reg.set_gauge(format!("{p}.goodput_bytes_per_sec"), s.goodput);
        reg.set_counter(format!("{p}.mesh.reroutes"), s.reroutes);
        reg.set_counter(format!("{p}.mesh.bounced"), s.bounced);
        reg.set_counter(format!("{p}.retx.retransmissions"), s.retransmissions);
        reg.set_counter(format!("{p}.gbn.bounces"), s.gbn_bounces);
    }
    write_metrics("faultsweep", &reg.snapshot());
}
