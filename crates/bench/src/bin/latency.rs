//! Regenerates the paper's §5.1 **latency** result: single-write
//! automatic-update latency on a 16-node (4×4) machine is under 2 µs on
//! the EISA prototype and under 1 µs on the next-generation datapath.
//!
//! Latency is the paper's definition: time from the sending CPU's write
//! to the arrival of the written data in destination memory.
//!
//! ```text
//! cargo run -p shrimp-bench --bin latency
//! ```

use shrimp_bench::{banner, fmt_us, write_metrics, Table};
use shrimp_core::{Machine, MachineConfig, MapRequest};
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::UpdatePolicy;
use shrimp_sim::{SimDuration, TelemetryConfig};

/// One-word automatic-update latency from node 0 to `dst` on `cfg`.
fn one_word_latency(cfg: MachineConfig, dst: NodeId) -> f64 {
    let mut m = Machine::new(cfg);
    let s = m.create_process(NodeId(0));
    let r = m.create_process(dst);
    let src = m.alloc_pages(NodeId(0), s, 1).expect("alloc");
    let rcv = m.alloc_pages(dst, r, 1).expect("alloc");
    let export = m
        .export_buffer(dst, r, rcv, 1, Some(NodeId(0)))
        .expect("export");
    m.map(MapRequest {
        src_node: NodeId(0),
        src_pid: s,
        src_va: src,
        dst_node: dst,
        export,
        dst_offset: 0,
        len: 4096,
        policy: UpdatePolicy::AutomaticSingle,
    })
    .expect("map");

    let t0 = m.now();
    m.poke(NodeId(0), s, src, &0xdead_beefu32.to_le_bytes())
        .expect("store");
    m.run_until_idle().expect("quiesce");
    let arrival = m
        .deliveries()
        .iter()
        .find(|d| d.node == dst)
        .expect("the word must arrive")
        .time;
    arrival.since(t0).as_micros_f64()
}

/// Runs a burst of single-word updates with packet-lifecycle telemetry
/// on and returns the machine for stage decomposition.
fn traced_burst(mut cfg: MachineConfig, dst: NodeId, words: u64) -> Machine {
    cfg.telemetry = TelemetryConfig {
        latency: true,
        ..TelemetryConfig::default()
    };
    let mut m = Machine::new(cfg);
    let s = m.create_process(NodeId(0));
    let r = m.create_process(dst);
    let src = m.alloc_pages(NodeId(0), s, 1).expect("alloc");
    let rcv = m.alloc_pages(dst, r, 1).expect("alloc");
    let export = m
        .export_buffer(dst, r, rcv, 1, Some(NodeId(0)))
        .expect("export");
    m.map(MapRequest {
        src_node: NodeId(0),
        src_pid: s,
        src_va: src,
        dst_node: dst,
        export,
        dst_offset: 0,
        len: 4096,
        policy: UpdatePolicy::AutomaticSingle,
    })
    .expect("map");
    for i in 0..words {
        m.poke(NodeId(0), s, src.add(i * 4), &(i as u32).to_le_bytes())
            .expect("store");
        m.run_until_idle().expect("quiesce");
    }
    m
}

/// Per-stage latency decomposition of the prototype datapath: where the
/// <2 µs actually goes (snoop → Out FIFO → mesh → In FIFO → EISA DMA).
fn stage_breakdown(shape: MeshShape) {
    banner("latency decomposition: per-stage breakdown (EISA prototype)");
    const WORDS: u64 = 64;
    let m = traced_burst(MachineConfig::prototype(shape), NodeId(15), WORDS);
    let tel = m.telemetry();
    assert_eq!(tel.records.len(), WORDS as usize, "every word must arrive");
    let mut sum = [SimDuration::ZERO; 5];
    for rec in &tel.records {
        let stages = [rec.out_fifo(), rec.mesh(), rec.in_fifo(), rec.dma(), rec.end_to_end()];
        for (acc, s) in sum.iter_mut().zip(stages) {
            *acc += s;
        }
        assert_eq!(
            rec.out_fifo() + rec.mesh() + rec.in_fifo() + rec.dma(),
            rec.end_to_end(),
            "per-stage latencies must sum to the end-to-end latency"
        );
    }
    let e2e_total = sum[4];
    let mut t = Table::new(vec!["stage", "mean", "p50", "p95", "p99", "share"]);
    let pct = |h: &shrimp_sim::Histogram| {
        (
            fmt_us(h.mean().unwrap_or(0.0) / 1e6),
            fmt_us(h.p50().unwrap_or(0) as f64 / 1e6),
            fmt_us(h.p95().unwrap_or(0) as f64 / 1e6),
            fmt_us(h.p99().unwrap_or(0) as f64 / 1e6),
        )
    };
    for (name, hist, total) in [
        ("snoop -> Out FIFO", &tel.out_fifo, sum[0]),
        ("mesh transit", &tel.mesh, sum[1]),
        ("In FIFO + EISA arb", &tel.in_fifo, sum[2]),
        ("DMA burst", &tel.dma, sum[3]),
        ("end-to-end", &tel.e2e, sum[4]),
    ] {
        let (mean, p50, p95, p99) = pct(hist);
        let share = 100.0 * total.as_picos() as f64 / e2e_total.as_picos() as f64;
        t.row(vec![
            name.into(),
            mean,
            p50,
            p95,
            p99,
            format!("{share:.1}%"),
        ]);
    }
    t.print();
    println!("\nstage sums equal the end-to-end latency for every packet (checked)");
    write_metrics("latency", &m.metrics_snapshot());
}

fn main() {
    banner("Section 5.1: automatic-update latency (single-write)");
    let shape = MeshShape::new(4, 4);

    let mut t = Table::new(vec![
        "destination",
        "hops",
        "EISA prototype",
        "next generation",
    ]);
    // Nearest neighbor, mid-mesh, and the far corner of the 4x4 mesh.
    for dst in [1u16, 5, 10, 15] {
        let hops = shape.hops(NodeId(0), NodeId(dst));
        let proto = one_word_latency(MachineConfig::prototype(shape), NodeId(dst));
        let next = one_word_latency(MachineConfig::next_generation(shape), NodeId(dst));
        t.row(vec![
            format!("node {dst}"),
            hops.to_string(),
            fmt_us(proto),
            fmt_us(next),
        ]);
    }
    t.print();

    let worst_proto = one_word_latency(MachineConfig::prototype(shape), NodeId(15));
    let worst_next = one_word_latency(MachineConfig::next_generation(shape), NodeId(15));
    println!();
    println!(
        "paper: <2 us on the 16-node EISA prototype   -> measured worst case {}",
        fmt_us(worst_proto)
    );
    println!(
        "paper: <1 us on the next implementation      -> measured worst case {}",
        fmt_us(worst_next)
    );
    assert!(worst_proto < 2.0, "prototype must stay under 2 us");
    assert!(worst_next < 1.0, "next generation must stay under 1 us");
    println!("\nboth envelopes hold");

    stage_breakdown(shape);
}
