//! Backplane characterization (extension, not a paper table): delivered
//! throughput and latency for classic traffic patterns on the 4×4
//! Paragon-style mesh, with a bounded injection queue per node.
//!
//! ```text
//! cargo run -p shrimp-bench --bin netchar
//! ```

use std::collections::VecDeque;

use shrimp_bench::workloads::TrafficPattern;
use shrimp_bench::{banner, fmt_us, metric_key, write_metrics, Table};
use shrimp_mesh::{MeshConfig, MeshNetwork, MeshPacket, MeshShape};
use shrimp_sim::{SimDuration, SimRng, SimTime};

const PACKET_BYTES: usize = 128;
const ROUNDS: usize = 60;
const QUEUE_CAP: usize = 4;

struct Outcome {
    offered: u64,
    refused: u64,
    delivered: u64,
    mean_latency_us: f64,
    max_latency_us: f64,
}

/// Runs `ROUNDS` injection rounds of a pattern, draining continuously.
/// Each node owns a bounded software injection queue; offers beyond it
/// are refused (and counted), as a finite Outgoing FIFO would.
fn run(shape: MeshShape, pattern: TrafficPattern, interval: SimDuration, seed: u64) -> Outcome {
    let mut net = MeshNetwork::new(MeshConfig::paragon(shape));
    let mut rng = SimRng::seed_from(seed);
    let mut queues: Vec<VecDeque<MeshPacket>> =
        (0..shape.nodes()).map(|_| VecDeque::new()).collect();
    let mut now = SimTime::ZERO;
    let mut offered = 0u64;
    let mut refused = 0u64;

    let pump = |net: &mut MeshNetwork, queues: &mut Vec<VecDeque<MeshPacket>>, t: SimTime| {
        net.advance(t);
        for node in shape.iter_nodes() {
            while net.eject(node).is_some() {}
            while let Some(p) = queues[node.0 as usize].pop_front() {
                if let Err(refused) = net.try_inject(t.max(net.now()), p) {
                    queues[node.0 as usize].push_front(refused);
                    break;
                }
            }
        }
    };

    for _ in 0..ROUNDS {
        for src in shape.iter_nodes() {
            if let Some(dst) = pattern.destination(shape, src, &mut rng) {
                offered += 1;
                if queues[src.0 as usize].len() >= QUEUE_CAP {
                    refused += 1;
                } else {
                    queues[src.0 as usize].push_back(MeshPacket::new(
                        src,
                        dst,
                        vec![0u8; PACKET_BYTES],
                    ));
                }
            }
        }
        pump(&mut net, &mut queues, now);
        now += interval;
        if std::env::var_os("NETCHAR_DEBUG").is_some() {
            eprintln!("round done, now={now} in_flight={} idle={}", net.in_flight(), net.is_idle());
        }
    }
    // Drain the tail.
    let mut drain_iters = 0u64;
    while queues.iter().any(|q| !q.is_empty()) || !net.is_idle() {
        drain_iters += 1;
        if std::env::var_os("NETCHAR_DEBUG").is_some() && drain_iters.is_multiple_of(1000) {
            eprintln!("drain iter {drain_iters}: in_flight={} queued={} now={now}", net.in_flight(), queues.iter().map(|q| q.len()).sum::<usize>());
        }
        let t = net.next_event_time().unwrap_or(now).max(now);
        pump(&mut net, &mut queues, t);
        now = t;
        if net.next_event_time().is_none() {
            // Only ejection-blocked state remains; pump once more at now.
            pump(&mut net, &mut queues, now);
            if net.is_idle() && queues.iter().all(|q| q.is_empty()) {
                break;
            }
            now += interval;
        }
    }
    let stats = net.stats();
    Outcome {
        offered,
        refused,
        delivered: stats.packets_ejected,
        mean_latency_us: stats.transit_latency.mean().unwrap_or(0.0) / 1e6,
        max_latency_us: stats.transit_latency.max().unwrap_or(0) as f64 / 1e6,
    }
}

fn main() {
    banner("extension: mesh characterization under synthetic traffic");
    let shape = MeshShape::new(4, 4);

    let mut reg = shrimp_sim::MetricsRegistry::new();
    for interval_us in [4u64, 16] {
        println!(
            "offered load: one {PACKET_BYTES} B packet per node every {interval_us} us\n"
        );
        let mut t = Table::new(vec![
            "pattern",
            "offered",
            "refused",
            "delivered",
            "mean transit",
            "max transit",
        ]);
        let mut hotspot_mean = 0.0;
        let mut neighbor_mean = 0.0;
        for pattern in TrafficPattern::all(shape) {
            let o = run(shape, pattern, SimDuration::from_us(interval_us), 42);
            assert_eq!(
                o.delivered,
                o.offered - o.refused,
                "every accepted packet must be delivered ({})",
                pattern.name()
            );
            if matches!(pattern, TrafficPattern::HotSpot(_)) {
                hotspot_mean = o.mean_latency_us;
            }
            if pattern == TrafficPattern::NeighborEast {
                neighbor_mean = o.mean_latency_us;
            }
            t.row(vec![
                pattern.name(),
                o.offered.to_string(),
                o.refused.to_string(),
                o.delivered.to_string(),
                fmt_us(o.mean_latency_us),
                fmt_us(o.max_latency_us),
            ]);
            let p = format!("netchar.{interval_us}us.{}", metric_key(&pattern.name()));
            reg.set_counter(format!("{p}.offered"), o.offered);
            reg.set_counter(format!("{p}.refused"), o.refused);
            reg.set_counter(format!("{p}.delivered"), o.delivered);
            reg.set_gauge(format!("{p}.mean_transit_us"), o.mean_latency_us);
            reg.set_gauge(format!("{p}.max_transit_us"), o.max_latency_us);
        }
        t.print();
        println!();
        assert!(
            hotspot_mean > neighbor_mean,
            "hotspot contention must exceed neighbor traffic latency"
        );
    }
    write_metrics("netchar", &reg.snapshot());
    println!("hotspot traffic queues at the ejection port; neighbor traffic stays near the no-load");
    println!("latency — the backplane behaves like the dimension-order mesh the paper assumes");
}
