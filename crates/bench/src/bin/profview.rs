//! Engine self-profile viewer: runs any scenario DSL file with the
//! engine profiler and flight recorder on, then reports where the
//! simulator spent its wall clock, why lookahead windows closed, and
//! how the windows were shaped.
//!
//! ```text
//! cargo run --release -p shrimp-bench --bin profview -- \
//!     scenarios/mixed.shrimp [--workers N] [--metrics-out PATH] \
//!     [--overhead-budget PCT]
//! ```
//!
//! The deterministic window telemetry (`engine.windows.*`,
//! `engine.barrier.*`) is byte-identical for every worker count; the
//! wall-clock phase profile (`engine.profile.*`) is this run's
//! measurement and varies run to run. Both land in the metrics file
//! (default `BENCH_profview.metrics.json`).
//!
//! `--overhead-budget PCT` additionally re-runs the scenario with
//! profiling off and on (best of three ~250 ms batched regions each),
//! verifies the two runs are byte-identical in simulation outcome, and
//! fails when the profiled wall clock exceeds the unprofiled one by
//! more than PCT percent.

use shrimp_bench::{banner, write_metrics, Table};
use shrimp_sim::{BarrierCause, Histogram, MetricsRegistry};
use shrimp_workload::dsl::Scenario;
use shrimp_workload::gen::run_scenario_tuned;

struct Args {
    scenario: String,
    workers: Option<usize>,
    overhead_budget: Option<f64>,
}

fn parse_args() -> Args {
    let mut scenario = None;
    let mut workers = None;
    let mut overhead_budget = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics-out" => {
                args.next(); // consumed again by metrics_out_path
            }
            "--workers" => {
                let v = args.next().expect("--workers requires a count");
                workers = Some(v.parse().expect("--workers takes an integer"));
            }
            "--overhead-budget" => {
                let v = args.next().expect("--overhead-budget requires a percentage");
                overhead_budget = Some(v.parse().expect("--overhead-budget takes a number"));
            }
            other if !other.starts_with("--") && scenario.is_none() => {
                scenario = Some(other.to_string());
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: profview <scenario.shrimp> \
                     [--workers N] [--metrics-out PATH] [--overhead-budget PCT]"
                );
                std::process::exit(2);
            }
        }
    }
    let Some(scenario) = scenario else {
        eprintln!(
            "usage: profview <scenario.shrimp> [--workers N] [--metrics-out PATH] \
             [--overhead-budget PCT]"
        );
        std::process::exit(2);
    };
    Args { scenario, workers, overhead_budget }
}

fn hist_row(name: &str, h: &Histogram) -> Vec<String> {
    vec![
        name.to_string(),
        h.count().to_string(),
        h.min().map_or_else(|| "-".into(), |v| v.to_string()),
        h.p50().map_or_else(|| "-".into(), |v| v.to_string()),
        h.p95().map_or_else(|| "-".into(), |v| v.to_string()),
        h.p99().map_or_else(|| "-".into(), |v| v.to_string()),
        h.max().map_or_else(|| "-".into(), |v| v.to_string()),
    ]
}

/// Best-of-three wall clock over timed regions of `iters` back-to-back
/// scenario runs each. A single short scenario is scheduler-noise all
/// the way down; batching runs into ~quarter-second regions and taking
/// the minimum region gives a stable overhead ratio.
fn best_wall(
    sc: &Scenario,
    workers: Option<usize>,
    profile: bool,
    iters: usize,
) -> (std::time::Duration, u64) {
    let mut best = std::time::Duration::MAX;
    let mut hash = 0;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            let (r, _) = run_scenario_tuned(sc, workers, |cfg| {
                cfg.telemetry.profile = profile;
            })
            .expect("scenario completes");
            hash = r.delivery_hash;
        }
        best = best.min(t0.elapsed());
    }
    (best, hash)
}

fn main() {
    let args = parse_args();
    let text = std::fs::read_to_string(&args.scenario)
        .unwrap_or_else(|e| panic!("read {}: {e}", args.scenario));
    let sc = Scenario::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", args.scenario));

    banner(format!("Engine profile: scenario `{}`", sc.name));
    let start = std::time::Instant::now();
    let (report, machine) = run_scenario_tuned(&sc, args.workers, |cfg| {
        cfg.telemetry.profile = true;
    })
    .expect("scenario completes");
    let wall = start.elapsed();

    println!(
        "sessions={} deliveries={} events={} sim_time={:.3} ms wall={wall:.2?} workers={}\n",
        report.sessions_completed,
        report.deliveries,
        report.events_processed,
        report.final_time_ps as f64 / 1e9,
        machine.config().workers,
    );

    // Why windows closed — the deterministic barrier-cause breakdown.
    let ws = machine.window_stats();
    let total = ws.total_closed().max(1);
    let mut causes = Table::new(vec!["barrier cause", "windows", "share"]);
    for cause in BarrierCause::ALL {
        let n = ws.closes(cause);
        causes.row(vec![
            cause.name().into(),
            n.to_string(),
            format!("{:.1}%", n as f64 * 100.0 / total as f64),
        ]);
    }
    causes.row(vec!["total".into(), ws.total_closed().to_string(), "100.0%".into()]);
    causes.print();

    // Window shape.
    let mut shape = Table::new(vec!["window shape", "count", "min", "p50", "p95", "p99", "max"]);
    shape.row(hist_row("depth (events)", &ws.depth));
    shape.row(hist_row("participants", &ws.participants));
    shape.row(hist_row("slice events", &ws.slice_events));
    println!();
    shape.print();

    // Wall-clock phase attribution.
    println!();
    let profile = machine.profile().expect("profiler was enabled");
    print!("{}", profile.render());

    let fr = machine.flight_recorder();
    println!(
        "\nflight recorder: {} events recorded, {} retained ({} per node ring)",
        fr.recorded(),
        fr.dump().len(),
        fr.capacity(),
    );

    // Metrics file: the report's scalars, the live window histograms,
    // and this run's wall-clock phase profile.
    let mut reg = MetricsRegistry::new();
    for (name, value) in report.metrics.entries() {
        match value {
            shrimp_sim::MetricValue::Counter(v) => reg.set_counter(name.to_string(), *v),
            shrimp_sim::MetricValue::Gauge(v) => reg.set_gauge(name.to_string(), *v),
            shrimp_sim::MetricValue::Histogram(_) => {}
        }
    }
    ws.register(&mut reg);
    profile.register(&mut reg);
    write_metrics("profview", &reg.snapshot());

    if let Some(budget) = args.overhead_budget {
        banner(format!("Overhead budget: profiling must cost <= {budget}%"));
        // Size regions to ~250 ms using the wall clock of the profiled
        // run above, so short scenarios get enough repetitions to
        // average out scheduler noise.
        let iters = ((0.25 / wall.as_secs_f64().max(1e-4)).ceil() as usize).clamp(1, 200);
        let (off, hash_off) = best_wall(&sc, args.workers, false, iters);
        let (on, hash_on) = best_wall(&sc, args.workers, true, iters);
        assert_eq!(
            hash_off, hash_on,
            "profiling perturbed the simulation (delivery hash drifted)"
        );
        let overhead = (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
        println!(
            "best-of-3 regions of {iters} runs: profile off {off:.2?}, on {on:.2?} \
             — overhead {overhead:+.2}%"
        );
        if overhead > budget {
            eprintln!("FAIL: profiling overhead {overhead:.2}% exceeds budget {budget}%");
            std::process::exit(1);
        }
        println!("within budget");
    }
}
