//! Charts **per-session latency and aggregate goodput vs. session
//! count** for the closed-loop mixed workload: at each scale the
//! generator keeps 64 users in flight (or fewer, at the small end) and
//! runs the four session kinds in the mixed10k proportions — 40% RPC,
//! 20% streaming, 10% fan-out, 30% DSM. Results are printed and written
//! to `BENCH_sessions.metrics.json` in the `shrimp.metrics.v1` schema.
//!
//! ```text
//! cargo run --release -p shrimp-bench --bin sessions [-- --smoke]
//! ```
//!
//! `--smoke` runs a two-point sweep small enough for CI.

use shrimp_bench::{banner, fmt_rate, fmt_us, write_metrics, Table};
use shrimp_sim::MetricsRegistry;
use shrimp_workload::dsl::Scenario;
use shrimp_workload::run_scenario;

/// A mixed scenario with `total` sessions in the mixed10k proportions.
fn mixed(total: u32) -> Scenario {
    let rpc = total * 4 / 10;
    let stream = total * 2 / 10;
    let fanout = total / 10;
    let dsm = total - rpc - stream - fanout;
    let users = (total / 4).clamp(4, 64);
    let text = format!(
        "scenario sessions_{total}\n\
         mesh 4x4\n\
         seed 777\n\
         pages 768\n\
         users {users}\n\
         session rpc count={rpc} src=any dst=any requests=3 request=256 response=512 think=1us..20us server=1us..8us\n\
         session stream count={stream} src=any dst=any pages=2 gap=1us..6us\n\
         session fanout count={fanout} src=any leaves=3 rounds=2 bytes=512 think=2us..10us\n\
         session dsm count={dsm} src=any dst=any pages=2 ops=4 write=32 think=1us..8us\n"
    );
    Scenario::parse(&text).expect("generated scenario is valid")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner("Closed-loop sessions: per-session latency and goodput vs. session count");

    let points: &[u32] = if smoke { &[32, 128] } else { &[64, 256, 1024, 4096] };
    let mut t = Table::new(vec![
        "sessions",
        "users",
        "deliveries",
        "goodput",
        "p50",
        "p95",
        "p99",
        "wall",
    ]);
    let mut reg = MetricsRegistry::new();
    for &n in points {
        let sc = mixed(n);
        let start = std::time::Instant::now();
        let r = run_scenario(&sc).expect("scenario completes");
        let wall = start.elapsed();
        assert_eq!(r.sessions_completed, sc.total_sessions());
        let d = r
            .metrics
            .histogram("sessions.duration")
            .expect("duration histogram populated");
        let goodput =
            r.goodput_bytes as f64 / (r.final_time_ps as f64 / 1e12);
        t.row(vec![
            n.to_string(),
            sc.users.to_string(),
            r.deliveries.to_string(),
            fmt_rate(goodput),
            fmt_us(d.p50 as f64 / 1e6),
            fmt_us(d.p95 as f64 / 1e6),
            fmt_us(d.p99 as f64 / 1e6),
            format!("{wall:.2?}"),
        ]);
        let p = format!("sessions.{n}");
        reg.set_counter(format!("{p}.completed"), r.sessions_completed);
        reg.set_counter(format!("{p}.deliveries"), r.deliveries);
        reg.set_counter(format!("{p}.goodput_bytes"), r.goodput_bytes);
        reg.set_gauge(format!("{p}.goodput_bytes_per_s"), goodput);
        reg.set_counter(format!("{p}.duration_p50_ps"), d.p50);
        reg.set_counter(format!("{p}.duration_p95_ps"), d.p95);
        reg.set_counter(format!("{p}.duration_p99_ps"), d.p99);
        if let Some(op) = r.metrics.histogram("sessions.rpc.op_latency") {
            reg.set_counter(format!("{p}.rpc_op_p50_ps"), op.p50);
            reg.set_counter(format!("{p}.rpc_op_p99_ps"), op.p99);
        }
        reg.set_counter(format!("{p}.delivery_hash"), r.delivery_hash);
    }
    t.print();

    println!(
        "\nclosed loop: a session opens only when a user slot frees, so \
         the offered load holds steady while total work scales"
    );
    write_metrics("sessions", &reg.snapshot());
}
