//! Simulator throughput benchmark: wall-clock events/sec and
//! simulated-bytes/sec on the paper's bandwidth and latency workloads.
//!
//! Unlike the other bench binaries (which regenerate *paper* numbers),
//! this one measures the *simulator itself*, so perf PRs have a tracked
//! trajectory. Results are printed and written to `BENCH_simspeed.json`
//! in the current directory.
//!
//! ```text
//! cargo run --release -p shrimp-bench --bin simspeed
//! cargo run --release -p shrimp-bench --features alloc-stats --bin simspeed
//! cargo run --release -p shrimp-bench --bin simspeed -- --smoke
//! ```
//!
//! With `--features alloc-stats` a counting global allocator is
//! installed and every sample also reports heap allocations per
//! simulated event — the number the packet arena is meant to drive
//! toward zero on streaming workloads.
//!
//! `--smoke` runs a reduced 32×32-mesh scaling check meant for CI: the
//! 1024-node ring at workers 1 and 8, asserting the delivery hash and
//! event count are bit-identical and that single-worker throughput
//! stays above a lenient floor.

use std::time::Instant;

use shrimp_bench::{alloc_stats, banner, write_metrics};
use shrimp_core::{DeliveryRecord, Machine, MachineConfig, MapRequest};
use shrimp_sim::{BarrierCause, WindowStats};
use shrimp_cpu::Reg;
use shrimp_mem::PAGE_SIZE;
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::UpdatePolicy;

/// Per-workload measurement.
struct Sample {
    name: &'static str,
    wall_seconds: f64,
    events: u64,
    sim_bytes: u64,
    /// Heap allocations during the measured region (0 unless the
    /// `alloc-stats` feature installed the counting allocator).
    allocs: u64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }
    fn sim_bytes_per_sec(&self) -> f64 {
        self.sim_bytes as f64 / self.wall_seconds
    }
    fn allocs_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.allocs as f64 / self.events as f64
        }
    }
}

/// FNV-1a over every field of every delivery record — one number that
/// captures the exact content *and order* of the delivery log (the same
/// fingerprint the determinism suite pins).
fn delivery_hash(deliveries: &[DeliveryRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in deliveries {
        for v in [
            d.time.as_picos(),
            d.node.0 as u64,
            d.dst_addr.raw(),
            d.len,
            d.src.0 as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

struct Sender {
    m: Machine,
    s: shrimp_os::Pid,
    data_va: shrimp_mem::VirtAddr,
    cmd_delta: u32,
}

/// Two-node machine with `pages` mapped from node 0 to node 1 under
/// `policy` (same shape as the §5.1 bandwidth experiment).
fn sender_setup(cfg: MachineConfig, pages: u64, policy: UpdatePolicy) -> Sender {
    let snd = NodeId(0);
    let rcv = NodeId(1);
    let mut m = Machine::new(cfg);
    let s = m.create_process(snd);
    let r = m.create_process(rcv);
    let data_va = m.alloc_pages(snd, s, pages).expect("alloc send");
    let rcv_va = m.alloc_pages(rcv, r, pages).expect("alloc recv");
    let export = m
        .export_buffer(rcv, r, rcv_va, pages, Some(snd))
        .expect("export");
    m.map(MapRequest {
        src_node: snd,
        src_pid: s,
        src_va: data_va,
        dst_node: rcv,
        export,
        dst_offset: 0,
        len: pages * PAGE_SIZE,
        policy,
    })
    .expect("map");
    let mut cmd_delta = 0u32;
    for p in 0..pages {
        let cmd = m
            .map_command_page(snd, s, data_va.add(p * PAGE_SIZE))
            .expect("command page");
        if p == 0 {
            cmd_delta = (cmd.raw() - data_va.raw()) as u32;
        }
    }
    let payload: Vec<u8> = (0..pages * PAGE_SIZE).map(|i| (i % 253) as u8).collect();
    m.poke(snd, s, data_va, &payload).expect("fill");
    m.run_until_idle().expect("quiesce after fill");
    m.clear_deliveries();
    Sender {
        m,
        s,
        data_va,
        cmd_delta,
    }
}

/// Deliberate-update streaming of `bytes` (DMA bandwidth workload).
fn bandwidth_workload(bytes: u64) -> Sample {
    let mut cfg = MachineConfig::prototype(MeshShape::new(2, 1));
    // The trajectory samples always measure the sequential engine; the
    // scaling sweep below covers the parallel one.
    cfg.workers = 1;
    let pages = bytes.div_ceil(PAGE_SIZE);
    // Paper configs keep nodes at 1 MB to stay test-sized; this workload
    // streams more, so widen the physical memory (data + command pages).
    cfg.pages_per_node = 4 * pages.max(256);
    let mut w = sender_setup(cfg, pages, UpdatePolicy::Deliberate);
    let program = shrimp_core::msglib::deliberate_stream_program();
    w.m.load_program(NodeId(0), w.s, program);
    w.m.set_reg(NodeId(0), w.s, Reg::R5, w.data_va.raw() as u32);
    w.m.set_reg(NodeId(0), w.s, Reg::R7, w.cmd_delta);
    w.m.set_reg(NodeId(0), w.s, Reg::R3, pages as u32);
    w.m.set_reg(NodeId(0), w.s, Reg::R2, (PAGE_SIZE / 4) as u32);
    w.m.set_reg(NodeId(0), w.s, Reg::R4, (PAGE_SIZE / 4) as u32);

    let ev0 = w.m.events_processed();
    let a0 = alloc_stats::allocations();
    let wall = Instant::now();
    w.m.start(NodeId(0), w.s);
    w.m.run_until_idle().expect("stream must drain");
    let wall_seconds = wall.elapsed().as_secs_f64();
    let allocs = alloc_stats::allocations() - a0;
    let delivered: u64 = w.m.deliveries().iter().map(|d| d.len).sum();
    assert_eq!(delivered, pages * PAGE_SIZE, "every byte must arrive");
    Sample {
        name: "bandwidth",
        wall_seconds,
        events: w.m.events_processed() - ev0,
        sim_bytes: delivered,
        allocs,
    }
}

/// Blocked-write automatic-update streaming (snoop-path workload: every
/// word crosses the snoop, merge and packetization path).
fn blocked_write_workload(bytes: u64) -> Sample {
    let mut cfg = MachineConfig::prototype(MeshShape::new(2, 1));
    cfg.workers = 1;
    let pages = bytes.div_ceil(PAGE_SIZE);
    cfg.pages_per_node = 4 * pages.max(256);
    let mut w = sender_setup(cfg, pages, UpdatePolicy::AutomaticBlocked);
    let data: Vec<u8> = (0..bytes).map(|i| (i % 241) as u8).collect();

    let ev0 = w.m.events_processed();
    let a0 = alloc_stats::allocations();
    let wall = Instant::now();
    w.m.poke(NodeId(0), w.s, w.data_va, &data).expect("stores");
    w.m.run_until_idle().expect("stream must drain");
    let wall_seconds = wall.elapsed().as_secs_f64();
    let allocs = alloc_stats::allocations() - a0;
    let delivered: u64 = w.m.deliveries().iter().map(|d| d.len).sum();
    assert_eq!(delivered, bytes, "every byte must arrive");
    Sample {
        name: "blocked_write",
        wall_seconds,
        events: w.m.events_processed() - ev0,
        sim_bytes: delivered,
        allocs,
    }
}

/// Repeated single-word automatic updates across a 4×4 mesh (latency
/// workload: event-loop and per-packet overhead dominated).
fn latency_workload(rounds: u64) -> Sample {
    let mut cfg = MachineConfig::prototype(MeshShape::new(4, 4));
    cfg.workers = 1;
    let src_node = NodeId(0);
    let dst_node = NodeId(15);
    let mut m = Machine::new(cfg);
    let s = m.create_process(src_node);
    let r = m.create_process(dst_node);
    let src = m.alloc_pages(src_node, s, 1).expect("alloc");
    let rcv = m.alloc_pages(dst_node, r, 1).expect("alloc");
    let export = m
        .export_buffer(dst_node, r, rcv, 1, Some(src_node))
        .expect("export");
    m.map(MapRequest {
        src_node,
        src_pid: s,
        src_va: src,
        dst_node,
        export,
        dst_offset: 0,
        len: PAGE_SIZE,
        policy: UpdatePolicy::AutomaticSingle,
    })
    .expect("map");

    let ev0 = m.events_processed();
    let a0 = alloc_stats::allocations();
    let wall = Instant::now();
    for i in 0..rounds {
        let off = (i % (PAGE_SIZE / 4)) * 4;
        m.poke(src_node, s, src.add(off), &(i as u32).to_le_bytes())
            .expect("store");
        m.run_until_idle().expect("quiesce");
    }
    let wall_seconds = wall.elapsed().as_secs_f64();
    let allocs = alloc_stats::allocations() - a0;
    let delivered: u64 = m.deliveries().iter().map(|d| d.len).sum();
    assert_eq!(delivered, rounds * 4, "every word must arrive");
    Sample {
        name: "latency",
        wall_seconds,
        events: m.events_processed() - ev0,
        sim_bytes: delivered,
        allocs,
    }
}

/// One leg of the worker-scaling sweep: a fully symmetric ring stream
/// over **every node of a `dim`×`dim` mesh**. Each node runs the
/// deliberate-update stream program to its ring successor, all programs
/// started at the same instant, so eligible events land on shared
/// lookahead windows across distinct nodes — the shape the conservative
/// parallel engine batches. Returns the measurement, the number of
/// window batches the engine shipped, the delivery-log fingerprint for
/// cross-worker-count comparison, and the window telemetry (window
/// formation runs at every worker count, so the barrier-cause counters
/// must also be worker-invariant).
fn scaling_workload(dim: u16, workers: usize, pages: u64) -> (Sample, u64, u64, WindowStats) {
    let n = dim as usize * dim as usize;
    let mut cfg = MachineConfig::prototype(MeshShape::new(dim, dim));
    cfg.workers = workers;
    // Each node only touches `2 × pages` data pages plus kernel
    // metadata; on a 1024-node mesh the paper default of 1 MB/node
    // would cost a gigabyte of host RAM, so size memory to the workload.
    cfg.pages_per_node = (8 * pages).max(32);
    let mut m = Machine::new(cfg);

    let pids: Vec<_> = (0..n).map(|i| m.create_process(NodeId(i as u16))).collect();
    let mut exports = Vec::new();
    for (i, &pid) in pids.iter().enumerate() {
        let dst_va = m.alloc_pages(NodeId(i as u16), pid, pages).expect("alloc dst");
        let pred = NodeId(((i + n - 1) % n) as u16);
        let export = m
            .export_buffer(NodeId(i as u16), pid, dst_va, pages, Some(pred))
            .expect("export");
        exports.push(export);
    }
    let mut srcs = Vec::new();
    for (i, &pid) in pids.iter().enumerate() {
        let succ = (i + 1) % n;
        let src_va = m.alloc_pages(NodeId(i as u16), pid, pages).expect("alloc src");
        m.map(MapRequest {
            src_node: NodeId(i as u16),
            src_pid: pid,
            src_va,
            dst_node: NodeId(succ as u16),
            export: exports[succ],
            dst_offset: 0,
            len: pages * PAGE_SIZE,
            policy: UpdatePolicy::Deliberate,
        })
        .expect("map ring edge");
        let mut cmd_delta = 0u32;
        for p in 0..pages {
            let cmd = m
                .map_command_page(NodeId(i as u16), pid, src_va.add(p * PAGE_SIZE))
                .expect("command page");
            if p == 0 {
                cmd_delta = (cmd.raw() - src_va.raw()) as u32;
            }
        }
        let payload: Vec<u8> = (0..pages * PAGE_SIZE)
            .map(|b| ((b as usize * 7 + i) % 251) as u8)
            .collect();
        m.poke(NodeId(i as u16), pid, src_va, &payload).expect("fill");
        srcs.push((src_va, cmd_delta));
    }
    m.run_until_idle().expect("quiesce after setup");
    m.clear_deliveries();

    let program = shrimp_core::msglib::deliberate_stream_program();
    for (i, (&pid, &(src_va, cmd_delta))) in pids.iter().zip(&srcs).enumerate() {
        let node = NodeId(i as u16);
        m.load_program(node, pid, program.clone());
        m.set_reg(node, pid, Reg::R5, src_va.raw() as u32);
        m.set_reg(node, pid, Reg::R7, cmd_delta);
        m.set_reg(node, pid, Reg::R3, pages as u32);
        m.set_reg(node, pid, Reg::R2, (PAGE_SIZE / 4) as u32);
        m.set_reg(node, pid, Reg::R4, (PAGE_SIZE / 4) as u32);
    }

    let ev0 = m.events_processed();
    let a0 = alloc_stats::allocations();
    let wall = Instant::now();
    for (i, &pid) in pids.iter().enumerate() {
        m.start(NodeId(i as u16), pid);
    }
    m.run_until_idle().expect("ring must drain");
    let wall_seconds = wall.elapsed().as_secs_f64();
    let allocs = alloc_stats::allocations() - a0;
    let delivered: u64 = m.deliveries().iter().map(|d| d.len).sum();
    assert_eq!(delivered, n as u64 * pages * PAGE_SIZE, "every byte must arrive");
    let name = match workers {
        1 => "scaling1k_w1",
        2 => "scaling1k_w2",
        4 => "scaling1k_w4",
        8 => "scaling1k_w8",
        16 => "scaling1k_w16",
        _ => "scaling1k",
    };
    let hash = delivery_hash(m.deliveries());
    (
        Sample {
            name,
            wall_seconds,
            events: m.events_processed() - ev0,
            sim_bytes: delivered,
            allocs,
        },
        m.parallel_batches(),
        hash,
        m.window_stats().clone(),
    )
}

fn json_field(s: &Sample) -> String {
    format!(
        concat!(
            "  \"{}\": {{\n",
            "    \"wall_seconds\": {:.6},\n",
            "    \"events\": {},\n",
            "    \"events_per_sec\": {:.1},\n",
            "    \"sim_bytes\": {},\n",
            "    \"sim_bytes_per_sec\": {:.1},\n",
            "    \"allocs_per_event\": {:.4}\n",
            "  }}"
        ),
        s.name,
        s.wall_seconds,
        s.events,
        s.events_per_sec(),
        s.sim_bytes,
        s.sim_bytes_per_sec(),
        s.allocs_per_event(),
    )
}

/// CI smoke: the 32×32 ring at workers 1 and 8 must produce the same
/// delivery fingerprint and event count, and single-worker throughput
/// must clear a floor lenient enough for noisy shared runners.
fn smoke() {
    banner("simspeed --smoke: 32x32 scaling determinism check");
    const FLOOR_EVENTS_PER_SEC: f64 = 25_000.0;
    let (s1, b1, h1, w1) = scaling_workload(32, 1, 2);
    let (s8, b8, h8, w8) = scaling_workload(32, 8, 2);
    for s in [&s1, &s8] {
        println!(
            "{:<14} {:>10.4}s {:>12} events {:>14.0} ev/s",
            s.name,
            s.wall_seconds,
            s.events,
            s.events_per_sec(),
        );
    }
    println!("windows shipped: workers=1 {b1}, workers=8 {b8}");
    assert_eq!(h1, h8, "delivery hash diverged between workers=1 and workers=8");
    assert_eq!(s1.events, s8.events, "event count diverged between worker counts");

    // The barrier-cause breakdown is deterministic window telemetry:
    // it must be worker-invariant, it must sum to the total windows
    // closed, and a mesh-saturating ring must show mesh-event clamps.
    println!("\nbarrier causes (worker-invariant):");
    let mut sum = 0;
    for cause in BarrierCause::ALL {
        assert_eq!(
            w1.closes(cause),
            w8.closes(cause),
            "engine.barrier.{} diverged between worker counts",
            cause.name(),
        );
        sum += w1.closes(cause);
        println!("  engine.barrier.{:<18} {}", cause.name(), w1.closes(cause));
    }
    assert_eq!(sum, w1.total_closed(), "per-cause counters must sum to windows closed");
    assert!(
        w1.closes(BarrierCause::MeshEventClamp) > 0,
        "a mesh-heavy ring must clamp windows on pending mesh events"
    );

    assert!(
        s1.events_per_sec() >= FLOOR_EVENTS_PER_SEC,
        "workers=1 throughput {:.0} ev/s fell below the {FLOOR_EVENTS_PER_SEC} floor",
        s1.events_per_sec(),
    );
    println!("\nsmoke OK: hashes match, {} events, floor cleared", s1.events);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    banner("simspeed: simulator wall-clock throughput");
    if alloc_stats::ENABLED {
        println!("(alloc-stats on: allocs/event are real; wall clock is perturbed)\n");
    }

    // Warm up allocator and caches with a small run before measuring.
    let _ = bandwidth_workload(64 * PAGE_SIZE);

    let samples = [
        bandwidth_workload(4096 * PAGE_SIZE),
        blocked_write_workload(768 * PAGE_SIZE),
        latency_workload(20_000),
    ];

    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>12} {:>16} {:>10}",
        "workload", "wall s", "events", "events/s", "sim bytes", "sim bytes/s", "allocs/ev"
    );
    for s in &samples {
        println!(
            "{:<14} {:>10.4} {:>12} {:>14.0} {:>12} {:>16.0} {:>10.3}",
            s.name,
            s.wall_seconds,
            s.events,
            s.events_per_sec(),
            s.sim_bytes,
            s.sim_bytes_per_sec(),
            s.allocs_per_event(),
        );
    }

    // Worker-count scaling sweep: every node of a 32×32 mesh (1024
    // nodes) streaming to its ring successor. The event counts and
    // delivery fingerprints must agree across worker counts — the
    // parallel engine is bit-deterministic — so only wall clock may
    // differ.
    println!("\nscaling sweep (32x32 mesh, 1024-node ring, all nodes streaming):");
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>10} {:>10}",
        "workers", "wall s", "events", "events/s", "batches", "allocs/ev"
    );
    let sweep: Vec<(usize, Sample, u64, u64, WindowStats)> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|w| {
            let (s, batches, hash, stats) = scaling_workload(32, w, 2);
            (w, s, batches, hash, stats)
        })
        .collect();
    for (w, s, batches, hash, _) in &sweep {
        println!(
            "{:<10} {:>10.4} {:>12} {:>14.0} {:>10} {:>10.3}",
            w,
            s.wall_seconds,
            s.events,
            s.events_per_sec(),
            batches,
            s.allocs_per_event(),
        );
        assert_eq!(
            s.events, sweep[0].1.events,
            "worker count changed the event count — determinism broken"
        );
        assert_eq!(
            *hash, sweep[0].3,
            "worker count changed the delivery log — determinism broken"
        );
    }

    // Historical trajectory file, kept format-stable so perf PRs stay
    // comparable across revisions.
    let body = samples
        .iter()
        .chain(sweep.iter().map(|(_, s, _, _, _)| s))
        .map(json_field)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!("{{\n{body}\n}}\n");
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("\nwrote BENCH_simspeed.json");

    // The same numbers in the unified shrimp.metrics.v1 schema. Note the
    // workloads run with telemetry off (the default): this benchmark
    // tracks the simulator's raw speed.
    let mut reg = shrimp_sim::MetricsRegistry::new();
    for s in &samples {
        let p = format!("simspeed.{}", s.name);
        reg.set_gauge(format!("{p}.wall_seconds"), s.wall_seconds);
        reg.set_counter(format!("{p}.events"), s.events);
        reg.set_gauge(format!("{p}.events_per_sec"), s.events_per_sec());
        reg.set_counter(format!("{p}.sim_bytes"), s.sim_bytes);
        reg.set_gauge(format!("{p}.sim_bytes_per_sec"), s.sim_bytes_per_sec());
        reg.set_gauge(format!("{p}.allocs_per_event"), s.allocs_per_event());
    }
    for (w, s, batches, _, _) in &sweep {
        let p = format!("simspeed.scaling1k.workers{w}");
        reg.set_gauge(format!("{p}.wall_seconds"), s.wall_seconds);
        reg.set_counter(format!("{p}.events"), s.events);
        reg.set_gauge(format!("{p}.events_per_sec"), s.events_per_sec());
        reg.set_counter(format!("{p}.batches"), *batches);
        reg.set_gauge(format!("{p}.allocs_per_event"), s.allocs_per_event());
    }
    // The ring's barrier-cause breakdown — worker-invariant, so the
    // first sweep leg speaks for all of them (asserted in --smoke).
    sweep[0].4.register(&mut reg);
    write_metrics("simspeed", &reg.snapshot());
}
