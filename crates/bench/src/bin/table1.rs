//! Regenerates **Table 1** of the paper: software overhead (dynamic
//! user-level instruction counts) of the message-passing primitives.
//!
//! ```text
//! cargo run -p shrimp-bench --bin table1
//! ```

use shrimp_bench::{banner, metric_key, write_metrics, Table};
use shrimp_core::msglib;

fn main() {
    banner("Table 1: software overhead of message passing primitives");
    println!("paper column: instructions as (source + destination)");
    println!("measured: dynamic retired instructions on the simulated machine");
    println!("(copy-excluded where the paper excludes per-byte copy costs)\n");

    let rows = msglib::table1().expect("table 1 primitives must run");
    let mut t = Table::new(vec![
        "primitive",
        "paper",
        "measured",
        "raw (with copies)",
        "verified",
        "simulated time",
    ]);
    for row in &rows {
        let (ps, pr) = row.paper;
        let m = row.report.copy_excluded.unwrap_or(row.report.counts);
        t.row(vec![
            row.name.to_string(),
            format!("{} ({}+{})", ps + pr, ps, pr),
            format!("{} ({}+{})", m.total(), m.sender, m.receiver),
            format!(
                "{} ({}+{})",
                row.report.counts.total(),
                row.report.counts.sender,
                row.report.counts.receiver
            ),
            if row.report.verified { "yes" } else { "NO" }.to_string(),
            format!("{}", row.report.elapsed),
        ]);
    }
    t.print();

    let mut reg = shrimp_sim::MetricsRegistry::new();
    for row in &rows {
        let m = row.report.copy_excluded.unwrap_or(row.report.counts);
        let p = format!("table1.{}", metric_key(row.name));
        reg.set_counter(format!("{p}.sender_insns"), m.sender);
        reg.set_counter(format!("{p}.receiver_insns"), m.receiver);
        reg.set_counter(
            format!("{p}.elapsed_ps"),
            row.report.elapsed.as_picos(),
        );
    }
    write_metrics("table1", &reg.snapshot());

    println!(
        "\nNote: csend/crecv is our user-level implementation of the NX/2\n\
         semantics under the paper's restrictions; it is leaner than the\n\
         authors' (which measured 73+78) but the comparison that matters —\n\
         against NX/2's 222+261 kernel-path instructions — is reproduced\n\
         by `cargo run -p shrimp-bench --bin comparison`."
    );
}
