//! Records a fully-traced workload and exports it in the Chrome
//! trace-event format: load `shrimp.trace.json` at <https://ui.perfetto.dev>
//! (or `chrome://tracing`) to see every packet's snoop → Out FIFO → mesh
//! → In FIFO → DMA lifecycle on a per-node timeline.
//!
//! ```text
//! cargo run -p shrimp-bench --bin traceview
//! ```

use shrimp_bench::{banner, write_metrics};
use shrimp_core::{Machine, MachineConfig, MapRequest};
use shrimp_mem::PAGE_SIZE;
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::UpdatePolicy;
use shrimp_sim::{validate_chrome_json, TelemetryConfig};

const TRACE_PATH: &str = "shrimp.trace.json";

/// A small cross-traffic workload on a 2×2 mesh with full telemetry:
/// node 0 streams a page to node 3 (two hops) while node 1 sends
/// single words to node 2, so the trace shows concurrent lifecycles.
fn traced_workload() -> Machine {
    let mut cfg = MachineConfig::prototype(MeshShape::new(2, 2));
    cfg.telemetry = TelemetryConfig::full();
    let mut m = Machine::new(cfg);

    let channel = |m: &mut Machine, src: NodeId, dst: NodeId| {
        let s = m.create_process(src);
        let r = m.create_process(dst);
        let src_va = m.alloc_pages(src, s, 1).expect("alloc send");
        let rcv_va = m.alloc_pages(dst, r, 1).expect("alloc recv");
        let export = m
            .export_buffer(dst, r, rcv_va, 1, Some(src))
            .expect("export");
        m.map(MapRequest {
            src_node: src,
            src_pid: s,
            src_va,
            dst_node: dst,
            export,
            dst_offset: 0,
            len: PAGE_SIZE,
            policy: UpdatePolicy::AutomaticSingle,
        })
        .expect("map");
        (s, src_va)
    };

    let (p0, va0) = channel(&mut m, NodeId(0), NodeId(3));
    let (p1, va1) = channel(&mut m, NodeId(1), NodeId(2));

    for i in 0..24u64 {
        m.poke(NodeId(0), p0, va0.add((i * 4) % PAGE_SIZE), &(i as u32).to_le_bytes())
            .expect("store 0->3");
        if i % 3 == 0 {
            m.poke(NodeId(1), p1, va1.add((i * 4) % PAGE_SIZE), &(!i as u32).to_le_bytes())
                .expect("store 1->2");
        }
        m.run_until_idle().expect("quiesce");
    }
    m
}

fn main() {
    banner("traceview: Chrome trace-event export of a traced workload");

    let m = traced_workload();
    let json = m.export_chrome_trace();
    let events = validate_chrome_json(&json).expect("exported trace must validate");
    assert!(events > 0, "a traced workload must produce events");

    std::fs::write(TRACE_PATH, &json).expect("write trace file");
    println!("wrote {TRACE_PATH} ({events} events, {} bytes)", json.len());

    let deliveries = m.deliveries().len();
    let records = m.telemetry().records.len();
    assert_eq!(
        records, deliveries,
        "every delivery must carry a latency record"
    );
    println!("traced {deliveries} deliveries with {records} packet-lifecycle records");

    write_metrics("traceview", &m.metrics_snapshot());

    println!();
    println!("view it:");
    println!("  1. open https://ui.perfetto.dev (or chrome://tracing)");
    println!("  2. load {TRACE_PATH}");
    println!("  3. each simulated node is a process row; packet, DMA and FIFO");
    println!("     spans sit on its tracks with SimTime mapped to microseconds");
}
