//! Synthetic traffic patterns for backplane characterization.
//!
//! Not a paper experiment — an extension exercising the mesh substrate
//! the way the interconnect literature the paper builds on (Dally &
//! Seitz) characterizes routers: per-pattern throughput and latency
//! under offered load.

use shrimp_mesh::{MeshShape, NodeId};
use shrimp_sim::SimRng;

/// A spatial traffic pattern: who sends to whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every source picks an independent uniformly random destination
    /// (excluding itself).
    UniformRandom,
    /// Node (x, y) sends to node (y, x) — the classic adversarial
    /// pattern for dimension-order routing. Requires a square mesh.
    Transpose,
    /// Everyone sends to one node.
    HotSpot(NodeId),
    /// Node i sends to node (i + n/2) mod n ("tornado"-like shift).
    Shift,
    /// Nearest neighbor to the east (wrapping within the row).
    NeighborEast,
}

impl TrafficPattern {
    /// All patterns exercised by the characterization bench on a square
    /// mesh.
    pub fn all(shape: MeshShape) -> Vec<TrafficPattern> {
        vec![
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::HotSpot(NodeId(shape.nodes() / 2)),
            TrafficPattern::Shift,
            TrafficPattern::NeighborEast,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            TrafficPattern::UniformRandom => "uniform".into(),
            TrafficPattern::Transpose => "transpose".into(),
            TrafficPattern::HotSpot(n) => format!("hotspot({n})"),
            TrafficPattern::Shift => "shift".into(),
            TrafficPattern::NeighborEast => "neighbor".into(),
        }
    }

    /// The destination for `src` under this pattern, or `None` when the
    /// node stays silent this round (a hot-spot target does not send to
    /// itself).
    pub fn destination(
        &self,
        shape: MeshShape,
        src: NodeId,
        rng: &mut SimRng,
    ) -> Option<NodeId> {
        let n = shape.nodes();
        match *self {
            TrafficPattern::UniformRandom => {
                if n == 1 {
                    return None;
                }
                loop {
                    let d = NodeId(rng.gen_range(0..n));
                    if d != src {
                        return Some(d);
                    }
                }
            }
            TrafficPattern::Transpose => {
                let c = shape.coord_of(src);
                let t = shrimp_mesh::MeshCoord { x: c.y, y: c.x };
                let d = shape.id_at(t);
                (d != src).then_some(d)
            }
            TrafficPattern::HotSpot(target) => (src != target).then_some(target),
            TrafficPattern::Shift => {
                let d = NodeId((src.0 + n / 2) % n);
                (d != src).then_some(d)
            }
            TrafficPattern::NeighborEast => {
                let c = shape.coord_of(src);
                let d = shape.id_at(shrimp_mesh::MeshCoord {
                    x: (c.x + 1) % shape.width(),
                    y: c.y,
                });
                (d != src).then_some(d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> MeshShape {
        MeshShape::new(4, 4)
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let s = shape();
        let mut rng = SimRng::seed_from(1);
        // (1,2) = id 9 -> (2,1) = id 6.
        let d = TrafficPattern::Transpose
            .destination(s, NodeId(9), &mut rng)
            .unwrap();
        assert_eq!(d, NodeId(6));
        // Diagonal nodes stay silent.
        assert!(TrafficPattern::Transpose.destination(s, NodeId(5), &mut rng).is_none());
    }

    #[test]
    fn uniform_never_self() {
        let s = shape();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..200 {
            let d = TrafficPattern::UniformRandom
                .destination(s, NodeId(3), &mut rng)
                .unwrap();
            assert_ne!(d, NodeId(3));
            assert!(s.contains(d));
        }
    }

    #[test]
    fn hotspot_targets_one_node() {
        let s = shape();
        let mut rng = SimRng::seed_from(3);
        let p = TrafficPattern::HotSpot(NodeId(5));
        assert_eq!(p.destination(s, NodeId(0), &mut rng), Some(NodeId(5)));
        assert_eq!(p.destination(s, NodeId(5), &mut rng), None);
    }

    #[test]
    fn shift_and_neighbor_stay_on_mesh() {
        let s = shape();
        let mut rng = SimRng::seed_from(4);
        for src in s.iter_nodes() {
            for p in [TrafficPattern::Shift, TrafficPattern::NeighborEast] {
                if let Some(d) = p.destination(s, src, &mut rng) {
                    assert!(s.contains(d));
                    assert_ne!(d, src);
                }
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = TrafficPattern::all(shape()).iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
