//! Vendored subset of the `bytes` crate.
//!
//! The container this reproduction builds in has no network access to a
//! crates.io mirror, so the workspace carries the one abstraction it needs
//! from `bytes`: [`Bytes`], an immutable, reference-counted byte buffer
//! whose `clone()` is a pointer copy. The API below is a strict subset of
//! the real crate's `Bytes` so the workspace can switch to the upstream
//! package without source changes if a registry ever becomes reachable.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
///
/// Internally an `Arc<[u8]>` plus a sub-range, so `clone()` and
/// `slice()` are O(1) and never copy payload bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Creates a `Bytes` from a static slice (copies once; the upstream
    /// crate borrows, but the semantics observable here are identical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Creates a `Bytes` by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice of this buffer without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of bounds of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The underlying bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let end = b.len();
        Bytes {
            data: Arc::from(b),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes::copy_from_slice(&a)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(a: &[u8; N]) -> Self {
        Bytes::copy_from_slice(a)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mid = a.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert!(std::ptr::eq(mid.as_slice().as_ptr(), a.as_slice()[2..].as_ptr()));
        assert_eq!(a.slice(..).len(), 6);
        assert_eq!(a.slice(4..=5), Bytes::from(&[4u8, 5][..]));
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }

    #[test]
    fn empty_and_eq_forms() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(&b"abc"[..]);
        assert_eq!(b, b"abc".to_vec());
        assert_eq!(b, b"abc"[..]);
        assert_eq!(b.len(), 3);
    }
}
