//! Collective operations built on mapped communication.
//!
//! The paper's model is connection-oriented: a mapping joins one sender
//! to one receiver, and a page can be split between at most two
//! mappings (§3.2), so one-to-many primitives are *library* work layered
//! on point-to-point mappings — exactly the customized user-level
//! buffering strategies §7 argues the interface enables. This module
//! provides the two collectives every multicomputer program in the
//! paper's intro needs:
//!
//! * [`Barrier`] — hub-and-spoke with generation numbers: each
//!   participant's arrival word is mapped out to a slot on the hub; the
//!   hub's release word is mapped out to every participant.
//! * [`Broadcast`] — a binary distribution tree with software forwarding
//!   (interior nodes re-store received data towards their children),
//!   because the NIC does not re-snoop incoming DMA writes.

use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_mesh::NodeId;
use shrimp_nic::UpdatePolicy;
use shrimp_os::Pid;

use crate::error::MachineError;
use crate::machine::{Machine, MapRequest};

/// One participant of a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Member {
    /// The node the process runs on.
    pub node: NodeId,
    /// The process.
    pub pid: Pid,
}

fn map4(
    m: &mut Machine,
    src: Member,
    src_va: VirtAddr,
    dst: Member,
    export: shrimp_os::ExportId,
    dst_offset: u64,
    len: u64,
) -> Result<(), MachineError> {
    m.map(MapRequest {
        src_node: src.node,
        src_pid: src.pid,
        src_va,
        dst_node: dst.node,
        export,
        dst_offset,
        len,
        policy: UpdatePolicy::AutomaticSingle,
    })?;
    let _ = dst;
    Ok(())
}

/// A hub-and-spoke barrier over automatic-update mappings.
///
/// # Examples
///
/// ```
/// use shrimp_core::{Machine, MachineConfig};
/// use shrimp_core::collective::{Barrier, Member};
/// use shrimp_mesh::{MeshShape, NodeId};
///
/// let mut m = Machine::new(MachineConfig::prototype(MeshShape::new(2, 2)));
/// let members: Vec<Member> = (0..4u16)
///     .map(|n| Member { node: NodeId(n), pid: m.create_process(NodeId(n)) })
///     .collect();
/// let mut barrier = Barrier::establish(&mut m, &members)?;
/// barrier.round(&mut m)?; // everyone arrives, everyone is released
/// barrier.round(&mut m)?;
/// assert_eq!(barrier.generation(), 2);
/// # Ok::<(), shrimp_core::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Barrier {
    members: Vec<Member>,
    /// Per-member arrival word (member-local, mapped out to the hub).
    arrival: Vec<VirtAddr>,
    /// Hub-side arrival page: slot `i` at offset `4 * i`.
    hub_arrivals: VirtAddr,
    /// Hub-side release image towards member `i` (a page can map out to
    /// at most two destinations, so the hub keeps one image per member —
    /// the connection-oriented cost the paper's §7 trade-off describes).
    hub_release: Vec<VirtAddr>,
    /// Per-member release word (member-local, written by the hub's
    /// mapping).
    release: Vec<VirtAddr>,
    generation: u32,
}

impl Barrier {
    /// Wires the barrier. `members[0]` is the hub.
    ///
    /// # Errors
    ///
    /// Propagates allocation/mapping failures.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two members or more than one page of
    /// arrival slots.
    pub fn establish(m: &mut Machine, members: &[Member]) -> Result<Barrier, MachineError> {
        assert!(members.len() >= 2, "a barrier needs at least two members");
        assert!(
            (members.len() as u64) * 4 <= PAGE_SIZE,
            "too many members for one arrival page"
        );
        let hub = members[0];
        let hub_arrivals = m.alloc_pages(hub.node, hub.pid, 1)?;
        let arrivals_export = m.export_buffer(hub.node, hub.pid, hub_arrivals, 1, None)?;

        let mut arrival = Vec::with_capacity(members.len());
        let mut release = Vec::with_capacity(members.len());
        let mut hub_release = Vec::with_capacity(members.len());
        for (i, &member) in members.iter().enumerate() {
            if member == hub {
                // The hub participates through plain local stores.
                arrival.push(hub_arrivals.add(4 * i as u64));
                let local = m.alloc_pages(hub.node, hub.pid, 1)?;
                hub_release.push(local);
                release.push(local);
                continue;
            }
            let a = m.alloc_pages(member.node, member.pid, 1)?;
            map4(m, member, a, hub, arrivals_export, 4 * i as u64, 4)?;
            arrival.push(a);

            let r = m.alloc_pages(member.node, member.pid, 1)?;
            let r_export = m.export_buffer(member.node, member.pid, r, 1, Some(hub.node))?;
            let image = m.alloc_pages(hub.node, hub.pid, 1)?;
            map4(m, hub, image, member, r_export, 0, 4)?;
            hub_release.push(image);
            release.push(r);
        }
        Ok(Barrier {
            members: members.to_vec(),
            arrival,
            hub_arrivals,
            hub_release,
            release,
            generation: 0,
        })
    }

    /// Completed barrier rounds.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Runs one full barrier round: every member publishes its arrival,
    /// the hub observes all of them and publishes the release, and every
    /// member observes the release.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors; fails if an arrival or release is not
    /// observed.
    pub fn round(&mut self, m: &mut Machine) -> Result<(), MachineError> {
        let hub = self.members[0];
        let gen = self.generation + 1;
        for (i, &member) in self.members.iter().enumerate() {
            m.poke(member.node, member.pid, self.arrival[i], &gen.to_le_bytes())?;
        }
        m.run_until_idle()?;
        // The hub sees every arrival slot at the new generation.
        for i in 0..self.members.len() {
            let got = m.peek(hub.node, hub.pid, self.hub_arrivals.add(4 * i as u64), 4)?;
            if u32::from_le_bytes(got.try_into().expect("4 bytes")) != gen {
                return Err(MachineError::NoQuiescence);
            }
        }
        // Release: the hub writes every member's release image (one
        // mapped connection per member).
        for image in &self.hub_release {
            m.poke(hub.node, hub.pid, *image, &gen.to_le_bytes())?;
        }
        m.run_until_idle()?;
        for (i, &member) in self.members.iter().enumerate() {
            let got = m.peek(member.node, member.pid, self.release[i], 4)?;
            if u32::from_le_bytes(got.try_into().expect("4 bytes")) != gen {
                return Err(MachineError::NoQuiescence);
            }
        }
        self.generation = gen;
        Ok(())
    }
}

/// A one-to-all broadcast over a binary distribution tree.
///
/// Each member owns one page: the root's is its send buffer; every other
/// member's receives from its parent. Interior members are also mapped
/// out to their children, and *software forwarding* (a re-store of the
/// received bytes) pushes data down one level — the copy-or-remap
/// trade-off §7 describes for one-to-many communication.
#[derive(Debug, Clone)]
pub struct Broadcast {
    members: Vec<Member>,
    /// Member i's page: root send buffer / receive-and-forward buffer.
    pages: Vec<VirtAddr>,
    /// Member i's *forward image* towards child j (up to two): stores to
    /// it propagate into the child's page.
    forward: Vec<Vec<(usize, VirtAddr)>>,
}

impl Broadcast {
    /// Wires the tree: member `i`'s children are `2i + 1` and `2i + 2`.
    ///
    /// # Errors
    ///
    /// Propagates allocation/mapping failures.
    ///
    /// # Panics
    ///
    /// Panics with no members.
    pub fn establish(m: &mut Machine, members: &[Member]) -> Result<Broadcast, MachineError> {
        assert!(!members.is_empty(), "broadcast needs members");
        let mut pages = Vec::with_capacity(members.len());
        for &member in members {
            pages.push(m.alloc_pages(member.node, member.pid, 1)?);
        }
        let mut forward: Vec<Vec<(usize, VirtAddr)>> = vec![Vec::new(); members.len()];
        for i in 0..members.len() {
            for child in [2 * i + 1, 2 * i + 2] {
                if child >= members.len() {
                    continue;
                }
                let c = members[child];
                let export = m.export_buffer(c.node, c.pid, pages[child], 1, Some(members[i].node))?;
                // The parent writes into a dedicated image page mapped to
                // the child (its own receive page must stay incoming-only).
                let image = m.alloc_pages(members[i].node, members[i].pid, 1)?;
                map4(m, members[i], image, c, export, 0, PAGE_SIZE)?;
                forward[i].push((child, image));
            }
        }
        Ok(Broadcast {
            members: members.to_vec(),
            pages,
            forward,
        })
    }

    /// Broadcasts `data` from member 0 to everyone, forwarding level by
    /// level, and verifies every member holds the data.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds one page or is not whole words.
    pub fn send(&self, m: &mut Machine, data: &[u8]) -> Result<(), MachineError> {
        assert!(data.len() as u64 <= PAGE_SIZE, "one page per broadcast");
        // Level-order forwarding: each member stores into its forward
        // images once its own copy is complete.
        let mut frontier = vec![0usize];
        // Root "receives" by writing its own page locally.
        let root = self.members[0];
        m.poke(root.node, root.pid, self.pages[0], data)?;
        m.run_until_idle()?;
        while let Some(i) = frontier.pop() {
            let member = self.members[i];
            for &(child, image) in &self.forward[i] {
                // Software forwarding: re-store the received bytes into
                // the mapped image (counted as data movement, as §7's
                // copy-based alternative implies).
                let bytes = m.peek(member.node, member.pid, self.pages[i], data.len() as u64)?;
                m.poke(member.node, member.pid, image, &bytes)?;
                m.run_until_idle()?;
                frontier.push(child);
            }
        }
        for (i, &member) in self.members.iter().enumerate() {
            let got = m.peek(member.node, member.pid, self.pages[i], data.len() as u64)?;
            if got != data {
                return Err(MachineError::NoQuiescence);
            }
        }
        Ok(())
    }

    /// The local page of member `i` (the broadcast landing buffer).
    pub fn page_of(&self, i: usize) -> VirtAddr {
        self.pages[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use shrimp_mesh::MeshShape;

    fn machine_with_members(n: u16) -> (Machine, Vec<Member>) {
        let side = (n as f64).sqrt().ceil() as u16;
        let shape = MeshShape::new(side.max(2), side.max(2));
        let mut m = Machine::new(MachineConfig::prototype(shape));
        let members = (0..n)
            .map(|i| Member {
                node: NodeId(i),
                pid: m.create_process(NodeId(i)),
            })
            .collect();
        (m, members)
    }

    #[test]
    fn barrier_rounds_complete_for_eight_members() {
        let (mut m, members) = machine_with_members(8);
        let mut b = Barrier::establish(&mut m, &members).unwrap();
        for round in 1..=3 {
            b.round(&mut m).unwrap();
            assert_eq!(b.generation(), round);
        }
    }

    #[test]
    fn barrier_with_two_members() {
        let (mut m, members) = machine_with_members(2);
        let mut b = Barrier::establish(&mut m, &members).unwrap();
        b.round(&mut m).unwrap();
        assert_eq!(b.generation(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn barrier_needs_two() {
        let (mut m, members) = machine_with_members(1);
        let _ = Barrier::establish(&mut m, &members[..1]);
    }

    #[test]
    fn broadcast_reaches_seven_members() {
        let (mut m, members) = machine_with_members(7);
        let b = Broadcast::establish(&mut m, &members).unwrap();
        let data: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        b.send(&mut m, &data).unwrap();
        for (i, member) in members.iter().enumerate() {
            let got = m.peek(member.node, member.pid, b.page_of(i), 256).unwrap();
            assert_eq!(got, data, "member {i}");
        }
    }

    #[test]
    fn broadcast_single_member_is_trivial() {
        let (mut m, members) = machine_with_members(2);
        let b = Broadcast::establish(&mut m, &members[..1]).unwrap();
        b.send(&mut m, &[1, 2, 3, 4]).unwrap();
    }
}
