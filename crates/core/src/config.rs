//! Whole-machine configuration.

use shrimp_cpu::CpuConfig;
use shrimp_mem::{BusConfig, CacheConfig};
use shrimp_mesh::{MeshConfig, MeshShape};
use shrimp_nic::{NicBackend, NicConfig};
use shrimp_sim::{FaultConfig, SimDuration, TelemetryConfig};

/// Configuration of a simulated SHRIMP machine.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Mesh dimensions.
    pub shape: MeshShape,
    /// Physical pages per node.
    pub pages_per_node: u64,
    /// CPU timing.
    pub cpu: CpuConfig,
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Xpress/EISA bus parameters.
    pub bus: BusConfig,
    /// Network interface parameters.
    pub nic: NicConfig,
    /// Which NIC backend the nodes are built with: the paper's pinned
    /// SHRIMP design (the default) or the NP-RDMA-style unpinned one
    /// (bounded IOTLB + dynamic map-in; see `shrimp_nic::unpinned`).
    pub nic_backend: NicBackend,
    /// Backplane parameters.
    pub mesh: MeshConfig,
    /// Cost of the `map` system call (protection checking, page-table and
    /// NIPT updates on both nodes). Paid once per mapping — deliberately
    /// expensive, off the critical path (paper §2).
    pub map_syscall_cost: SimDuration,
    /// One-way latency of a kernel-to-kernel control message (§4.4
    /// protocol traffic).
    pub kernel_msg_latency: SimDuration,
    /// Cost of taking a page fault into the kernel and returning.
    pub fault_cost: SimDuration,
    /// Cost of a context switch (register save/restore + TLB flush).
    pub context_switch_cost: SimDuration,
    /// Scheduler quantum.
    pub quantum: SimDuration,
    /// TLB entries per node.
    pub tlb_entries: usize,
    /// Deterministic fault injection (all rates zero by default, which
    /// creates no fault sites and leaves the machine bit-identical to a
    /// build without the subsystem).
    pub fault: FaultConfig,
    /// Telemetry: typed tracing and packet-lifecycle latency recording.
    /// Off by default; turning it on never perturbs simulated time.
    pub telemetry: TelemetryConfig,
    /// Worker threads for the conservative parallel engine. `1` (the
    /// default) runs the classic sequential loop; `2..` shards
    /// same-instant node-local events across a thread pool. Results are
    /// bit-identical at every setting — this is purely a wall-clock
    /// knob. Defaults to `$SHRIMP_WORKERS` when set.
    pub workers: usize,
}

impl MachineConfig {
    /// The EISA-based prototype the paper evaluates: 33 MB/s incoming
    /// path, <2 µs automatic-update latency on 16 nodes.
    pub fn prototype(shape: MeshShape) -> Self {
        MachineConfig {
            shape,
            pages_per_node: 256, // 1 MB per node keeps tests fast
            cpu: CpuConfig::default(),
            cache: CacheConfig::pentium_l2(),
            bus: BusConfig::shrimp_prototype(),
            nic: NicConfig::prototype(),
            nic_backend: NicBackend::default(),
            mesh: MeshConfig::paragon(shape),
            map_syscall_cost: SimDuration::from_us(50),
            kernel_msg_latency: SimDuration::from_us(10),
            fault_cost: SimDuration::from_us(20),
            context_switch_cost: SimDuration::from_us(15),
            quantum: SimDuration::from_ms(10),
            tlb_entries: 64,
            fault: FaultConfig::default(),
            telemetry: TelemetryConfig::default(),
            workers: workers_from_env(),
        }
    }

    /// The "next implementation" (§5.1): incoming data drives the Xpress
    /// bus directly, bypassing EISA — <1 µs latency, ~70 MB/s peak.
    pub fn next_generation(shape: MeshShape) -> Self {
        let mut cfg = MachineConfig::prototype(shape);
        cfg.bus = BusConfig::shrimp_next_generation();
        cfg.nic.receive_latency = SimDuration::from_ns(50);
        cfg.nic.packetize_latency = SimDuration::from_ns(60);
        cfg
    }

    /// A two-node machine (the paper's experimental environment was a
    /// pair of PCs, §5.2).
    pub fn two_nodes() -> Self {
        MachineConfig::prototype(MeshShape::new(2, 1))
    }

    /// The parallel engine's static lookahead bound: the minimum
    /// latency of any cross-node effect. A node executing at time `t`
    /// cannot influence another node before `t + lookahead()` — mesh
    /// packets pay at least one router hop
    /// ([`MeshConfig::min_cross_node_latency`]) and kernel-to-kernel
    /// control messages pay [`MachineConfig::kernel_msg_latency`] — so
    /// events of different nodes inside one such window are
    /// independent and may run concurrently (DESIGN.md §5e).
    pub fn lookahead(&self) -> SimDuration {
        std::cmp::min(self.mesh.min_cross_node_latency(), self.kernel_msg_latency)
    }

    /// Validates all sub-configurations.
    ///
    /// # Panics
    ///
    /// Panics if any component configuration is invalid.
    pub fn validate(&self) {
        self.nic.validate();
        self.mesh.validate();
        assert!(self.pages_per_node >= 32, "nodes need at least 32 pages");
        assert!(self.tlb_entries > 0, "TLB must hold at least one entry");
        assert!(
            (1..=64).contains(&self.workers),
            "workers must be between 1 and 64"
        );
    }
}

/// Reads `$SHRIMP_WORKERS` (1–64), defaulting to 1 (sequential) when
/// unset or unparsable.
fn workers_from_env() -> usize {
    std::env::var("SHRIMP_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|w| (1..=64).contains(w))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::prototype(MeshShape::new(4, 4)).validate();
        MachineConfig::next_generation(MeshShape::new(4, 4)).validate();
        MachineConfig::two_nodes().validate();
    }

    #[test]
    fn next_generation_upgrades_incoming_path() {
        let p = MachineConfig::prototype(MeshShape::new(2, 2));
        let n = MachineConfig::next_generation(MeshShape::new(2, 2));
        assert!(n.bus.eisa_bytes_per_sec > p.bus.eisa_bytes_per_sec);
        assert!(n.nic.receive_latency < p.nic.receive_latency);
    }

    #[test]
    #[should_panic(expected = "at least 32 pages")]
    fn tiny_memory_rejected() {
        let mut c = MachineConfig::two_nodes();
        c.pages_per_node = 4;
        c.validate();
    }
}
