//! The conservative parallel execution core.
//!
//! SHRIMP nodes influence each other only through the mesh (at least one
//! link latency away) and kernel messages (a configured latency away),
//! so two *node-local* events at the same instant on *different* nodes
//! are causally independent — the classic Chandy–Misra conservative
//! lookahead, clamped to a single instant because a node may reschedule
//! itself at zero delay (see DESIGN.md §5d for the full argument).
//!
//! [`WorkerPool`] keeps `workers` threads alive for the machine's
//! lifetime. The machine forms a batch of same-instant events on
//! pairwise-distinct nodes, ships each `(node, event)` to a worker, and
//! every worker runs [`Node::execute`][crate::node::Node] — which
//! mutates only its own node and records consequences in a
//! `NodeEffects` action list. The machine then applies those lists *in
//! the order the events were popped*, so the event queue evolves exactly
//! as the sequential engine's would: results are bit-identical for any
//! worker count.
//!
//! Soundness of the `*mut Node` sends: batch nodes are pairwise
//! distinct (disjoint `&mut` regions of one `Vec<Node>`), and the
//! coordinator blocks until every result has been received before it
//! touches any node again.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use shrimp_sim::SimTime;

use crate::config::MachineConfig;
use crate::node::{Node, NodeEffects, NodeEvent};

/// A raw node pointer that may cross a thread boundary for the duration
/// of one batch (see the module docs for the aliasing argument).
struct SendPtr(*mut Node);

// SAFETY: the coordinator hands each worker a pointer to a distinct
// element of its `Vec<Node>` and joins the batch (receives all results)
// before touching the nodes again, so no two threads ever alias a node.
unsafe impl Send for SendPtr {}

struct Job {
    slot: usize,
    node: SendPtr,
    t: SimTime,
    ev: NodeEvent,
}

/// A persistent pool of node-execution workers.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Job>>,
    results: Receiver<(usize, NodeEffects)>,
    handles: Vec<JoinHandle<()>>,
    next: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.senders.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads, each holding its own copy of the
    /// machine configuration.
    pub(crate) fn new(workers: usize, config: MachineConfig) -> Self {
        let (result_tx, results) = channel::<(usize, NodeEffects)>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel::<Job>();
            let out = result_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("shrimp-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let mut fx = NodeEffects::default();
                        // SAFETY: per the pool contract the pointer is
                        // valid and unaliased until the result is sent.
                        let node = unsafe { &mut *job.node.0 };
                        node.execute(job.t, job.ev, &config, &mut fx);
                        if out.send((job.slot, fx)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            senders,
            results,
            handles,
            next: 0,
        }
    }

    /// Ships one batch member to a worker (round-robin).
    ///
    /// # Safety
    ///
    /// `node` must stay valid and unaliased until the matching result is
    /// received via [`WorkerPool::recv`].
    pub(crate) unsafe fn submit(&mut self, slot: usize, node: *mut Node, t: SimTime, ev: NodeEvent) {
        let w = self.next % self.senders.len();
        self.next = self.next.wrapping_add(1);
        self.senders[w]
            .send(Job {
                slot,
                node: SendPtr(node),
                t,
                ev,
            })
            .expect("worker thread alive");
    }

    /// Receives one completed batch member.
    pub(crate) fn recv(&self) -> (usize, NodeEffects) {
        self.results.recv().expect("worker thread alive")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mesh::NodeId;

    #[test]
    fn pool_executes_on_distinct_nodes_and_joins() {
        let config = MachineConfig::two_nodes();
        let mut nodes: Vec<Node> = (0..2).map(|i| Node::new(NodeId(i), &config)).collect();
        let mut pool = WorkerPool::new(2, config);
        let base = nodes.as_mut_ptr();
        for slot in 0..2 {
            // SAFETY: distinct elements; joined below before reuse.
            unsafe { pool.submit(slot, base.add(slot), SimTime::ZERO, NodeEvent::CpuStep) };
        }
        let mut seen = [false; 2];
        for _ in 0..2 {
            let (slot, fx) = pool.recv();
            seen[slot] = true;
            // An idle node's CpuStep is a no-op with no effects.
            assert!(fx.actions.is_empty());
        }
        assert!(seen.iter().all(|&s| s));
        drop(pool); // joins cleanly
    }
}
