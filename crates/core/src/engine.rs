//! The conservative parallel execution core.
//!
//! SHRIMP nodes influence each other only through the mesh (at least
//! one router hop away) and kernel messages (a configured latency
//! away), so the machine has a *static lookahead bound*
//! `L = min(hop latency, kernel message latency)`
//! ([`MachineConfig::lookahead`]): an event executing at time `t`
//! cannot affect any other node before `t + L`. All node-local events
//! of one node inside a window `[t, t + L)` therefore depend only on
//! that node's own state, and different nodes' windows are causally
//! independent — classic null-message-free Chandy–Misra lookahead (the
//! full safety argument is DESIGN.md §5e).
//!
//! [`execute_window`] runs one node's slice of a window: it consumes
//! the drained queue entries in `(time, seq)` order, interleaving
//! self-generated in-window `CpuStep` children (a CPU burning through
//! its quantum never touches the scheduler), and records every
//! consequence as an ordered [`Action`] list with parent→child
//! linkage. The machine then *replays* all nodes' records in the exact
//! global `(time, seq)` order the sequential engine would have popped
//! them, so queue evolution, logs, and counters are bit-identical for
//! any worker count. A window closes early for a node at any event
//! whose commit-time effects could feed back into node state — a
//! fault, a kernel message (it may arm a §4.4 invalidation), or a
//! self-scheduled mesh-coupled wakeup inside the window — and the
//! node's unexecuted entries return to the queue under their original
//! sequence numbers.
//!
//! [`WorkerPool`] keeps `workers - 1` threads alive for the machine's
//! lifetime; the coordinator executes the first node slice itself, so
//! single-participant windows never pay a thread round-trip.
//!
//! Soundness of the `*mut Node` sends: window participants are
//! pairwise-distinct nodes (disjoint `&mut` regions of one
//! `Vec<Node>`), and the coordinator blocks until every result has
//! been received before it touches any node again.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use shrimp_sim::SimTime;

use crate::config::MachineConfig;
use crate::node::{Action, Node, NodeEffects, NodeEvent};

/// A queue entry drained into a window: `(time, seq, event)`.
pub(crate) type WindowEntry = (SimTime, u64, NodeEvent);

/// One executed event inside a window.
#[derive(Debug)]
pub(crate) struct ExecRec {
    /// When it ran.
    pub time: SimTime,
    /// Original queue sequence number (roots only; generated children
    /// are ordered by commit-assigned virtual sequence numbers).
    pub seq: u64,
    /// Whether this record came off the queue (a merge seed) rather
    /// than being generated inside the window.
    pub root: bool,
    /// `true` for a §4.4 kernel message (the commit refreshes the
    /// node's armed-invalidation count after replaying it).
    pub kernel_msg: bool,
    /// Range of this record's actions in [`NodeWindowOutcome::actions`].
    pub act_start: u32,
    /// Number of actions.
    pub act_len: u32,
}

/// Why one node's window slice stopped before `w_end` (the first
/// barrier condition hit, with a fixed in-record priority so the
/// attribution is deterministic for any worker count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SliceClose {
    /// The record raised a fault action.
    Fault,
    /// The record was a §4.4 kernel message.
    KernelMsg,
    /// The record scheduled a mesh-coupled wakeup inside the window.
    MeshWakeup,
}

/// Everything one node did during a window, in a replayable form.
#[derive(Debug, Default)]
pub(crate) struct NodeWindowOutcome {
    /// Executed events, in node-local execution order.
    pub records: Vec<ExecRec>,
    /// Flat action list; `Option` so the commit can consume actions in
    /// global merge order.
    pub actions: Vec<Option<Action>>,
    /// Parallel to `actions`: the record index of the child this
    /// `Action::Push` became when it was pre-executed inside the
    /// window, or -1 when the push must hit the real queue.
    pub child_of: Vec<i32>,
    /// Drained entries the node did *not* execute (its window closed
    /// early); re-queued under their original sequence numbers.
    pub leftovers: Vec<WindowEntry>,
    /// Why this slice stopped early, when it did (window telemetry).
    pub close: Option<SliceClose>,
}

/// Executes one node's slice of a lookahead window `[entries[0].0,
/// w_end)` and records the consequences (see the module docs).
pub(crate) fn execute_window(
    node: &mut Node,
    config: &MachineConfig,
    entries: Vec<WindowEntry>,
    w_end: SimTime,
) -> NodeWindowOutcome {
    let own = node.id.0;
    let mut out = NodeWindowOutcome::default();
    let mut entries: VecDeque<WindowEntry> = entries.into();
    // Self-generated in-window events, keyed (time, birth order). Ties
    // against queue entries go to the queue entry: its real sequence
    // number is smaller than any sequence the commit will assign to a
    // generated child.
    let mut gen: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
    let mut gen_payload: Vec<Option<(NodeEvent, u32)>> = Vec::new();
    let mut fx = NodeEffects::default();
    loop {
        let take_gen = match (entries.front(), gen.peek()) {
            (Some(&(pt, _, _)), Some(&Reverse((gt, _)))) => gt < pt,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => break,
        };
        let (t, seq, ev, from_action) = if take_gen {
            let Reverse((gt, id)) = gen.pop().expect("peeked entry");
            let (ev, act) = gen_payload[id as usize].take().expect("queued once");
            (gt, 0, ev, Some(act))
        } else {
            let (t, seq, ev) = entries.pop_front().expect("peeked entry");
            (t, seq, ev, None)
        };
        let kernel_msg = matches!(ev, NodeEvent::KernelMsg { .. });
        debug_assert!(ev.is_node_local(), "window entries are node-local");
        node.execute(t, ev, config, &mut fx);
        let rec_idx = out.records.len() as i32;
        if let Some(act) = from_action {
            out.child_of[act as usize] = rec_idx;
        }
        let act_start = out.actions.len() as u32;
        let mut barrier = kernel_msg;
        let mut fault_here = false;
        for action in fx.actions.drain(..) {
            let act_idx = out.actions.len() as u32;
            if let Action::Push { at, node: dst, ev } = &action {
                if *dst == own && !ev.is_node_local() && *at < w_end {
                    // A mesh-coupled wakeup due inside the window: the
                    // machine must run it (it touches the mesh) before
                    // any later event of this node.
                    barrier = true;
                }
                if *dst == own
                    && *at < w_end
                    && !barrier
                    && matches!(ev, NodeEvent::CpuStep)
                {
                    gen.push(Reverse((*at, gen_payload.len() as u64)));
                    gen_payload.push(Some((ev.clone(), act_idx)));
                }
            }
            if matches!(action, Action::Fault { .. }) {
                // Fault service is machine-level (it may kill the
                // process and reschedule); nothing of this node may run
                // until the commit has replayed it.
                barrier = true;
                fault_here = true;
            }
            out.actions.push(Some(action));
            out.child_of.push(-1);
        }
        out.records.push(ExecRec {
            time: t,
            seq,
            root: from_action.is_none(),
            kernel_msg,
            act_start,
            act_len: out.actions.len() as u32 - act_start,
        });
        if barrier {
            // Fixed in-record priority keeps the attribution
            // deterministic when one record trips several conditions.
            out.close = Some(if fault_here {
                SliceClose::Fault
            } else if kernel_msg {
                SliceClose::KernelMsg
            } else {
                SliceClose::MeshWakeup
            });
            // Un-mirror children queued by this very record: a barrier
            // record's pushes all become real queue pushes.
            for i in act_start as usize..out.actions.len() {
                out.child_of[i] = -1;
            }
            break;
        }
    }
    out.leftovers.extend(entries);
    out
}

/// A raw node pointer that may cross a thread boundary for the duration
/// of one window (see the module docs for the aliasing argument).
struct SendPtr(*mut Node);

// SAFETY: the coordinator hands each worker a pointer to a distinct
// element of its `Vec<Node>` and joins the window (receives all
// results) before touching the nodes again, so no two threads ever
// alias a node.
unsafe impl Send for SendPtr {}

struct Job {
    slot: usize,
    node: SendPtr,
    entries: Vec<WindowEntry>,
    w_end: SimTime,
}

/// A persistent pool of window-execution workers (`workers - 1`
/// threads; the coordinator runs one slice itself).
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Job>>,
    results: Receiver<(usize, NodeWindowOutcome)>,
    handles: Vec<JoinHandle<()>>,
    next: usize,
    /// Wall nanoseconds worker threads spent inside `execute_window`,
    /// accumulated only when profiling is on (stays 0 otherwise).
    busy_ns: Arc<AtomicU64>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &(self.senders.len() + 1))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers - 1` threads, each holding its own copy of the
    /// machine configuration. With `profile` on, workers time their
    /// `execute_window` calls into a shared busy-nanoseconds counter.
    pub(crate) fn new(workers: usize, config: MachineConfig, profile: bool) -> Self {
        let spawned = workers.saturating_sub(1);
        let (result_tx, results) = channel::<(usize, NodeWindowOutcome)>();
        let busy_ns = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(spawned);
        let mut handles = Vec::with_capacity(spawned);
        for i in 0..spawned {
            let (tx, rx) = channel::<Job>();
            let out = result_tx.clone();
            let busy = Arc::clone(&busy_ns);
            let handle = std::thread::Builder::new()
                .name(format!("shrimp-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let t0 = profile.then(Instant::now);
                        // SAFETY: per the pool contract the pointer is
                        // valid and unaliased until the result is sent.
                        let node = unsafe { &mut *job.node.0 };
                        let oc = execute_window(node, &config, job.entries, job.w_end);
                        if let Some(t0) = t0 {
                            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        if out.send((job.slot, oc)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            senders,
            results,
            handles,
            next: 0,
            busy_ns,
        }
    }

    /// Wall nanoseconds workers have spent executing window slices
    /// (0 unless the pool was built with profiling on).
    pub(crate) fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }

    /// Ships one window participant to a worker thread (round-robin).
    ///
    /// # Safety
    ///
    /// `node` must stay valid and unaliased until the matching result
    /// is received via [`WorkerPool::recv`].
    pub(crate) unsafe fn submit(
        &mut self,
        slot: usize,
        node: *mut Node,
        entries: Vec<WindowEntry>,
        w_end: SimTime,
    ) {
        let w = self.next % self.senders.len();
        self.next = self.next.wrapping_add(1);
        self.senders[w]
            .send(Job {
                slot,
                node: SendPtr(node),
                entries,
                w_end,
            })
            .expect("worker thread alive");
    }

    /// Receives one completed window participant.
    pub(crate) fn recv(&self) -> (usize, NodeWindowOutcome) {
        self.results.recv().expect("worker thread alive")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mesh::NodeId;

    #[test]
    fn pool_executes_on_distinct_nodes_and_joins() {
        let config = MachineConfig::two_nodes();
        let mut nodes: Vec<Node> = (0..2).map(|i| Node::new(NodeId(i), &config)).collect();
        let mut pool = WorkerPool::new(3, config, false);
        let base = nodes.as_mut_ptr();
        for slot in 0..2 {
            let entries = vec![(SimTime::ZERO, slot as u64, NodeEvent::CpuStep)];
            // SAFETY: distinct elements; joined below before reuse.
            unsafe { pool.submit(slot, base.add(slot), entries, SimTime::from_picos(100)) };
        }
        let mut seen = [false; 2];
        for _ in 0..2 {
            let (slot, oc) = pool.recv();
            seen[slot] = true;
            // An idle node's CpuStep is a no-op with no effects.
            assert_eq!(oc.records.len(), 1);
            assert!(oc.actions.is_empty());
            assert!(oc.leftovers.is_empty());
        }
        assert!(seen.iter().all(|&s| s));
        drop(pool); // joins cleanly
    }

    #[test]
    fn window_executor_runs_entries_in_order_and_links_children() {
        let config = MachineConfig::two_nodes();
        let mut node = Node::new(NodeId(0), &config);
        let entries = vec![
            (SimTime::ZERO, 0, NodeEvent::CpuStep),
            (SimTime::from_picos(50), 1, NodeEvent::CpuStep),
        ];
        let oc = execute_window(&mut node, &config, entries, SimTime::from_picos(100));
        assert_eq!(oc.records.len(), 2);
        assert!(oc.records.iter().all(|r| r.root));
        assert_eq!(oc.records[0].time, SimTime::ZERO);
        assert_eq!(oc.records[1].time, SimTime::from_picos(50));
        assert!(oc.leftovers.is_empty());
        assert_eq!(oc.actions.len(), oc.child_of.len());
        assert!(oc.close.is_none(), "a full slice has no early-close cause");
    }
}
