//! Machine-level error type.

use std::error::Error;
use std::fmt;

use shrimp_mem::MemError;
use shrimp_nic::NicError;
use shrimp_os::OsError;

/// Errors surfaced by the whole-machine API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A kernel operation failed.
    Os(OsError),
    /// A network interface operation failed.
    Nic(NicError),
    /// A memory access failed.
    Mem(MemError),
    /// A zero-length mapping was requested.
    EmptyMapping,
    /// `run_until_idle` gave up: the machine keeps generating events
    /// (typically a CPU spin-waiting for data that will never come).
    NoQuiescence,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Os(e) => write!(f, "kernel: {e}"),
            MachineError::Nic(e) => write!(f, "network interface: {e}"),
            MachineError::Mem(e) => write!(f, "memory: {e}"),
            MachineError::EmptyMapping => write!(f, "mapping length must be positive"),
            MachineError::NoQuiescence => write!(f, "machine did not quiesce"),
        }
    }
}

impl Error for MachineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MachineError::Os(e) => Some(e),
            MachineError::Nic(e) => Some(e),
            MachineError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OsError> for MachineError {
    fn from(e: OsError) -> Self {
        MachineError::Os(e)
    }
}

impl From<NicError> for MachineError {
    fn from(e: NicError) -> Self {
        MachineError::Nic(e)
    }
}

impl From<MemError> for MachineError {
    fn from(e: MemError) -> Self {
        MachineError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MachineError = OsError::OutOfMemory.into();
        assert!(e.to_string().contains("kernel"));
        assert!(Error::source(&e).is_some());
        let e: MachineError = NicError::BadCrc.into();
        assert!(e.to_string().contains("network interface"));
        let e: MachineError = MemError::OutOfRange {
            addr: shrimp_mem::PhysAddr::new(0),
            size: 0,
        }
        .into();
        assert!(e.to_string().contains("memory"));
        assert!(Error::source(&MachineError::NoQuiescence).is_none());
    }
}
