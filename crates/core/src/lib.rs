//! The SHRIMP multicomputer, assembled.
//!
//! This crate is the paper's system put together: commodity nodes
//! (CPU + memory + snooping cache + Xpress/EISA buses), the custom
//! virtual memory-mapped network interface, node kernels, and the
//! Paragon-style mesh backplane, all advanced by one deterministic event
//! loop.
//!
//! * [`Machine`] — build it from a [`MachineConfig`], create processes,
//!   export receive buffers, establish mappings with [`Machine::map`],
//!   and either run mini-ISA programs on the simulated CPUs or move data
//!   with the host-level [`Machine::poke`] / [`Machine::peek`].
//! * [`msglib`] — the paper's §5.2 message-passing primitives written in
//!   the mini-ISA: single buffering (± copy), double buffering (loop
//!   cases 1–3), the deliberate-update send macro, and user-level NX/2
//!   `csend`/`crecv`. Running them reproduces Table 1's instruction
//!   counts.
//! * [`pram`] — the PRAM-consistency shared-memory layer of §4.1
//!   (complementary automatic-update mappings).
//! * [`mqueue`] — FIFO queues emulated over memory mappings, the §7
//!   argument that the mapped model subsumes FIFO interfaces.
//! * [`collective`] — barrier and broadcast layered on point-to-point
//!   mappings (the library work §7 says the model pushes to user level).
//!
//! See the [`Machine`] docs for an end-to-end example.

pub mod collective;
pub mod config;
mod engine;
pub mod error;
pub mod machine;
pub mod mqueue;
pub mod msglib;
mod node;
pub mod pram;

pub use config::MachineConfig;
pub use error::MachineError;
pub use machine::{
    DeliveryRecord, LatencyRecord, Machine, MachineTelemetry, MapRequest, MappingId,
};
