//! The whole-machine model.
//!
//! [`Machine`] composes, per node, a CPU, physical memory, a snooping
//! cache, the Xpress and EISA buses, the SHRIMP network interface and a
//! kernel — and connects the nodes through the mesh backplane. A single
//! deterministic event loop advances everything.
//!
//! The datapath follows Figure 4 of the paper exactly:
//!
//! 1. a user-level `store` to a write-through mapped page appears on the
//!    Xpress bus, where the NIC snoops it and (per the NIPT entry's
//!    update policy) packetizes it;
//! 2. the Outgoing FIFO drains into the mesh when the injection port is
//!    free;
//! 3. at the destination, the packet is verified (coordinates + CRC),
//!    queued on the Incoming FIFO, and DMA'd over the EISA bus straight
//!    into main memory — invalidating matching cache lines — with no CPU
//!    involvement;
//! 4. deliberate-update transfers start from user level with a locked
//!    `CMPXCHG` against a command page and stream a page through the same
//!    outgoing datapath.

use shrimp_cpu::{Cpu, Program, Reg};
use shrimp_mem::{CacheMode, MemError, PageNum, PhysAddr, VirtAddr, PAGE_SIZE, WORD_SIZE};
use shrimp_mesh::{MeshNetwork, NodeId};
use shrimp_nic::{AnyNic, NicError, NicInterrupt, NicModel, OutSegment, ShrimpPacket, UpdatePolicy};
use shrimp_os::kernel::OutgoingRecord;
use shrimp_os::{ExportId, Kernel, OsError, Pid};
use shrimp_sim::{
    step, to_chrome_json_with_counters, BarrierCause, Component, ComponentId, CounterSample,
    EnginePhase, EngineProfileReport, EngineProfiler, FlightEntry, FlightRecorder, Histogram,
    MetricsRegistry, MetricsSnapshot, Scheduler, SimDuration, SimHost, SimTime, StepBound,
    StepOutcome, TraceData, TraceEvent, TraceLevel, Tracer, WindowStats,
};

use crate::config::MachineConfig;
use crate::engine::{execute_window, NodeWindowOutcome, SliceClose, WindowEntry, WorkerPool};
use crate::error::MachineError;
use crate::node::{Action, Node, NodeEffects, NodeEvent};

/// Identifies one established mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MappingId(pub u32);

/// A request to establish a virtual memory mapping — the kernel half of
/// the paper's
/// `map(send-buf, destination, receive-buf)` call (§2). The receive
/// buffer is named by an export the receiving process published.
#[derive(Debug, Clone, Copy)]
pub struct MapRequest {
    /// Sending node.
    pub src_node: NodeId,
    /// Sending process.
    pub src_pid: Pid,
    /// First byte of the send buffer (any alignment).
    pub src_va: VirtAddr,
    /// Receiving node.
    pub dst_node: NodeId,
    /// The receiving process's export.
    pub export: ExportId,
    /// Byte offset into the exported buffer (any alignment).
    pub dst_offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Transfer strategy.
    pub policy: UpdatePolicy,
}

/// One delivered packet's memory arrival, for latency experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// When the data was fully in destination DRAM.
    pub time: SimTime,
    /// Receiving node.
    pub node: NodeId,
    /// Destination physical address.
    pub dst_addr: PhysAddr,
    /// Payload length.
    pub len: u64,
    /// Sending node.
    pub src: NodeId,
}

/// One packet's full lifecycle timeline, recorded when
/// [`shrimp_sim::TelemetryConfig::latency`] is on. The five boundary
/// times are monotone, so the per-stage durations telescope: their sum
/// equals [`LatencyRecord::end_to_end`] exactly, for every packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRecord {
    /// Receiving node.
    pub node: NodeId,
    /// Sending node.
    pub src: NodeId,
    /// Payload bytes.
    pub bytes: u64,
    /// Snooped off the Xpress bus and queued on the Outgoing FIFO.
    pub born: SimTime,
    /// Entered the mesh injection port.
    pub injected: SimTime,
    /// Accepted into the destination's Incoming FIFO.
    pub accepted: SimTime,
    /// EISA DMA burst began.
    pub dma_start: SimTime,
    /// Data fully in destination DRAM.
    pub dma_end: SimTime,
}

impl LatencyRecord {
    /// Time spent in the Outgoing FIFO waiting for the injection port.
    pub fn out_fifo(&self) -> SimDuration {
        self.injected.since(self.born)
    }

    /// Time in flight across the mesh backplane.
    pub fn mesh(&self) -> SimDuration {
        self.accepted.since(self.injected)
    }

    /// Time in the Incoming FIFO (receive latency + EISA arbitration).
    pub fn in_fifo(&self) -> SimDuration {
        self.dma_start.since(self.accepted)
    }

    /// The DMA burst itself.
    pub fn dma(&self) -> SimDuration {
        self.dma_end.since(self.dma_start)
    }

    /// Store snooped to data in remote memory.
    pub fn end_to_end(&self) -> SimDuration {
        self.dma_end.since(self.born)
    }
}

/// Packet-lifecycle latency telemetry: per-stage histograms plus the
/// raw per-packet records (all in picoseconds). Empty unless
/// [`shrimp_sim::TelemetryConfig::latency`] is enabled.
#[derive(Debug, Clone, Default)]
pub struct MachineTelemetry {
    /// Store snooped → data in remote DRAM.
    pub e2e: Histogram,
    /// Outgoing FIFO residency.
    pub out_fifo: Histogram,
    /// Mesh transit.
    pub mesh: Histogram,
    /// Incoming FIFO residency.
    pub in_fifo: Histogram,
    /// EISA DMA burst.
    pub dma: Histogram,
    /// Every delivered packet's timeline, in delivery order.
    pub records: Vec<LatencyRecord>,
}

impl MachineTelemetry {
    fn record(&mut self, rec: LatencyRecord) {
        self.e2e.record_duration(rec.end_to_end());
        self.out_fifo.record_duration(rec.out_fifo());
        self.mesh.record_duration(rec.mesh());
        self.in_fifo.record_duration(rec.in_fifo());
        self.dma.record_duration(rec.dma());
        self.records.push(rec);
    }
}

/// Bucket width of the per-node calendar queues: 1 ns clusters the
/// ns-scale CPU/NIC event populations a few per bucket; µs-scale kernel
/// timers overflow to the far heap, which is tiny per node.
const WINDOW_BUCKET_WIDTH_PS: u64 = 1_000;

/// A scheduled machine event: which node, and what it should do. The
/// per-node behaviour lives in [`NodeEvent`]; this type only exists as
/// the machine scheduler's event payload (it is public because it leaks
/// through the [`SimHost`] associated type, not as API).
#[derive(Debug, Clone)]
pub struct Event {
    pub(crate) node: u16,
    pub(crate) ev: NodeEvent,
}

#[derive(Debug, Clone)]
struct Registration {
    #[allow(dead_code)] // returned to callers; kept for future unmap()
    id: MappingId,
    req: MapRequest,
}

/// The simulated SHRIMP multicomputer.
///
/// # Examples
///
/// ```
/// use shrimp_core::{Machine, MachineConfig, MapRequest};
/// use shrimp_nic::UpdatePolicy;
/// use shrimp_mesh::NodeId;
///
/// let mut m = Machine::new(MachineConfig::two_nodes());
/// let sender = m.create_process(NodeId(0));
/// let receiver = m.create_process(NodeId(1));
/// let send_buf = m.alloc_pages(NodeId(0), sender, 1)?;
/// let recv_buf = m.alloc_pages(NodeId(1), receiver, 1)?;
/// let export = m.export_buffer(NodeId(1), receiver, recv_buf, 1, None)?;
/// m.map(MapRequest {
///     src_node: NodeId(0),
///     src_pid: sender,
///     src_va: send_buf,
///     dst_node: NodeId(1),
///     export,
///     dst_offset: 0,
///     len: 4096,
///     policy: UpdatePolicy::AutomaticSingle,
/// })?;
/// // An ordinary store now propagates to node 1's memory:
/// m.poke(NodeId(0), sender, send_buf, &42u32.to_le_bytes())?;
/// m.run_until_idle()?;
/// let bytes = m.peek(NodeId(1), receiver, recv_buf, 4)?;
/// assert_eq!(u32::from_le_bytes(bytes.try_into().unwrap()), 42);
/// # Ok::<(), shrimp_core::MachineError>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    nodes: Vec<Node>,
    mesh: MeshNetwork<ShrimpPacket>,
    sched: Scheduler<Event>,
    registrations: Vec<Registration>,
    next_mapping: u32,
    interrupt_log: Vec<(SimTime, NodeId, NicInterrupt)>,
    syscall_log: Vec<(SimTime, NodeId, Pid, u32)>,
    delivery_log: Vec<DeliveryRecord>,
    drop_log: Vec<(SimTime, NodeId, NicError)>,
    node_events: Vec<u64>,
    tracer: Tracer,
    telemetry: MachineTelemetry,
    /// Worker threads for the parallel engine (`None` when
    /// `config.workers == 1`: the classic sequential loop).
    pool: Option<WorkerPool>,
    /// Per-node count of §4.4 invalidations armed and awaiting a write
    /// fault (mirrors `Kernel::armed_invalidations`); while any is
    /// non-zero the reestablish path may mutate a *remote* node with
    /// zero delay, so no lookahead window may open (DESIGN.md §5e).
    armed: Vec<usize>,
    /// Sum of `armed` — the window gate reads only this.
    armed_total: usize,
    /// Whether the current run wrapper permits lookahead windows
    /// (`run_until_pred` forbids them so the predicate keeps observing
    /// every inter-instant state).
    window_enabled: bool,
    /// The active run bound: windows never execute events past it.
    window_limit: Option<SimTime>,
    /// Reused effect buffers for the sequential hot path (zero
    /// steady-state allocation).
    scratch_fx: NodeEffects,
    scratch_wakeups: NodeEffects,
    /// Per-node window slot (-1 = not participating), reused across
    /// windows.
    slot_of: Vec<i32>,
    /// Lookahead windows executed (worker-invariant: windows form
    /// identically at every worker count; with one worker the slices
    /// just run inline).
    batches_run: u64,
    /// Deterministic window telemetry: per-cause close counters and
    /// window-shape histograms (worker-invariant; see DESIGN.md §5h).
    win_stats: WindowStats,
    /// Wall-clock phase attribution (never part of the deterministic
    /// snapshot; see [`Machine::profile`]).
    profiler: EngineProfiler,
    /// Per-node rings of recent packet-lifecycle events, dumped on
    /// panic or on demand. Pure observation of the serial path.
    recorder: FlightRecorder,
    /// Reused buffer for draining the mesh's flight log (avoids a
    /// mesh/recorder double borrow and steady-state allocation).
    scratch_flight: Vec<TraceEvent>,
}

impl Machine {
    /// Builds an idle machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: MachineConfig) -> Self {
        config.validate();
        let shape = config.shape;
        let nodes: Vec<Node> = shape.iter_nodes().map(|id| Node::new(id, &config)).collect();
        let mut mesh = MeshNetwork::new(config.mesh);
        mesh.set_fault_injection(&config.fault);
        let tracer = match config.telemetry.trace_level {
            Some(level) => Tracer::new(level),
            None => Tracer::disabled(),
        };
        if let Some(level) = config.telemetry.trace_level {
            mesh.set_tracer(Tracer::new(level));
        }
        mesh.set_flight_recording(config.telemetry.flight_recorder > 0);
        let pool = (config.workers > 1)
            .then(|| WorkerPool::new(config.workers, config, config.telemetry.profile));
        let recorder = FlightRecorder::new(nodes.len(), config.telemetry.flight_recorder);
        let slot_of = vec![-1; nodes.len()];
        let armed = vec![0; nodes.len()];
        let node_events = vec![0; nodes.len()];
        Machine {
            config,
            nodes,
            mesh,
            // One calendar queue per node (machine-level pushes route to
            // the target node's shard); pop order is identical to the
            // old global binary heap.
            sched: Scheduler::sharded(shape.nodes().max(1) as usize, WINDOW_BUCKET_WIDTH_PS),
            registrations: Vec::new(),
            next_mapping: 1,
            interrupt_log: Vec::new(),
            syscall_log: Vec::new(),
            delivery_log: Vec::new(),
            drop_log: Vec::new(),
            node_events,
            tracer,
            telemetry: MachineTelemetry::default(),
            pool,
            armed,
            armed_total: 0,
            window_enabled: false,
            window_limit: None,
            scratch_fx: NodeEffects::default(),
            scratch_wakeups: NodeEffects::default(),
            slot_of,
            batches_run: 0,
            win_stats: WindowStats::default(),
            profiler: EngineProfiler::new(config.telemetry.profile),
            recorder,
            scratch_flight: Vec::new(),
        }
    }

    /// Number of discrete events handled since construction; a measure of
    /// simulator work, independent of wall-clock (used by `simspeed`).
    pub fn events_processed(&self) -> u64 {
        self.sched.processed()
    }

    /// Events dispatched per node since construction (index = node id) —
    /// a per-node breakdown of [`Machine::events_processed`].
    pub fn node_event_counts(&self) -> &[u64] {
        &self.node_events
    }

    /// Lookahead windows executed. Window formation runs at every
    /// worker count (with one worker the slices execute inline, with
    /// more they fan out to the pool), so this — like the per-cause
    /// close counters in [`Machine::window_stats`] — is worker-invariant
    /// and confirms the window engine actually engaged.
    pub fn parallel_batches(&self) -> u64 {
        self.batches_run
    }

    /// Deterministic window telemetry: per-[`BarrierCause`] close
    /// counters plus depth/participants/events-per-slice histograms.
    /// Worker-invariant, and also published as `engine.windows.*` /
    /// `engine.barrier.*` / `engine.window.*` in
    /// [`Machine::metrics_snapshot`] once any window has closed.
    pub fn window_stats(&self) -> &WindowStats {
        &self.win_stats
    }

    /// The wall-clock engine profile, when `telemetry.profile` is on.
    /// Wall times vary run to run and worker count to worker count, so
    /// they are deliberately NOT part of [`Machine::metrics_snapshot`]
    /// (which must stay worker-invariant) — this report is the only way
    /// out.
    pub fn profile(&self) -> Option<EngineProfileReport> {
        self.profiler.is_enabled().then(|| {
            EngineProfileReport::new(
                &self.profiler,
                self.config.workers,
                self.pool.as_ref().map_or(0, WorkerPool::busy_ns),
            )
        })
    }

    /// The causal flight recorder (recent packet-lifecycle events).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Renders the flight recorder's retained events — the same text
    /// printed when a run panics.
    pub fn flight_dump(&self) -> String {
        self.recorder.render()
    }

    /// The retained causal trail of packets on the lane `src → dst`:
    /// inject → route/reroute/bounce → eject → deliver, `(time, seq)`
    /// sorted.
    pub fn packet_trail(&self, src: NodeId, dst: NodeId) -> Vec<FlightEntry> {
        self.recorder.trail(src.0, dst.0)
    }

    /// The configuration in force.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    // ────────────────────────── kernel services ──────────────────────────

    /// Creates a process on `node`.
    pub fn create_process(&mut self, node: NodeId) -> Pid {
        self.node_mut(node).kernel.create_process()
    }

    /// Allocates `pages` fresh pages in a process, returning the base
    /// virtual address.
    ///
    /// # Errors
    ///
    /// Propagates kernel allocation errors.
    pub fn alloc_pages(&mut self, node: NodeId, pid: Pid, pages: u64) -> Result<VirtAddr, MachineError> {
        let vpn = self.node_mut(node).kernel.alloc_pages(pid, pages)?;
        Ok(vpn.base())
    }

    /// Publishes `[va, va + pages)` of a process as mappable by remote
    /// senders (optionally restricted to one node).
    ///
    /// # Errors
    ///
    /// Propagates kernel export errors.
    pub fn export_buffer(
        &mut self,
        node: NodeId,
        pid: Pid,
        va: VirtAddr,
        pages: u64,
        allowed: Option<NodeId>,
    ) -> Result<ExportId, MachineError> {
        assert_eq!(va.offset(), 0, "exports are page-granular");
        Ok(self
            .node_mut(node)
            .kernel
            .export_buffer(pid, va.page(), pages, allowed)?)
    }

    /// Establishes a virtual memory mapping: the expensive, fully
    /// protection-checked `map` system call of paper §2. Costs
    /// [`MachineConfig::map_syscall_cost`] of simulated time.
    ///
    /// Arbitrary (non-page-aligned) ranges are supported through the
    /// §3.2 split-page mechanism; each source page may end up carrying
    /// two NIPT segments.
    ///
    /// # Errors
    ///
    /// Fails if the send buffer is not mapped, the export does not admit
    /// the sender, or the NIPT cannot hold the required segments.
    pub fn map(&mut self, req: MapRequest) -> Result<MappingId, MachineError> {
        if req.len == 0 {
            return Err(MachineError::EmptyMapping);
        }
        let first_dst_page_index = req.dst_offset / PAGE_SIZE;
        let last_dst_page_index = (req.dst_offset + req.len - 1) / PAGE_SIZE;
        let dst_pages = last_dst_page_index - first_dst_page_index + 1;

        // Receiver half: protection check, pin/record, collect frames.
        let token = self.node_mut(req.dst_node).kernel.grant_in_mapping(
            req.export,
            req.src_node,
            first_dst_page_index,
            dst_pages,
        )?;
        for &frame in &token.frames {
            self.node_mut(req.dst_node).nic.map_in(frame, true)?;
        }

        // Sender half: validate + write-through caching.
        let first_src_vpn = req.src_va.page();
        let last_src_vpn = req.src_va.add(req.len - 1).page();
        let src_pages = last_src_vpn.raw() - first_src_vpn.raw() + 1;
        self.node_mut(req.src_node)
            .kernel
            .prepare_out_mapping(req.src_pid, first_src_vpn, src_pages, req.dst_node, &{
                // Primary destination frame per source page, for the §4.4
                // bookkeeping; split segments add extra records below.
                (0..src_pages)
                    .map(|i| {
                        // First buffer byte living on source page i.
                        let byte = (i * PAGE_SIZE)
                            .saturating_sub(req.src_va.offset())
                            .min(req.len - 1);
                        let idx = (req.dst_offset + byte) / PAGE_SIZE;
                        token.frames[(idx - first_dst_page_index) as usize]
                    })
                    .collect::<Vec<_>>()
            })?;
        self.flush_tlb(req.src_node);

        // Build the NIPT segments by walking both sides simultaneously,
        // splitting at every page boundary of either side.
        let mut pos = 0u64;
        while pos < req.len {
            let src_byte = req.src_va.add(pos);
            let src_vpn = src_byte.page();
            let src_frame = self.node(req.src_node).kernel.frame_of(req.src_pid, src_vpn)?;
            let src_off = src_byte.offset();

            let dst_byte = req.dst_offset + pos;
            let dst_page_index = dst_byte / PAGE_SIZE;
            let dst_frame = token.frames[(dst_page_index - first_dst_page_index) as usize];
            let dst_off = dst_byte % PAGE_SIZE;

            let chunk = (PAGE_SIZE - src_off)
                .min(PAGE_SIZE - dst_off)
                .min(req.len - pos);

            let seg = OutSegment {
                src_start: src_off,
                src_end: src_off + chunk,
                dst_node: req.dst_node,
                dst_base: dst_frame.base().add(dst_off),
                policy: req.policy,
            };
            self.node_mut(req.src_node)
                .nic
                .map_out_segment(src_frame, seg)?;
            self.node_mut(req.src_node)
                .kernel
                .add_outgoing_record(OutgoingRecord {
                    dst_node: req.dst_node,
                    dst_frame,
                    pid: req.src_pid,
                    vpn: src_vpn,
                    src_frame,
                });
            pos += chunk;
        }

        let id = MappingId(self.next_mapping);
        self.next_mapping += 1;
        self.registrations.push(Registration { id, req });
        self.tracer.emit(
            self.now(),
            TraceLevel::Info,
            ComponentId::MACHINE,
            TraceData::PageMapped {
                node: req.dst_node.0,
                page: req.src_va.page().raw(),
            },
        );

        // The map call is the deliberately slow, rare operation.
        let done = self.now() + self.config.map_syscall_cost;
        self.run_until(done);
        Ok(id)
    }

    /// Tears down a mapping established by [`Machine::map`]: removes the
    /// sender's NIPT segments and kernel records, restores write-back
    /// caching on source pages with no remaining outgoing mappings, and
    /// releases the receiver's mapped-in state when no other sender
    /// imports those frames. Costs half a `map` call of kernel time.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::EmptyMapping`] if `id` is unknown (or
    /// already unmapped).
    pub fn unmap(&mut self, id: MappingId) -> Result<(), MachineError> {
        let pos = self
            .registrations
            .iter()
            .position(|r| r.id == id)
            .ok_or(MachineError::EmptyMapping)?;
        let req = self.registrations.remove(pos).req;

        // Walk the mapped range exactly as map() did, clearing segments.
        let mut dst_frames = Vec::new();
        let mut pos_b = 0u64;
        while pos_b < req.len {
            let src_byte = req.src_va.add(pos_b);
            let src_vpn = src_byte.page();
            let src_frame = self.node(req.src_node).kernel.frame_of(req.src_pid, src_vpn)?;
            let dst_byte = req.dst_offset + pos_b;
            let dst_off = dst_byte % PAGE_SIZE;
            let chunk = (PAGE_SIZE - src_byte.offset())
                .min(PAGE_SIZE - dst_off)
                .min(req.len - pos_b);
            if let Some(seg) = self.nodes[req.src_node.0 as usize]
                .nic
                .unmap_out(src_frame, src_byte.offset())
            {
                dst_frames.push(seg.dst_base.page());
            }
            let removed = self.nodes[req.src_node.0 as usize]
                .kernel
                .remove_outgoing(req.src_pid, src_vpn, req.dst_node);
            dst_frames.extend(removed.iter().map(|r| r.dst_frame));
            // Restore write-back caching if this page has no other
            // outgoing segments left.
            let frame_clear = self.nodes[req.src_node.0 as usize]
                .nic
                .nipt()
                .entry(src_frame)
                .is_none_or(|e| !e.is_mapped_out());
            if frame_clear {
                if let Some(proc) = self.nodes[req.src_node.0 as usize]
                    .kernel
                    .process_mut(req.src_pid)
                {
                    proc.page_table_mut().set_cache_mode(src_vpn, CacheMode::WriteBack);
                }
            }
            pos_b += chunk;
        }
        self.flush_tlb(req.src_node);
        // remove_outgoing may have dropped armed invalidations.
        self.refresh_armed(req.src_node);

        dst_frames.sort_unstable();
        dst_frames.dedup();
        for frame in dst_frames {
            let free = self.nodes[req.dst_node.0 as usize]
                .kernel
                .release_import(frame, req.src_node);
            if free {
                let _ = self.nodes[req.dst_node.0 as usize].nic.map_in(frame, false);
            }
        }

        self.tracer.emit(
            self.now(),
            TraceLevel::Info,
            ComponentId::MACHINE,
            TraceData::PageUnmapped {
                node: req.dst_node.0,
                page: req.src_va.page().raw(),
            },
        );
        let done = self.now() + self.config.map_syscall_cost / 2;
        self.run_until(done);
        Ok(())
    }

    /// Maps the command page controlling the page backing `data_va` into
    /// the process's address space, returning the command page's virtual
    /// base address (§4.2). Accesses at offset `o` of the command page
    /// talk to the NIC about offset `o` of the data page.
    ///
    /// # Errors
    ///
    /// Fails if `data_va` is not mapped.
    pub fn map_command_page(
        &mut self,
        node: NodeId,
        pid: Pid,
        data_va: VirtAddr,
    ) -> Result<VirtAddr, MachineError> {
        let pages_per_node = self.config.pages_per_node;
        let frame = self.node(node).kernel.frame_of(pid, data_va.page())?;
        let kernel = &mut self.node_mut(node).kernel;
        let proc = kernel
            .process_mut(pid)
            .ok_or(MachineError::Os(OsError::NoSuchProcess(pid)))?;
        let vpn = proc.reserve_vpns(1);
        // Command "frames" live just past installed memory, at the fixed
        // distance the hardware decodes.
        let cmd_frame = PageNum::new(pages_per_node + frame.raw());
        proc.page_table_mut().map(
            vpn,
            cmd_frame,
            shrimp_mem::PageFlags {
                protection: shrimp_mem::Protection::ReadWrite,
                cache_mode: CacheMode::WriteThrough, // uncached in effect; bypassed below
                pinned: true,
            },
        );
        Ok(vpn.base())
    }

    // ───────────────────────── program execution ─────────────────────────

    /// Binds a program to `(node, pid)` as its CPU context.
    pub fn load_program(&mut self, node: NodeId, pid: Pid, program: Program) {
        let cpu = Cpu::with_config(program, self.config.cpu);
        self.node_mut(node).cpus.insert(pid, cpu);
    }

    /// Sets a register of a process's CPU (experiment setup).
    ///
    /// # Panics
    ///
    /// Panics if the process has no loaded program.
    pub fn set_reg(&mut self, node: NodeId, pid: Pid, reg: Reg, value: u32) {
        self.node_mut(node)
            .cpus
            .get_mut(&pid)
            .expect("process has no loaded program")
            .set_reg(reg, value);
    }

    /// Read access to a process's CPU (instruction counters, registers).
    pub fn cpu(&self, node: NodeId, pid: Pid) -> Option<&Cpu> {
        self.node(node).cpus.get(&pid)
    }

    /// Points a process's CPU at a label (reusing one program for several
    /// routines).
    ///
    /// # Panics
    ///
    /// Panics if the process has no loaded program or the label is
    /// unknown.
    pub fn jump_to_label(&mut self, node: NodeId, pid: Pid, label: &str) {
        self.node_mut(node)
            .cpus
            .get_mut(&pid)
            .expect("process has no loaded program")
            .jump_to_label(label);
    }

    /// Makes a process runnable and kicks its node's CPU.
    pub fn start(&mut self, node: NodeId, pid: Pid) {
        let now = self.now();
        let n = self.node_mut(node);
        n.sched.add(pid);
        let at = now.max(n.cpu_busy_until);
        self.push_event(at, node.0, NodeEvent::CpuStep);
    }

    /// True when every loaded CPU has halted.
    pub fn all_halted(&self) -> bool {
        self.nodes
            .iter()
            .flat_map(|n| n.cpus.values())
            .all(|c| c.is_halted())
    }

    // ───────────────────────── host-level data ops ───────────────────────

    /// Writes bytes through the full store datapath (translation, cache,
    /// bus, NIC snooping) at the current time, word by word. Advances
    /// simulated time past the last bus transaction.
    ///
    /// # Errors
    ///
    /// Propagates translation and protection errors.
    ///
    /// # Panics
    ///
    /// Panics unless `va` and `data.len()` are word-aligned.
    pub fn poke(
        &mut self,
        node: NodeId,
        pid: Pid,
        va: VirtAddr,
        data: &[u8],
    ) -> Result<(), MachineError> {
        assert!(va.is_word_aligned(), "poke must be word-aligned");
        assert_eq!(data.len() % WORD_SIZE as usize, 0, "poke length must be whole words");
        let mut t = self.now();
        for (i, word) in data.chunks_exact(4).enumerate() {
            let value = u32::from_le_bytes(word.try_into().expect("4-byte chunk"));
            let addr = va.add(i as u64 * WORD_SIZE);
            t = self.store_through(node, pid, t, addr, value)?;
        }
        self.run_until(t);
        Ok(())
    }

    /// Reads process memory without advancing time (experiment
    /// observation, not part of the modelled workload).
    ///
    /// # Errors
    ///
    /// Propagates translation errors.
    pub fn peek(
        &self,
        node: NodeId,
        pid: Pid,
        va: VirtAddr,
        len: u64,
    ) -> Result<Vec<u8>, MachineError> {
        let n = self.node(node);
        let proc = n
            .kernel
            .process(pid)
            .ok_or(MachineError::Os(OsError::NoSuchProcess(pid)))?;
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = 0;
        while pos < len {
            let a = va.add(pos);
            let t = proc.page_table().translate_read(a)?;
            let chunk = (PAGE_SIZE - a.offset()).min(len - pos);
            out.extend_from_slice(&n.mem.read_bytes(t.phys, chunk)?);
            pos += chunk;
        }
        Ok(out)
    }

    /// Reads physical memory directly (tests and benches).
    ///
    /// # Errors
    ///
    /// Propagates range errors.
    pub fn peek_phys(&self, node: NodeId, addr: PhysAddr, len: u64) -> Result<Vec<u8>, MachineError> {
        Ok(self.node(node).mem.read_bytes(addr, len)?)
    }

    /// Translates a virtual address through a process page table without
    /// touching the TLB or advancing time. Workload harnesses use this
    /// to attribute [`DeliveryRecord`]s (which carry physical
    /// destinations) back to the session whose receive buffer they
    /// landed in.
    ///
    /// # Errors
    ///
    /// Propagates translation errors; `Os(NoSuchProcess)` when `pid` is
    /// unknown on `node`.
    pub fn translate(
        &self,
        node: NodeId,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<PhysAddr, MachineError> {
        let n = self.node(node);
        let proc = n
            .kernel
            .process(pid)
            .ok_or(MachineError::Os(OsError::NoSuchProcess(pid)))?;
        Ok(proc.page_table().translate_read(va)?.phys)
    }

    // ──────────────────────── session accounting ─────────────────────────

    /// Records a workload session opening with `node` as its source.
    /// Pure accounting — no events, no time: the counters surface in
    /// [`Machine::metrics_snapshot`] (only once nonzero, so runs without
    /// sessions keep their pinned snapshots byte-identical).
    pub fn note_session_opened(&mut self, node: NodeId) {
        self.node_mut(node).sessions_opened += 1;
    }

    /// Records a workload session closing (pairs with
    /// [`Machine::note_session_opened`]).
    ///
    /// # Panics
    ///
    /// Panics if the node has no open session.
    pub fn note_session_closed(&mut self, node: NodeId) {
        let n = self.node_mut(node);
        assert!(n.sessions_opened > n.sessions_closed, "no open session on {node:?}");
        n.sessions_closed += 1;
    }

    /// Sessions currently open on `node` (opened − closed).
    pub fn sessions_open(&self, node: NodeId) -> u64 {
        self.node(node).sessions_open()
    }

    /// Runs until the delivery log grows past `seen` records or the
    /// machine idles/reaches `limit`; true when a new delivery arrived.
    /// The closed-loop generator's blocking wait: like
    /// [`Machine::run_until_pred`] it runs windowless, so outcomes are
    /// identical for any worker count.
    pub fn run_until_new_delivery(&mut self, limit: SimTime, seen: usize) -> bool {
        self.run_until_pred(limit, |m| m.delivery_log.len() > seen)
    }

    // ───────────────────────────── paging ────────────────────────────────

    /// Starts the §4.4 pageout protocol for a frame of `node`.
    ///
    /// # Errors
    ///
    /// Propagates kernel protocol errors (pinned frame, no importers,
    /// already in progress).
    pub fn begin_pageout(&mut self, node: NodeId, frame: PageNum) -> Result<(), MachineError> {
        let msgs = self.node_mut(node).kernel.begin_pageout(frame)?;
        // No sticky serial fallback: the invalidations this protocol
        // arms are tracked per node (`armed`), and the window gate
        // refuses to open while any are outstanding, so the §4.4
        // reestablish path only ever runs between windows.
        let latency = self.config.kernel_msg_latency;
        let at = self.now() + latency;
        for (dst, msg) in msgs {
            self.push_event(at, dst.0, NodeEvent::KernelMsg { msg });
        }
        Ok(())
    }

    /// True once every importer acknowledged (run the machine first).
    pub fn pageout_complete(&self, node: NodeId, frame: PageNum) -> bool {
        self.node(node).kernel.pageout_complete(frame)
    }

    /// Finishes a complete pageout, freeing the frame.
    ///
    /// # Errors
    ///
    /// Propagates kernel protocol errors.
    pub fn complete_pageout(&mut self, node: NodeId, frame: PageNum) -> Result<(), MachineError> {
        let n = self.node_mut(node);
        n.kernel.complete_pageout(frame)?;
        n.nic.map_in(frame, false)?;
        self.flush_tlb(node);
        Ok(())
    }

    // ──────────────────────────── event loop ─────────────────────────────

    /// Runs until `limit`, processing machine and mesh events in time
    /// order. If anything panics mid-run (an assertion deep in a
    /// component, say), the flight recorder's recent events are dumped
    /// to stderr before the panic resumes.
    pub fn run_until(&mut self, limit: SimTime) {
        self.window_enabled = true;
        self.window_limit = Some(limit);
        let bound = StepBound::until(limit);
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while step(self, bound) == StepOutcome::Ran {}
        }));
        if let Err(payload) = run {
            self.dump_flight_on_panic();
            std::panic::resume_unwind(payload);
        }
        self.window_enabled = false;
        self.window_limit = None;
        self.sched.advance_clock(limit);
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// Runs until no machine or mesh events remain (all CPUs halted or
    /// spinning CPUs excepted — a spinning CPU never quiesces, so this
    /// errors if more than `MAX_IDLE_STEPS` instants fire without the
    /// queues emptying).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoQuiescence`] if the machine keeps
    /// generating events (e.g. a CPU is spin-waiting forever).
    pub fn run_until_idle(&mut self) -> Result<(), MachineError> {
        const MAX_IDLE_STEPS: u64 = 50_000_000;
        self.window_enabled = true;
        self.window_limit = None;
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut steps = 0u64;
            loop {
                steps += 1;
                if steps > MAX_IDLE_STEPS {
                    return Err(MachineError::NoQuiescence);
                }
                match step(self, StepBound::unbounded()) {
                    StepOutcome::Idle => return Ok(()),
                    StepOutcome::Ran => {}
                    StepOutcome::PastLimit => unreachable!("unbounded step has no limit"),
                }
            }
        }));
        match run {
            Ok(result) => {
                self.window_enabled = false;
                result
            }
            Err(payload) => {
                self.dump_flight_on_panic();
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Prints the flight recorder's retained events to stderr; called on
    /// the panic path of the run wrappers so a failing assertion ships
    /// its causal context.
    fn dump_flight_on_panic(&self) {
        if self.recorder.is_enabled() && self.recorder.recorded() > 0 {
            eprintln!("{}", self.recorder.render());
        }
    }

    /// Runs until `pred` holds, checking between instants, up to
    /// `limit`. Returns whether the predicate held. ([`step`] never
    /// splits an instant, so the predicate always observes a consistent
    /// inter-instant state.)
    pub fn run_until_pred(&mut self, limit: SimTime, mut pred: impl FnMut(&Machine) -> bool) -> bool {
        // Windows stay off: a window executes a whole `[t, t+L)` span
        // between predicate checks, which would let the run overshoot
        // the state the predicate is waiting for.
        self.window_enabled = false;
        let bound = StepBound::until(limit);
        loop {
            if pred(self) {
                return true;
            }
            match step(self, bound) {
                StepOutcome::Idle => return pred(self),
                StepOutcome::PastLimit => return false,
                StepOutcome::Ran => {}
            }
        }
    }

    // ──────────────────────── event dispatching ──────────────────────────

    /// Schedules a machine event on its target node's queue shard.
    fn push_event(&mut self, at: SimTime, node: u16, ev: NodeEvent) {
        self.sched.push_shard(node as u32, at, Event { node, ev });
    }

    /// Re-reads one node's armed-invalidation count after anything that
    /// may have changed it (a §4.4 kernel message, a serviced write
    /// fault, an unmap).
    fn refresh_armed(&mut self, node: NodeId) {
        let now = self.nodes[node.0 as usize].kernel.armed_invalidations();
        let slot = &mut self.armed[node.0 as usize];
        self.armed_total = self.armed_total + now - *slot;
        *slot = now;
    }

    /// Routes one popped event: through a lookahead window when the
    /// window engine applies, inline otherwise. Windows form at every
    /// worker count — with one worker the slices execute inline on this
    /// thread — so the window/barrier telemetry is worker-invariant.
    fn dispatch_event(&mut self, t: SimTime, ev: Event) {
        // A window is sound only when no §4.4 invalidation is armed
        // anywhere (an armed node's write fault reaches across nodes
        // with zero delay) and the lead event is windowable: CpuStep and
        // KernelMsg touch only their own node, while DmaComplete pumps
        // the whole network and the wakeup events touch the mesh
        // (DESIGN.md §5e).
        if self.window_enabled
            && matches!(ev.ev, NodeEvent::CpuStep | NodeEvent::KernelMsg { .. })
        {
            if self.armed_total == 0 {
                match self.window_end(t) {
                    Ok((w_end, clamp)) => {
                        self.run_window(t, ev, w_end, clamp);
                        return;
                    }
                    // The window could not even open (a mesh event is
                    // due at or before `t`): a zero-length close, with
                    // the clamp as its cause.
                    Err(cause) => self.win_stats.note_close(cause),
                }
            } else {
                // Refused outright: an armed invalidation somewhere
                // keeps every window closed.
                self.win_stats.note_close(BarrierCause::ArmedInvalidation);
            }
        }
        self.node_events[ev.node as usize] += 1;
        self.execute_inline(t, ev.node, ev.ev);
    }

    /// The exclusive end of a lookahead window opening at `t`: the
    /// static bound `t + L`, clamped to the next mesh event (the mesh
    /// must advance before anything at or after it) and the run bound.
    /// `Ok` carries the end plus what bounded it (for barrier-cause
    /// attribution); `Err` carries the cause when the window would be
    /// empty. Strict `<` comparisons keep the computed end identical to
    /// a plain three-way `min`.
    fn window_end(&self, t: SimTime) -> Result<(SimTime, BarrierCause), BarrierCause> {
        let mut w = t + self.config.lookahead();
        let mut cause = BarrierCause::Horizon;
        if let Some(mt) = Component::next_event_time(&self.mesh) {
            if mt < w {
                w = mt;
                cause = BarrierCause::MeshEventClamp;
            }
        }
        if let Some(limit) = self.window_limit {
            // Events *at* the limit may still run.
            let l = limit + SimDuration::from_picos(1);
            if l < w {
                w = l;
                cause = BarrierCause::LimitClamp;
            }
        }
        if w > t {
            Ok((w, cause))
        } else {
            Err(cause)
        }
    }

    /// Runs one lookahead window `[t, w_end)`: drains every windowable
    /// event in the span, fans the participating nodes out across the
    /// worker pool, then replays all recorded consequences in exact
    /// global `(time, seq)` order so the machine state, queue and logs
    /// evolve byte-identically to sequential execution (DESIGN.md §5e).
    fn run_window(&mut self, t: SimTime, first: Event, w_end: SimTime, clamp: BarrierCause) {
        self.batches_run += 1;
        let first_seq = self.sched.last_popped_seq();

        // ── Formation: group drained events per node, drain order. ──
        let p_form = self.profiler.begin();
        let mut tasks: Vec<(u16, Vec<WindowEntry>)> = Vec::new();
        self.slot_of[first.node as usize] = 0;
        tasks.push((first.node, vec![(t, first_seq, first.ev)]));
        for (time, seq, _, e) in self
            .sched
            .drain_window(w_end, |e| {
                matches!(e.ev, NodeEvent::CpuStep | NodeEvent::KernelMsg { .. })
            })
        {
            let slot = self.slot_of[e.node as usize];
            if slot >= 0 {
                tasks[slot as usize].1.push((time, seq, e.ev));
            } else {
                self.slot_of[e.node as usize] = tasks.len() as i32;
                tasks.push((e.node, vec![(time, seq, e.ev)]));
            }
        }
        for &(node, _) in &tasks {
            self.slot_of[node as usize] = -1;
        }
        self.profiler.end(EnginePhase::Formation, p_form);

        // ── Execution: ship slots 1.. to workers, run slot 0 here
        // (with one worker there is no pool: every slice runs inline,
        // which is byte-identical — slices of one window are causally
        // independent by construction). ──
        let p_exec = self.profiler.begin();
        let n = tasks.len();
        let mut outcomes: Vec<Option<NodeWindowOutcome>> = (0..n).map(|_| None).collect();
        let mut owners: Vec<u16> = Vec::with_capacity(n);
        {
            let mut it = tasks.into_iter();
            let (first_node, first_entries) = it.next().expect("window has a lead");
            owners.push(first_node);
            if let Some(pool) = self.pool.as_mut() {
                let base = self.nodes.as_mut_ptr();
                for (slot, (node, entries)) in it.enumerate() {
                    owners.push(node);
                    // SAFETY: window nodes are pairwise distinct
                    // (`slot_of`), the Vec is not resized while jobs are
                    // in flight, and all results are received below
                    // before the nodes are touched.
                    unsafe { pool.submit(slot + 1, base.add(node as usize), entries, w_end) };
                }
                outcomes[0] = Some(execute_window(
                    &mut self.nodes[first_node as usize],
                    &self.config,
                    first_entries,
                    w_end,
                ));
                for _ in 1..n {
                    let (slot, oc) = pool.recv();
                    outcomes[slot] = Some(oc);
                }
            } else {
                outcomes[0] = Some(execute_window(
                    &mut self.nodes[first_node as usize],
                    &self.config,
                    first_entries,
                    w_end,
                ));
                for (slot, (node, entries)) in it.enumerate() {
                    owners.push(node);
                    outcomes[slot + 1] = Some(execute_window(
                        &mut self.nodes[node as usize],
                        &self.config,
                        entries,
                        w_end,
                    ));
                }
            }
        }
        let mut outcomes: Vec<NodeWindowOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("one outcome per slot"))
            .collect();
        self.profiler.end(EnginePhase::Execution, p_exec);

        // Window telemetry: what closed this window, and its shape.
        // The slice-close set is deterministic (each slice's cause
        // depends only on that node's events), so the attribution is
        // worker-invariant: any slice barrier outranks the clamp, with
        // a fixed Fault > KernelMsg > MeshWakeup priority across
        // slices.
        let (mut fault, mut kmsg, mut wake) = (false, false, false);
        for oc in &outcomes {
            match oc.close {
                Some(SliceClose::Fault) => fault = true,
                Some(SliceClose::KernelMsg) => kmsg = true,
                Some(SliceClose::MeshWakeup) => wake = true,
                None => {}
            }
        }
        let cause = if fault {
            BarrierCause::Fault
        } else if kmsg {
            BarrierCause::KernelMsg
        } else if wake {
            BarrierCause::MeshWakeup
        } else {
            clamp
        };
        self.win_stats.note_close(cause);
        self.win_stats.participants.record(n as u64);
        for oc in &outcomes {
            self.win_stats.slice_events.record(oc.records.len() as u64);
        }

        // ── Commit: replay in global (time, seq) order. ──
        let p_commit = self.profiler.begin();
        // Unexecuted drained entries go back under their original
        // sequence numbers first, so the queue is whole before any
        // effect lands on it.
        for (slot, oc) in outcomes.iter_mut().enumerate() {
            let node = owners[slot];
            for (time, seq, ev) in oc.leftovers.drain(..) {
                self.sched.push_with_seq(node as u32, time, seq, Event { node, ev });
            }
        }
        // Merge heap over (time, seq, slot, record): roots carry their
        // real queue seqs; children enter when their parent is replayed,
        // under fresh virtual seqs above every real one — exactly the
        // order the sequential queue would have popped them.
        let mut merge: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, u32, u32)>> =
            std::collections::BinaryHeap::new();
        for (slot, oc) in outcomes.iter().enumerate() {
            for (i, rec) in oc.records.iter().enumerate() {
                if rec.root {
                    merge.push(std::cmp::Reverse((rec.time, rec.seq, slot as u32, i as u32)));
                }
            }
        }
        let mut vseq = self.sched.seq_watermark();
        let mut executed = 0u64;
        let mut max_t = t;
        while let Some(std::cmp::Reverse((time, _, slot, rec_idx))) = merge.pop() {
            executed += 1;
            max_t = max_t.max(time);
            let node = owners[slot as usize];
            self.node_events[node as usize] += 1;
            let (start, len, kernel_msg) = {
                let rec = &outcomes[slot as usize].records[rec_idx as usize];
                (rec.act_start as usize, rec.act_len as usize, rec.kernel_msg)
            };
            for i in start..start + len {
                let (action, child) = {
                    let oc = &mut outcomes[slot as usize];
                    (oc.actions[i].take().expect("each action replays once"), oc.child_of[i])
                };
                match action {
                    Action::Push { at, node: dst, ev } => {
                        if child >= 0 {
                            // Pre-executed inside the window: enters the
                            // replay order instead of the real queue.
                            let ct = outcomes[slot as usize].records[child as usize].time;
                            merge.push(std::cmp::Reverse((ct, vseq, slot, child as u32)));
                            vseq += 1;
                        } else {
                            self.push_event(at, dst, ev);
                        }
                    }
                    Action::Syscall { pid, code } => {
                        self.syscall_log.push((time, NodeId(node), pid, code));
                    }
                    Action::Fault { pid, error } => {
                        self.handle_fault(time, NodeId(node), pid, error);
                    }
                    Action::PumpNetwork => unreachable!("window events never pump the network"),
                }
            }
            if kernel_msg {
                self.refresh_armed(NodeId(node));
            }
        }
        // The lead pop was already counted by the scheduler.
        self.sched.note_processed(executed - 1);
        self.sched.advance_clock(max_t);
        self.win_stats.depth.record(executed);
        self.profiler.end(EnginePhase::Commit, p_commit);
    }

    /// Executes one event on the machine thread (the sequential path,
    /// and every mesh-coupled event in parallel mode).
    fn execute_inline(&mut self, t: SimTime, node: u16, ev: NodeEvent) {
        match ev {
            NodeEvent::NicHousekeep => {
                let n = &mut self.nodes[node as usize];
                n.housekeep_wakeup = None;
                Component::advance(n, t);
                self.schedule_node_wakeups(t, NodeId(node));
                // A housekeep may end an injected FIFO stall or arm a
                // retransmit replay; resume acceptance and push replays.
                self.deliver_ejections(t, NodeId(node));
                self.drain_outgoing(t, NodeId(node));
            }
            NodeEvent::DrainOutgoing => {
                self.nodes[node as usize].drain_wakeup = None;
                self.drain_outgoing(t, NodeId(node));
            }
            NodeEvent::PopIncoming => {
                self.nodes[node as usize].pop_wakeup = None;
                self.pop_incoming(t, NodeId(node));
            }
            local => {
                let was_kernel_msg = matches!(local, NodeEvent::KernelMsg { .. });
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.nodes[node as usize].execute(t, local, &self.config, &mut fx);
                self.apply_effects(t, NodeId(node), &mut fx);
                self.scratch_fx = fx;
                if was_kernel_msg {
                    // A §4.4 message may have armed an invalidation.
                    self.refresh_armed(NodeId(node));
                }
            }
        }
    }

    /// Applies a node's recorded effects, in recording order.
    fn apply_effects(&mut self, t: SimTime, node: NodeId, fx: &mut NodeEffects) {
        for action in fx.actions.drain(..) {
            match action {
                Action::Push { at, node, ev } => self.push_event(at, node, ev),
                Action::Syscall { pid, code } => self.syscall_log.push((t, node, pid, code)),
                Action::Fault { pid, error } => self.handle_fault(t, node, pid, error),
                Action::PumpNetwork => self.pump_network(t),
            }
        }
    }

    // ────────────────────────── network pumping ──────────────────────────

    fn pump_network(&mut self, t: SimTime) {
        // The run loops interleave mesh events natively (they take
        // min(machine events, mesh events)), so no wakeup needs to be
        // scheduled here — pumping happens after every mesh advance.
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u16);
            self.deliver_ejections(t, id);
            self.drain_outgoing(t, id);
            self.collect_interrupts(t, id);
        }
    }

    fn deliver_ejections(&mut self, t: SimTime, node: NodeId) {
        loop {
            let n = &mut self.nodes[node.0 as usize];
            if !n.nic.can_accept_from_network_at(t) {
                break;
            }
            match self.mesh.peek_ejection(node) {
                Some(arrival) if arrival <= t => {
                    let (pkt, arrival) = self.mesh.eject(node).expect("peeked ejection");
                    if self.recorder.is_enabled() {
                        self.recorder.record(
                            node.0 as usize,
                            TraceEvent {
                                time: arrival.max(t),
                                level: TraceLevel::Info,
                                component: ComponentId::nic(node.0),
                                data: TraceData::PacketEjected {
                                    src: pkt.src().0,
                                    dst: pkt.dst().0,
                                    bytes: pkt.wire_len() as u32,
                                },
                            },
                        );
                    }
                    let n = &mut self.nodes[node.0 as usize];
                    if let Err(e) = n.nic.accept_packet(arrival.max(t), pkt) {
                        self.drop_log.push((t, node, e));
                    }
                }
                _ => break,
            }
        }
        if let Some(r) = self.nodes[node.0 as usize].nic.incoming_ready_at() {
            self.push_pop_wakeup(t, node, r.max(t));
        }
    }

    /// Schedules a deduplicated PopIncoming wakeup.
    fn push_pop_wakeup(&mut self, t: SimTime, node: NodeId, at: SimTime) {
        let mut fx = std::mem::take(&mut self.scratch_wakeups);
        self.nodes[node.0 as usize].due_pop_wakeup(t, at, &mut fx);
        self.apply_pushes(&mut fx);
        self.scratch_wakeups = fx;
    }

    fn drain_outgoing(&mut self, t: SimTime, node: NodeId) {
        loop {
            if !self.mesh.can_inject(node) {
                // Mesh backpressure: retried on the next mesh event.
                break;
            }
            match self.nodes[node.0 as usize].drain_outbound(t) {
                Some(pkt) => {
                    if self.tracer.wants(TraceLevel::Info) {
                        let inner = pkt.payload();
                        self.tracer.emit(
                            t,
                            TraceLevel::Info,
                            ComponentId::nic(node.0),
                            TraceData::PacketInjected {
                                src: pkt.src().0,
                                dst: pkt.dst().0,
                                bytes: inner.wire_len() as u32,
                                seq: inner.link().map(|l| l.seq),
                            },
                        );
                    }
                    if self.recorder.is_enabled() {
                        let inner = pkt.payload();
                        self.recorder.record(
                            node.0 as usize,
                            TraceEvent {
                                time: t,
                                level: TraceLevel::Info,
                                component: ComponentId::nic(node.0),
                                data: TraceData::PacketInjected {
                                    src: pkt.src().0,
                                    dst: pkt.dst().0,
                                    bytes: inner.wire_len() as u32,
                                    seq: inner.link().map(|l| l.seq),
                                },
                            },
                        );
                    }
                    if self.mesh.try_inject(t, pkt).is_err() {
                        debug_assert!(false, "can_inject checked above");
                        break;
                    }
                }
                None => break,
            }
        }
        self.schedule_node_wakeups(t, node);
    }

    fn pop_incoming(&mut self, t: SimTime, node: NodeId) {
        loop {
            let n = &mut self.nodes[node.0 as usize];
            match n.nic.pop_incoming(t) {
                Some(Ok(delivery)) => {
                    let start = delivery.ready_at.max(t);
                    let grant = n
                        .eisa
                        .dma_write(start, delivery.dst_addr, delivery.data.len() as u64)
                        .grant;
                    if self.tracer.wants(TraceLevel::Info) {
                        let bytes = delivery.data.len() as u32;
                        let c = ComponentId::nic(node.0);
                        self.tracer.emit(
                            grant.start,
                            TraceLevel::Info,
                            c,
                            TraceData::DmaStart { node: node.0, bytes },
                        );
                        self.tracer.emit(
                            grant.end,
                            TraceLevel::Info,
                            c,
                            TraceData::DmaEnd { node: node.0, bytes },
                        );
                        self.tracer.emit(
                            grant.end,
                            TraceLevel::Info,
                            c,
                            TraceData::PacketDelivered {
                                src: delivery.src.0,
                                dst: node.0,
                                bytes,
                            },
                        );
                    }
                    if self.config.telemetry.latency {
                        self.telemetry.record(LatencyRecord {
                            node,
                            src: delivery.src,
                            bytes: delivery.data.len() as u64,
                            born: delivery.stamp.born,
                            injected: delivery.stamp.injected,
                            accepted: delivery.stamp.accepted,
                            dma_start: grant.start,
                            dma_end: grant.end,
                        });
                    }
                    if self.recorder.is_enabled() {
                        self.recorder.record(
                            node.0 as usize,
                            TraceEvent {
                                time: grant.end,
                                level: TraceLevel::Info,
                                component: ComponentId::nic(node.0),
                                data: TraceData::PacketDelivered {
                                    src: delivery.src.0,
                                    dst: node.0,
                                    bytes: delivery.data.len() as u32,
                                },
                            },
                        );
                    }
                    self.delivery_log.push(DeliveryRecord {
                        time: grant.end,
                        node,
                        dst_addr: delivery.dst_addr,
                        len: delivery.data.len() as u64,
                        src: delivery.src,
                    });
                    self.push_event(
                        grant.end,
                        node.0,
                        NodeEvent::DmaComplete {
                            addr: delivery.dst_addr,
                            data: delivery.data,
                        },
                    );
                }
                Some(Err(e)) => self.drop_log.push((t, node, e)),
                None => break,
            }
        }
        // Space freed: blocked ejections may now proceed.
        self.deliver_ejections(t, node);
        // Acks/nacks minted while accepting those ejections must go out
        // now — the drain wakeup filter skips same-instant readiness.
        // With retransmission off this is never taken.
        if self.nodes[node.0 as usize].nic.has_pending_control() {
            self.drain_outgoing(t, node);
        }
        self.collect_interrupts(t, node);
    }

    fn collect_interrupts(&mut self, t: SimTime, node: NodeId) {
        for irq in self.nodes[node.0 as usize].nic.take_interrupts() {
            self.interrupt_log.push((t, node, irq));
        }
    }

    fn schedule_node_wakeups(&mut self, t: SimTime, node: NodeId) {
        let mut fx = std::mem::take(&mut self.scratch_wakeups);
        self.nodes[node.0 as usize].schedule_wakeups(t, &mut fx);
        self.apply_pushes(&mut fx);
        self.scratch_wakeups = fx;
    }

    /// Applies a wakeup-only effect list (nothing but event pushes).
    fn apply_pushes(&mut self, fx: &mut NodeEffects) {
        for action in fx.actions.drain(..) {
            match action {
                Action::Push { at, node, ev } => self.push_event(at, node, ev),
                other => unreachable!("wakeup scheduling only pushes events, got {other:?}"),
            }
        }
    }

    // ─────────────────────────── fault service ───────────────────────────

    fn handle_fault(&mut self, t: SimTime, node: NodeId, pid: Pid, error: MemError) {
        if let MemError::ProtectionViolation { addr, write: true } = error {
            if let Ok(rec) = self.nodes[node.0 as usize].kernel.handle_write_fault(pid, addr) {
                // Re-establish the invalidated mapping (§4.4): re-run
                // the receiver grant for the covered pages and rewrite
                // the NIPT segments, then resume the faulting store.
                // (This mutates the destination node with zero delay —
                // sound only because the armed-invalidation gate keeps
                // every lookahead window closed while a write fault can
                // take this path.)
                let ok = self.reestablish(node, pid, rec);
                let cost = self.config.fault_cost
                    + self.config.kernel_msg_latency * 2
                    + self.config.map_syscall_cost / 4;
                if ok {
                    let resume = t + cost;
                    let n = &mut self.nodes[node.0 as usize];
                    n.cpu_busy_until = resume;
                    self.push_event(resume, node.0, NodeEvent::CpuStep);
                    self.flush_tlb(node);
                    self.refresh_armed(node);
                    return;
                }
            }
        }
        // Unserviceable fault: the process is killed.
        let n = &mut self.nodes[node.0 as usize];
        n.sched.remove(pid);
        n.running = None;
        self.syscall_log.push((t, node, pid, u32::MAX));
        self.push_event(t, node.0, NodeEvent::CpuStep);
        self.refresh_armed(node);
    }

    fn reestablish(&mut self, node: NodeId, pid: Pid, rec: OutgoingRecord) -> bool {
        let Some(reg) = self
            .registrations
            .iter()
            .find(|r| {
                r.req.src_node == node
                    && r.req.src_pid == pid
                    && r.req.src_va.page().raw() <= rec.vpn.raw()
                    && rec.vpn.raw()
                        <= r.req.src_va.add(r.req.len - 1).page().raw()
            })
            .cloned()
        else {
            return false;
        };
        let req = reg.req;
        // Which destination pages does this source page touch?
        let page_rel = rec.vpn.raw() - req.src_va.page().raw();
        let first_byte = (page_rel * PAGE_SIZE).saturating_sub(req.src_va.offset());
        let last_byte = ((page_rel + 1) * PAGE_SIZE - 1 - req.src_va.offset()).min(req.len - 1);
        let first_dst_page = (req.dst_offset + first_byte) / PAGE_SIZE;
        let last_dst_page = (req.dst_offset + last_byte) / PAGE_SIZE;

        // Receiver side: page the buffer back in and re-grant.
        {
            let dst_kernel = &mut self.nodes[req.dst_node.0 as usize].kernel;
            let Some(export) = dst_kernel.export(req.export).copied() else {
                return false;
            };
            for p in first_dst_page..=last_dst_page {
                let vpn = shrimp_mem::VirtPageNum::new(export.vpn.raw() + p);
                if dst_kernel.ensure_mapped(export.pid, vpn).is_err() {
                    return false;
                }
            }
        }
        let token = match self.nodes[req.dst_node.0 as usize].kernel.grant_in_mapping(
            req.export,
            req.src_node,
            first_dst_page,
            last_dst_page - first_dst_page + 1,
        ) {
            Ok(tok) => tok,
            Err(_) => return false,
        };
        for &frame in &token.frames {
            if self.nodes[req.dst_node.0 as usize]
                .nic
                .map_in(frame, true)
                .is_err()
            {
                return false;
            }
        }
        // Rewrite the segments covering this source page.
        let mut pos = first_byte;
        while pos <= last_byte {
            let src_byte = req.src_va.add(pos);
            let src_off = src_byte.offset();
            let dst_byte = req.dst_offset + pos;
            let dst_page = dst_byte / PAGE_SIZE;
            let dst_off = dst_byte % PAGE_SIZE;
            let frame = token.frames[(dst_page - first_dst_page) as usize];
            let chunk = (PAGE_SIZE - src_off)
                .min(PAGE_SIZE - dst_off)
                .min(req.len - pos);
            let seg = OutSegment {
                src_start: src_off,
                src_end: src_off + chunk,
                dst_node: req.dst_node,
                dst_base: frame.base().add(dst_off),
                policy: req.policy,
            };
            if self.nodes[node.0 as usize]
                .nic
                .map_out_segment(rec.src_frame, seg)
                .is_err()
            {
                return false;
            }
            pos += chunk;
        }
        true
    }

    fn flush_tlb(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].tlb.flush();
    }

    // ─────────────────── host store path (poke / msglib) ─────────────────

    fn store_through(
        &mut self,
        node: NodeId,
        pid: Pid,
        t: SimTime,
        va: VirtAddr,
        value: u32,
    ) -> Result<SimTime, MachineError> {
        let pages_per_node = self.config.pages_per_node;
        let done =
            self.nodes[node.0 as usize].store_word_through(t, pid, va, value, pages_per_node)?;
        self.schedule_node_wakeups(t, node);
        Ok(done)
    }

    // ───────────────────────── instrumentation ───────────────────────────

    /// NIC counters of one node.
    pub fn nic_stats(&self, node: NodeId) -> shrimp_nic::nic::NicStats {
        self.node(node).nic.stats()
    }

    /// The network interface of a node (read-only inspection of whatever
    /// backend the machine was configured with).
    pub fn nic(&self, node: NodeId) -> &AnyNic {
        &self.node(node).nic
    }

    /// Mesh statistics.
    pub fn mesh_stats(&self) -> &shrimp_mesh::NetworkStats {
        self.mesh.stats()
    }

    /// The kernel of a node (protocol state inspection).
    pub fn kernel(&self, node: NodeId) -> &Kernel {
        &self.node(node).kernel
    }

    /// All recorded memory arrivals (latency experiments).
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        &self.delivery_log
    }

    /// All raised NIC interrupts.
    pub fn interrupts(&self) -> &[(SimTime, NodeId, NicInterrupt)] {
        &self.interrupt_log
    }

    /// All syscall traps (`u32::MAX` marks a killed process).
    pub fn syscalls(&self) -> &[(SimTime, NodeId, Pid, u32)] {
        &self.syscall_log
    }

    /// All dropped packets (CRC errors, misroutes, unmapped pages).
    pub fn drops(&self) -> &[(SimTime, NodeId, NicError)] {
        &self.drop_log
    }

    /// Bytes delivered to `node`'s memory and the EISA achieved rate over
    /// the run so far.
    pub fn eisa_stats(&self, node: NodeId) -> (u64, f64) {
        let n = self.node(node);
        (n.eisa.bytes_total(), n.eisa.achieved_rate(self.now()))
    }

    /// Clears the delivery log (between experiment phases).
    pub fn clear_deliveries(&mut self) {
        self.delivery_log.clear();
    }

    /// The machine-level tracer (mapping events, DMA spans, deliveries).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Packet-lifecycle latency telemetry (empty unless
    /// `config.telemetry.latency` is on).
    pub fn telemetry(&self) -> &MachineTelemetry {
        &self.telemetry
    }

    /// Gathers every component's counters, gauges and histograms into
    /// one hierarchical [`MetricsSnapshot`] (`nic0.packets_sent`,
    /// `mesh.link.0-1.util`, `latency.e2e`, ...). Built on demand — the
    /// registry never sits on the simulation hot path.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        for (i, n) in self.nodes.iter().enumerate() {
            n.nic.register_metrics(&mut reg, &format!("nic{i}"));
        }
        let ms = self.mesh.stats();
        reg.set_counter("mesh.packets_injected", ms.packets_injected);
        reg.set_counter("mesh.packets_ejected", ms.packets_ejected);
        reg.set_counter("mesh.link_bytes", ms.link_bytes);
        reg.set_counter("mesh.packets_dropped", ms.packets_dropped);
        reg.set_counter("mesh.packets_corrupted", ms.packets_corrupted);
        reg.set_counter("mesh.packets_jittered", ms.packets_jittered);
        if ms.reroutes > 0 || ms.bounced > 0 {
            // Adaptive routing only fires under link churn; gating on
            // nonzero keeps every pre-existing pinned snapshot
            // byte-identical.
            reg.set_counter("mesh.reroutes", ms.reroutes);
            reg.set_counter("mesh.bounced", ms.bounced);
        }
        let elapsed = self.now().as_picos();
        for (a, b, u) in self.mesh.link_usage() {
            reg.set_counter(format!("mesh.link.{}-{}.bytes", a.0, b.0), u.bytes);
            let util = if elapsed == 0 {
                0.0
            } else {
                u.busy.as_picos() as f64 / elapsed as f64
            };
            reg.set_gauge(format!("mesh.link.{}-{}.util", a.0, b.0), util);
        }
        reg.set_counter("machine.events_processed", self.sched.processed());
        reg.set_counter("machine.sim_time_ps", self.now().as_picos());
        reg.set_counter("machine.deliveries", self.delivery_log.len() as u64);
        reg.set_counter("machine.drops", self.drop_log.len() as u64);
        let opened: u64 = self.nodes.iter().map(|n| n.sessions_opened).sum();
        if opened > 0 {
            // Session accounting only exists when a workload generator
            // drove the run; gating on nonzero keeps every pre-existing
            // pinned snapshot byte-identical.
            reg.set_counter("machine.sessions_opened", opened);
            reg.set_counter(
                "machine.sessions_closed",
                self.nodes.iter().map(|n| n.sessions_closed).sum::<u64>(),
            );
            for (i, n) in self.nodes.iter().enumerate() {
                if n.sessions_opened > 0 {
                    reg.set_counter(format!("node{i}.sessions_opened"), n.sessions_opened);
                }
            }
        }
        if self.telemetry.e2e.count() > 0 {
            reg.set_histogram("latency.e2e", &self.telemetry.e2e);
            reg.set_histogram("latency.out_fifo", &self.telemetry.out_fifo);
            reg.set_histogram("latency.mesh", &self.telemetry.mesh);
            reg.set_histogram("latency.in_fifo", &self.telemetry.in_fifo);
            reg.set_histogram("latency.dma", &self.telemetry.dma);
        }
        if self.win_stats.total_closed() > 0 {
            // Window/barrier telemetry is worker-invariant (windows form
            // identically at every worker count), so it may live in the
            // deterministic snapshot; gating on nonzero keeps every
            // pre-existing pinned snapshot byte-identical. Wall-clock
            // engine.profile.* data is deliberately excluded — see
            // Machine::profile.
            self.win_stats.register(&mut reg);
        }
        reg.snapshot()
    }

    /// Exports every recorded trace event (machine-level plus all NICs)
    /// as a Chrome trace-event JSON document loadable in Perfetto. With
    /// profiling on, the engine's cumulative per-phase wall times ride
    /// along as `engine.profile` counter-track samples.
    pub fn export_chrome_trace(&self) -> String {
        let mut events: Vec<TraceEvent> = self.tracer.events().to_vec();
        events.extend_from_slice(self.mesh.tracer().events());
        for n in &self.nodes {
            events.extend_from_slice(n.nic.tracer().events());
        }
        let mut counters = Vec::new();
        if let Some(report) = self.profile() {
            let ts_us = self.now().as_picos() as f64 / 1e6;
            for &(name, ns, _) in &report.phases {
                counters.push(CounterSample {
                    name: format!("engine.profile.{name}_ms"),
                    ts_us,
                    value: ns as f64 / 1e6,
                });
            }
            counters.push(CounterSample {
                name: "engine.profile.worker_busy_ms".into(),
                ts_us,
                value: report.worker_busy_ns as f64 / 1e6,
            });
            counters.push(CounterSample {
                name: "engine.profile.worker_idle_ms".into(),
                ts_us,
                value: report.worker_idle_ns as f64 / 1e6,
            });
        }
        to_chrome_json_with_counters(&events, &counters)
    }
}

// ─────────────────────────── the host wiring ────────────────────────────

/// The machine as a [`SimHost`]: its scheduler drives the nodes, the
/// mesh backplane is the coupled external [`Component`], and dispatch
/// routes events through the sequential or parallel engine. The three
/// public run methods are thin wrappers over [`step`] with different
/// stop conditions.
impl SimHost for Machine {
    type Event = Event;

    fn scheduler(&mut self) -> &mut Scheduler<Event> {
        &mut self.sched
    }

    fn external_next(&self) -> Option<SimTime> {
        Component::next_event_time(&self.mesh)
    }

    fn advance_external(&mut self, t: SimTime) {
        // Sampled: this runs several times per simulated event, so
        // exact per-call timing would cost more than the pump itself.
        let p = self.profiler.begin_sampled(EnginePhase::MeshPump);
        Component::advance(&mut self.mesh, t);
        if self.recorder.is_enabled() {
            // Reroute/bounce decisions happen deep inside the mesh's
            // advance; pull them into the per-node rings (keyed by the
            // node where the decision was made).
            let mut buf = std::mem::take(&mut self.scratch_flight);
            self.mesh.drain_flight_into(&mut buf);
            for ev in buf.drain(..) {
                let at = match ev.data {
                    TraceData::PacketRerouted { at, .. } | TraceData::PacketBounced { at, .. } => {
                        at as usize
                    }
                    _ => 0,
                };
                self.recorder.record(at, ev);
            }
            self.scratch_flight = buf;
        }
        self.pump_network(t);
        self.profiler.end_sampled(EnginePhase::MeshPump, p);
    }

    fn dispatch(&mut self, t: SimTime, ev: Event) {
        self.dispatch_event(t, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_cpu::Assembler;
    use shrimp_mesh::MeshShape;

    fn two_node() -> (Machine, Pid, Pid) {
        let mut m = Machine::new(MachineConfig::two_nodes());
        let s = m.create_process(NodeId(0));
        let r = m.create_process(NodeId(1));
        (m, s, r)
    }

    fn simple_map(m: &mut Machine, s: Pid, r: Pid, policy: UpdatePolicy) -> (VirtAddr, VirtAddr) {
        let src = m.alloc_pages(NodeId(0), s, 1).unwrap();
        let dst = m.alloc_pages(NodeId(1), r, 1).unwrap();
        let export = m.export_buffer(NodeId(1), r, dst, 1, None).unwrap();
        m.map(MapRequest {
            src_node: NodeId(0),
            src_pid: s,
            src_va: src,
            dst_node: NodeId(1),
            export,
            dst_offset: 0,
            len: PAGE_SIZE,
            policy,
        })
        .unwrap();
        (src, dst)
    }

    #[test]
    fn map_charges_syscall_time() {
        let (mut m, s, r) = two_node();
        let before = m.now();
        simple_map(&mut m, s, r, UpdatePolicy::AutomaticSingle);
        assert!(m.now().since(before) >= m.config().map_syscall_cost);
    }

    #[test]
    fn empty_mapping_rejected() {
        let (mut m, s, r) = two_node();
        let src = m.alloc_pages(NodeId(0), s, 1).unwrap();
        let dst = m.alloc_pages(NodeId(1), r, 1).unwrap();
        let export = m.export_buffer(NodeId(1), r, dst, 1, None).unwrap();
        let err = m
            .map(MapRequest {
                src_node: NodeId(0),
                src_pid: s,
                src_va: src,
                dst_node: NodeId(1),
                export,
                dst_offset: 0,
                len: 0,
                policy: UpdatePolicy::AutomaticSingle,
            })
            .unwrap_err();
        assert_eq!(err, MachineError::EmptyMapping);
    }

    #[test]
    fn poke_to_unmapped_page_errors() {
        let (mut m, s, _) = two_node();
        let err = m
            .poke(NodeId(0), s, VirtAddr::new(0), &[0u8; 4])
            .unwrap_err();
        assert!(matches!(err, MachineError::Mem(MemError::NotMapped { .. })));
    }

    #[test]
    fn deliveries_record_source_and_size() {
        let (mut m, s, r) = two_node();
        let (src, _) = simple_map(&mut m, s, r, UpdatePolicy::AutomaticSingle);
        m.poke(NodeId(0), s, src, &[1u8; 8]).unwrap();
        m.run_until_idle().unwrap();
        let ds = m.deliveries();
        assert_eq!(ds.len(), 2, "two word stores, two packets");
        for d in ds {
            assert_eq!(d.node, NodeId(1));
            assert_eq!(d.src, NodeId(0));
            assert_eq!(d.len, 4);
        }
        m.clear_deliveries();
        assert!(m.deliveries().is_empty());
    }

    #[test]
    fn syscall_zero_exits_the_process() {
        let (mut m, s, _) = two_node();
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 5).syscall(0).li(Reg::R1, 99).halt();
        m.load_program(NodeId(0), s, asm.assemble().unwrap());
        m.start(NodeId(0), s);
        m.run_until_idle().unwrap();
        // The process exited at the syscall: R1 never became 99.
        assert_eq!(m.cpu(NodeId(0), s).unwrap().reg(Reg::R1), 5);
        assert!(m
            .syscalls()
            .iter()
            .any(|&(_, n, p, c)| n == NodeId(0) && p == s && c == 0));
    }

    #[test]
    fn unknown_syscall_costs_a_trap_and_continues() {
        let (mut m, s, _) = two_node();
        let mut asm = Assembler::new();
        asm.syscall(9).li(Reg::R1, 7).halt();
        m.load_program(NodeId(0), s, asm.assemble().unwrap());
        m.start(NodeId(0), s);
        m.run_until_idle().unwrap();
        assert_eq!(m.cpu(NodeId(0), s).unwrap().reg(Reg::R1), 7);
    }

    #[test]
    fn two_processes_share_one_cpu_round_robin() {
        let mut m = Machine::new(MachineConfig::two_nodes());
        let a = m.create_process(NodeId(0));
        let b = m.create_process(NodeId(0));
        let prog = |v: u32| {
            let mut asm = Assembler::new();
            asm.li(Reg::R1, v).halt();
            asm.assemble().unwrap()
        };
        m.load_program(NodeId(0), a, prog(1));
        m.load_program(NodeId(0), b, prog(2));
        m.start(NodeId(0), a);
        m.start(NodeId(0), b);
        m.run_until_idle().unwrap();
        assert!(m.cpu(NodeId(0), a).unwrap().is_halted());
        assert!(m.cpu(NodeId(0), b).unwrap().is_halted());
        assert_eq!(m.cpu(NodeId(0), a).unwrap().reg(Reg::R1), 1);
        assert_eq!(m.cpu(NodeId(0), b).unwrap().reg(Reg::R1), 2);
    }

    #[test]
    fn genuine_protection_violation_kills_process() {
        let (mut m, s, r) = two_node();
        let (_, dst) = simple_map(&mut m, s, r, UpdatePolicy::AutomaticSingle);
        let _ = dst;
        // A store to an unmapped address faults; the kernel has no
        // invalidation record, so the process dies.
        let mut asm = Assembler::new();
        asm.li(Reg::R5, 0).store(Reg::R5, Reg::R5, 0).li(Reg::R1, 1).halt();
        m.load_program(NodeId(0), s, asm.assemble().unwrap());
        m.start(NodeId(0), s);
        m.run_until_idle().unwrap();
        assert_eq!(m.cpu(NodeId(0), s).unwrap().reg(Reg::R1), 0, "never resumed");
        assert!(m
            .syscalls()
            .iter()
            .any(|&(_, _, p, c)| p == s && c == u32::MAX), "kill recorded");
    }

    #[test]
    fn command_page_maps_at_fixed_distance() {
        let (mut m, s, r) = two_node();
        let (src, _) = simple_map(&mut m, s, r, UpdatePolicy::Deliberate);
        let cmd = m.map_command_page(NodeId(0), s, src).unwrap();
        assert_eq!(cmd.offset(), 0);
        assert_ne!(cmd.page(), src.page());
        // A second data page gets a distinct command page.
        let src2 = m.alloc_pages(NodeId(0), s, 1).unwrap();
        let cmd2 = m.map_command_page(NodeId(0), s, src2).unwrap();
        assert_ne!(cmd, cmd2);
    }

    #[test]
    fn eisa_stats_accumulate() {
        let (mut m, s, r) = two_node();
        let (src, _) = simple_map(&mut m, s, r, UpdatePolicy::AutomaticSingle);
        m.poke(NodeId(0), s, src, &[9u8; 64]).unwrap();
        m.run_until_idle().unwrap();
        let (bytes, rate) = m.eisa_stats(NodeId(1));
        assert_eq!(bytes, 64);
        assert!(rate > 0.0);
    }

    #[test]
    fn run_until_pred_times_out() {
        let (mut m, _, _) = two_node();
        let held = m.run_until_pred(m.now() + SimDuration::from_us(1), |_| false);
        assert!(!held);
    }

    #[test]
    fn latency_stages_telescope_to_end_to_end() {
        let mut cfg = MachineConfig::two_nodes();
        cfg.telemetry = shrimp_sim::TelemetryConfig::full();
        let mut m = Machine::new(cfg);
        let s = m.create_process(NodeId(0));
        let r = m.create_process(NodeId(1));
        let (src, _) = simple_map(&mut m, s, r, UpdatePolicy::AutomaticSingle);
        m.poke(NodeId(0), s, src, &[7u8; 64]).unwrap();
        m.run_until_idle().unwrap();

        let tel = m.telemetry();
        assert_eq!(tel.records.len(), m.deliveries().len());
        assert!(!tel.records.is_empty());
        for rec in &tel.records {
            assert!(rec.born <= rec.injected);
            assert!(rec.injected <= rec.accepted);
            assert!(rec.accepted <= rec.dma_start);
            assert!(rec.dma_start <= rec.dma_end);
            let sum = rec.out_fifo() + rec.mesh() + rec.in_fifo() + rec.dma();
            assert_eq!(sum, rec.end_to_end(), "stages must telescope exactly");
        }
        assert_eq!(tel.e2e.count(), tel.records.len() as u64);

        // The trace saw the same packets the logs did.
        assert!(m.tracer().contains("packet injected"));
        assert!(m.tracer().contains("dma start"));
        assert!(m.tracer().contains("page mapped"));

        // And the Chrome export of that trace validates.
        let trace = m.export_chrome_trace();
        shrimp_sim::validate_chrome_json(&trace).expect("exported trace must validate");
    }

    #[test]
    fn metrics_snapshot_covers_all_components() {
        let mut cfg = MachineConfig::two_nodes();
        cfg.telemetry = shrimp_sim::TelemetryConfig::full();
        let mut m = Machine::new(cfg);
        let s = m.create_process(NodeId(0));
        let r = m.create_process(NodeId(1));
        let (src, _) = simple_map(&mut m, s, r, UpdatePolicy::AutomaticSingle);
        m.poke(NodeId(0), s, src, &[3u8; 32]).unwrap();
        m.run_until_idle().unwrap();

        let snap = m.metrics_snapshot();
        let sent = snap.counter("nic0.packets_sent").unwrap();
        assert!(sent > 0);
        assert_eq!(snap.counter("nic1.packets_received"), Some(sent));
        assert!(snap.counter("mesh.packets_injected").unwrap() >= sent);
        assert!(snap.counter("mesh.link.0-1.bytes").unwrap() > 0);
        let util = snap.gauge("mesh.link.0-1.util").unwrap();
        assert!(util > 0.0 && util <= 1.0);
        assert!(snap.counter("machine.events_processed").unwrap() > 0);
        let e2e = snap.histogram("latency.e2e").unwrap();
        assert_eq!(e2e.count, m.telemetry().records.len() as u64);

        // Round-trips through the stable JSON schema.
        let parsed =
            shrimp_sim::MetricsSnapshot::parse_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let (mut m, s, r) = two_node();
        let (src, _) = simple_map(&mut m, s, r, UpdatePolicy::AutomaticSingle);
        m.poke(NodeId(0), s, src, &[1u8; 16]).unwrap();
        m.run_until_idle().unwrap();
        assert!(m.telemetry().records.is_empty());
        assert!(m.tracer().events().is_empty());
        assert!(m.nic(NodeId(0)).tracer().events().is_empty());
        // The metrics snapshot still works — counters live on the NIC
        // regardless of the telemetry switches.
        assert!(m.metrics_snapshot().counter("nic0.packets_sent").unwrap() > 0);
    }

    #[test]
    fn larger_mesh_builds_and_runs() {
        let mut m = Machine::new(MachineConfig::prototype(MeshShape::new(8, 8)));
        let s = m.create_process(NodeId(0));
        let r = m.create_process(NodeId(63));
        let src = m.alloc_pages(NodeId(0), s, 1).unwrap();
        let dst = m.alloc_pages(NodeId(63), r, 1).unwrap();
        let export = m.export_buffer(NodeId(63), r, dst, 1, None).unwrap();
        m.map(MapRequest {
            src_node: NodeId(0),
            src_pid: s,
            src_va: src,
            dst_node: NodeId(63),
            export,
            dst_offset: 0,
            len: PAGE_SIZE,
            policy: UpdatePolicy::AutomaticSingle,
        })
        .unwrap();
        m.poke(NodeId(0), s, src, &0xabcd_1234u32.to_le_bytes()).unwrap();
        m.run_until_idle().unwrap();
        assert_eq!(
            m.peek(NodeId(63), r, dst, 4).unwrap(),
            0xabcd_1234u32.to_le_bytes()
        );
    }
}
