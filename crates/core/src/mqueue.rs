//! FIFO message queues emulated over memory mappings.
//!
//! The paper's conclusion (§7) argues that the memory-mapped
//! communication model subsumes FIFO-based interfaces: "FIFOs can easily
//! be emulated using memory mappings". [`MappedQueue`] is that
//! emulation, reusable at the host level: a ring of slots in receiver
//! memory fed by an automatic-update mapping, with the consumed counter
//! flowing back through a 4-byte reverse mapping — all data movement is
//! ordinary stores, no kernel is involved after `establish`.

use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_mesh::NodeId;
use shrimp_nic::UpdatePolicy;
use shrimp_os::Pid;

use crate::error::MachineError;
use crate::machine::{Machine, MapRequest};

/// Per-slot header: payload length then a nonzero sequence/valid word.
const HDR_LEN: u64 = 0;
const HDR_SEQ: u64 = 4;
const HDR_SIZE: u64 = 8;

/// A one-way FIFO queue from a sending process to a receiving process,
/// emulated over virtual memory mappings (paper §7).
///
/// # Examples
///
/// ```
/// use shrimp_core::{Machine, MachineConfig};
/// use shrimp_core::mqueue::MappedQueue;
/// use shrimp_mesh::NodeId;
///
/// let mut m = Machine::new(MachineConfig::two_nodes());
/// let s = m.create_process(NodeId(0));
/// let r = m.create_process(NodeId(1));
/// let q = MappedQueue::establish(&mut m, (NodeId(0), s), (NodeId(1), r), 4, 256)?;
/// assert!(q.send(&mut m, b"ping")?);
/// m.run_until_idle()?;
/// assert_eq!(q.recv(&mut m)?, Some(b"ping".to_vec()));
/// # Ok::<(), shrimp_core::MachineError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MappedQueue {
    src_node: NodeId,
    src_pid: Pid,
    dst_node: NodeId,
    dst_pid: Pid,
    /// Sender-side image of the ring (stores propagate to the receiver).
    src_ring: VirtAddr,
    /// Receiver-side ring.
    dst_ring: VirtAddr,
    /// Sender state page: tail@0, consumed@4 (written remotely).
    src_state: VirtAddr,
    /// Receiver state page: head@0, consumed-out@8 (mapped back).
    dst_state: VirtAddr,
    slots: u32,
    slot_bytes: u32,
}

impl MappedQueue {
    /// Builds the ring and both mappings. `slots` must be a power of two;
    /// `slot_bytes` must be a multiple of 4 with room for the 8-byte
    /// header, and the whole ring must fit the page budget.
    ///
    /// # Errors
    ///
    /// Propagates allocation/mapping failures.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry.
    pub fn establish(
        m: &mut Machine,
        src: (NodeId, Pid),
        dst: (NodeId, Pid),
        slots: u32,
        slot_bytes: u32,
    ) -> Result<MappedQueue, MachineError> {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        assert!(slot_bytes.is_multiple_of(4) && slot_bytes as u64 > HDR_SIZE, "bad slot size");
        let ring_bytes = slots as u64 * slot_bytes as u64;
        let ring_pages = ring_bytes.div_ceil(PAGE_SIZE);

        let src_ring = m.alloc_pages(src.0, src.1, ring_pages)?;
        let dst_ring = m.alloc_pages(dst.0, dst.1, ring_pages)?;
        let src_state = m.alloc_pages(src.0, src.1, 1)?;
        let dst_state = m.alloc_pages(dst.0, dst.1, 1)?;

        let ring_export = m.export_buffer(dst.0, dst.1, dst_ring, ring_pages, Some(src.0))?;
        m.map(MapRequest {
            src_node: src.0,
            src_pid: src.1,
            src_va: src_ring,
            dst_node: dst.0,
            export: ring_export,
            dst_offset: 0,
            len: ring_bytes,
            policy: UpdatePolicy::AutomaticBlocked,
        })?;

        let back_export = m.export_buffer(src.0, src.1, src_state, 1, Some(dst.0))?;
        // Receiver's consumed-out word (state+8) lands at sender state+4.
        m.map(MapRequest {
            src_node: dst.0,
            src_pid: dst.1,
            src_va: dst_state.add(8),
            dst_node: src.0,
            export: back_export,
            dst_offset: 4,
            len: 4,
            policy: UpdatePolicy::AutomaticSingle,
        })?;

        Ok(MappedQueue {
            src_node: src.0,
            src_pid: src.1,
            dst_node: dst.0,
            dst_pid: dst.1,
            src_ring,
            dst_ring,
            src_state,
            dst_state,
            slots,
            slot_bytes,
        })
    }

    /// Payload capacity of one slot.
    pub fn max_payload(&self) -> u64 {
        self.slot_bytes as u64 - HDR_SIZE
    }

    /// Number of slots.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    fn word(m: &Machine, node: NodeId, pid: Pid, va: VirtAddr) -> Result<u32, MachineError> {
        Ok(u32::from_le_bytes(
            m.peek(node, pid, va, 4)?.try_into().expect("4 bytes"),
        ))
    }

    fn slot_addr(&self, base: VirtAddr, index: u32) -> VirtAddr {
        base.add((index & (self.slots - 1)) as u64 * self.slot_bytes as u64)
    }

    /// Messages accepted but not yet consumed (from the sender's view).
    pub fn in_flight(&self, m: &Machine) -> Result<u32, MachineError> {
        let tail = Self::word(m, self.src_node, self.src_pid, self.src_state)?;
        let consumed = Self::word(m, self.src_node, self.src_pid, self.src_state.add(4))?;
        Ok(tail - consumed)
    }

    /// Enqueues one message with ordinary stores. Returns `false` without
    /// side effects when the ring is full (the caller retries after
    /// running the machine).
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MappedQueue::max_payload`] or is
    /// not a whole number of words.
    pub fn send(&self, m: &mut Machine, payload: &[u8]) -> Result<bool, MachineError> {
        assert!(payload.len() as u64 <= self.max_payload(), "payload too large");
        assert_eq!(payload.len() % 4, 0, "payload must be whole words");
        if self.in_flight(m)? >= self.slots {
            return Ok(false);
        }
        let tail = Self::word(m, self.src_node, self.src_pid, self.src_state)?;
        let slot = self.slot_addr(self.src_ring, tail);
        // Payload first, then length, then the nonzero seq word last: the
        // per-sender ordering guarantee makes seq a release.
        m.poke(self.src_node, self.src_pid, slot.add(HDR_SIZE), payload)?;
        m.poke(
            self.src_node,
            self.src_pid,
            slot.add(HDR_LEN),
            &(payload.len() as u32).to_le_bytes(),
        )?;
        m.poke(
            self.src_node,
            self.src_pid,
            slot.add(HDR_SEQ),
            &(tail + 1).to_le_bytes(),
        )?;
        m.poke(
            self.src_node,
            self.src_pid,
            self.src_state,
            &(tail + 1).to_le_bytes(),
        )?;
        Ok(true)
    }

    /// Dequeues the next message if one has fully arrived, acknowledging
    /// it back to the sender through the reverse mapping.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn recv(&self, m: &mut Machine) -> Result<Option<Vec<u8>>, MachineError> {
        let head = Self::word(m, self.dst_node, self.dst_pid, self.dst_state)?;
        let slot = self.slot_addr(self.dst_ring, head);
        let seq = Self::word(m, self.dst_node, self.dst_pid, slot.add(HDR_SEQ))?;
        if seq != head + 1 {
            return Ok(None); // not yet arrived (or stale)
        }
        let len = Self::word(m, self.dst_node, self.dst_pid, slot.add(HDR_LEN))? as u64;
        if len > self.max_payload() {
            return Ok(None); // length word not yet arrived
        }
        let data = m.peek(self.dst_node, self.dst_pid, slot.add(HDR_SIZE), len)?;
        // Consume: clear seq locally, advance head, publish consumed.
        m.poke(self.dst_node, self.dst_pid, slot.add(HDR_SEQ), &0u32.to_le_bytes())?;
        m.poke(
            self.dst_node,
            self.dst_pid,
            self.dst_state,
            &(head + 1).to_le_bytes(),
        )?;
        m.poke(
            self.dst_node,
            self.dst_pid,
            self.dst_state.add(8),
            &(head + 1).to_le_bytes(),
        )?;
        Ok(Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn setup(slots: u32, slot_bytes: u32) -> (Machine, MappedQueue) {
        let mut m = Machine::new(MachineConfig::two_nodes());
        let s = m.create_process(NodeId(0));
        let r = m.create_process(NodeId(1));
        let q = MappedQueue::establish(&mut m, (NodeId(0), s), (NodeId(1), r), slots, slot_bytes)
            .unwrap();
        (m, q)
    }

    #[test]
    fn send_and_receive_in_order() {
        let (mut m, q) = setup(4, 64);
        for i in 0..3u32 {
            assert!(q.send(&mut m, &[i as u8; 8]).unwrap());
        }
        m.run_until_idle().unwrap();
        for i in 0..3u32 {
            let got = q.recv(&mut m).unwrap().expect("message arrived");
            assert_eq!(got, vec![i as u8; 8]);
        }
        m.run_until_idle().unwrap();
        assert_eq!(q.recv(&mut m).unwrap(), None, "queue drained");
        assert_eq!(q.in_flight(&m).unwrap(), 0, "credits returned");
    }

    #[test]
    fn ring_fills_and_recovers() {
        let (mut m, q) = setup(2, 64);
        assert!(q.send(&mut m, &[1; 4]).unwrap());
        assert!(q.send(&mut m, &[2; 4]).unwrap());
        // Full: refused without corruption.
        assert!(!q.send(&mut m, &[3; 4]).unwrap());
        m.run_until_idle().unwrap();
        assert_eq!(q.recv(&mut m).unwrap().unwrap(), vec![1; 4]);
        m.run_until_idle().unwrap();
        // Credit returned: the third send now fits.
        assert!(q.send(&mut m, &[3; 4]).unwrap());
        m.run_until_idle().unwrap();
        assert_eq!(q.recv(&mut m).unwrap().unwrap(), vec![2; 4]);
        assert_eq!(q.recv(&mut m).unwrap().unwrap(), vec![3; 4]);
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut m, q) = setup(4, 64);
        for round in 0..5u32 {
            for i in 0..4u32 {
                let tag = (round * 4 + i) as u8;
                assert!(q.send(&mut m, &[tag; 12]).unwrap());
            }
            m.run_until_idle().unwrap();
            for i in 0..4u32 {
                let tag = (round * 4 + i) as u8;
                assert_eq!(q.recv(&mut m).unwrap().unwrap(), vec![tag; 12]);
            }
            m.run_until_idle().unwrap();
        }
    }

    #[test]
    fn empty_queue_returns_none() {
        let (mut m, q) = setup(4, 64);
        assert_eq!(q.recv(&mut m).unwrap(), None);
        assert_eq!(q.max_payload(), 56);
        assert_eq!(q.slots(), 4);
    }

    #[test]
    fn variable_length_messages() {
        let (mut m, q) = setup(4, 256);
        q.send(&mut m, &[7; 4]).unwrap();
        q.send(&mut m, &[8; 200]).unwrap();
        q.send(&mut m, &[]).unwrap();
        m.run_until_idle().unwrap();
        assert_eq!(q.recv(&mut m).unwrap().unwrap().len(), 4);
        assert_eq!(q.recv(&mut m).unwrap().unwrap().len(), 200);
        assert_eq!(q.recv(&mut m).unwrap().unwrap().len(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_slot_count_rejected() {
        let mut m = Machine::new(MachineConfig::two_nodes());
        let s = m.create_process(NodeId(0));
        let r = m.create_process(NodeId(1));
        let _ = MappedQueue::establish(&mut m, (NodeId(0), s), (NodeId(1), r), 3, 64);
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversized_payload_rejected() {
        let (mut m, q) = setup(2, 64);
        let _ = q.send(&mut m, &[0; 60]);
    }
}
