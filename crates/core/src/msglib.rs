//! The paper's message-passing primitives (§5.2), written in the
//! mini-ISA and executed on the simulated machine.
//!
//! Each function builds a fresh two-node machine (the paper's
//! experimental environment was a pair of PCs), establishes the needed
//! mappings, runs the primitive's sender and receiver routines, verifies
//! that the data actually moved, and reports **dynamic retired
//! instruction counts** — the paper's overhead metric for Table 1.
//!
//! Counting conventions (matching §5.2):
//!
//! * a spin-wait is counted once (the harness starts the waiting side
//!   only after the condition is already true, so the successful probe is
//!   the only one executed);
//! * the final `Halt` of a routine is not counted (it stands in for the
//!   return into application code);
//! * per-byte/word copy costs are excluded where the paper excludes them:
//!   reports carry both the raw count and the copy-excluded count
//!   (raw − (words − 1) × instructions-per-copied-word).

use shrimp_cpu::{Assembler, Program, Reg};
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_mesh::{MeshShape, NodeId};
use shrimp_nic::UpdatePolicy;
use shrimp_os::Pid;
use shrimp_sim::{SimDuration, SimTime};

use crate::config::MachineConfig;
use crate::error::MachineError;
use crate::machine::{Machine, MapRequest};

/// Instructions retired on each side of a primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadCount {
    /// Source (sending) CPU instructions.
    pub sender: u64,
    /// Destination (receiving) CPU instructions.
    pub receiver: u64,
}

impl OverheadCount {
    /// Combined overhead, the paper's headline number per primitive.
    pub fn total(&self) -> u64 {
        self.sender + self.receiver
    }
}

/// The measured outcome of one primitive run.
#[derive(Debug, Clone)]
pub struct PrimitiveReport {
    /// Raw retired instruction counts (halt excluded).
    pub counts: OverheadCount,
    /// Counts with copy-loop iterations beyond the first excluded, where
    /// the primitive copies data (the paper's convention).
    pub copy_excluded: Option<OverheadCount>,
    /// The data observably arrived intact.
    pub verified: bool,
    /// Simulated time the primitive took end to end.
    pub elapsed: SimDuration,
}

/// The three loop structures of the paper's double-buffering analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoubleBufferCase {
    /// Case 1: iteration *i+1* uses data of iteration *i*; barriers
    /// provide all synchronization — only the buffer swap remains.
    BarrierSynchronized,
    /// Case 2: the receiver consumes data sent in the same iteration and
    /// spins on arrival; the sender is covered by the barrier.
    ReceiverSpins,
    /// Case 3: no barrier; messages provide all synchronization — both
    /// sides spin.
    MessageSynchronized,
}

/// Message size used by the buffering primitives (four words keeps copy
/// loops visible without dominating).
pub const NBYTES: u32 = 16;

const LIMIT: SimTime = SimTime::from_picos(u64::MAX / 4);

struct World {
    machine: Machine,
    sender: Pid,
    receiver: Pid,
}

const SND: NodeId = NodeId(0);
const RCV: NodeId = NodeId(1);

impl World {
    fn new() -> Self {
        let machine = Machine::new(MachineConfig::prototype(MeshShape::new(2, 1)));
        let mut w = World {
            machine,
            sender: Pid(0),
            receiver: Pid(0),
        };
        w.sender = w.machine.create_process(SND);
        w.receiver = w.machine.create_process(RCV);
        w
    }

    fn run_both(&mut self) -> Result<(), MachineError> {
        self.machine.run_until_idle()
    }

    /// Waits until a word at a receiver-side address holds `value`.
    fn wait_word(&mut self, node: NodeId, pid: Pid, va: VirtAddr, value: u32) -> bool {
        self.machine.run_until_pred(LIMIT, |m| {
            m.peek(node, pid, va, 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) == value)
                .unwrap_or(false)
        })
    }

    fn retired(&self, node: NodeId, pid: Pid) -> u64 {
        self.machine.cpu(node, pid).map_or(0, |c| c.retired())
    }
}

/// Establishes `len` bytes of one-way mapping from a sender VA to an
/// offset in an exported receiver buffer.
fn map_one_way(
    w: &mut World,
    src_va: VirtAddr,
    dst_node: NodeId,
    export: shrimp_os::ExportId,
    dst_offset: u64,
    len: u64,
    policy: UpdatePolicy,
) -> Result<(), MachineError> {
    let (src_node, src_pid) = if dst_node == RCV {
        (SND, w.sender)
    } else {
        (RCV, w.receiver)
    };
    w.machine.map(MapRequest {
        src_node,
        src_pid,
        src_va,
        dst_node,
        export,
        dst_offset,
        len,
        policy,
    })?;
    Ok(())
}

// ───────────────────────── single buffering ──────────────────────────────

/// Single-buffered send/receive over an automatic-update mapping
/// (paper Figure 5). With `copy`, the receiver copies the message out of
/// the receive buffer.
///
/// Paper: 9 instructions (4 + 5) without copy; 21 (4 + 17) with copy.
///
/// # Errors
///
/// Propagates machine setup failures.
pub fn single_buffering(copy: bool) -> Result<PrimitiveReport, MachineError> {
    let mut w = World::new();
    let (m, s, r) = (&mut w.machine, w.sender, w.receiver);

    // Sender: page 0 = send buffer, page 1 = flag. Receiver mirrors, plus
    // a private page for the copy destination.
    let s_buf = m.alloc_pages(SND, s, 1)?;
    let s_flag = m.alloc_pages(SND, s, 1)?;
    let r_buf = m.alloc_pages(RCV, r, 1)?;
    let r_flag = m.alloc_pages(RCV, r, 1)?;
    let r_priv = m.alloc_pages(RCV, r, 1)?;

    let e_buf = m.export_buffer(RCV, r, r_buf, 1, Some(SND))?;
    let e_flag = m.export_buffer(RCV, r, r_flag, 1, Some(SND))?;
    let e_back = m.export_buffer(SND, s, s_flag, 1, Some(RCV))?;

    map_one_way(&mut w, s_buf, RCV, e_buf, 0, PAGE_SIZE, UpdatePolicy::AutomaticSingle)?;
    // The flag is "mapped for bidirectional automatic update".
    map_one_way(&mut w, s_flag, RCV, e_flag, 0, 4, UpdatePolicy::AutomaticSingle)?;
    map_one_way(&mut w, r_flag, SND, e_back, 0, 4, UpdatePolicy::AutomaticSingle)?;

    // The application fills the send buffer (not message-passing
    // overhead); the stores propagate via the data mapping.
    let pattern: Vec<u8> = (0..NBYTES as u8).collect();
    w.machine.poke(SND, s, s_buf, &pattern)?;
    w.machine.run_until_idle()?;

    // Sender: wait flag == 0 (empty), publish nbytes.     4 instructions.
    let mut asm = Assembler::new();
    asm.label("send")
        .cmpmem(Reg::R6, 0, 0)
        .jnz("send")
        .li(Reg::R2, NBYTES)
        .store(Reg::R2, Reg::R6, 0)
        .halt();
    let sp = asm.assemble().expect("sender assembles");

    // Receiver: wait flag != 0, read size, release buffer; optional copy.
    let mut asm = Assembler::new();
    asm.label("recv")
        .cmpmem(Reg::R6, 0, 0)
        .jz("recv")
        .load(Reg::R2, Reg::R6, 0); // nbytes
    if copy {
        // Copy loop: 11 instructions of overhead (setup + the final
        // iteration) plus 6 per additional word; r7 already holds the
        // private destination and is advanced in place.
        asm.mov(Reg::R3, Reg::R5) // src = receive buffer
            .mov(Reg::R1, Reg::R2)
            .shr(Reg::R1, 2) // words
            .cmpi(Reg::R1, 0)
            .jz("done")
            .add(Reg::R2, Reg::R3) // end = src + nbytes
            .label("cp")
            .load(Reg::R1, Reg::R3, 0)
            .store(Reg::R1, Reg::R7, 0)
            .addi(Reg::R3, 4)
            .addi(Reg::R7, 4)
            .cmp(Reg::R3, Reg::R2)
            .jnz("cp")
            .label("done");
    }
    asm.li(Reg::R3, 0).store(Reg::R3, Reg::R6, 0).halt();
    let rp = asm.assemble().expect("receiver assembles");

    w.machine.load_program(SND, s, sp);
    w.machine.set_reg(SND, s, Reg::R6, s_flag.raw() as u32);
    w.machine.load_program(RCV, r, rp);
    w.machine.set_reg(RCV, r, Reg::R6, r_flag.raw() as u32);
    w.machine.set_reg(RCV, r, Reg::R5, r_buf.raw() as u32);
    w.machine.set_reg(RCV, r, Reg::R7, r_priv.raw() as u32);

    let t0 = w.machine.now();
    w.machine.start(SND, s);
    // Minimal path: start the receiver only once the flag has arrived.
    assert!(w.wait_word(RCV, r, r_flag, NBYTES), "flag must arrive");
    w.machine.start(RCV, r);
    w.run_both()?;
    let elapsed = w.machine.now().since(t0);

    // Verification: data arrived; the receiver's release propagated back.
    let got = w.machine.peek(RCV, r, r_buf, NBYTES as u64)?;
    let flag_back = w.machine.peek(SND, s, s_flag, 4)?;
    let mut verified = got == pattern && flag_back == vec![0, 0, 0, 0];
    if copy {
        verified &= w.machine.peek(RCV, r, r_priv, NBYTES as u64)? == pattern;
    }

    let counts = OverheadCount {
        sender: w.retired(SND, s) - 1,
        receiver: w.retired(RCV, r) - 1,
    };
    let copy_excluded = copy.then(|| OverheadCount {
        sender: counts.sender,
        // 6 instructions per copied word; exclude all but the first.
        receiver: counts.receiver - (NBYTES as u64 / 4 - 1) * 6,
    });
    Ok(PrimitiveReport {
        counts,
        copy_excluded,
        verified,
        elapsed,
    })
}

// ───────────────────────── double buffering ──────────────────────────────

/// Double-buffered transfer (paper Figure 6), in the three loop cases of
/// §5.2.
///
/// Paper: case 1 = 2 (1+1); case 2 = 8 (3+5); case 3 = 10 (5+5).
///
/// # Errors
///
/// Propagates machine setup failures.
pub fn double_buffering(case: DoubleBufferCase) -> Result<PrimitiveReport, MachineError> {
    let mut w = World::new();
    let (m, s, r) = (&mut w.machine, w.sender, w.receiver);

    // Two send buffers + flag on the sender; mirrored on the receiver.
    let s_bufs = m.alloc_pages(SND, s, 2)?;
    let s_flag = m.alloc_pages(SND, s, 1)?;
    let r_bufs = m.alloc_pages(RCV, r, 2)?;
    let r_flag = m.alloc_pages(RCV, r, 1)?;

    let e_bufs = m.export_buffer(RCV, r, r_bufs, 2, Some(SND))?;
    let e_flag = m.export_buffer(RCV, r, r_flag, 1, Some(SND))?;
    let e_back = m.export_buffer(SND, s, s_flag, 1, Some(RCV))?;

    map_one_way(&mut w, s_bufs, RCV, e_bufs, 0, 2 * PAGE_SIZE, UpdatePolicy::AutomaticSingle)?;
    map_one_way(&mut w, s_flag, RCV, e_flag, 0, 4, UpdatePolicy::AutomaticSingle)?;
    map_one_way(&mut w, r_flag, SND, e_back, 0, 4, UpdatePolicy::AutomaticSingle)?;

    let delta = PAGE_SIZE as u32; // XOR-toggle between the two buffers

    // Sender routine.
    let mut asm = Assembler::new();
    match case {
        DoubleBufferCase::BarrierSynchronized => {
            // Only the buffer-pointer swap.
            asm.xor(Reg::R5, Reg::R3).halt();
        }
        DoubleBufferCase::ReceiverSpins => {
            // Publish size, swap.
            asm.xor(Reg::R5, Reg::R3)
                .li(Reg::R2, NBYTES)
                .store(Reg::R2, Reg::R6, 0)
                .halt();
        }
        DoubleBufferCase::MessageSynchronized => {
            // Wait for the previous contents to be consumed, publish,
            // swap.
            asm.label("wait")
                .cmpmem(Reg::R6, 0, 0)
                .jnz("wait")
                .li(Reg::R2, NBYTES)
                .store(Reg::R2, Reg::R6, 0)
                .xor(Reg::R5, Reg::R3)
                .halt();
        }
    }
    let sp = asm.assemble().expect("sender assembles");

    // Receiver routine.
    let mut asm = Assembler::new();
    match case {
        DoubleBufferCase::BarrierSynchronized => {
            asm.xor(Reg::R5, Reg::R3).halt();
        }
        DoubleBufferCase::ReceiverSpins | DoubleBufferCase::MessageSynchronized => {
            asm.label("wait")
                .cmpmem(Reg::R6, 0, 0)
                .jz("wait")
                .li(Reg::R1, 0)
                .store(Reg::R1, Reg::R6, 0)
                .xor(Reg::R5, Reg::R3)
                .halt();
        }
    }
    let rp = asm.assemble().expect("receiver assembles");

    w.machine.load_program(SND, s, sp);
    w.machine.set_reg(SND, s, Reg::R5, s_bufs.raw() as u32);
    w.machine.set_reg(SND, s, Reg::R3, delta);
    w.machine.set_reg(SND, s, Reg::R6, s_flag.raw() as u32);
    w.machine.load_program(RCV, r, rp);
    w.machine.set_reg(RCV, r, Reg::R5, r_bufs.raw() as u32);
    w.machine.set_reg(RCV, r, Reg::R3, delta);
    w.machine.set_reg(RCV, r, Reg::R6, r_flag.raw() as u32);

    let t0 = w.machine.now();
    w.machine.start(SND, s);
    if case != DoubleBufferCase::BarrierSynchronized {
        assert!(w.wait_word(RCV, r, r_flag, NBYTES), "flag must arrive");
    } else {
        w.machine.run_until_idle()?;
    }
    w.machine.start(RCV, r);
    w.run_both()?;
    let elapsed = w.machine.now().since(t0);

    // Verification: both sides swapped buffers; flags consistent.
    let s_cpu = w.machine.cpu(SND, s).expect("sender CPU");
    let r_cpu = w.machine.cpu(RCV, r).expect("receiver CPU");
    let mut verified = s_cpu.reg(Reg::R5) == s_bufs.raw() as u32 + delta
        && r_cpu.reg(Reg::R5) == r_bufs.raw() as u32 + delta;
    if case != DoubleBufferCase::BarrierSynchronized {
        // Receiver's release propagated back to the sender's flag copy.
        verified &= w.machine.peek(SND, s, s_flag, 4)? == vec![0, 0, 0, 0];
    }

    let counts = OverheadCount {
        sender: w.retired(SND, s) - 1,
        receiver: w.retired(RCV, r) - 1,
    };
    Ok(PrimitiveReport {
        counts,
        copy_excluded: None,
        verified,
        elapsed,
    })
}

// ──────────────────────── deliberate update ──────────────────────────────

/// The deliberate-update send macro of §4.3/§5.2: compute the command
/// address, check the transfer stays on one page, clear the accumulator,
/// and `CMPXCHG` the word count into the command page until accepted —
/// then the two-instruction completion check.
///
/// Paper: 15 instructions (13 to initiate + 2 to check completion), all
/// on the sender.
///
/// # Errors
///
/// Propagates machine setup failures.
pub fn deliberate_update() -> Result<PrimitiveReport, MachineError> {
    let mut w = World::new();
    let (m, s, r) = (&mut w.machine, w.sender, w.receiver);

    let s_buf = m.alloc_pages(SND, s, 1)?;
    let r_buf = m.alloc_pages(RCV, r, 1)?;
    let e_buf = m.export_buffer(RCV, r, r_buf, 1, Some(SND))?;
    map_one_way(&mut w, s_buf, RCV, e_buf, 0, PAGE_SIZE, UpdatePolicy::Deliberate)?;
    let cmd_va = w.machine.map_command_page(SND, s, s_buf)?;

    // Fill the page (deliberate pages are ordinary memory until sent).
    let payload: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect();
    w.machine.poke(SND, s, s_buf, &payload)?;
    w.machine.run_until_idle()?;

    // r5 = data va, r4 = nbytes, r7 = (cmd va - data va)
    let mut asm = Assembler::new();
    asm.label("send")
        .mov(Reg::R6, Reg::R5) // 1: command address =
        .add(Reg::R6, Reg::R7) // 2:   data address + distance
        .mov(Reg::R1, Reg::R4) // 3: word count =
        .shr(Reg::R1, 2) // 4:   nbytes / 4
        .mov(Reg::R2, Reg::R5) // 5: page-boundary check:
        .li(Reg::R3, 4095) // 6:
        .and(Reg::R2, Reg::R3) // 7:   offset =  va & 4095
        .add(Reg::R2, Reg::R4) // 8:   offset + nbytes
        .cmpi(Reg::R2, 4097) // 9:
        .jge("split") // 10:  (> one page: split loop, not taken)
        // The retry loop re-clears the accumulator each attempt: a failed
        // CMPXCHG loads the busy status into r0, which must not be used
        // as the next comparand.
        .label("retry")
        .li(Reg::R0, 0) // 11: clear accumulator
        .cmpxchg(Reg::R6, 0, Reg::R1) // 12: the atomic start
        .jnz("retry") // 13: busy → retry
        .halt()
        .label("split")
        .halt() // multi-page path, exercised by the bandwidth bench
        .label("check")
        .cmpmem(Reg::R6, 0, 0) // 14: status read
        .jnz("pending") // 15: nonzero → still transferring
        .halt()
        .label("pending")
        .halt();
    let sp = asm.assemble().expect("sender assembles");

    w.machine.load_program(SND, s, sp);
    w.machine.set_reg(SND, s, Reg::R5, s_buf.raw() as u32);
    w.machine.set_reg(SND, s, Reg::R4, PAGE_SIZE as u32);
    w.machine
        .set_reg(SND, s, Reg::R7, (cmd_va.raw() - s_buf.raw()) as u32);

    let t0 = w.machine.now();
    w.machine.start(SND, s);
    w.run_both()?;
    let init_retired = w.retired(SND, s) - 1; // minus halt

    // Completion check once the DMA has drained (2 instructions).
    w.machine.jump_to_label(SND, s, "check");
    w.machine.start(SND, s);
    w.run_both()?;
    let elapsed = w.machine.now().since(t0);
    let total = w.retired(SND, s) - 2; // minus both halts

    let verified = w.machine.peek(RCV, r, r_buf, PAGE_SIZE)? == payload
        && total - init_retired == 2;
    Ok(PrimitiveReport {
        counts: OverheadCount {
            sender: total,
            receiver: 0,
        },
        copy_excluded: None,
        verified,
        elapsed,
    })
}

// ──────────────── deliberate-update run-time library ─────────────────────

/// Builds the multi-transfer deliberate-update routine of §4.3: "the
/// command sequence to send a large piece of data crossing page
/// boundaries can easily be embedded in a macro or a run-time library
/// routine". The routine issues one `CMPXCHG` start per page,
/// overlapping the preparation of the next command with the outgoing DMA
/// of the current transfer.
///
/// Register contract:
/// * `r5` — data virtual address (advanced by one page per transfer),
/// * `r7` — command-address distance (`cmd_va - data_va`),
/// * `r3` — number of transfers remaining,
/// * `r2` — words per full-page transfer,
/// * `r4` — words of the final (possibly partial) transfer.
///
/// The routine halts after the last start; poll the last command address
/// (2 instructions, see [`deliberate_update`]) for completion.
pub fn deliberate_stream_program() -> Program {
    let mut asm = Assembler::new();
    asm.label("page_loop")
        .cmpi(Reg::R3, 1)
        .jnz("full")
        .mov(Reg::R2, Reg::R4) // last transfer: tail words
        .label("full")
        .mov(Reg::R6, Reg::R5)
        .add(Reg::R6, Reg::R7)
        .label("retry")
        .li(Reg::R0, 0)
        .cmpxchg(Reg::R6, 0, Reg::R2)
        .jnz("retry")
        .addi(Reg::R5, PAGE_SIZE as i32)
        .addi(Reg::R3, -1)
        .cmpi(Reg::R3, 0)
        .jnz("page_loop")
        .halt();
    asm.assemble().expect("stream routine assembles")
}

// ───────────────────────── csend / crecv ─────────────────────────────────

/// Ring geometry of the user-level NX/2-style channel.
const SLOTS: u32 = 4;
const SLOT_BYTES: u32 = 512;
const HDR_LEN: i32 = 0;
const HDR_TYPE: i32 = 4;
const HDR_SEQ: i32 = 8;
const HDR_SIZE: u32 = 16;

/// Builds the `csend` routine. Registers: r5 = ring image base,
/// r6 = channel state base (tail@0, consumed@4), r7 = user buffer.
fn csend_program(nbytes: u32, msg_type: u32) -> Program {
    let mut asm = Assembler::new();
    asm.label("csend")
        // Flow control: tail − consumed < SLOTS ?
        .load(Reg::R1, Reg::R6, 0) // tail
        .label("full")
        .load(Reg::R2, Reg::R6, 4) // consumed (written remotely)
        .mov(Reg::R3, Reg::R1)
        .sub(Reg::R3, Reg::R2)
        .cmpi(Reg::R3, SLOTS as i32)
        .jge("full")
        // Slot address = ring + (tail mod SLOTS) * SLOT_BYTES.
        .mov(Reg::R2, Reg::R1)
        .li(Reg::R4, SLOTS - 1)
        .and(Reg::R2, Reg::R4)
        .shl(Reg::R2, SLOT_BYTES.trailing_zeros() as u8)
        .add(Reg::R2, Reg::R5)
        // Header: length and (16-bit masked) type.
        .li(Reg::R3, nbytes)
        .store(Reg::R3, Reg::R2, HDR_LEN)
        .li(Reg::R4, msg_type)
        .li(Reg::R0, 0xffff)
        .and(Reg::R4, Reg::R0)
        .store(Reg::R4, Reg::R2, HDR_TYPE)
        // Copy the payload into the mapped slot (stores propagate).
        .mov(Reg::R0, Reg::R2)
        .addi(Reg::R0, HDR_SIZE as i32) // dst
        .mov(Reg::R3, Reg::R7) // src
        .li(Reg::R4, nbytes)
        .add(Reg::R4, Reg::R3) // end
        .label("cp")
        .load(Reg::R2, Reg::R3, 0)
        .store(Reg::R2, Reg::R0, 0)
        .addi(Reg::R3, 4)
        .addi(Reg::R0, 4)
        .cmp(Reg::R3, Reg::R4)
        .jnz("cp")
        // Publish: recompute the slot base, write seq = tail + 1 last
        // (release), bump the local tail.
        .mov(Reg::R2, Reg::R1)
        .li(Reg::R4, SLOTS - 1)
        .and(Reg::R2, Reg::R4)
        .shl(Reg::R2, SLOT_BYTES.trailing_zeros() as u8)
        .add(Reg::R2, Reg::R5)
        .mov(Reg::R3, Reg::R1)
        .addi(Reg::R3, 1)
        .store(Reg::R3, Reg::R2, HDR_SEQ)
        .store(Reg::R3, Reg::R6, 0)
        .halt();
    asm.assemble().expect("csend assembles")
}

/// Builds the `crecv` routine. Registers: r5 = local ring base,
/// r6 = state base (head@0, consumed-out@8), r7 = user buffer.
fn crecv_program(msg_type: u32) -> Program {
    let mut asm = Assembler::new();
    asm.label("crecv")
        .load(Reg::R1, Reg::R6, 0) // head
        // Slot address.
        .mov(Reg::R2, Reg::R1)
        .li(Reg::R4, SLOTS - 1)
        .and(Reg::R2, Reg::R4)
        .shl(Reg::R2, SLOT_BYTES.trailing_zeros() as u8)
        .add(Reg::R2, Reg::R5)
        // Wait for the slot to become valid.
        .label("wait")
        .cmpmem(Reg::R2, HDR_SEQ, 0)
        .jz("wait")
        // Dispatch: the head message's type must match (one sender per
        // type, FIFO dispatch — the §5.2 restriction).
        .load(Reg::R3, Reg::R2, HDR_TYPE)
        .cmpi(Reg::R3, msg_type as i32)
        .jnz("type_mismatch")
        // Copy out.
        .load(Reg::R4, Reg::R2, HDR_LEN)
        .mov(Reg::R3, Reg::R2)
        .addi(Reg::R3, HDR_SIZE as i32) // src
        .mov(Reg::R0, Reg::R7) // dst
        .add(Reg::R4, Reg::R3) // end
        .label("cp")
        .load(Reg::R2, Reg::R3, 0)
        .store(Reg::R2, Reg::R0, 0)
        .addi(Reg::R3, 4)
        .addi(Reg::R0, 4)
        .cmp(Reg::R3, Reg::R4)
        .jnz("cp")
        // Consume: clear the slot's seq, advance head, publish the
        // consumed counter back to the sender.
        .mov(Reg::R2, Reg::R1)
        .li(Reg::R4, SLOTS - 1)
        .and(Reg::R2, Reg::R4)
        .shl(Reg::R2, SLOT_BYTES.trailing_zeros() as u8)
        .add(Reg::R2, Reg::R5)
        .li(Reg::R3, 0)
        .store(Reg::R3, Reg::R2, HDR_SEQ)
        .addi(Reg::R1, 1)
        .store(Reg::R1, Reg::R6, 0)
        .store(Reg::R1, Reg::R6, 8)
        .halt()
        .label("type_mismatch")
        .halt();
    asm.assemble().expect("crecv assembles")
}

/// User-level `csend`/`crecv` in the style of Intel NX/2 (§5.2): typed,
/// FIFO-dispatched messages through a ring of slots in receiver memory,
/// with the consumed-counter flowing back through a reverse mapping.
///
/// Paper: 73 + 78 = 151 instructions. Our implementation is leaner (it
/// specializes the §5.2 restrictions at assembly time), so expect counts
/// in the same few-dozen range — the comparison that matters is against
/// NX/2's 222 + 261 kernel-path instructions.
///
/// # Errors
///
/// Propagates machine setup failures.
pub fn csend_crecv() -> Result<PrimitiveReport, MachineError> {
    const MSG_TYPE: u32 = 7;
    let mut w = World::new();
    let (m, s, r) = (&mut w.machine, w.sender, w.receiver);

    // Receiver: ring page + state page. Sender: ring image + state page.
    let r_ring = m.alloc_pages(RCV, r, 1)?;
    let r_state = m.alloc_pages(RCV, r, 1)?;
    let r_user = m.alloc_pages(RCV, r, 1)?;
    let s_ring = m.alloc_pages(SND, s, 1)?;
    let s_state = m.alloc_pages(SND, s, 1)?;
    let s_user = m.alloc_pages(SND, s, 1)?;

    let e_ring = m.export_buffer(RCV, r, r_ring, 1, Some(SND))?;
    let e_back = m.export_buffer(SND, s, s_state, 1, Some(RCV))?;

    // Sender's ring image → receiver's ring (blocked-write merges the
    // copy's consecutive stores into few packets).
    map_one_way(&mut w, s_ring, RCV, e_ring, 0, PAGE_SIZE, UpdatePolicy::AutomaticBlocked)?;
    // Receiver's consumed counter (state+8) → sender's state+4.
    map_one_way(&mut w, r_state.add(8), SND, e_back, 4, 4, UpdatePolicy::AutomaticSingle)?;

    // The user message.
    let payload: Vec<u8> = (1..=NBYTES as u8).collect();
    w.machine.poke(SND, s, s_user, &payload)?;
    w.machine.run_until_idle()?;

    w.machine.load_program(SND, s, csend_program(NBYTES, MSG_TYPE));
    w.machine.set_reg(SND, s, Reg::R5, s_ring.raw() as u32);
    w.machine.set_reg(SND, s, Reg::R6, s_state.raw() as u32);
    w.machine.set_reg(SND, s, Reg::R7, s_user.raw() as u32);

    w.machine.load_program(RCV, r, crecv_program(MSG_TYPE));
    w.machine.set_reg(RCV, r, Reg::R5, r_ring.raw() as u32);
    w.machine.set_reg(RCV, r, Reg::R6, r_state.raw() as u32);
    w.machine.set_reg(RCV, r, Reg::R7, r_user.raw() as u32);

    let t0 = w.machine.now();
    w.machine.start(SND, s);
    // Start the receiver once slot 0's seq word has arrived (minimal
    // path).
    assert!(
        w.wait_word(RCV, r, r_ring.add(HDR_SEQ as u64), 1),
        "slot must become valid"
    );
    w.machine.start(RCV, r);
    w.run_both()?;
    let elapsed = w.machine.now().since(t0);

    let verified = w.machine.peek(RCV, r, r_user, NBYTES as u64)? == payload
        && w.machine.peek(SND, s, s_state.add(4), 4)? == 1u32.to_le_bytes();

    let counts = OverheadCount {
        sender: w.retired(SND, s) - 1,
        receiver: w.retired(RCV, r) - 1,
    };
    let words = NBYTES as u64 / 4;
    let copy_excluded = Some(OverheadCount {
        sender: counts.sender - (words - 1) * 6,
        receiver: counts.receiver - (words - 1) * 6,
    });
    Ok(PrimitiveReport {
        counts,
        copy_excluded,
        verified,
        elapsed,
    })
}

// ─────────────────────────── Table 1 harness ─────────────────────────────

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Primitive name as in the paper.
    pub name: &'static str,
    /// The paper's (sender, receiver) instruction counts.
    pub paper: (u64, u64),
    /// Our measured report.
    pub report: PrimitiveReport,
}

/// Runs every primitive and returns the full Table 1 reproduction.
///
/// # Errors
///
/// Propagates the first primitive failure.
pub fn table1() -> Result<Vec<Table1Row>, MachineError> {
    Ok(vec![
        Table1Row {
            name: "single buffering",
            paper: (4, 5),
            report: single_buffering(false)?,
        },
        Table1Row {
            name: "single buffering + copy",
            paper: (4, 17),
            report: single_buffering(true)?,
        },
        Table1Row {
            name: "double buffering (case 1)",
            paper: (1, 1),
            report: double_buffering(DoubleBufferCase::BarrierSynchronized)?,
        },
        Table1Row {
            name: "double buffering (case 2)",
            paper: (3, 5),
            report: double_buffering(DoubleBufferCase::ReceiverSpins)?,
        },
        Table1Row {
            name: "double buffering (case 3)",
            paper: (5, 5),
            report: double_buffering(DoubleBufferCase::MessageSynchronized)?,
        },
        Table1Row {
            name: "deliberate-update transfer",
            paper: (15, 0),
            report: deliberate_update()?,
        },
        Table1Row {
            name: "csend and crecv",
            paper: (73, 78),
            report: csend_crecv()?,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_buffering_matches_paper() {
        let rep = single_buffering(false).unwrap();
        assert!(rep.verified, "data must arrive");
        assert_eq!(rep.counts.sender, 4);
        assert_eq!(rep.counts.receiver, 5);
        assert_eq!(rep.counts.total(), 9);
    }

    #[test]
    fn single_buffering_with_copy() {
        let rep = single_buffering(true).unwrap();
        assert!(rep.verified);
        assert_eq!(rep.counts.sender, 4);
        // 5 base + 12 copy overhead + (words-1)*6 per-word cost.
        let ex = rep.copy_excluded.unwrap();
        assert_eq!(ex.receiver, 17, "copy-excluded receiver overhead");
    }

    #[test]
    fn double_buffering_case1() {
        let rep = double_buffering(DoubleBufferCase::BarrierSynchronized).unwrap();
        assert!(rep.verified);
        assert_eq!((rep.counts.sender, rep.counts.receiver), (1, 1));
    }

    #[test]
    fn double_buffering_case2() {
        let rep = double_buffering(DoubleBufferCase::ReceiverSpins).unwrap();
        assert!(rep.verified);
        assert_eq!((rep.counts.sender, rep.counts.receiver), (3, 5));
    }

    #[test]
    fn double_buffering_case3() {
        let rep = double_buffering(DoubleBufferCase::MessageSynchronized).unwrap();
        assert!(rep.verified);
        assert_eq!((rep.counts.sender, rep.counts.receiver), (5, 5));
    }

    #[test]
    fn deliberate_update_matches_paper() {
        let rep = deliberate_update().unwrap();
        assert!(rep.verified, "page must arrive intact");
        assert_eq!(rep.counts.sender, 15);
        assert_eq!(rep.counts.receiver, 0);
    }

    #[test]
    fn csend_crecv_works_and_is_cheap() {
        let rep = csend_crecv().unwrap();
        assert!(rep.verified, "message must arrive and credit must return");
        let ex = rep.copy_excluded.unwrap();
        // Well under NX/2's 222/261 fast-path instructions.
        assert!(ex.sender < 100, "sender {}", ex.sender);
        assert!(ex.receiver < 100, "receiver {}", ex.receiver);
        assert!(ex.sender >= 20 && ex.receiver >= 20, "a real protocol is not free");
    }

    #[test]
    fn table1_reproduces() {
        let rows = table1().unwrap();
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(row.report.verified, "{} must verify", row.name);
        }
        // Exact matches for the primitives with paper-exact routines.
        let exact: Vec<_> = rows
            .iter()
            .filter(|r| r.name != "csend and crecv")
            .collect();
        for row in exact {
            let measured = row
                .report
                .copy_excluded
                .unwrap_or(row.report.counts);
            assert_eq!(
                (measured.sender, measured.receiver),
                row.paper,
                "{} instruction counts",
                row.name
            );
        }
    }
}
