//! One autonomous SHRIMP node: CPU, memory hierarchy, buses, NIC and
//! kernel, plus the node-local event behaviour that used to live inline
//! on `Machine`.
//!
//! The paper's nodes synchronize only through mesh packets (minimum one
//! link latency away) and kernel messages (a configured latency away), so
//! everything a node does in response to a *node-local* event — a CPU
//! step, an EISA DMA completion, a kernel message — touches only its own
//! state. [`Node::execute`] exploits that: it mutates the node in place
//! and records every externally-visible consequence (event pushes, log
//! entries, faults to service, network pumping) as an ordered
//! [`NodeEffects`] action list. The machine applies those actions in pop
//! order, which makes the parallel engine's results structurally
//! identical to the sequential engine's — the worker phase is pure
//! per-node, and the commit phase is sequential either way.
//!
//! Mesh-coupled events (FIFO drain, ejection delivery, NIC housekeeping)
//! stay on the machine, which owns the mesh.

use std::collections::BTreeMap;

use shrimp_cpu::{Cpu, MemoryBus, StepResult};
use shrimp_mem::{
    CacheMode, CacheModel, EisaBus, MemError, PageNum, PhysAddr, PhysicalMemory, Tlb, VirtAddr,
    XpressBus, WORD_SIZE,
};
use shrimp_mesh::{MeshPacket, NodeId};
use shrimp_nic::{AnyNic, NicModel, Payload, ShrimpPacket};
use shrimp_os::{Kernel, KernelMsg, OsError, Pid, RoundRobin, SchedDecision};
use shrimp_sim::{Component, SimDuration, SimTime, Tracer};

use crate::config::MachineConfig;
use crate::error::MachineError;

/// What one node does when its event fires. `CpuStep`, `DmaComplete` and
/// `KernelMsg` are node-local (handled by [`Node::execute`], eligible
/// for parallel batching); the rest couple to the mesh and are handled
/// by the machine.
#[derive(Debug, Clone)]
pub(crate) enum NodeEvent {
    /// Run (a batch of) CPU instructions.
    CpuStep,
    /// Poll NIC deadlines (retransmission timers, stall expiry).
    NicHousekeep,
    /// Move Outgoing-FIFO packets into the mesh injection port.
    DrainOutgoing,
    /// Start EISA DMA for packets ready on the Incoming FIFO.
    PopIncoming,
    /// An EISA DMA burst finished: commit the data to memory.
    DmaComplete {
        /// Destination of the burst.
        addr: PhysAddr,
        /// The delivered bytes.
        data: Payload,
    },
    /// A §4.4 kernel-to-kernel protocol message arrived.
    KernelMsg {
        /// The message.
        msg: KernelMsg,
    },
}

impl NodeEvent {
    /// True when handling this event touches only the owning node's
    /// state (the precondition for running it on a worker thread).
    pub(crate) fn is_node_local(&self) -> bool {
        matches!(
            self,
            NodeEvent::CpuStep | NodeEvent::DmaComplete { .. } | NodeEvent::KernelMsg { .. }
        )
    }
}

/// One externally-visible consequence of executing a node-local event.
/// Order matters: the machine replays actions exactly in the order the
/// sequential engine would have performed them.
#[derive(Debug)]
pub(crate) enum Action {
    /// Schedule an event (own node, or another node's kernel inbox).
    Push {
        /// When it fires.
        at: SimTime,
        /// Which node it targets.
        node: u16,
        /// What fires.
        ev: NodeEvent,
    },
    /// Append to the machine syscall log.
    Syscall {
        /// Trapping process.
        pid: Pid,
        /// Syscall code.
        code: u32,
    },
    /// A memory fault needs machine-level service (the §4.4 reestablish
    /// path may touch the destination node, so workers never handle it).
    Fault {
        /// Faulting process.
        pid: Pid,
        /// The fault.
        error: MemError,
    },
    /// Delivered data freed Incoming-FIFO space: pump the network.
    PumpNetwork,
}

/// The ordered action list produced by [`Node::execute`].
#[derive(Debug, Default)]
pub(crate) struct NodeEffects {
    /// Actions, in execution order.
    pub actions: Vec<Action>,
}

impl NodeEffects {
    /// Records an event push.
    pub(crate) fn push_event(&mut self, at: SimTime, node: u16, ev: NodeEvent) {
        self.actions.push(Action::Push { at, node, ev });
    }
}

/// One node of the simulated multicomputer and its whole private
/// datapath.
#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) id: NodeId,
    pub(crate) kernel: Kernel,
    pub(crate) mem: PhysicalMemory,
    pub(crate) cache: CacheModel,
    pub(crate) xpress: XpressBus,
    pub(crate) eisa: EisaBus,
    pub(crate) nic: AnyNic,
    pub(crate) tlb: Tlb,
    pub(crate) sched: RoundRobin,
    pub(crate) cpus: BTreeMap<Pid, Cpu>,
    pub(crate) running: Option<Pid>,
    pub(crate) cpu_busy_until: SimTime,
    /// Pending-wakeup dedup: earliest scheduled PopIncoming /
    /// DrainOutgoing / NicHousekeep event, so the pump paths don't flood
    /// the queue with redundant wakeups.
    pub(crate) pop_wakeup: Option<SimTime>,
    pub(crate) drain_wakeup: Option<SimTime>,
    pub(crate) housekeep_wakeup: Option<SimTime>,
    /// Workload sessions ever opened with this node as their source
    /// (closed-loop generator accounting; see `shrimp-workload`).
    pub(crate) sessions_opened: u64,
    /// Workload sessions since closed.
    pub(crate) sessions_closed: u64,
}

impl Node {
    /// Builds an idle node from the machine configuration.
    pub(crate) fn new(id: NodeId, config: &MachineConfig) -> Self {
        let mut nic = AnyNic::new(
            config.nic_backend,
            id,
            config.shape,
            config.nic,
            config.pages_per_node,
        );
        if let Some(site) = config.fault.nic_site(id.0 as u64) {
            nic.set_fault_injection(site);
        }
        if let Some(level) = config.telemetry.trace_level {
            nic.set_tracer(Tracer::new(level));
        }
        Node {
            id,
            kernel: Kernel::with_policy(
                id,
                config.pages_per_node,
                shrimp_os::kernel::ConsistencyPolicy::Invalidate,
            ),
            mem: PhysicalMemory::new(config.pages_per_node),
            cache: CacheModel::new(config.cache),
            xpress: XpressBus::new(config.bus),
            eisa: EisaBus::new(config.bus),
            nic,
            tlb: Tlb::new(config.tlb_entries),
            sched: RoundRobin::new(config.quantum),
            cpus: BTreeMap::new(),
            running: None,
            cpu_busy_until: SimTime::ZERO,
            pop_wakeup: None,
            drain_wakeup: None,
            housekeep_wakeup: None,
            sessions_opened: 0,
            sessions_closed: 0,
        }
    }

    /// Workload sessions currently open on this node (opened − closed).
    pub(crate) fn sessions_open(&self) -> u64 {
        self.sessions_opened - self.sessions_closed
    }

    // ────────────────────── node-local event handling ─────────────────────

    /// Executes one node-local event, mutating only this node and
    /// recording every external consequence into `fx` in order.
    ///
    /// # Panics
    ///
    /// Panics if handed a mesh-coupled event (`NicHousekeep`,
    /// `DrainOutgoing`, `PopIncoming`) — those belong to the machine.
    pub(crate) fn execute(
        &mut self,
        t: SimTime,
        ev: NodeEvent,
        cfg: &MachineConfig,
        fx: &mut NodeEffects,
    ) {
        match ev {
            NodeEvent::CpuStep => self.cpu_step(t, cfg, fx),
            NodeEvent::DmaComplete { addr, data } => {
                let len = data.len() as u64;
                self.mem
                    .write_bytes(addr, &data)
                    .expect("NIPT-checked delivery must be in range");
                self.cache.snoop_invalidate(addr, len);
                // No src in this event; recorded at pop time instead.
                fx.actions.push(Action::PumpNetwork);
            }
            NodeEvent::KernelMsg { msg } => {
                let from = msg.from();
                let (replies, scrub) = self.kernel.handle_msg(msg);
                // Remove the NIPT out-segments that pointed at the
                // invalidated remote frame.
                if let KernelMsg::InvalidateNipt { from: requester, frame } = msg {
                    for src_frame in scrub {
                        self.scrub_segments(src_frame, requester, frame);
                    }
                }
                self.tlb.flush();
                let latency = cfg.kernel_msg_latency;
                for reply in replies {
                    fx.push_event(t + latency, from.0, NodeEvent::KernelMsg { msg: reply });
                }
            }
            NodeEvent::NicHousekeep | NodeEvent::DrainOutgoing | NodeEvent::PopIncoming => {
                unreachable!("mesh-coupled events are handled by the machine")
            }
        }
    }

    fn cpu_step(&mut self, t: SimTime, cfg: &MachineConfig, fx: &mut NodeEffects) {
        if t < self.cpu_busy_until {
            return; // stale event
        }
        let (pid, until) = match self.sched.tick(t) {
            SchedDecision::Run { pid, until } => (pid, until),
            SchedDecision::Idle => return,
        };
        if self.running != Some(pid) {
            // Dispatching onto an idle CPU is free (nothing to save);
            // switching between processes costs a full context switch
            // with a TLB flush.
            let from_other = self.running.is_some();
            self.tlb.flush();
            self.running = Some(pid);
            if from_other {
                let resume = t + cfg.context_switch_cost;
                self.cpu_busy_until = resume;
                // The incoming process's quantum starts once the
                // switch completes.
                self.sched.restart_quantum(resume);
                fx.push_event(resume, self.id.0, NodeEvent::CpuStep);
                return;
            }
        }

        let Some(mut cpu) = self.cpus.remove(&pid) else {
            // No program loaded: drop from the scheduler.
            self.sched.remove(pid);
            return;
        };
        let result = {
            let pages_per_node = cfg.pages_per_node;
            let walk_latency = SimDuration::from_ns(100);
            let Some(proc) = self.kernel.process(pid) else {
                self.sched.remove(pid);
                self.cpus.insert(pid, cpu);
                return;
            };
            let mut bus = NodeBusView {
                pt: proc.page_table(),
                tlb: &mut self.tlb,
                cache: &mut self.cache,
                xpress: &mut self.xpress,
                mem: &mut self.mem,
                nic: &mut self.nic,
                walk_latency,
                pages_per_node,
            };
            // Batch a quantum of instructions into this one event. Only
            // register-only instructions (no bus transaction, no trap,
            // no halt) may run after the first: the batch breaks BEFORE
            // any bus-visible instruction so it executes at its own
            // event, after any intermediate events (DMA completions,
            // deliveries) the unbatched loop would have processed first.
            // A non-`Ran` result can therefore only come from the first
            // instruction, at time `t`.
            const CPU_BATCH: u32 = 32;
            let mut now = t;
            let mut steps = 0u32;
            loop {
                let r = cpu.step(now, &mut bus);
                steps += 1;
                if let StepResult::Ran { completes_at } = r {
                    now = completes_at;
                    if steps < CPU_BATCH
                        && completes_at < until
                        && cpu
                            .program()
                            .fetch(cpu.pc())
                            .is_some_and(|i| i.is_register_only())
                    {
                        continue;
                    }
                }
                break r;
            }
        };
        let halted = cpu.is_halted();
        self.cpus.insert(pid, cpu);

        match result {
            StepResult::Ran { completes_at } => {
                self.cpu_busy_until = completes_at;
                fx.push_event(completes_at, self.id.0, NodeEvent::CpuStep);
            }
            StepResult::Halted => {
                self.sched.remove(pid);
                self.running = None;
                if halted {
                    // Another process may be runnable.
                    fx.push_event(t, self.id.0, NodeEvent::CpuStep);
                }
            }
            StepResult::Blocked => {
                // Outgoing FIFO over threshold: the CPU waits for drain.
                let retry = self
                    .nic
                    .outgoing_ready_at()
                    .map_or(t + SimDuration::from_ns(100), |r| {
                        r.max(t) + SimDuration::from_ns(10)
                    });
                fx.push_event(retry, self.id.0, NodeEvent::CpuStep);
            }
            StepResult::Syscall { code, completes_at } => {
                fx.actions.push(Action::Syscall { pid, code });
                if code == 0 {
                    // exit()
                    self.sched.remove(pid);
                    self.running = None;
                    if let Some(c) = self.cpus.get_mut(&pid) {
                        c.set_pc(usize::MAX - 1);
                    }
                    fx.push_event(t, self.id.0, NodeEvent::CpuStep);
                } else {
                    let resume = completes_at + cfg.fault_cost;
                    self.cpu_busy_until = resume;
                    fx.push_event(resume, self.id.0, NodeEvent::CpuStep);
                }
            }
            StepResult::Fault { error } => fx.actions.push(Action::Fault { pid, error }),
        }
        self.schedule_wakeups(t, fx);
    }

    /// Clears the NIPT out-segments on `src_frame` that point at
    /// `dst_node`'s invalidated `dst_frame`.
    pub(crate) fn scrub_segments(
        &mut self,
        src_frame: PageNum,
        dst_node: NodeId,
        dst_frame: PageNum,
    ) {
        let starts: Vec<u64> = self
            .nic
            .nipt()
            .entry(src_frame)
            .map(|e| {
                e.segments()
                    .filter(|s| s.dst_node == dst_node && s.dst_base.page() == dst_frame)
                    .map(|s| s.src_start)
                    .collect()
            })
            .unwrap_or_default();
        for start in starts {
            // Through the trait so backends with cached translations
            // (the unpinned IOTLB) observe the shootdown.
            self.nic.unmap_out(src_frame, start);
        }
    }

    // ────────────────────────── wakeup scheduling ─────────────────────────

    /// Records deduplicated NIC wakeup events (housekeep / drain / pop)
    /// for whatever the NIC currently has pending.
    pub(crate) fn schedule_wakeups(&mut self, t: SimTime, fx: &mut NodeEffects) {
        let housekeep = self.nic.next_deadline().map(|d| d.max(t));
        let drain = self.nic.outgoing_ready_at().filter(|&r| r > t);
        let pop = self.nic.incoming_ready_at().map(|r| r.max(t));
        if let Some(at) = housekeep {
            if self.housekeep_wakeup.is_none_or(|w| at < w || w < t) {
                self.housekeep_wakeup = Some(at);
                fx.push_event(at, self.id.0, NodeEvent::NicHousekeep);
            }
        }
        if let Some(at) = drain {
            if self.drain_wakeup.is_none_or(|w| at < w || w < t) {
                self.drain_wakeup = Some(at);
                fx.push_event(at, self.id.0, NodeEvent::DrainOutgoing);
            }
        }
        if let Some(at) = pop {
            self.due_pop_wakeup(t, at, fx);
        }
    }

    /// Records a deduplicated PopIncoming wakeup at `at`.
    pub(crate) fn due_pop_wakeup(&mut self, t: SimTime, at: SimTime, fx: &mut NodeEffects) {
        if self.pop_wakeup.is_none_or(|w| at < w || w < t) {
            self.pop_wakeup = Some(at);
            fx.push_event(at, self.id.0, NodeEvent::PopIncoming);
        }
    }

    // ──────────────────────── host-facing datapath ────────────────────────

    /// Pulls the next mesh-ready packet off the Outgoing FIFO (the
    /// machine injects it; the node never touches the mesh itself).
    pub(crate) fn drain_outbound(&mut self, t: SimTime) -> Option<MeshPacket<ShrimpPacket>> {
        self.nic.pop_outgoing(t)
    }

    /// One word of the host store path (poke / msglib setup): full
    /// translation, cache, bus and NIC snooping, no CPU.
    pub(crate) fn store_word_through(
        &mut self,
        t: SimTime,
        pid: Pid,
        va: VirtAddr,
        value: u32,
        pages_per_node: u64,
    ) -> Result<SimTime, MachineError> {
        let proc = self
            .kernel
            .process(pid)
            .ok_or(MachineError::Os(OsError::NoSuchProcess(pid)))?;
        let mut bus = NodeBusView {
            pt: proc.page_table(),
            tlb: &mut self.tlb,
            cache: &mut self.cache,
            xpress: &mut self.xpress,
            mem: &mut self.mem,
            nic: &mut self.nic,
            walk_latency: SimDuration::from_ns(100),
            pages_per_node,
        };
        Ok(bus.store_word(t, va, value)?)
    }
}

/// The node's NIC datapath as a passive component: earliest pending NIC
/// work, and a way to bring the NIC forward in time.
impl Component for Node {
    fn next_event_time(&self) -> Option<SimTime> {
        [
            self.nic.next_deadline(),
            self.nic.outgoing_ready_at(),
            self.nic.incoming_ready_at(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn advance(&mut self, until: SimTime) {
        self.nic.poll(until);
    }
}

// ───────────────────────────── the bus view ─────────────────────────────

/// The CPU's window onto one node's memory system: page-table
/// translation with a TLB, the snooping cache, the Xpress bus (with NIC
/// snooping of write-through stores), and command-page decoding.
struct NodeBusView<'a> {
    pt: &'a shrimp_mem::PageTable,
    tlb: &'a mut Tlb,
    cache: &'a mut CacheModel,
    xpress: &'a mut XpressBus,
    mem: &'a mut PhysicalMemory,
    nic: &'a mut AnyNic,
    walk_latency: SimDuration,
    pages_per_node: u64,
}

/// The deliberate-update DMA source read: one NIC-initiated bus read
/// filling a recycled arena buffer (no per-packet allocation on the hot
/// path). Shared by the store and CMPXCHG command paths.
fn nic_dma_read(
    xpress: &mut XpressBus,
    mem: &mut PhysicalMemory,
    at: SimTime,
    src: PhysAddr,
    len: u64,
) -> (Payload, SimTime) {
    let txn = xpress.read(at, src, len, shrimp_mem::BusInitiator::NicDma);
    let payload = shrimp_nic::pooled_payload(len as usize, |buf| {
        let _ = mem.read_bytes_into(src, buf);
    });
    (payload, txn.grant.end)
}

impl NodeBusView<'_> {
    fn translate(
        &mut self,
        now: SimTime,
        va: VirtAddr,
        write: bool,
    ) -> Result<(PhysAddr, CacheMode, SimTime), MemError> {
        let vpn = va.page();
        if let Some((frame, flags)) = self.tlb.lookup(vpn) {
            if write && !flags.protection.allows_write() {
                return Err(MemError::ProtectionViolation { addr: va, write });
            }
            return Ok((frame.at_offset(va.offset()), flags.cache_mode, now));
        }
        let tr = if write {
            self.pt.translate_write(va)?
        } else {
            self.pt.translate_read(va)?
        };
        self.tlb.insert(vpn, tr.frame, tr.flags);
        Ok((tr.phys, tr.flags.cache_mode, now + self.walk_latency))
    }

    fn is_command(&self, phys: PhysAddr) -> bool {
        phys.page().raw() >= self.pages_per_node
    }
}

impl MemoryBus for NodeBusView<'_> {
    fn load_word(&mut self, now: SimTime, addr: VirtAddr) -> Result<(u32, SimTime), MemError> {
        let (phys, _mode, t) = self.translate(now, addr, false)?;
        if self.is_command(phys) {
            // Command reads are uncached I/O reads over the bus.
            let txn = self
                .xpress
                .read(t, phys, WORD_SIZE, shrimp_mem::BusInitiator::Cpu);
            let v = self.nic.command_read(txn.grant.end, phys);
            return Ok((v, txn.grant.end));
        }
        let outcome = self.cache.load(phys);
        if outcome.bus_access {
            if let Some(victim) = outcome.writeback {
                self.xpress.write(
                    t,
                    victim,
                    self.cache.config().line_size,
                    shrimp_mem::BusInitiator::Cpu,
                );
            }
            let txn = self.xpress.read(
                t,
                phys,
                self.cache.config().line_size,
                shrimp_mem::BusInitiator::Cpu,
            );
            let v = self.mem.read_word(phys)?;
            return Ok((v, txn.grant.end));
        }
        let v = self.mem.read_word(phys)?;
        Ok((v, t))
    }

    fn store_word(&mut self, now: SimTime, addr: VirtAddr, value: u32) -> Result<SimTime, MemError> {
        let (phys, mode, t) = self.translate(now, addr, true)?;
        if self.is_command(phys) {
            let txn = self
                .xpress
                .write(t, phys, WORD_SIZE, shrimp_mem::BusInitiator::Cpu);
            let end = txn.grant.end;
            // A plain store to a command page issues the encoded command.
            // mem_read services deliberate-update DMA reads.
            let mem = &mut *self.mem;
            let xpress = &mut *self.xpress;
            let _ = self
                .nic
                .command_write(end, phys, value, |src, len| {
                    nic_dma_read(xpress, mem, end, src, len)
                });
            return Ok(end);
        }
        let outcome = self.cache.store(phys, mode);
        let mut end = t;
        if let Some(victim) = outcome.writeback {
            self.xpress.write(
                t,
                victim,
                self.cache.config().line_size,
                shrimp_mem::BusInitiator::Cpu,
            );
        }
        if outcome.bus_access {
            let txn = self
                .xpress
                .write(t, phys, WORD_SIZE, shrimp_mem::BusInitiator::Cpu);
            end = txn.grant.end;
            if mode == CacheMode::WriteThrough {
                // The NIC snoops the write off the bus (paper §3.1).
                self.nic.snoop_write(end, phys, &value.to_le_bytes());
            }
        }
        self.mem.write_word(phys, value)?;
        Ok(end)
    }

    fn cmpxchg_word(
        &mut self,
        now: SimTime,
        addr: VirtAddr,
        expected: u32,
        new: u32,
    ) -> Result<(u32, SimTime), MemError> {
        let (phys, mode, t) = self.translate(now, addr, true)?;
        if self.is_command(phys) {
            // The §4.3 protocol: the read cycle returns the DMA status;
            // if it matches, the write cycle starts the transfer.
            let txn = self
                .xpress
                .read(t, phys, WORD_SIZE, shrimp_mem::BusInitiator::Cpu);
            let status = self.nic.command_read(txn.grant.end, phys);
            let mut end = txn.grant.end;
            if status == expected {
                let wtxn = self
                    .xpress
                    .write(end, phys, WORD_SIZE, shrimp_mem::BusInitiator::Cpu);
                end = wtxn.grant.end;
                let mem = &mut *self.mem;
                let xpress = &mut *self.xpress;
                let _ = self
                    .nic
                    .command_write(end, phys, new, |src, len| {
                        nic_dma_read(xpress, mem, end, src, len)
                    });
            }
            return Ok((status, end));
        }
        // A locked data-memory CMPXCHG: one atomic read-(maybe-)write
        // bus transaction.
        let txn = self
            .xpress
            .read(t, phys, WORD_SIZE, shrimp_mem::BusInitiator::Cpu);
        let old = self.mem.read_word(phys)?;
        let mut end = txn.grant.end;
        if old == expected {
            let wtxn = self
                .xpress
                .write(end, phys, WORD_SIZE, shrimp_mem::BusInitiator::Cpu);
            end = wtxn.grant.end;
            self.mem.write_word(phys, new)?;
            let _ = self.cache.store(phys, mode);
            if mode == CacheMode::WriteThrough {
                self.nic.snoop_write(end, phys, &new.to_le_bytes());
            }
        }
        Ok((old, end))
    }

    fn store_allowed(&self, _now: SimTime) -> bool {
        !self.nic.cpu_must_stall()
    }
}
