//! PRAM-consistency shared memory (paper §4.1).
//!
//! Two processes on different nodes share memory by creating
//! *complementary* automatic-update mappings: each keeps a local copy,
//! and every local store is propagated to the remote copy. There is no
//! global consistency mechanism — the hardware only guarantees that
//! updates from one sender arrive in order (PRAM consistency) — so
//! applications layer their own protocols on top, like the flag
//! handshake in [`SharedPair::write_with_flag`].

use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_mesh::NodeId;
use shrimp_nic::UpdatePolicy;
use shrimp_os::Pid;

use crate::error::MachineError;
use crate::machine::{Machine, MapRequest};

/// A pairwise-shared memory region backed by complementary
/// automatic-update mappings.
///
/// # Examples
///
/// ```
/// use shrimp_core::{Machine, MachineConfig};
/// use shrimp_core::pram::SharedPair;
/// use shrimp_mesh::NodeId;
///
/// let mut m = Machine::new(MachineConfig::two_nodes());
/// let a = m.create_process(NodeId(0));
/// let b = m.create_process(NodeId(1));
/// let shared = SharedPair::establish(&mut m, (NodeId(0), a), (NodeId(1), b), 1)?;
/// shared.write_a(&mut m, 0, &7u32.to_le_bytes())?;
/// m.run_until_idle()?;
/// assert_eq!(shared.read_b(&m, 0, 4)?, 7u32.to_le_bytes());
/// # Ok::<(), shrimp_core::MachineError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SharedPair {
    a_node: NodeId,
    a_pid: Pid,
    a_va: VirtAddr,
    b_node: NodeId,
    b_pid: Pid,
    b_va: VirtAddr,
    len: u64,
}

impl SharedPair {
    /// Allocates `pages` on both sides and wires the complementary
    /// single-write automatic-update mappings.
    ///
    /// # Errors
    ///
    /// Propagates allocation/mapping failures.
    pub fn establish(
        m: &mut Machine,
        a: (NodeId, Pid),
        b: (NodeId, Pid),
        pages: u64,
    ) -> Result<SharedPair, MachineError> {
        let a_va = m.alloc_pages(a.0, a.1, pages)?;
        let b_va = m.alloc_pages(b.0, b.1, pages)?;
        let export_b = m.export_buffer(b.0, b.1, b_va, pages, Some(a.0))?;
        let export_a = m.export_buffer(a.0, a.1, a_va, pages, Some(b.0))?;
        let len = pages * PAGE_SIZE;
        m.map(MapRequest {
            src_node: a.0,
            src_pid: a.1,
            src_va: a_va,
            dst_node: b.0,
            export: export_b,
            dst_offset: 0,
            len,
            policy: UpdatePolicy::AutomaticSingle,
        })?;
        m.map(MapRequest {
            src_node: b.0,
            src_pid: b.1,
            src_va: b_va,
            dst_node: a.0,
            export: export_a,
            dst_offset: 0,
            len,
            policy: UpdatePolicy::AutomaticSingle,
        })?;
        Ok(SharedPair {
            a_node: a.0,
            a_pid: a.1,
            a_va,
            b_node: b.0,
            b_pid: b.1,
            b_va,
            len,
        })
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for a zero-length region (never produced by `establish`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Side A's local base address.
    pub fn a_base(&self) -> VirtAddr {
        self.a_va
    }

    /// Side B's local base address.
    pub fn b_base(&self) -> VirtAddr {
        self.b_va
    }

    fn check(&self, offset: u64, len: u64) {
        assert!(
            offset + len <= self.len,
            "access [{offset}, {}) outside shared region of {} bytes",
            offset + len,
            self.len
        );
    }

    /// Side A stores into its copy; the update propagates to B.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn write_a(&self, m: &mut Machine, offset: u64, data: &[u8]) -> Result<(), MachineError> {
        self.check(offset, data.len() as u64);
        m.poke(self.a_node, self.a_pid, self.a_va.add(offset), data)
    }

    /// Side B stores into its copy; the update propagates to A.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn write_b(&self, m: &mut Machine, offset: u64, data: &[u8]) -> Result<(), MachineError> {
        self.check(offset, data.len() as u64);
        m.poke(self.b_node, self.b_pid, self.b_va.add(offset), data)
    }

    /// Reads side A's local copy.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn read_a(&self, m: &Machine, offset: u64, len: u64) -> Result<Vec<u8>, MachineError> {
        self.check(offset, len);
        m.peek(self.a_node, self.a_pid, self.a_va.add(offset), len)
    }

    /// Reads side B's local copy.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn read_b(&self, m: &Machine, offset: u64, len: u64) -> Result<Vec<u8>, MachineError> {
        self.check(offset, len);
        m.peek(self.b_node, self.b_pid, self.b_va.add(offset), len)
    }

    /// A release-style publication: writes `data` at `offset`, then a
    /// nonzero flag word at `flag_offset`. Because the hardware delivers
    /// one sender's updates in order (§4.1), the remote side observing
    /// the flag is guaranteed to observe the data — the software
    /// consistency protocol the paper describes.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn write_with_flag(
        &self,
        m: &mut Machine,
        offset: u64,
        data: &[u8],
        flag_offset: u64,
        flag_value: u32,
    ) -> Result<(), MachineError> {
        assert_ne!(flag_value, 0, "flag must be nonzero to be observable");
        self.write_a(m, offset, data)?;
        self.write_a(m, flag_offset, &flag_value.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn setup() -> (Machine, SharedPair) {
        let mut m = Machine::new(MachineConfig::two_nodes());
        let a = m.create_process(NodeId(0));
        let b = m.create_process(NodeId(1));
        let pair = SharedPair::establish(&mut m, (NodeId(0), a), (NodeId(1), b), 1).unwrap();
        (m, pair)
    }

    #[test]
    fn updates_propagate_both_ways() {
        let (mut m, pair) = setup();
        pair.write_a(&mut m, 0, &0x1111_1111u32.to_le_bytes()).unwrap();
        pair.write_b(&mut m, 4, &0x2222_2222u32.to_le_bytes()).unwrap();
        m.run_until_idle().unwrap();
        assert_eq!(pair.read_b(&m, 0, 4).unwrap(), 0x1111_1111u32.to_le_bytes());
        assert_eq!(pair.read_a(&m, 4, 4).unwrap(), 0x2222_2222u32.to_le_bytes());
        // Local copies also hold their own writes.
        assert_eq!(pair.read_a(&m, 0, 4).unwrap(), 0x1111_1111u32.to_le_bytes());
    }

    #[test]
    fn flag_release_orders_data() {
        let (mut m, pair) = setup();
        let data = [9u8; 64];
        pair.write_with_flag(&mut m, 0, &data, 128, 1).unwrap();
        m.run_until_idle().unwrap();
        // Observing the flag on B implies the data is there.
        assert_eq!(pair.read_b(&m, 128, 4).unwrap(), 1u32.to_le_bytes());
        assert_eq!(pair.read_b(&m, 0, 64).unwrap(), data);
    }

    #[test]
    fn copies_may_diverge_without_protocol() {
        // PRAM consistency: concurrent writes to the same word leave the
        // two copies with different values (each sees its own write last
        // only if updates cross). The model must allow this without
        // corrupting anything else.
        let (mut m, pair) = setup();
        pair.write_a(&mut m, 0, &1u32.to_le_bytes()).unwrap();
        pair.write_b(&mut m, 0, &2u32.to_le_bytes()).unwrap();
        m.run_until_idle().unwrap();
        let a = pair.read_a(&m, 0, 4).unwrap();
        let b = pair.read_b(&m, 0, 4).unwrap();
        // Each copy holds the *other* side's update (it arrived after the
        // local store).
        assert_eq!(a, 2u32.to_le_bytes());
        assert_eq!(b, 1u32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "outside shared region")]
    fn out_of_region_access_panics() {
        let (mut m, pair) = setup();
        pair.write_a(&mut m, PAGE_SIZE - 2, &[0; 4]).unwrap();
    }

    #[test]
    fn geometry_accessors() {
        let (_, pair) = setup();
        assert_eq!(pair.len(), PAGE_SIZE);
        assert!(!pair.is_empty());
        // Addresses are per-process; both sides allocate from the same
        // layout, so equality is expected and meaningless.
        assert_eq!(pair.a_base().offset(), 0);
        assert_eq!(pair.b_base().offset(), 0);
    }
}
