//! A tiny assembler with labels.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::isa::{Instr, Reg};

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// The program has no instructions.
    Empty,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl Error for AsmError {}

/// An assembled, immutable program. Cheap to clone (shared storage) so
/// every simulated CPU can hold its own handle.
#[derive(Debug, Clone)]
pub struct Program {
    instrs: Arc<[Instr]>,
    labels: Arc<HashMap<String, usize>>,
}

impl Program {
    /// The instruction at `pc`, if in range.
    pub fn fetch(&self, pc: usize) -> Option<Instr> {
        self.instrs.get(pc).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for a program with no instructions (never produced by
    /// [`Assembler::assemble`]).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The pc a label resolves to.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }
}

/// A branch target awaiting label resolution: an index into
/// `Assembler::label_names`.
#[derive(Debug, Clone, Copy)]
struct PendingTarget(usize);

#[derive(Debug, Clone, Copy)]
enum BranchKind {
    Jmp,
    Jz,
    Jnz,
    Jlt,
    Jge,
}

/// Builds a [`Program`] with forward and backward label references.
///
/// All instruction-emitting methods return `&mut Self` for chaining.
///
/// # Examples
///
/// ```
/// use shrimp_cpu::{Assembler, Reg};
///
/// // Spin until mem[r2] is non-zero.
/// let mut asm = Assembler::new();
/// asm.label("spin")
///     .load(Reg::R1, Reg::R2, 0)
///     .cmpi(Reg::R1, 0)
///     .jz("spin")
///     .halt();
/// let program = asm.assemble()?;
/// assert_eq!(program.len(), 4);
/// assert_eq!(program.label("spin"), Some(0));
/// # Ok::<(), shrimp_cpu::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<Instr>,
    labels: HashMap<String, usize>,
    label_names: Vec<String>,
    branches: Vec<(usize, BranchKind, PendingTarget)>,
    duplicate: Option<String>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.instrs.len()).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn branch(&mut self, kind: BranchKind, label: &str) -> &mut Self {
        let idx = self.label_names.len();
        self.label_names.push(label.to_string());
        self.branches
            .push((self.instrs.len(), kind, PendingTarget(idx)));
        // Placeholder; patched in assemble().
        self.emit(Instr::Jmp { target: usize::MAX })
    }

    /// `rd <- imm`
    pub fn li(&mut self, rd: Reg, imm: u32) -> &mut Self {
        self.emit(Instr::Li { rd, imm })
    }

    /// `rd <- rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mov { rd, rs })
    }

    /// `rd <- mem32[base + offset]`
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Load { rd, base, offset })
    }

    /// `mem32[base + offset] <- rs`
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Store { rs, base, offset })
    }

    /// `rd <- rd + rs`
    pub fn add(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Add { rd, rs })
    }

    /// `rd <- rd + imm`
    pub fn addi(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::Addi { rd, imm })
    }

    /// `rd <- rd - rs`
    pub fn sub(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Sub { rd, rs })
    }

    /// `rd <- rd & rs`
    pub fn and(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::And { rd, rs })
    }

    /// `rd <- rd | rs`
    pub fn or(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Or { rd, rs })
    }

    /// `rd <- rd ^ rs`
    pub fn xor(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Xor { rd, rs })
    }

    /// `rd <- rd << amount`
    pub fn shl(&mut self, rd: Reg, amount: u8) -> &mut Self {
        self.emit(Instr::Shl { rd, amount })
    }

    /// `rd <- rd >> amount`
    pub fn shr(&mut self, rd: Reg, amount: u8) -> &mut Self {
        self.emit(Instr::Shr { rd, amount })
    }

    /// Compare registers, setting flags.
    pub fn cmp(&mut self, ra: Reg, rb: Reg) -> &mut Self {
        self.emit(Instr::Cmp { ra, rb })
    }

    /// Compare a register with an immediate, setting flags.
    pub fn cmpi(&mut self, ra: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::Cmpi { ra, imm })
    }

    /// Compare `mem32[base + offset]` with an immediate (one i386
    /// instruction), setting flags.
    pub fn cmpmem(&mut self, base: Reg, offset: i32, imm: i32) -> &mut Self {
        self.emit(Instr::CmpMem { base, offset, imm })
    }

    /// `mem32[base + offset] <- imm` (i386 `mov dword [mem], imm`).
    pub fn stimm(&mut self, base: Reg, offset: i32, imm: u32) -> &mut Self {
        self.emit(Instr::StImm { base, offset, imm })
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.branch(BranchKind::Jmp, label)
    }

    /// Jump to `label` if the zero flag is set.
    pub fn jz(&mut self, label: &str) -> &mut Self {
        self.branch(BranchKind::Jz, label)
    }

    /// Jump to `label` if the zero flag is clear.
    pub fn jnz(&mut self, label: &str) -> &mut Self {
        self.branch(BranchKind::Jnz, label)
    }

    /// Jump to `label` if less-than.
    pub fn jlt(&mut self, label: &str) -> &mut Self {
        self.branch(BranchKind::Jlt, label)
    }

    /// Jump to `label` if greater-or-equal.
    pub fn jge(&mut self, label: &str) -> &mut Self {
        self.branch(BranchKind::Jge, label)
    }

    /// Locked compare-and-exchange against `mem32[base + offset]`.
    pub fn cmpxchg(&mut self, base: Reg, offset: i32, src: Reg) -> &mut Self {
        self.emit(Instr::CmpXchg { base, offset, src })
    }

    /// Trap to the kernel.
    pub fn syscall(&mut self, code: u32) -> &mut Self {
        self.emit(Instr::Syscall { code })
    }

    /// Stop the processor.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Do nothing for one instruction.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// Current instruction count (useful for computing code offsets).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Resolves labels and produces the immutable program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined/duplicate labels or an empty
    /// program.
    pub fn assemble(&mut self) -> Result<Program, AsmError> {
        if let Some(dup) = &self.duplicate {
            return Err(AsmError::DuplicateLabel(dup.clone()));
        }
        if self.instrs.is_empty() {
            return Err(AsmError::Empty);
        }
        let mut instrs = self.instrs.clone();
        for &(pc, kind, pending) in &self.branches {
            let name = &self.label_names[pending.0];
            let target = *self
                .labels
                .get(name)
                .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
            instrs[pc] = match kind {
                BranchKind::Jmp => Instr::Jmp { target },
                BranchKind::Jz => Instr::Jz { target },
                BranchKind::Jnz => Instr::Jnz { target },
                BranchKind::Jlt => Instr::Jlt { target },
                BranchKind::Jge => Instr::Jge { target },
            };
        }
        Ok(Program {
            instrs: instrs.into(),
            labels: Arc::new(self.labels.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new();
        asm.label("top")
            .li(Reg::R1, 1)
            .jmp("end")
            .jmp("top") // dead code exercising backward reference
            .label("end")
            .halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.label("top"), Some(0));
        assert_eq!(p.label("end"), Some(3));
        assert_eq!(p.fetch(1), Some(Instr::Jmp { target: 3 }));
        assert_eq!(p.fetch(2), Some(Instr::Jmp { target: 0 }));
    }

    #[test]
    fn undefined_label_errors() {
        let mut asm = Assembler::new();
        asm.jmp("nowhere");
        assert_eq!(
            asm.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut asm = Assembler::new();
        asm.label("x").nop().label("x").halt();
        assert_eq!(asm.assemble().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn empty_program_errors() {
        assert_eq!(Assembler::new().assemble().unwrap_err(), AsmError::Empty);
    }

    #[test]
    fn program_is_cheap_to_clone_and_fetch_bounded() {
        let mut asm = Assembler::new();
        asm.nop().halt();
        let p = asm.assemble().unwrap();
        let q = p.clone();
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.fetch(2), None);
    }

    #[test]
    fn here_tracks_position() {
        let mut asm = Assembler::new();
        assert_eq!(asm.here(), 0);
        asm.nop().nop();
        assert_eq!(asm.here(), 2);
    }

    #[test]
    fn all_emitters_produce_expected_instrs() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 5)
            .mov(Reg::R2, Reg::R1)
            .load(Reg::R3, Reg::R2, 8)
            .store(Reg::R3, Reg::R2, 12)
            .add(Reg::R1, Reg::R2)
            .addi(Reg::R1, -1)
            .sub(Reg::R1, Reg::R2)
            .and(Reg::R1, Reg::R2)
            .or(Reg::R1, Reg::R2)
            .shl(Reg::R1, 2)
            .shr(Reg::R1, 3)
            .cmp(Reg::R1, Reg::R2)
            .cmpi(Reg::R1, 7)
            .cmpxchg(Reg::R2, 0, Reg::R3)
            .syscall(9)
            .nop()
            .halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.len(), 17);
        assert_eq!(p.fetch(0), Some(Instr::Li { rd: Reg::R1, imm: 5 }));
        assert_eq!(p.fetch(14), Some(Instr::Syscall { code: 9 }));
        assert_eq!(p.fetch(16), Some(Instr::Halt));
    }
}
