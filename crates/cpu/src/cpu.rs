//! The execution engine.

use std::error::Error;
use std::fmt;

use shrimp_mem::{MemError, VirtAddr};
use shrimp_sim::{SimDuration, SimTime};

use crate::asm::Program;
use crate::isa::{Instr, Reg};

/// How the CPU reaches memory. The machine model implements this with
/// page-table translation, cache and bus timing, NIC snooping of
/// write-through stores, and command-page decoding; tests use
/// [`FlatMemory`].
///
/// All methods return the completion time of the access so instruction
/// timing reflects memory-system latency.
pub trait MemoryBus {
    /// Reads a 32-bit word.
    ///
    /// # Errors
    ///
    /// Propagates translation/protection/range errors.
    fn load_word(&mut self, now: SimTime, addr: VirtAddr) -> Result<(u32, SimTime), MemError>;

    /// Writes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Propagates translation/protection/range errors.
    fn store_word(&mut self, now: SimTime, addr: VirtAddr, value: u32) -> Result<SimTime, MemError>;

    /// One locked read-(maybe-)write transaction (i386 `LOCK CMPXCHG`):
    /// atomically loads the word; if it equals `expected`, stores `new`.
    /// Returns the loaded (old) value.
    ///
    /// # Errors
    ///
    /// Propagates translation/protection/range errors.
    fn cmpxchg_word(
        &mut self,
        now: SimTime,
        addr: VirtAddr,
        expected: u32,
        new: u32,
    ) -> Result<(u32, SimTime), MemError>;

    /// Flow-control hook: false while the node's Outgoing FIFO is over its
    /// threshold, in which case the CPU stalls before issuing a store
    /// (paper §4: "the CPU does not write to any mapped pages while it is
    /// waiting").
    fn store_allowed(&self, _now: SimTime) -> bool {
        true
    }
}

/// CPU timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Base cost of one instruction (issue + execute, excluding memory
    /// system time). 15 ns ≈ a 66 MHz i486/Pentium-class pipeline retiring
    /// one instruction per cycle.
    pub cycle: SimDuration,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cycle: SimDuration::from_ns(15),
        }
    }
}

/// The outcome of one [`Cpu::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// The instruction retired; the CPU may issue its next instruction at
    /// the reported time.
    Ran {
        /// Completion time (base cycle plus any memory-system latency).
        completes_at: SimTime,
    },
    /// The CPU hit `Halt` (idempotent: further steps return `Halted`).
    Halted,
    /// A store was blocked by flow control; nothing retired, the pc is
    /// unchanged. Retry when the Outgoing FIFO drains.
    Blocked,
    /// A `Syscall` retired; the machine performs the kernel work.
    Syscall {
        /// The trap code.
        code: u32,
        /// Completion time of the trap instruction itself.
        completes_at: SimTime,
    },
    /// A memory access faulted; nothing retired, the pc is unchanged so
    /// the kernel may fix the mapping and resume.
    Fault {
        /// The underlying memory error.
        error: MemError,
    },
}

/// Errors from [`Cpu::run_to_halt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A memory access faulted.
    Fault(MemError),
    /// The step budget was exhausted before `Halt`.
    StepLimit,
    /// The program issued a syscall, which `run_to_halt` cannot service.
    UnhandledSyscall(u32),
    /// A store stayed blocked (flow control) — `run_to_halt` cannot wait.
    Blocked,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Fault(e) => write!(f, "memory fault: {e}"),
            RunError::StepLimit => write!(f, "step limit exhausted before halt"),
            RunError::UnhandledSyscall(c) => write!(f, "unhandled syscall {c}"),
            RunError::Blocked => write!(f, "store blocked by flow control"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

/// One simulated processor.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 8],
    pc: usize,
    zf: bool,
    lt: bool,
    halted: bool,
    retired: u64,
    loads: u64,
    stores: u64,
    program: Program,
    config: CpuConfig,
}

impl Cpu {
    /// Creates a CPU at pc 0 with zeroed registers.
    pub fn new(program: Program) -> Self {
        Cpu::with_config(program, CpuConfig::default())
    }

    /// Creates a CPU with explicit timing parameters.
    pub fn with_config(program: Program, config: CpuConfig) -> Self {
        Cpu {
            regs: [0; 8],
            pc: 0,
            zf: false,
            lt: false,
            halted: false,
            retired: 0,
            loads: 0,
            stores: 0,
            program,
            config,
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (test/bench setup).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// The current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Jumps to an absolute pc and clears the halt latch (for reusing one
    /// CPU across several routines).
    pub fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
        self.halted = false;
    }

    /// Jumps to a label.
    ///
    /// # Panics
    ///
    /// Panics if the label does not exist.
    pub fn jump_to_label(&mut self, name: &str) {
        let pc = self
            .program
            .label(name)
            .unwrap_or_else(|| panic!("unknown label `{name}`"));
        self.set_pc(pc);
    }

    /// True after `Halt` retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Total retired instructions — the paper's overhead metric.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Retired loads.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Retired stores (including successful `CMPXCHG` writes).
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// The program this CPU executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn addr(&self, base: Reg, offset: i32) -> VirtAddr {
        let a = (self.regs[base.index()] as i64 + offset as i64) as u64;
        VirtAddr::new(a)
    }

    /// Executes one instruction.
    pub fn step(&mut self, now: SimTime, bus: &mut impl MemoryBus) -> StepResult {
        if self.halted {
            return StepResult::Halted;
        }
        let Some(instr) = self.program.fetch(self.pc) else {
            self.halted = true;
            return StepResult::Halted;
        };
        let base_done = now + self.config.cycle;
        let mut completes_at = base_done;

        match instr {
            Instr::Li { rd, imm } => self.regs[rd.index()] = imm,
            Instr::Mov { rd, rs } => self.regs[rd.index()] = self.regs[rs.index()],
            Instr::Load { rd, base, offset } => {
                match bus.load_word(now, self.addr(base, offset)) {
                    Ok((v, done)) => {
                        self.regs[rd.index()] = v;
                        self.loads += 1;
                        completes_at = done.max(base_done);
                    }
                    Err(error) => return StepResult::Fault { error },
                }
            }
            Instr::Store { rs, base, offset } => {
                if !bus.store_allowed(now) {
                    return StepResult::Blocked;
                }
                match bus.store_word(now, self.addr(base, offset), self.regs[rs.index()]) {
                    Ok(done) => {
                        self.stores += 1;
                        completes_at = done.max(base_done);
                    }
                    Err(error) => return StepResult::Fault { error },
                }
            }
            Instr::Add { rd, rs } => {
                self.regs[rd.index()] = self.regs[rd.index()].wrapping_add(self.regs[rs.index()]);
            }
            Instr::Addi { rd, imm } => {
                self.regs[rd.index()] = self.regs[rd.index()].wrapping_add(imm as u32);
            }
            Instr::Sub { rd, rs } => {
                self.regs[rd.index()] = self.regs[rd.index()].wrapping_sub(self.regs[rs.index()]);
            }
            Instr::And { rd, rs } => self.regs[rd.index()] &= self.regs[rs.index()],
            Instr::Or { rd, rs } => self.regs[rd.index()] |= self.regs[rs.index()],
            Instr::Xor { rd, rs } => self.regs[rd.index()] ^= self.regs[rs.index()],
            Instr::Shl { rd, amount } => {
                self.regs[rd.index()] = self.regs[rd.index()].wrapping_shl(amount as u32);
            }
            Instr::Shr { rd, amount } => {
                self.regs[rd.index()] = self.regs[rd.index()].wrapping_shr(amount as u32);
            }
            Instr::Cmp { ra, rb } => {
                let (a, b) = (self.regs[ra.index()], self.regs[rb.index()]);
                self.zf = a == b;
                self.lt = (a as i32) < (b as i32);
            }
            Instr::Cmpi { ra, imm } => {
                let a = self.regs[ra.index()];
                self.zf = a as i32 == imm;
                self.lt = (a as i32) < imm;
            }
            Instr::CmpMem { base, offset, imm } => {
                match bus.load_word(now, self.addr(base, offset)) {
                    Ok((v, done)) => {
                        self.zf = v as i32 == imm;
                        self.lt = (v as i32) < imm;
                        self.loads += 1;
                        completes_at = done.max(base_done);
                    }
                    Err(error) => return StepResult::Fault { error },
                }
            }
            Instr::StImm { base, offset, imm } => {
                if !bus.store_allowed(now) {
                    return StepResult::Blocked;
                }
                match bus.store_word(now, self.addr(base, offset), imm) {
                    Ok(done) => {
                        self.stores += 1;
                        completes_at = done.max(base_done);
                    }
                    Err(error) => return StepResult::Fault { error },
                }
            }
            Instr::Jmp { target } => {
                self.pc = target;
                self.retired += 1;
                return StepResult::Ran { completes_at };
            }
            Instr::Jz { target } => {
                self.retired += 1;
                self.pc = if self.zf { target } else { self.pc + 1 };
                return StepResult::Ran { completes_at };
            }
            Instr::Jnz { target } => {
                self.retired += 1;
                self.pc = if !self.zf { target } else { self.pc + 1 };
                return StepResult::Ran { completes_at };
            }
            Instr::Jlt { target } => {
                self.retired += 1;
                self.pc = if self.lt { target } else { self.pc + 1 };
                return StepResult::Ran { completes_at };
            }
            Instr::Jge { target } => {
                self.retired += 1;
                self.pc = if !self.lt { target } else { self.pc + 1 };
                return StepResult::Ran { completes_at };
            }
            Instr::CmpXchg { base, offset, src } => {
                if !bus.store_allowed(now) {
                    return StepResult::Blocked;
                }
                let expected = self.regs[Reg::R0.index()];
                let new = self.regs[src.index()];
                match bus.cmpxchg_word(now, self.addr(base, offset), expected, new) {
                    Ok((old, done)) => {
                        if old == expected {
                            self.zf = true;
                            self.stores += 1;
                        } else {
                            self.zf = false;
                            self.regs[Reg::R0.index()] = old;
                        }
                        self.loads += 1;
                        completes_at = done.max(base_done);
                    }
                    Err(error) => return StepResult::Fault { error },
                }
            }
            Instr::Syscall { code } => {
                self.pc += 1;
                self.retired += 1;
                return StepResult::Syscall {
                    code,
                    completes_at,
                };
            }
            Instr::Halt => {
                self.halted = true;
                self.retired += 1;
                return StepResult::Halted;
            }
            Instr::Nop => {}
        }

        self.pc += 1;
        self.retired += 1;
        StepResult::Ran { completes_at }
    }

    /// Steps until `Halt`, threading completion times through, with a
    /// step budget. Returns the completion time of the last instruction.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on faults, syscalls, flow-control blocks, or
    /// budget exhaustion — conditions a full machine model would service.
    pub fn run_to_halt(
        &mut self,
        start: SimTime,
        bus: &mut impl MemoryBus,
        max_steps: u64,
    ) -> Result<SimTime, RunError> {
        let mut now = start;
        for _ in 0..max_steps {
            match self.step(now, bus) {
                StepResult::Ran { completes_at } => now = completes_at,
                StepResult::Halted => return Ok(now),
                StepResult::Blocked => return Err(RunError::Blocked),
                StepResult::Syscall { code, .. } => return Err(RunError::UnhandledSyscall(code)),
                StepResult::Fault { error } => return Err(RunError::Fault(error)),
            }
        }
        Err(RunError::StepLimit)
    }
}

/// A flat, zero-latency memory for unit tests and instruction-count
/// harnesses that do not need bus timing.
#[derive(Debug, Clone)]
pub struct FlatMemory {
    data: Vec<u8>,
}

impl FlatMemory {
    /// Creates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        FlatMemory {
            data: vec![0; size],
        }
    }

    /// Reads a word directly (test setup/assertions).
    pub fn word(&self, addr: u64) -> u32 {
        let i = addr as usize;
        u32::from_le_bytes(self.data[i..i + 4].try_into().expect("in range"))
    }

    /// Writes a word directly (test setup).
    pub fn set_word(&mut self, addr: u64, value: u32) {
        let i = addr as usize;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    fn check(&self, addr: VirtAddr) -> Result<usize, MemError> {
        let i = addr.raw() as usize;
        if i + 4 > self.data.len() {
            return Err(MemError::NotMapped { addr });
        }
        Ok(i)
    }
}

impl MemoryBus for FlatMemory {
    fn load_word(&mut self, now: SimTime, addr: VirtAddr) -> Result<(u32, SimTime), MemError> {
        let i = self.check(addr)?;
        let v = u32::from_le_bytes(self.data[i..i + 4].try_into().expect("checked"));
        Ok((v, now))
    }

    fn store_word(&mut self, now: SimTime, addr: VirtAddr, value: u32) -> Result<SimTime, MemError> {
        let i = self.check(addr)?;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(now)
    }

    fn cmpxchg_word(
        &mut self,
        now: SimTime,
        addr: VirtAddr,
        expected: u32,
        new: u32,
    ) -> Result<(u32, SimTime), MemError> {
        let (old, _) = self.load_word(now, addr)?;
        if old == expected {
            self.store_word(now, addr, new)?;
        }
        Ok((old, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn run(asm: &mut Assembler) -> (Cpu, FlatMemory) {
        let p = asm.assemble().unwrap();
        let mut cpu = Cpu::new(p);
        let mut mem = FlatMemory::new(8192);
        cpu.run_to_halt(SimTime::ZERO, &mut mem, 10_000).unwrap();
        (cpu, mem)
    }

    #[test]
    fn arithmetic_and_logic() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 10)
            .li(Reg::R2, 3)
            .sub(Reg::R1, Reg::R2) // 7
            .addi(Reg::R1, 5) // 12
            .shl(Reg::R1, 1) // 24
            .shr(Reg::R1, 2) // 6
            .li(Reg::R3, 0b1100)
            .and(Reg::R3, Reg::R1) // 0b0100
            .or(Reg::R3, Reg::R2) // 0b0111
            .halt();
        let (cpu, _) = run(&mut asm);
        assert_eq!(cpu.reg(Reg::R1), 6);
        assert_eq!(cpu.reg(Reg::R3), 0b0111);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 0x100)
            .li(Reg::R2, 0xabcd)
            .store(Reg::R2, Reg::R1, 4)
            .load(Reg::R3, Reg::R1, 4)
            .halt();
        let (cpu, mem) = run(&mut asm);
        assert_eq!(cpu.reg(Reg::R3), 0xabcd);
        assert_eq!(mem.word(0x104), 0xabcd);
        assert_eq!(cpu.loads(), 1);
        assert_eq!(cpu.stores(), 1);
    }

    #[test]
    fn negative_displacement() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 0x100)
            .li(Reg::R2, 7)
            .store(Reg::R2, Reg::R1, -4)
            .halt();
        let (_, mem) = run(&mut asm);
        assert_eq!(mem.word(0xfc), 7);
    }

    #[test]
    fn branches_and_flags() {
        // Count down from 5; r2 accumulates iterations.
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 5)
            .li(Reg::R2, 0)
            .label("loop")
            .cmpi(Reg::R1, 0)
            .jz("done")
            .addi(Reg::R2, 1)
            .addi(Reg::R1, -1)
            .jmp("loop")
            .label("done")
            .halt();
        let (cpu, _) = run(&mut asm);
        assert_eq!(cpu.reg(Reg::R2), 5);
    }

    #[test]
    fn signed_comparisons() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, (-3i32) as u32)
            .cmpi(Reg::R1, 2)
            .jlt("less")
            .li(Reg::R2, 0)
            .halt()
            .label("less")
            .li(Reg::R2, 1)
            .cmpi(Reg::R1, -10)
            .jge("ge")
            .halt()
            .label("ge")
            .addi(Reg::R2, 10)
            .halt();
        let (cpu, _) = run(&mut asm);
        assert_eq!(cpu.reg(Reg::R2), 11);
    }

    #[test]
    fn cmpxchg_success_and_failure() {
        let mut asm = Assembler::new();
        // mem[0x200] starts 0; accumulator 0 → exchange succeeds with 42.
        asm.li(Reg::R1, 0x200)
            .li(Reg::R0, 0)
            .li(Reg::R2, 42)
            .cmpxchg(Reg::R1, 0, Reg::R2)
            .jz("ok")
            .halt()
            .label("ok")
            // Second attempt: accumulator 0 but memory now 42 → fails,
            // r0 receives 42.
            .li(Reg::R0, 0)
            .cmpxchg(Reg::R1, 0, Reg::R2)
            .jnz("failed")
            .halt()
            .label("failed")
            .halt();
        let (cpu, mem) = run(&mut asm);
        assert_eq!(mem.word(0x200), 42);
        assert_eq!(cpu.reg(Reg::R0), 42, "failed CMPXCHG loads old value");
    }

    #[test]
    fn retired_count_excludes_blocked_and_faulted() {
        struct BlockOnce {
            inner: FlatMemory,
            blocked: bool,
        }
        impl MemoryBus for BlockOnce {
            fn load_word(&mut self, now: SimTime, a: VirtAddr) -> Result<(u32, SimTime), MemError> {
                self.inner.load_word(now, a)
            }
            fn store_word(&mut self, now: SimTime, a: VirtAddr, v: u32) -> Result<SimTime, MemError> {
                self.inner.store_word(now, a, v)
            }
            fn cmpxchg_word(
                &mut self,
                now: SimTime,
                a: VirtAddr,
                e: u32,
                n: u32,
            ) -> Result<(u32, SimTime), MemError> {
                self.inner.cmpxchg_word(now, a, e, n)
            }
            fn store_allowed(&self, _now: SimTime) -> bool {
                !self.blocked
            }
        }
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 0x10).store(Reg::R1, Reg::R1, 0).halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut bus = BlockOnce {
            inner: FlatMemory::new(4096),
            blocked: true,
        };
        assert!(matches!(
            cpu.step(SimTime::ZERO, &mut bus),
            StepResult::Ran { .. }
        ));
        assert_eq!(cpu.step(SimTime::ZERO, &mut bus), StepResult::Blocked);
        assert_eq!(cpu.retired(), 1, "blocked store does not retire");
        bus.blocked = false;
        assert!(matches!(
            cpu.step(SimTime::ZERO, &mut bus),
            StepResult::Ran { .. }
        ));
        assert_eq!(cpu.retired(), 2);
    }

    #[test]
    fn fault_leaves_pc_for_retry() {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, 0xffff_0000).load(Reg::R2, Reg::R1, 0).halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(4096);
        cpu.step(SimTime::ZERO, &mut mem);
        let pc_before = cpu.pc();
        assert!(matches!(
            cpu.step(SimTime::ZERO, &mut mem),
            StepResult::Fault { .. }
        ));
        assert_eq!(cpu.pc(), pc_before, "faulting instruction may be retried");
    }

    #[test]
    fn syscall_surfaces_code_and_continues() {
        let mut asm = Assembler::new();
        asm.syscall(77).li(Reg::R1, 1).halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(64);
        let r = cpu.step(SimTime::ZERO, &mut mem);
        assert!(matches!(r, StepResult::Syscall { code: 77, .. }));
        // Continue after the kernel "returns".
        cpu.step(SimTime::ZERO, &mut mem);
        assert_eq!(cpu.reg(Reg::R1), 1);
        // run_to_halt cannot service syscalls.
        let mut fresh = Cpu::new(cpu.program().clone());
        assert_eq!(
            fresh.run_to_halt(SimTime::ZERO, &mut mem, 10).unwrap_err(),
            RunError::UnhandledSyscall(77)
        );
    }

    #[test]
    fn timing_advances_by_cycle_and_memory() {
        let mut asm = Assembler::new();
        asm.nop().nop().halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(64);
        let end = cpu.run_to_halt(SimTime::ZERO, &mut mem, 10).unwrap();
        // Two nops at 15ns each (halt's completion isn't threaded).
        assert_eq!(end.as_nanos_f64(), 30.0);
    }

    #[test]
    fn halt_is_idempotent_and_counted_once() {
        let mut asm = Assembler::new();
        asm.halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(64);
        assert_eq!(cpu.step(SimTime::ZERO, &mut mem), StepResult::Halted);
        assert_eq!(cpu.step(SimTime::ZERO, &mut mem), StepResult::Halted);
        assert_eq!(cpu.retired(), 1);
        assert!(cpu.is_halted());
    }

    #[test]
    fn running_off_the_end_halts() {
        let mut asm = Assembler::new();
        asm.nop();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(64);
        cpu.step(SimTime::ZERO, &mut mem);
        assert_eq!(cpu.step(SimTime::ZERO, &mut mem), StepResult::Halted);
    }

    #[test]
    fn labels_allow_reusing_one_cpu() {
        let mut asm = Assembler::new();
        asm.label("a").li(Reg::R1, 1).halt().label("b").li(Reg::R1, 2).halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(64);
        cpu.jump_to_label("b");
        cpu.run_to_halt(SimTime::ZERO, &mut mem, 10).unwrap();
        assert_eq!(cpu.reg(Reg::R1), 2);
        cpu.jump_to_label("a");
        cpu.run_to_halt(SimTime::ZERO, &mut mem, 10).unwrap();
        assert_eq!(cpu.reg(Reg::R1), 1);
    }
}
