//! Registers and instructions.

use std::fmt;

/// One of the eight general-purpose registers.
///
/// By convention [`Reg::R0`] is the accumulator: [`Instr::CmpXchg`]
/// compares memory against it, mirroring `EAX` in the i386 `CMPXCHG`
/// instruction the paper's start protocol uses (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// Accumulator (the `CMPXCHG` comparand).
    R0,
    /// General purpose.
    R1,
    /// General purpose.
    R2,
    /// General purpose.
    R3,
    /// General purpose.
    R4,
    /// General purpose.
    R5,
    /// General purpose.
    R6,
    /// General purpose.
    R7,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 8] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ];

    /// Register file index.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// One instruction of the mini-ISA.
///
/// Branch targets are program-counter indices (the assembler resolves
/// labels). Memory operands are a base register plus a signed byte
/// displacement, i386-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd <- imm`
    Li { rd: Reg, imm: u32 },
    /// `rd <- rs`
    Mov { rd: Reg, rs: Reg },
    /// `rd <- mem32[rs_base + offset]`
    Load { rd: Reg, base: Reg, offset: i32 },
    /// `mem32[rs_base + offset] <- rs`
    Store { rs: Reg, base: Reg, offset: i32 },
    /// `rd <- rd + rs` (wrapping)
    Add { rd: Reg, rs: Reg },
    /// `rd <- rd + imm` (wrapping, sign-extended)
    Addi { rd: Reg, imm: i32 },
    /// `rd <- rd - rs` (wrapping)
    Sub { rd: Reg, rs: Reg },
    /// `rd <- rd & rs`
    And { rd: Reg, rs: Reg },
    /// `rd <- rd | rs`
    Or { rd: Reg, rs: Reg },
    /// `rd <- rd ^ rs`
    Xor { rd: Reg, rs: Reg },
    /// `rd <- rd << amount`
    Shl { rd: Reg, amount: u8 },
    /// `rd <- rd >> amount` (logical)
    Shr { rd: Reg, amount: u8 },
    /// Compare `ra` with `rb`: sets ZF (equal) and LT (signed less-than).
    Cmp { ra: Reg, rb: Reg },
    /// Compare `ra` with an immediate.
    Cmpi { ra: Reg, imm: i32 },
    /// Compare `mem32[base + offset]` with an immediate — one instruction
    /// on the i386 (`cmp dword [mem], imm`), which is how the paper's
    /// primitives poll flags.
    CmpMem { base: Reg, offset: i32, imm: i32 },
    /// `mem32[base + offset] <- imm` — i386 `mov dword [mem], imm`.
    StImm { base: Reg, offset: i32, imm: u32 },
    /// Unconditional jump.
    Jmp { target: usize },
    /// Jump if ZF.
    Jz { target: usize },
    /// Jump if !ZF.
    Jnz { target: usize },
    /// Jump if LT.
    Jlt { target: usize },
    /// Jump if !LT (greater or equal, signed).
    Jge { target: usize },
    /// Locked compare-and-exchange (i386 `LOCK CMPXCHG`): one atomic
    /// read-(maybe-)write bus transaction against `mem32[base + offset]`.
    /// If the loaded value equals `r0`, the memory is overwritten with
    /// `src` and ZF is set; otherwise `r0` receives the loaded value and
    /// ZF is cleared.
    CmpXchg { base: Reg, offset: i32, src: Reg },
    /// Trap to the kernel with an immediate code (used by the baseline's
    /// kernel-mediated message passing; SHRIMP's data path never needs
    /// it).
    Syscall { code: u32 },
    /// Stop the processor.
    Halt,
    /// Do nothing (costs one instruction).
    Nop,
}

impl Instr {
    /// True for instructions that read or write data memory.
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::CmpXchg { .. }
                | Instr::CmpMem { .. }
                | Instr::StImm { .. }
        )
    }

    /// True for instructions that complete entirely inside the CPU core:
    /// no memory-bus transaction, no kernel trap, no halt. The event
    /// loop batches consecutive register-only instructions into one
    /// quantum; anything bus-visible must execute as its own event so
    /// NIC snooping and DMA interleaving keep their unbatched timing.
    pub fn is_register_only(&self) -> bool {
        !self.touches_memory() && !matches!(self, Instr::Syscall { .. } | Instr::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indices_are_dense() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(Reg::R5.to_string(), "r5");
    }

    #[test]
    fn memory_instruction_classification() {
        assert!(Instr::Load { rd: Reg::R1, base: Reg::R2, offset: 0 }.touches_memory());
        assert!(Instr::Store { rs: Reg::R1, base: Reg::R2, offset: 4 }.touches_memory());
        assert!(Instr::CmpXchg { base: Reg::R1, offset: 0, src: Reg::R2 }.touches_memory());
        assert!(!Instr::Add { rd: Reg::R1, rs: Reg::R2 }.touches_memory());
        assert!(!Instr::Halt.touches_memory());
    }

    #[test]
    fn register_only_excludes_bus_and_control_traps() {
        assert!(Instr::Add { rd: Reg::R1, rs: Reg::R2 }.is_register_only());
        assert!(Instr::Jmp { target: 0 }.is_register_only());
        assert!(Instr::Nop.is_register_only());
        assert!(!Instr::Load { rd: Reg::R1, base: Reg::R2, offset: 0 }.is_register_only());
        assert!(!Instr::Syscall { code: 1 }.is_register_only());
        assert!(!Instr::Halt.is_register_only());
    }
}
