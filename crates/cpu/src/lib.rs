//! A mini-ISA CPU model with instruction counting.
//!
//! The paper measures message-passing software overhead in **dynamic
//! user-level instruction counts** on i386-class CPUs (§5.2). To
//! reproduce Table 1 rather than hardcode it, the message-passing
//! primitives of `shrimp-core` are written in this small i386-flavoured
//! ISA and *executed*; the harness reads back the retired-instruction
//! counters.
//!
//! * [`isa`] — registers and instructions, including the locked
//!   [`Instr::CmpXchg`] the deliberate-update start protocol requires
//!   (§4.3).
//! * [`asm`] — a tiny assembler with labels.
//! * [`cpu`] — the execution engine. Memory is reached through the
//!   [`MemoryBus`] trait, which the machine model implements with
//!   page-table translation, cache/bus timing and NIC snooping.
//!
//! # Examples
//!
//! ```
//! use shrimp_cpu::{Assembler, Cpu, FlatMemory, Reg, StepResult};
//! use shrimp_sim::SimTime;
//!
//! // r1 = 6; r2 = 7; r1 = r1 + r2; halt
//! let mut asm = Assembler::new();
//! asm.li(Reg::R1, 6).li(Reg::R2, 7).add(Reg::R1, Reg::R2).halt();
//! let program = asm.assemble()?;
//!
//! let mut cpu = Cpu::new(program);
//! let mut mem = FlatMemory::new(4096);
//! let end = cpu.run_to_halt(SimTime::ZERO, &mut mem, 100)?;
//! assert_eq!(cpu.reg(Reg::R1), 13);
//! assert_eq!(cpu.retired(), 4);
//! assert!(end > SimTime::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod cpu;
pub mod isa;

pub use asm::{AsmError, Assembler, Program};
pub use cpu::{Cpu, CpuConfig, FlatMemory, MemoryBus, RunError, StepResult};
pub use isa::{Instr, Reg};
