//! Property-based tests of the mini-ISA: the execution engine agrees
//! with a simple reference interpreter on arbitrary ALU programs, and
//! memory programs never corrupt bytes they do not address.

use proptest::prelude::*;

use shrimp_cpu::{Assembler, Cpu, FlatMemory, Instr, Reg};
use shrimp_sim::SimTime;

/// A straight-line ALU instruction (no memory, no control flow).
#[derive(Debug, Clone, Copy)]
enum AluOp {
    Li(u8, u32),
    Mov(u8, u8),
    Add(u8, u8),
    Addi(u8, i32),
    Sub(u8, u8),
    And(u8, u8),
    Or(u8, u8),
    Xor(u8, u8),
    Shl(u8, u8),
    Shr(u8, u8),
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        (0u8..8, any::<u32>()).prop_map(|(r, v)| AluOp::Li(r, v)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| AluOp::Mov(a, b)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| AluOp::Add(a, b)),
        (0u8..8, -1000i32..1000).prop_map(|(a, v)| AluOp::Addi(a, v)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| AluOp::Sub(a, b)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| AluOp::And(a, b)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| AluOp::Or(a, b)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| AluOp::Xor(a, b)),
        (0u8..8, 0u8..31).prop_map(|(a, s)| AluOp::Shl(a, s)),
        (0u8..8, 0u8..31).prop_map(|(a, s)| AluOp::Shr(a, s)),
    ]
}

fn reference(regs: &mut [u32; 8], op: AluOp) {
    match op {
        AluOp::Li(r, v) => regs[r as usize] = v,
        AluOp::Mov(a, b) => regs[a as usize] = regs[b as usize],
        AluOp::Add(a, b) => regs[a as usize] = regs[a as usize].wrapping_add(regs[b as usize]),
        AluOp::Addi(a, v) => regs[a as usize] = regs[a as usize].wrapping_add(v as u32),
        AluOp::Sub(a, b) => regs[a as usize] = regs[a as usize].wrapping_sub(regs[b as usize]),
        AluOp::And(a, b) => regs[a as usize] &= regs[b as usize],
        AluOp::Or(a, b) => regs[a as usize] |= regs[b as usize],
        AluOp::Xor(a, b) => regs[a as usize] ^= regs[b as usize],
        AluOp::Shl(a, s) => regs[a as usize] = regs[a as usize].wrapping_shl(s as u32),
        AluOp::Shr(a, s) => regs[a as usize] = regs[a as usize].wrapping_shr(s as u32),
    }
}

fn emit(asm: &mut Assembler, op: AluOp) {
    let r = |i: u8| Reg::ALL[i as usize];
    match op {
        AluOp::Li(a, v) => asm.li(r(a), v),
        AluOp::Mov(a, b) => asm.mov(r(a), r(b)),
        AluOp::Add(a, b) => asm.add(r(a), r(b)),
        AluOp::Addi(a, v) => asm.addi(r(a), v),
        AluOp::Sub(a, b) => asm.sub(r(a), r(b)),
        AluOp::And(a, b) => asm.and(r(a), r(b)),
        AluOp::Or(a, b) => asm.or(r(a), r(b)),
        AluOp::Xor(a, b) => asm.xor(r(a), r(b)),
        AluOp::Shl(a, s) => asm.shl(r(a), s),
        AluOp::Shr(a, s) => asm.shr(r(a), s),
    };
}

proptest! {
    /// The execution engine matches the reference semantics on any
    /// straight-line ALU program, and retires exactly one instruction
    /// per operation (plus the halt).
    #[test]
    fn alu_matches_reference(ops in prop::collection::vec(alu_op(), 1..100)) {
        let mut asm = Assembler::new();
        let mut model = [0u32; 8];
        for &op in &ops {
            emit(&mut asm, op);
            reference(&mut model, op);
        }
        asm.halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(64);
        cpu.run_to_halt(SimTime::ZERO, &mut mem, 10_000).unwrap();
        for (i, r) in Reg::ALL.iter().enumerate() {
            prop_assert_eq!(cpu.reg(*r), model[i], "register r{}", i);
        }
        prop_assert_eq!(cpu.retired(), ops.len() as u64 + 1);
    }

    /// Stores only touch the 4 addressed bytes; everything else in
    /// memory is preserved.
    #[test]
    fn stores_are_word_precise(
        stores in prop::collection::vec((0u32..1020, any::<u32>()), 1..40),
    ) {
        let mut asm = Assembler::new();
        let mut model = vec![0u8; 4096];
        for &(addr, value) in &stores {
            let addr = addr & !3;
            asm.li(Reg::R1, addr).li(Reg::R2, value).store(Reg::R2, Reg::R1, 0);
            model[addr as usize..addr as usize + 4].copy_from_slice(&value.to_le_bytes());
        }
        asm.halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(4096);
        cpu.run_to_halt(SimTime::ZERO, &mut mem, 100_000).unwrap();
        for i in 0..1024u64 {
            prop_assert_eq!(
                mem.word(i * 4),
                u32::from_le_bytes(model[i as usize * 4..i as usize * 4 + 4].try_into().unwrap()),
                "word {}", i
            );
        }
    }

    /// Branch flags: for any pair of values, exactly the right branch of
    /// a three-way compare is taken.
    #[test]
    fn compare_and_branch_consistent(a in any::<u32>(), b in any::<u32>()) {
        let mut asm = Assembler::new();
        asm.li(Reg::R1, a)
            .li(Reg::R2, b)
            .cmp(Reg::R1, Reg::R2)
            .jz("equal")
            .jlt("less")
            .li(Reg::R3, 3) // greater
            .halt()
            .label("equal")
            .li(Reg::R3, 1)
            .halt()
            .label("less")
            .li(Reg::R3, 2)
            .halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(64);
        cpu.run_to_halt(SimTime::ZERO, &mut mem, 100).unwrap();
        let expect = if a == b {
            1
        } else if (a as i32) < (b as i32) {
            2
        } else {
            3
        };
        prop_assert_eq!(cpu.reg(Reg::R3), expect);
    }

    /// CMPXCHG against data memory is atomic and total: the final memory
    /// value and accumulator follow the i386 semantics for any sequence.
    #[test]
    fn cmpxchg_semantics(seq in prop::collection::vec((any::<u32>(), any::<u32>()), 1..20)) {
        let mut mem_value = 0u32;
        let mut asm = Assembler::new();
        asm.li(Reg::R5, 256);
        let mut expected_zf_final = false;
        for &(expect, new) in &seq {
            asm.li(Reg::R0, expect).li(Reg::R2, new).cmpxchg(Reg::R5, 0, Reg::R2);
            if mem_value == expect {
                mem_value = new;
                expected_zf_final = true;
            } else {
                expected_zf_final = false;
            }
        }
        // Record the final ZF through a branch.
        asm.jz("set").li(Reg::R3, 0).halt().label("set").li(Reg::R3, 1).halt();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        let mut mem = FlatMemory::new(4096);
        cpu.run_to_halt(SimTime::ZERO, &mut mem, 10_000).unwrap();
        prop_assert_eq!(mem.word(256), mem_value);
        prop_assert_eq!(cpu.reg(Reg::R3) == 1, expected_zf_final);
    }
}

#[test]
fn instruction_memory_classification_is_total() {
    // Every instruction is classifiable; smoke the helper over a sample.
    let samples = [
        Instr::Nop,
        Instr::Halt,
        Instr::Li { rd: Reg::R0, imm: 0 },
        Instr::Load { rd: Reg::R0, base: Reg::R1, offset: 0 },
        Instr::StImm { base: Reg::R1, offset: 0, imm: 1 },
        Instr::CmpMem { base: Reg::R1, offset: 0, imm: 0 },
    ];
    let memory: Vec<bool> = samples.iter().map(|i| i.touches_memory()).collect();
    assert_eq!(memory, vec![false, false, false, true, true, true]);
}
