//! Vendored subset of the `criterion` crate.
//!
//! The build container cannot reach a crates.io mirror, so this crate
//! provides just enough of criterion's API for `benches/micro.rs` to
//! compile and produce useful numbers: `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. There is no statistical
//! analysis — each benchmark is timed over a fixed-duration measurement
//! loop and the mean ns/iter is printed.

use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(200);

/// How a batched benchmark's setup output is grouped; accepted for API
/// compatibility, ignored by this harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut n = 0u64;
        while start.elapsed() < MEASURE_FOR {
            std::hint::black_box(routine());
            n += 1;
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the
    /// routine is counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut n = 0u64;
        let begin = Instant::now();
        while begin.elapsed() < MEASURE_FOR {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            n += 1;
        }
        self.iters = n;
        self.elapsed = measured;
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<32} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a group of benchmark functions as a single runnable function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }
}
