//! Address and page-number newtypes.
//!
//! Physical and virtual addresses are kept statically distinct so mapping
//! code cannot confuse the two — the paper's whole design revolves around
//! the NIPT translating *local physical* page numbers into *remote
//! physical* page numbers.

use std::fmt;

/// Bytes per page, matching the i486/Pentium 4 KB page.
pub const PAGE_SIZE: u64 = 4096;

/// Bytes per machine word; SHRIMP-era CPUs issue 32-bit stores.
pub const WORD_SIZE: u64 = 4;

/// A physical (DRAM) byte address on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// A virtual byte address in some process's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical page frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(u64);

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtPageNum(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The page this address falls on.
    pub const fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_SIZE)
    }

    /// Byte offset within the page.
    pub const fn offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// The address `delta` bytes further along.
    pub const fn add(self, delta: u64) -> PhysAddr {
        PhysAddr(self.0 + delta)
    }

    /// True if the address is word-aligned.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_SIZE)
    }
}

impl VirtAddr {
    /// Creates a virtual address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The virtual page this address falls on.
    pub const fn page(self) -> VirtPageNum {
        VirtPageNum(self.0 / PAGE_SIZE)
    }

    /// Byte offset within the page.
    pub const fn offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// The address `delta` bytes further along.
    pub const fn add(self, delta: u64) -> VirtAddr {
        VirtAddr(self.0 + delta)
    }

    /// True if the address is word-aligned.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_SIZE)
    }
}

impl PageNum {
    /// Creates a page frame number.
    pub const fn new(raw: u64) -> Self {
        PageNum(raw)
    }

    /// Raw frame number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this page.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE)
    }

    /// The byte address `offset` bytes into this page.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= PAGE_SIZE`.
    pub fn at_offset(self, offset: u64) -> PhysAddr {
        assert!(offset < PAGE_SIZE, "offset {offset} exceeds page size");
        PhysAddr(self.0 * PAGE_SIZE + offset)
    }

    /// The next page.
    pub const fn next(self) -> PageNum {
        PageNum(self.0 + 1)
    }
}

impl VirtPageNum {
    /// Creates a virtual page number.
    pub const fn new(raw: u64) -> Self {
        VirtPageNum(raw)
    }

    /// Raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this virtual page.
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_SIZE)
    }

    /// The byte address `offset` bytes into this page.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= PAGE_SIZE`.
    pub fn at_offset(self, offset: u64) -> VirtAddr {
        assert!(offset < PAGE_SIZE, "offset {offset} exceeds page size");
        VirtAddr(self.0 * PAGE_SIZE + offset)
    }

    /// The next virtual page.
    pub const fn next(self) -> VirtPageNum {
        VirtPageNum(self.0 + 1)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{}", self.0)
    }
}

impl fmt::Display for VirtPageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<PageNum> for u64 {
    fn from(p: PageNum) -> u64 {
        p.0
    }
}

impl From<VirtPageNum> for u64 {
    fn from(p: VirtPageNum) -> u64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_offset_decomposition() {
        let a = PhysAddr::new(3 * PAGE_SIZE + 17);
        assert_eq!(a.page(), PageNum::new(3));
        assert_eq!(a.offset(), 17);
        assert_eq!(a.page().at_offset(a.offset()), a);
    }

    #[test]
    fn virt_decomposition_mirrors_phys() {
        let v = VirtAddr::new(9 * PAGE_SIZE + 4000);
        assert_eq!(v.page(), VirtPageNum::new(9));
        assert_eq!(v.offset(), 4000);
        assert_eq!(v.page().at_offset(v.offset()), v);
    }

    #[test]
    fn page_base_is_offset_zero() {
        assert_eq!(PageNum::new(5).base(), PhysAddr::new(5 * PAGE_SIZE));
        assert_eq!(PageNum::new(5).base().offset(), 0);
        assert_eq!(VirtPageNum::new(2).base(), VirtAddr::new(2 * PAGE_SIZE));
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn at_offset_rejects_out_of_page() {
        PageNum::new(0).at_offset(PAGE_SIZE);
    }

    #[test]
    fn alignment_checks() {
        assert!(PhysAddr::new(8).is_word_aligned());
        assert!(!PhysAddr::new(9).is_word_aligned());
        assert!(VirtAddr::new(0).is_word_aligned());
        assert!(!VirtAddr::new(2).is_word_aligned());
    }

    #[test]
    fn add_advances_bytes() {
        assert_eq!(PhysAddr::new(4).add(8), PhysAddr::new(12));
        assert_eq!(VirtAddr::new(4).add(8), VirtAddr::new(12));
        assert_eq!(PageNum::new(1).next(), PageNum::new(2));
        assert_eq!(VirtPageNum::new(1).next(), VirtPageNum::new(2));
    }

    #[test]
    fn displays_are_distinct() {
        assert_eq!(PhysAddr::new(16).to_string(), "p:0x10");
        assert_eq!(VirtAddr::new(16).to_string(), "v:0x10");
        assert_eq!(PageNum::new(7).to_string(), "pfn:7");
        assert_eq!(VirtPageNum::new(7).to_string(), "vpn:7");
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
    }
}
