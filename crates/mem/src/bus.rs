//! Xpress memory bus and EISA expansion bus timing models.
//!
//! Both buses serve one transaction at a time. Every *write* transaction
//! on the Xpress bus is visible to snoopers — that visibility is the
//! SHRIMP NIC's input (paper §3: "Outgoing data ... is snooped directly
//! off the Xpress memory bus"). The EISA bus carries incoming data from
//! the NIC to main memory at its 33 MB/s burst rate, which is the paper's
//! peak-bandwidth bottleneck (§5.1).

use shrimp_sim::resource::Grant;
use shrimp_sim::{BandwidthResource, SimDuration, SimTime};

use crate::addr::PhysAddr;

/// Who initiated a bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusInitiator {
    /// The node CPU.
    Cpu,
    /// The network interface's DMA engine.
    NicDma,
}

/// Direction of a bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusKind {
    /// Data moves from initiator to memory (snoopable on the Xpress bus).
    Write,
    /// Data moves from memory to initiator.
    Read,
}

/// The completed timing record of one bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTransaction {
    /// When the bus served this transaction.
    pub grant: Grant,
    /// Start address.
    pub addr: PhysAddr,
    /// Length in bytes.
    pub len: u64,
    /// Read or write.
    pub kind: BusKind,
    /// Who drove the transaction.
    pub initiator: BusInitiator,
}

/// Bus bandwidths and overheads for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Xpress memory bus sustained rate in bytes/second.
    pub xpress_bytes_per_sec: u64,
    /// Fixed arbitration/setup overhead per Xpress transaction.
    pub xpress_overhead: SimDuration,
    /// EISA expansion bus burst rate in bytes/second.
    pub eisa_bytes_per_sec: u64,
    /// Fixed setup overhead per EISA transfer.
    pub eisa_overhead: SimDuration,
}

impl BusConfig {
    /// The EISA-based SHRIMP prototype: 33 MB/s EISA burst (paper §5.1),
    /// with an Xpress bus at four times that rate ("all other parts of the
    /// datapath have at least twice this bandwidth").
    pub fn shrimp_prototype() -> Self {
        BusConfig {
            xpress_bytes_per_sec: 132_000_000,
            xpress_overhead: SimDuration::from_ns(30),
            eisa_bytes_per_sec: 33_000_000,
            eisa_overhead: SimDuration::from_ns(120),
        }
    }

    /// The "next implementation" the paper describes: incoming data drives
    /// the Xpress memory bus directly, bypassing EISA, for ~70 MB/s peak.
    pub fn shrimp_next_generation() -> Self {
        BusConfig {
            xpress_bytes_per_sec: 132_000_000,
            xpress_overhead: SimDuration::from_ns(30),
            // Incoming path is the Xpress bus itself, modelled at the
            // 70 MB/s the paper projects end-to-end.
            eisa_bytes_per_sec: 70_000_000,
            eisa_overhead: SimDuration::from_ns(30),
        }
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::shrimp_prototype()
    }
}

/// The Xpress memory bus of one node.
///
/// # Examples
///
/// ```
/// use shrimp_mem::{XpressBus, BusConfig, BusInitiator, PhysAddr};
/// use shrimp_sim::SimTime;
///
/// let mut bus = XpressBus::new(BusConfig::default());
/// let txn = bus.write(SimTime::ZERO, PhysAddr::new(0x100), 4, BusInitiator::Cpu);
/// assert!(txn.grant.end > txn.grant.start);
/// ```
#[derive(Debug, Clone)]
pub struct XpressBus {
    resource: BandwidthResource,
    writes: u64,
    reads: u64,
}

impl XpressBus {
    /// Creates an idle bus.
    pub fn new(config: BusConfig) -> Self {
        XpressBus {
            resource: BandwidthResource::new(config.xpress_bytes_per_sec, config.xpress_overhead),
            writes: 0,
            reads: 0,
        }
    }

    /// Performs a write transaction. The returned record is what snoopers
    /// (the NIC) observe.
    pub fn write(
        &mut self,
        now: SimTime,
        addr: PhysAddr,
        len: u64,
        initiator: BusInitiator,
    ) -> BusTransaction {
        self.writes += 1;
        BusTransaction {
            grant: self.resource.transfer(now, len),
            addr,
            len,
            kind: BusKind::Write,
            initiator,
        }
    }

    /// Performs a read transaction.
    pub fn read(
        &mut self,
        now: SimTime,
        addr: PhysAddr,
        len: u64,
        initiator: BusInitiator,
    ) -> BusTransaction {
        self.reads += 1;
        BusTransaction {
            grant: self.resource.transfer(now, len),
            addr,
            len,
            kind: BusKind::Read,
            initiator,
        }
    }

    /// When the bus next goes idle.
    pub fn free_at(&self) -> SimTime {
        self.resource.free_at()
    }

    /// Total write transactions served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total read transactions served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Bus utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.resource.utilization(now)
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.resource.bytes_total()
    }
}

/// The EISA expansion bus: the incoming DMA path of the prototype NIC.
///
/// # Examples
///
/// ```
/// use shrimp_mem::{EisaBus, BusConfig, PhysAddr};
/// use shrimp_sim::SimTime;
///
/// let mut eisa = EisaBus::new(BusConfig::default());
/// let txn = eisa.dma_write(SimTime::ZERO, PhysAddr::new(0), 4096);
/// // 4 KB at 33 MB/s is ~124 us.
/// assert!(txn.grant.end.as_micros_f64() > 120.0);
/// ```
#[derive(Debug, Clone)]
pub struct EisaBus {
    resource: BandwidthResource,
    transfers: u64,
}

impl EisaBus {
    /// Creates an idle bus.
    pub fn new(config: BusConfig) -> Self {
        EisaBus {
            resource: BandwidthResource::new(config.eisa_bytes_per_sec, config.eisa_overhead),
            transfers: 0,
        }
    }

    /// DMA-writes `len` bytes of incoming packet data to memory.
    pub fn dma_write(&mut self, now: SimTime, addr: PhysAddr, len: u64) -> BusTransaction {
        self.transfers += 1;
        BusTransaction {
            grant: self.resource.transfer(now, len),
            addr,
            len,
            kind: BusKind::Write,
            initiator: BusInitiator::NicDma,
        }
    }

    /// When the bus next goes idle.
    pub fn free_at(&self) -> SimTime {
        self.resource.free_at()
    }

    /// Total DMA transfers served.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.resource.bytes_total()
    }

    /// Achieved throughput over `[0, now]` in bytes/second.
    pub fn achieved_rate(&self, now: SimTime) -> f64 {
        self.resource.achieved_rate(now)
    }

    /// Configured burst rate in bytes/second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.resource.bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xpress_serializes_transactions() {
        let mut bus = XpressBus::new(BusConfig::default());
        let a = bus.write(SimTime::ZERO, PhysAddr::new(0), 4, BusInitiator::Cpu);
        let b = bus.write(SimTime::ZERO, PhysAddr::new(4), 4, BusInitiator::Cpu);
        assert_eq!(b.grant.start, a.grant.end);
        assert_eq!(bus.writes(), 2);
        assert_eq!(bus.reads(), 0);
        assert_eq!(bus.bytes_total(), 8);
    }

    #[test]
    fn word_write_is_fast_relative_to_eisa() {
        let mut bus = XpressBus::new(BusConfig::default());
        let txn = bus.write(SimTime::ZERO, PhysAddr::new(0), 4, BusInitiator::Cpu);
        let ns = txn.grant.end.since(txn.grant.start).as_nanos_f64();
        // 30ns overhead + 4B/132MB/s ≈ 30ns: word write well under 100ns.
        assert!(ns < 100.0, "word write took {ns}ns");
    }

    #[test]
    fn eisa_peak_rate_is_33_mbs() {
        let cfg = BusConfig::shrimp_prototype();
        let mut eisa = EisaBus::new(cfg);
        let mut now = SimTime::ZERO;
        for i in 0..64 {
            let txn = eisa.dma_write(now, PhysAddr::new(i * 4096), 4096);
            now = txn.grant.end;
        }
        let rate = eisa.achieved_rate(now);
        // Setup overhead shaves a bit off 33 MB/s but must stay close.
        assert!(rate > 32_000_000.0 && rate <= 33_000_000.0, "rate {rate}");
    }

    #[test]
    fn next_generation_doubles_incoming_rate() {
        let proto = BusConfig::shrimp_prototype();
        let next = BusConfig::shrimp_next_generation();
        assert!(next.eisa_bytes_per_sec > 2 * proto.eisa_bytes_per_sec);
        let eisa = EisaBus::new(next);
        assert_eq!(eisa.bytes_per_sec(), 70_000_000);
    }

    #[test]
    fn reads_and_writes_share_the_bus() {
        let mut bus = XpressBus::new(BusConfig::default());
        let w = bus.write(SimTime::ZERO, PhysAddr::new(0), 64, BusInitiator::NicDma);
        let r = bus.read(SimTime::ZERO, PhysAddr::new(64), 64, BusInitiator::Cpu);
        assert_eq!(r.grant.start, w.grant.end);
        assert_eq!(bus.reads(), 1);
        assert!(bus.utilization(r.grant.end) > 0.9);
    }

    #[test]
    fn transaction_records_carry_metadata() {
        let mut eisa = EisaBus::new(BusConfig::default());
        let txn = eisa.dma_write(SimTime::ZERO, PhysAddr::new(0x40), 16);
        assert_eq!(txn.kind, BusKind::Write);
        assert_eq!(txn.initiator, BusInitiator::NicDma);
        assert_eq!(txn.len, 16);
        assert_eq!(txn.addr, PhysAddr::new(0x40));
        assert_eq!(eisa.transfers(), 1);
    }
}
