//! Snooping second-level cache model.
//!
//! The Xpress PC's caches snoop DMA transactions and invalidate matching
//! lines, which is why SHRIMP can deliver incoming packets straight to
//! DRAM "without any special hardware" (paper §3). This model tracks tags
//! and dirty bits only — data always lives in [`crate::PhysicalMemory`],
//! which is sound because mapped-out pages are write-through and incoming
//! DMA invalidates before the CPU re-reads.

use crate::addr::PhysAddr;
use crate::page_table::CacheMode;

/// Geometry of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_size: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 256 KB, 4-way, 32-byte-line second-level cache — the class of
    /// cache shipped with Pentium Xpress systems.
    pub fn pentium_l2() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            line_size: 32,
            ways: 4,
        }
    }

    fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_size * self.ways as u64)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::pentium_l2()
    }
}

/// What one cache access did, so the caller can charge bus time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// The access hit in the cache.
    pub hit: bool,
    /// The access must appear on the memory bus: every write-through
    /// store, and every miss (line fill or uncached read).
    pub bus_access: bool,
    /// A dirty victim line must be written back first.
    pub writeback: Option<PhysAddr>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// A set-associative, true-LRU cache with snoop invalidation.
///
/// # Examples
///
/// ```
/// use shrimp_mem::{CacheModel, CacheConfig, PhysAddr};
/// use shrimp_mem::CacheMode;
///
/// let mut cache = CacheModel::new(CacheConfig::default());
/// let a = PhysAddr::new(0x1000);
/// assert!(!cache.load(a).hit);     // cold miss
/// assert!(cache.load(a).hit);      // now resident
/// // A DMA write from the NIC invalidates the line:
/// cache.snoop_invalidate(a, 4);
/// assert!(!cache.load(a).hit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheModel {
    config: CacheConfig,
    // sets[set] is LRU-ordered, most recent at the back.
    sets: Vec<Vec<Line>>,
    hits: u64,
    misses: u64,
    writebacks: u64,
    snoop_invalidations: u64,
}

impl CacheModel {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry is coherent (power-of-two line size,
    /// at least one set, at least one way).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways >= 1, "cache must have at least one way");
        assert!(config.num_sets() >= 1, "cache must have at least one set");
        let sets = vec![Vec::with_capacity(config.ways); config.num_sets() as usize];
        CacheModel {
            config,
            sets,
            hits: 0,
            misses: 0,
            writebacks: 0,
            snoop_invalidations: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn decompose(&self, addr: PhysAddr) -> (usize, u64) {
        let line_addr = addr.raw() / self.config.line_size;
        let set = (line_addr % self.config.num_sets()) as usize;
        let tag = line_addr / self.config.num_sets();
        (set, tag)
    }

    fn line_base(&self, set: usize, tag: u64) -> PhysAddr {
        let line_addr = tag * self.config.num_sets() + set as u64;
        PhysAddr::new(line_addr * self.config.line_size)
    }

    /// A CPU load. Misses allocate the line.
    pub fn load(&mut self, addr: PhysAddr) -> CacheOutcome {
        let (set, tag) = self.decompose(addr);
        if let Some(pos) = self.sets[set].iter().position(|l| l.tag == tag) {
            let line = self.sets[set].remove(pos);
            self.sets[set].push(line);
            self.hits += 1;
            return CacheOutcome {
                hit: true,
                bus_access: false,
                writeback: None,
            };
        }
        self.misses += 1;
        let writeback = self.allocate(set, tag, false);
        CacheOutcome {
            hit: false,
            bus_access: true,
            writeback,
        }
    }

    /// A CPU store with the page's cache mode.
    ///
    /// Write-through stores always produce a bus access (that bus access is
    /// what the SHRIMP NIC snoops); they update the line if present but do
    /// not allocate on miss. Write-back stores allocate and dirty the line,
    /// reaching the bus only on miss fill and victim writeback.
    pub fn store(&mut self, addr: PhysAddr, mode: CacheMode) -> CacheOutcome {
        let (set, tag) = self.decompose(addr);
        let pos = self.sets[set].iter().position(|l| l.tag == tag);
        match mode {
            CacheMode::WriteThrough => {
                if let Some(pos) = pos {
                    let mut line = self.sets[set].remove(pos);
                    // The store also updates memory, so the line stays clean.
                    line.dirty = false;
                    self.sets[set].push(line);
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
                CacheOutcome {
                    hit: pos.is_some(),
                    bus_access: true,
                    writeback: None,
                }
            }
            CacheMode::WriteBack => {
                if let Some(pos) = pos {
                    let mut line = self.sets[set].remove(pos);
                    line.dirty = true;
                    self.sets[set].push(line);
                    self.hits += 1;
                    return CacheOutcome {
                        hit: true,
                        bus_access: false,
                        writeback: None,
                    };
                }
                self.misses += 1;
                let writeback = self.allocate(set, tag, true);
                CacheOutcome {
                    hit: false,
                    bus_access: true,
                    writeback,
                }
            }
        }
    }

    fn allocate(&mut self, set: usize, tag: u64, dirty: bool) -> Option<PhysAddr> {
        let mut writeback = None;
        if self.sets[set].len() == self.config.ways {
            let victim = self.sets[set].remove(0);
            if victim.dirty {
                self.writebacks += 1;
                writeback = Some(self.line_base(set, victim.tag));
            }
        }
        self.sets[set].push(Line { tag, dirty });
        writeback
    }

    /// Invalidates every line overlapping `[addr, addr + len)` — the snoop
    /// reaction to a DMA write from the network interface.
    pub fn snoop_invalidate(&mut self, addr: PhysAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr.raw() / self.config.line_size;
        let last = (addr.raw() + len - 1) / self.config.line_size;
        for line_addr in first..=last {
            let set = (line_addr % self.config.num_sets()) as usize;
            let tag = line_addr / self.config.num_sets();
            if let Some(pos) = self.sets[set].iter().position(|l| l.tag == tag) {
                self.sets[set].remove(pos);
                self.snoop_invalidations += 1;
            }
        }
    }

    /// Drops all lines (discarding dirty data; used only in tests and
    /// resets).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Accesses that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Accesses that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty victim lines written back.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Lines killed by DMA snooping.
    pub fn snoop_invalidations(&self) -> u64 {
        self.snoop_invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheModel {
        // 2 sets x 2 ways x 32B lines = 128 B.
        CacheModel::new(CacheConfig {
            size_bytes: 128,
            line_size: 32,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let a = PhysAddr::new(0);
        let first = c.load(a);
        assert!(!first.hit);
        assert!(first.bus_access);
        let second = c.load(a);
        assert!(second.hit);
        assert!(!second.bus_access);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = small();
        c.load(PhysAddr::new(0));
        assert!(c.load(PhysAddr::new(31)).hit);
        assert!(!c.load(PhysAddr::new(32)).hit, "next line is separate");
    }

    #[test]
    fn write_through_always_hits_the_bus() {
        let mut c = small();
        let a = PhysAddr::new(64);
        let o1 = c.store(a, CacheMode::WriteThrough);
        assert!(o1.bus_access);
        assert!(!o1.hit);
        // WT does not allocate: a subsequent load still misses.
        assert!(!c.load(a).hit);
        // But a resident line is updated and the store still uses the bus.
        let o2 = c.store(a, CacheMode::WriteThrough);
        assert!(o2.bus_access);
        assert!(o2.hit);
    }

    #[test]
    fn write_back_dirties_and_writes_back_on_eviction() {
        let mut c = small();
        // Three distinct tags in set 0 (stride = num_sets * line = 64).
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(64);
        let d = PhysAddr::new(128);
        assert!(c.store(a, CacheMode::WriteBack).bus_access); // miss fill
        assert!(!c.store(a, CacheMode::WriteBack).bus_access); // hit, silent
        c.store(b, CacheMode::WriteBack);
        // Set 0 now holds dirty a and b; filling d must evict dirty a.
        let o = c.store(d, CacheMode::WriteBack);
        assert_eq!(o.writeback, Some(PhysAddr::new(0)));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn snoop_invalidation_kills_lines() {
        let mut c = small();
        c.load(PhysAddr::new(0));
        c.load(PhysAddr::new(32));
        // DMA write spanning both lines.
        c.snoop_invalidate(PhysAddr::new(0), 64);
        assert_eq!(c.snoop_invalidations(), 2);
        assert!(!c.load(PhysAddr::new(0)).hit);
        assert!(!c.load(PhysAddr::new(32)).hit);
        // Zero-length snoops are no-ops.
        c.snoop_invalidate(PhysAddr::new(0), 0);
        assert_eq!(c.snoop_invalidations(), 2);
    }

    #[test]
    fn snoop_partial_line_overlap_invalidates() {
        let mut c = small();
        c.load(PhysAddr::new(32));
        // DMA write of 4 bytes landing inside the line.
        c.snoop_invalidate(PhysAddr::new(40), 4);
        assert!(!c.load(PhysAddr::new(32)).hit);
    }

    #[test]
    fn lru_within_set() {
        let mut c = small();
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(64);
        let d = PhysAddr::new(128);
        c.load(a);
        c.load(b);
        c.load(a); // a most recent; b is LRU
        c.load(d); // evicts b
        assert!(c.load(a).hit);
        assert!(!c.load(b).hit);
    }

    #[test]
    fn flush_all_empties() {
        let mut c = small();
        c.load(PhysAddr::new(0));
        c.flush_all();
        assert!(!c.load(PhysAddr::new(0)).hit);
    }

    #[test]
    fn default_config_is_pentium_like() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.size_bytes, 256 * 1024);
        assert_eq!(cfg.line_size, 32);
        let c = CacheModel::new(cfg);
        assert_eq!(c.config().ways, 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        CacheModel::new(CacheConfig {
            size_bytes: 128,
            line_size: 33,
            ways: 2,
        });
    }
}
