//! Memory subsystem error type.

use std::error::Error;
use std::fmt;

use crate::addr::{PhysAddr, VirtAddr};

/// Errors raised by the memory subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A physical access fell outside installed DRAM.
    OutOfRange {
        /// The offending address.
        addr: PhysAddr,
        /// Total installed bytes.
        size: u64,
    },
    /// A physical access was not aligned to its width.
    Misaligned {
        /// The offending address.
        addr: PhysAddr,
        /// Required alignment in bytes.
        align: u64,
    },
    /// A virtual access touched an unmapped page.
    NotMapped {
        /// The offending virtual address.
        addr: VirtAddr,
    },
    /// A virtual access violated the page's protection.
    ProtectionViolation {
        /// The offending virtual address.
        addr: VirtAddr,
        /// True for a write access, false for a read.
        write: bool,
    },
    /// An access straddled a page boundary where that is not allowed.
    PageBoundaryCrossed {
        /// The offending virtual address.
        addr: VirtAddr,
        /// Access length in bytes.
        len: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, size } => {
                write!(f, "physical address {addr} outside installed memory of {size} bytes")
            }
            MemError::Misaligned { addr, align } => {
                write!(f, "physical address {addr} not aligned to {align} bytes")
            }
            MemError::NotMapped { addr } => write!(f, "virtual address {addr} is not mapped"),
            MemError::ProtectionViolation { addr, write } => {
                let kind = if *write { "write" } else { "read" };
                write!(f, "{kind} protection violation at {addr}")
            }
            MemError::PageBoundaryCrossed { addr, len } => {
                write!(f, "access of {len} bytes at {addr} crosses a page boundary")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MemError::OutOfRange {
            addr: PhysAddr::new(0x5000),
            size: 0x4000,
        };
        assert!(e.to_string().contains("outside installed memory"));

        let e = MemError::ProtectionViolation {
            addr: VirtAddr::new(0x10),
            write: true,
        };
        assert!(e.to_string().contains("write protection violation"));

        let e = MemError::ProtectionViolation {
            addr: VirtAddr::new(0x10),
            write: false,
        };
        assert!(e.to_string().contains("read protection violation"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: std::error::Error + Send + Sync>(_: E) {}
        takes_err(MemError::NotMapped {
            addr: VirtAddr::new(0),
        });
    }
}
