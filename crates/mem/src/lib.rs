//! Memory subsystem of a simulated SHRIMP node.
//!
//! Models the parts of the Intel Xpress PC memory system that the SHRIMP
//! network interface interacts with:
//!
//! * [`addr`] — physical/virtual address and page-number newtypes
//!   ([`PhysAddr`], [`VirtAddr`], [`PageNum`], [`VirtPageNum`]).
//! * [`phys`] — per-node physical DRAM ([`PhysicalMemory`]).
//! * [`page_table`] — per-process virtual→physical page tables with
//!   protection bits and per-page cache mode (write-through pages are what
//!   the NIC snoops).
//! * [`tlb`] — a small translation lookaside buffer with statistics.
//! * [`cache`] — a snooping second-level cache model; DMA writes from the
//!   network interface invalidate matching lines, which is how the real
//!   Xpress PC keeps CPU caches consistent with incoming data.
//! * [`bus`] — serialized Xpress memory bus and EISA expansion bus timing
//!   models; the EISA bus's 33 MB/s burst rate is the paper's peak
//!   bandwidth bottleneck.
//!
//! # Examples
//!
//! ```
//! use shrimp_mem::{PhysicalMemory, PhysAddr};
//!
//! let mut dram = PhysicalMemory::new(16); // 16 pages
//! dram.write_word(PhysAddr::new(0x100), 0xdead_beef)?;
//! assert_eq!(dram.read_word(PhysAddr::new(0x100))?, 0xdead_beef);
//! # Ok::<(), shrimp_mem::MemError>(())
//! ```

pub mod addr;
pub mod bus;
pub mod cache;
pub mod error;
pub mod page_table;
pub mod phys;
pub mod tlb;

pub use addr::{PageNum, PhysAddr, VirtAddr, VirtPageNum, PAGE_SIZE, WORD_SIZE};
pub use bus::{BusConfig, BusInitiator, BusKind, BusTransaction, EisaBus, XpressBus};
pub use cache::{CacheConfig, CacheModel, CacheOutcome};
pub use error::MemError;
pub use page_table::{CacheMode, PageFlags, PageTable, Protection};
pub use phys::PhysicalMemory;
pub use tlb::Tlb;
