//! Per-process page tables.
//!
//! Besides the usual translation and protection bits, each entry carries a
//! per-page [`CacheMode`]: the `map` system call configures mapped-out
//! pages as write-through so every user-level store appears on the memory
//! bus where the network interface can snoop it (paper §3.1).

use std::collections::BTreeMap;

use crate::addr::{PageNum, PhysAddr, VirtAddr, VirtPageNum, PAGE_SIZE};
use crate::error::MemError;

/// Access rights of a mapped page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Page may be read but not written. The kernel uses this state to
    /// "invalidate" outgoing mappings during the NIPT consistency protocol
    /// (paper §4.4): the next store page-faults and re-establishes the
    /// mapping.
    ReadOnly,
    /// Page may be read and written.
    ReadWrite,
}

impl Protection {
    /// True if writes are permitted.
    pub fn allows_write(self) -> bool {
        matches!(self, Protection::ReadWrite)
    }
}

/// Per-page caching strategy, selectable per virtual page on the Xpress PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheMode {
    /// Stores update the cache and are immediately driven onto the memory
    /// bus, where the NIC snoops them. Required for mapped-out pages.
    WriteThrough,
    /// Stores dirty the cache line and reach the bus only on eviction.
    /// The default for ordinary pages.
    WriteBack,
}

/// The flags of one page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFlags {
    /// Access rights.
    pub protection: Protection,
    /// Caching strategy.
    pub cache_mode: CacheMode,
    /// True while the frame is pinned (not eligible for replacement);
    /// the kernel pins pages with incoming communication mappings
    /// (paper §4.4).
    pub pinned: bool,
}

impl Default for PageFlags {
    fn default() -> Self {
        PageFlags {
            protection: Protection::ReadWrite,
            cache_mode: CacheMode::WriteBack,
            pinned: false,
        }
    }
}

/// The result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical address the virtual address maps to.
    pub phys: PhysAddr,
    /// The frame the page maps to.
    pub frame: PageNum,
    /// The entry's flags.
    pub flags: PageFlags,
}

/// One process's virtual→physical page table.
///
/// # Examples
///
/// ```
/// use shrimp_mem::{PageTable, PageFlags, VirtAddr, VirtPageNum, PageNum};
///
/// let mut pt = PageTable::new();
/// pt.map(VirtPageNum::new(4), PageNum::new(9), PageFlags::default());
/// let t = pt.translate_read(VirtAddr::new(4 * 4096 + 12))?;
/// assert_eq!(t.phys.raw(), 9 * 4096 + 12);
/// # Ok::<(), shrimp_mem::MemError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: BTreeMap<VirtPageNum, (PageNum, PageFlags)>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Maps `vpn` to `frame` with the given flags, replacing any previous
    /// mapping of `vpn`. Returns the previous frame, if any.
    pub fn map(&mut self, vpn: VirtPageNum, frame: PageNum, flags: PageFlags) -> Option<PageNum> {
        self.entries.insert(vpn, (frame, flags)).map(|(f, _)| f)
    }

    /// Removes the mapping of `vpn`, returning the frame it mapped to.
    pub fn unmap(&mut self, vpn: VirtPageNum) -> Option<PageNum> {
        self.entries.remove(&vpn).map(|(f, _)| f)
    }

    /// Looks up the entry for `vpn` without any permission check.
    pub fn entry(&self, vpn: VirtPageNum) -> Option<(PageNum, PageFlags)> {
        self.entries.get(&vpn).copied()
    }

    /// Updates the flags of an existing entry. Returns `false` if `vpn` is
    /// not mapped.
    pub fn set_flags(&mut self, vpn: VirtPageNum, flags: PageFlags) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(e) => {
                e.1 = flags;
                true
            }
            None => false,
        }
    }

    /// Changes only the protection of an existing entry. Returns `false`
    /// if `vpn` is not mapped.
    pub fn set_protection(&mut self, vpn: VirtPageNum, protection: Protection) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(e) => {
                e.1.protection = protection;
                true
            }
            None => false,
        }
    }

    /// Changes only the cache mode of an existing entry. Returns `false`
    /// if `vpn` is not mapped.
    pub fn set_cache_mode(&mut self, vpn: VirtPageNum, mode: CacheMode) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(e) => {
                e.1.cache_mode = mode;
                true
            }
            None => false,
        }
    }

    /// Pins or unpins an existing entry. Returns `false` if `vpn` is not
    /// mapped.
    pub fn set_pinned(&mut self, vpn: VirtPageNum, pinned: bool) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(e) => {
                e.1.pinned = pinned;
                true
            }
            None => false,
        }
    }

    /// Translates a virtual address for a read access.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotMapped`] if the page has no entry.
    pub fn translate_read(&self, addr: VirtAddr) -> Result<Translation, MemError> {
        let (frame, flags) = self
            .entries
            .get(&addr.page())
            .copied()
            .ok_or(MemError::NotMapped { addr })?;
        Ok(Translation {
            phys: frame.at_offset(addr.offset()),
            frame,
            flags,
        })
    }

    /// Translates a virtual address for a write access, enforcing
    /// protection.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotMapped`] if the page has no entry, or
    /// [`MemError::ProtectionViolation`] if the page is read-only.
    pub fn translate_write(&self, addr: VirtAddr) -> Result<Translation, MemError> {
        let t = self.translate_read(addr).map_err(|_| MemError::NotMapped { addr })?;
        if !t.flags.protection.allows_write() {
            return Err(MemError::ProtectionViolation { addr, write: true });
        }
        Ok(t)
    }

    /// Translates an access of `len` bytes that must not cross a page
    /// boundary (the NIC's transfer granularity, paper §4.3).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::PageBoundaryCrossed`] if `[addr, addr+len)`
    /// spans two pages, plus the errors of [`PageTable::translate_read`].
    pub fn translate_within_page(
        &self,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> Result<Translation, MemError> {
        if len > 0 && addr.offset() + len > PAGE_SIZE {
            return Err(MemError::PageBoundaryCrossed { addr, len });
        }
        if write {
            self.translate_write(addr)
        } else {
            self.translate_read(addr)
        }
    }

    /// Iterates over all entries in virtual-page order.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPageNum, PageNum, PageFlags)> + '_ {
        self.entries.iter().map(|(&v, &(f, fl))| (v, f, fl))
    }

    /// The virtual pages currently mapping to `frame` (usually zero or one).
    pub fn virt_pages_of_frame(&self, frame: PageNum) -> Vec<VirtPageNum> {
        self.entries
            .iter()
            .filter(|(_, &(f, _))| f == frame)
            .map(|(&v, _)| v)
            .collect()
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw() -> PageFlags {
        PageFlags::default()
    }

    #[test]
    fn translation_applies_offset() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(1), PageNum::new(5), rw());
        let t = pt.translate_read(VirtAddr::new(PAGE_SIZE + 123)).unwrap();
        assert_eq!(t.phys, PhysAddr::new(5 * PAGE_SIZE + 123));
        assert_eq!(t.frame, PageNum::new(5));
    }

    #[test]
    fn unmapped_page_errors() {
        let pt = PageTable::new();
        assert!(matches!(
            pt.translate_read(VirtAddr::new(0)),
            Err(MemError::NotMapped { .. })
        ));
        assert!(matches!(
            pt.translate_write(VirtAddr::new(0)),
            Err(MemError::NotMapped { .. })
        ));
    }

    #[test]
    fn read_only_blocks_writes_only() {
        let mut pt = PageTable::new();
        let flags = PageFlags {
            protection: Protection::ReadOnly,
            ..rw()
        };
        pt.map(VirtPageNum::new(0), PageNum::new(0), flags);
        assert!(pt.translate_read(VirtAddr::new(4)).is_ok());
        assert!(matches!(
            pt.translate_write(VirtAddr::new(4)),
            Err(MemError::ProtectionViolation { write: true, .. })
        ));
    }

    #[test]
    fn set_protection_takes_effect() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(0), PageNum::new(0), rw());
        assert!(pt.translate_write(VirtAddr::new(0)).is_ok());
        assert!(pt.set_protection(VirtPageNum::new(0), Protection::ReadOnly));
        assert!(pt.translate_write(VirtAddr::new(0)).is_err());
        assert!(!pt.set_protection(VirtPageNum::new(9), Protection::ReadOnly));
    }

    #[test]
    fn cache_mode_and_pin_flags() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(0), PageNum::new(0), rw());
        assert!(pt.set_cache_mode(VirtPageNum::new(0), CacheMode::WriteThrough));
        assert!(pt.set_pinned(VirtPageNum::new(0), true));
        let (_, flags) = pt.entry(VirtPageNum::new(0)).unwrap();
        assert_eq!(flags.cache_mode, CacheMode::WriteThrough);
        assert!(flags.pinned);
    }

    #[test]
    fn remap_returns_previous_frame() {
        let mut pt = PageTable::new();
        assert_eq!(pt.map(VirtPageNum::new(0), PageNum::new(1), rw()), None);
        assert_eq!(
            pt.map(VirtPageNum::new(0), PageNum::new(2), rw()),
            Some(PageNum::new(1))
        );
        assert_eq!(pt.unmap(VirtPageNum::new(0)), Some(PageNum::new(2)));
        assert_eq!(pt.unmap(VirtPageNum::new(0)), None);
        assert!(pt.is_empty());
    }

    #[test]
    fn page_boundary_check() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(0), PageNum::new(0), rw());
        assert!(pt
            .translate_within_page(VirtAddr::new(PAGE_SIZE - 4), 4, false)
            .is_ok());
        assert!(matches!(
            pt.translate_within_page(VirtAddr::new(PAGE_SIZE - 4), 8, false),
            Err(MemError::PageBoundaryCrossed { .. })
        ));
        // Zero-length accesses never straddle.
        assert!(pt
            .translate_within_page(VirtAddr::new(PAGE_SIZE - 1), 0, false)
            .is_ok());
    }

    #[test]
    fn reverse_lookup_finds_sharers() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(1), PageNum::new(7), rw());
        pt.map(VirtPageNum::new(3), PageNum::new(7), rw());
        pt.map(VirtPageNum::new(2), PageNum::new(8), rw());
        let mut sharers = pt.virt_pages_of_frame(PageNum::new(7));
        sharers.sort();
        assert_eq!(sharers, vec![VirtPageNum::new(1), VirtPageNum::new(3)]);
        assert_eq!(pt.len(), 3);
        assert_eq!(pt.iter().count(), 3);
    }
}
