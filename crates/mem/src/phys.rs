//! Per-node physical memory (DRAM).

use crate::addr::{PhysAddr, PageNum, PAGE_SIZE, WORD_SIZE};
use crate::error::MemError;

/// The DRAM of one node, addressed physically from zero.
///
/// All word accesses are little-endian 32-bit, matching the i386 family.
///
/// # Examples
///
/// ```
/// use shrimp_mem::{PhysicalMemory, PhysAddr};
///
/// let mut dram = PhysicalMemory::new(4);
/// dram.write_bytes(PhysAddr::new(8), &[1, 2, 3, 4])?;
/// assert_eq!(dram.read_word(PhysAddr::new(8))?, 0x0403_0201);
/// # Ok::<(), shrimp_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    data: Vec<u8>,
}

impl PhysicalMemory {
    /// Creates zero-filled DRAM of `pages` pages.
    pub fn new(pages: u64) -> Self {
        PhysicalMemory {
            data: vec![0u8; (pages * PAGE_SIZE) as usize],
        }
    }

    /// Installed size in bytes.
    pub fn size(&self) -> u64 {
        self.data.len() as u64
    }

    /// Number of installed pages.
    pub fn num_pages(&self) -> u64 {
        self.size() / PAGE_SIZE
    }

    /// True if `page` is an installed page.
    pub fn contains_page(&self, page: PageNum) -> bool {
        page.raw() < self.num_pages()
    }

    fn check(&self, addr: PhysAddr, len: u64) -> Result<usize, MemError> {
        let end = addr.raw().checked_add(len).ok_or(MemError::OutOfRange {
            addr,
            size: self.size(),
        })?;
        if end > self.size() {
            return Err(MemError::OutOfRange {
                addr,
                size: self.size(),
            });
        }
        Ok(addr.raw() as usize)
    }

    /// Reads one little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Misaligned`] for unaligned addresses and
    /// [`MemError::OutOfRange`] for addresses past installed memory.
    pub fn read_word(&self, addr: PhysAddr) -> Result<u32, MemError> {
        if !addr.is_word_aligned() {
            return Err(MemError::Misaligned {
                addr,
                align: WORD_SIZE,
            });
        }
        let i = self.check(addr, WORD_SIZE)?;
        Ok(u32::from_le_bytes(self.data[i..i + 4].try_into().unwrap()))
    }

    /// Writes one little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Misaligned`] for unaligned addresses and
    /// [`MemError::OutOfRange`] for addresses past installed memory.
    pub fn write_word(&mut self, addr: PhysAddr, value: u32) -> Result<(), MemError> {
        if !addr.is_word_aligned() {
            return Err(MemError::Misaligned {
                addr,
                align: WORD_SIZE,
            });
        }
        let i = self.check(addr, WORD_SIZE)?;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not fully installed.
    pub fn read_bytes_into(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let i = self.check(addr, buf.len() as u64)?;
        buf.copy_from_slice(&self.data[i..i + buf.len()]);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not fully installed.
    pub fn read_bytes(&self, addr: PhysAddr, len: u64) -> Result<Vec<u8>, MemError> {
        let mut buf = vec![0u8; len as usize];
        self.read_bytes_into(addr, &mut buf)?;
        Ok(buf)
    }

    /// Writes a byte slice starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not fully installed.
    pub fn write_bytes(&mut self, addr: PhysAddr, bytes: &[u8]) -> Result<(), MemError> {
        let i = self.check(addr, bytes.len() as u64)?;
        self.data[i..i + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Fills a byte range with a value.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not fully installed.
    pub fn fill(&mut self, addr: PhysAddr, len: u64, value: u8) -> Result<(), MemError> {
        let i = self.check(addr, len)?;
        self.data[i..i + len as usize].fill(value);
        Ok(())
    }

    /// A read-only view of one whole page.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the page is not installed.
    pub fn page_slice(&self, page: PageNum) -> Result<&[u8], MemError> {
        let i = self.check(page.base(), PAGE_SIZE)?;
        Ok(&self.data[i..i + PAGE_SIZE as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_little_endian() {
        let mut m = PhysicalMemory::new(1);
        m.write_word(PhysAddr::new(0), 0x1234_5678).unwrap();
        assert_eq!(m.read_word(PhysAddr::new(0)).unwrap(), 0x1234_5678);
        assert_eq!(m.read_bytes(PhysAddr::new(0), 4).unwrap(), vec![0x78, 0x56, 0x34, 0x12]);
    }

    #[test]
    fn misaligned_word_rejected() {
        let mut m = PhysicalMemory::new(1);
        assert!(matches!(
            m.read_word(PhysAddr::new(2)),
            Err(MemError::Misaligned { .. })
        ));
        assert!(matches!(
            m.write_word(PhysAddr::new(1), 0),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = PhysicalMemory::new(1);
        let end = PhysAddr::new(PAGE_SIZE);
        assert!(matches!(m.read_word(end), Err(MemError::OutOfRange { .. })));
        assert!(matches!(
            m.write_bytes(PhysAddr::new(PAGE_SIZE - 2), &[0; 4]),
            Err(MemError::OutOfRange { .. })
        ));
        // Last aligned word is fine.
        m.write_word(PhysAddr::new(PAGE_SIZE - 4), 1).unwrap();
    }

    #[test]
    fn overflowing_range_rejected() {
        let m = PhysicalMemory::new(1);
        assert!(matches!(
            m.read_bytes(PhysAddr::new(u64::MAX - 1), 4),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn byte_ops_roundtrip() {
        let mut m = PhysicalMemory::new(2);
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(PhysAddr::new(100), &data).unwrap();
        assert_eq!(m.read_bytes(PhysAddr::new(100), 256).unwrap(), data);
        let mut buf = [0u8; 16];
        m.read_bytes_into(PhysAddr::new(100), &mut buf).unwrap();
        assert_eq!(&buf, &data[..16]);
    }

    #[test]
    fn fill_and_page_slice() {
        let mut m = PhysicalMemory::new(2);
        m.fill(PageNum::new(1).base(), PAGE_SIZE, 0xab).unwrap();
        let page = m.page_slice(PageNum::new(1)).unwrap();
        assert!(page.iter().all(|&b| b == 0xab));
        assert!(m.page_slice(PageNum::new(2)).is_err());
    }

    #[test]
    fn geometry_accessors() {
        let m = PhysicalMemory::new(8);
        assert_eq!(m.size(), 8 * PAGE_SIZE);
        assert_eq!(m.num_pages(), 8);
        assert!(m.contains_page(PageNum::new(7)));
        assert!(!m.contains_page(PageNum::new(8)));
    }

    #[test]
    fn fresh_memory_is_zeroed() {
        let m = PhysicalMemory::new(1);
        assert!(m.read_bytes(PhysAddr::new(0), 64).unwrap().iter().all(|&b| b == 0));
    }
}
