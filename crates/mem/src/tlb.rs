//! A small translation lookaside buffer.
//!
//! The TLB caches page-table entries so the CPU model doesn't pay the
//! page-table walk on every access, and gives the kernel a realistic
//! invalidation hook: the NIPT consistency protocol of paper §4.4 is
//! "essentially the same as the TLB consistency problem in shared-memory
//! multiprocessors".

use crate::addr::{PageNum, VirtPageNum};
use crate::page_table::PageFlags;

/// A fully associative TLB with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use shrimp_mem::{Tlb, VirtPageNum, PageNum, PageFlags};
///
/// let mut tlb = Tlb::new(2);
/// assert!(tlb.lookup(VirtPageNum::new(1)).is_none());
/// tlb.insert(VirtPageNum::new(1), PageNum::new(9), PageFlags::default());
/// assert!(tlb.lookup(VirtPageNum::new(1)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    // Most recently used entries at the back.
    entries: Vec<(VirtPageNum, PageNum, PageFlags)>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB holding up to `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a translation, updating LRU order and hit/miss statistics.
    pub fn lookup(&mut self, vpn: VirtPageNum) -> Option<(PageNum, PageFlags)> {
        if let Some(pos) = self.entries.iter().position(|e| e.0 == vpn) {
            let e = self.entries.remove(pos);
            let result = (e.1, e.2);
            self.entries.push(e);
            self.hits += 1;
            Some(result)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts a translation, evicting the least recently used entry if
    /// full. Replaces any existing entry for the same page.
    pub fn insert(&mut self, vpn: VirtPageNum, frame: PageNum, flags: PageFlags) {
        if let Some(pos) = self.entries.iter().position(|e| e.0 == vpn) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((vpn, frame, flags));
    }

    /// Drops the entry for one virtual page, if present. Returns whether an
    /// entry was dropped.
    pub fn invalidate(&mut self, vpn: VirtPageNum) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.0 == vpn) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Drops every entry (context switch on a real machine).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Currently cached translation count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::PageFlags;

    fn fl() -> PageFlags {
        PageFlags::default()
    }

    fn v(n: u64) -> VirtPageNum {
        VirtPageNum::new(n)
    }

    fn p(n: u64) -> PageNum {
        PageNum::new(n)
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut tlb = Tlb::new(4);
        assert!(tlb.lookup(v(1)).is_none());
        tlb.insert(v(1), p(10), fl());
        assert_eq!(tlb.lookup(v(1)).unwrap().0, p(10));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.insert(v(1), p(1), fl());
        tlb.insert(v(2), p(2), fl());
        // Touch 1 so 2 becomes LRU.
        tlb.lookup(v(1));
        tlb.insert(v(3), p(3), fl());
        assert!(tlb.lookup(v(2)).is_none(), "2 should have been evicted");
        assert!(tlb.lookup(v(1)).is_some());
        assert!(tlb.lookup(v(3)).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::new(2);
        tlb.insert(v(1), p(1), fl());
        tlb.insert(v(1), p(9), fl());
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(v(1)).unwrap().0, p(9));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = Tlb::new(4);
        tlb.insert(v(1), p(1), fl());
        tlb.insert(v(2), p(2), fl());
        assert!(tlb.invalidate(v(1)));
        assert!(!tlb.invalidate(v(1)));
        assert_eq!(tlb.len(), 1);
        tlb.flush();
        assert!(tlb.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Tlb::new(0);
    }
}
