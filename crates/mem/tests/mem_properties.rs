//! Property-based tests of the memory substrate.

use proptest::prelude::*;

use shrimp_mem::{
    CacheConfig, CacheModel, CacheMode, MemError, PageFlags, PageNum, PageTable, PhysAddr,
    PhysicalMemory, Protection, Tlb, VirtPageNum, PAGE_SIZE,
};

proptest! {
    /// Physical memory behaves like a flat byte array for any in-range
    /// write sequence.
    #[test]
    fn physical_memory_is_a_byte_array(
        writes in prop::collection::vec((0u64..(8 * PAGE_SIZE - 64), prop::collection::vec(any::<u8>(), 1..64)), 1..50),
    ) {
        let mut mem = PhysicalMemory::new(8);
        let mut model = vec![0u8; (8 * PAGE_SIZE) as usize];
        for (addr, bytes) in &writes {
            mem.write_bytes(PhysAddr::new(*addr), bytes).unwrap();
            model[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        let got = mem.read_bytes(PhysAddr::new(0), 8 * PAGE_SIZE).unwrap();
        prop_assert_eq!(got, model);
    }

    /// Translation is exact for any mapping layout, and protection is
    /// enforced on every page independently.
    #[test]
    fn page_table_translation_exact(
        mappings in prop::collection::btree_map(0u64..64, (0u64..256, any::<bool>()), 1..32),
        probe in 0u64..64,
        offset in 0u64..PAGE_SIZE,
    ) {
        let mut pt = PageTable::new();
        for (&vpn, &(frame, writable)) in &mappings {
            pt.map(
                VirtPageNum::new(vpn),
                PageNum::new(frame),
                PageFlags {
                    protection: if writable { Protection::ReadWrite } else { Protection::ReadOnly },
                    cache_mode: CacheMode::WriteBack,
                    pinned: false,
                },
            );
        }
        let va = VirtPageNum::new(probe).at_offset(offset);
        match mappings.get(&probe) {
            Some(&(frame, writable)) => {
                let t = pt.translate_read(va).unwrap();
                prop_assert_eq!(t.phys, PageNum::new(frame).at_offset(offset));
                prop_assert_eq!(pt.translate_write(va).is_ok(), writable);
            }
            None => {
                let r = pt.translate_read(va);
                prop_assert!(matches!(r, Err(MemError::NotMapped { addr: _ })), "unmapped probe");
            }
        }
    }

    /// The TLB never contradicts the page table it caches: after any
    /// interleaving of inserts/invalidates, a hit returns what was last
    /// inserted for that page.
    #[test]
    fn tlb_coherent_with_inserts(
        ops in prop::collection::vec((0u64..32, 0u64..64, any::<bool>()), 1..100),
    ) {
        let mut tlb = Tlb::new(8);
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (vpn, frame, invalidate) in ops {
            if invalidate {
                tlb.invalidate(VirtPageNum::new(vpn));
                model.remove(&vpn);
            } else {
                tlb.insert(VirtPageNum::new(vpn), PageNum::new(frame), PageFlags::default());
                model.insert(vpn, frame);
            }
            if let Some((got, _)) = tlb.lookup(VirtPageNum::new(vpn)) {
                prop_assert_eq!(Some(&got.raw()), model.get(&vpn), "TLB must agree with inserts");
            }
            prop_assert!(tlb.len() <= 8);
        }
    }

    /// The cache never reports a hit for a line that was snooped away,
    /// and its occupancy never exceeds its configured geometry.
    #[test]
    fn cache_snoop_soundness(
        ops in prop::collection::vec((0u64..(64 * 1024), 0u8..3), 1..200),
    ) {
        let mut cache = CacheModel::new(CacheConfig {
            size_bytes: 4 * 1024,
            line_size: 32,
            ways: 2,
        });
        let mut resident: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (addr, op) in ops {
            let line = addr / 32;
            match op {
                0 => {
                    let o = cache.load(PhysAddr::new(addr));
                    if o.hit {
                        prop_assert!(resident.contains(&line), "hit only on resident line");
                    }
                    // The model is a superset of true residency (it never
                    // models evictions), which is all the hit-check needs.
                    resident.insert(line);
                }
                1 => {
                    cache.store(PhysAddr::new(addr), CacheMode::WriteBack);
                    resident.insert(line);
                }
                _ => {
                    cache.snoop_invalidate(PhysAddr::new(addr), 32);
                    resident.remove(&line);
                    resident.remove(&(line + 1));
                    // After a snoop, the line must miss (the probe load
                    // also refills it, so re-add to the model).
                    let o = cache.load(PhysAddr::new(addr));
                    prop_assert!(!o.hit, "snooped line cannot hit");
                    resident.insert(line);
                }
            }
        }
    }

    /// Word accesses honour alignment and range exactly.
    #[test]
    fn word_access_validity(addr in 0u64..(2 * PAGE_SIZE + 16)) {
        let mut mem = PhysicalMemory::new(2);
        let r = mem.write_word(PhysAddr::new(addr), 0x55aa_55aa);
        let in_range = addr + 4 <= 2 * PAGE_SIZE;
        let aligned = addr % 4 == 0;
        prop_assert_eq!(r.is_ok(), in_range && aligned);
        if r.is_ok() {
            prop_assert_eq!(mem.read_word(PhysAddr::new(addr)).unwrap(), 0x55aa_55aa);
        }
    }
}
