//! Backplane configuration.

use shrimp_sim::SimDuration;

use crate::topology::MeshShape;

/// Timing and buffering parameters of the routing backplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh dimensions.
    pub shape: MeshShape,
    /// Link bandwidth in bytes/second (each direction of each link is an
    /// independent physical channel).
    pub link_bytes_per_sec: u64,
    /// Router pipeline latency per hop (address decode + switch).
    pub hop_latency: SimDuration,
    /// Input buffer depth at each router port, in packets.
    pub input_buffer_packets: usize,
    /// Ejection buffer depth at each node (between the last router and the
    /// NIC), in packets.
    pub ejection_buffer_packets: usize,
}

impl MeshConfig {
    /// An Intel Paragon-class backplane. The iMRC routers are "faster and
    /// wider versions of the Caltech Mesh Routing Chip" (paper §3);
    /// 175 MB/s links and ~40 ns per hop put the mesh well above the
    /// 2×33 MB/s floor the paper requires of the non-EISA datapath.
    pub fn paragon(shape: MeshShape) -> Self {
        MeshConfig {
            shape,
            link_bytes_per_sec: 175_000_000,
            hop_latency: SimDuration::from_ns(40),
            input_buffer_packets: 2,
            ejection_buffer_packets: 2,
        }
    }

    /// A deliberately slow, tiny-buffered mesh for stress-testing flow
    /// control in unit tests.
    pub fn constrained(shape: MeshShape) -> Self {
        MeshConfig {
            shape,
            link_bytes_per_sec: 1_000_000,
            hop_latency: SimDuration::from_ns(500),
            input_buffer_packets: 1,
            ejection_buffer_packets: 1,
        }
    }

    /// A static lower bound on the latency of any cross-node effect
    /// through the backplane: even a single-hop packet pays at least one
    /// router pipeline delay before it can reach a neighbour. This is
    /// the conservative-lookahead window the parallel engine may run
    /// ahead by without null messages — a packet injected at time `t`
    /// cannot influence any *other* node before `t + bound`.
    pub fn min_cross_node_latency(&self) -> SimDuration {
        self.hop_latency
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is zero-depth or the link rate is zero.
    pub fn validate(&self) {
        assert!(self.link_bytes_per_sec > 0, "link bandwidth must be positive");
        assert!(self.input_buffer_packets > 0, "input buffers must hold a packet");
        assert!(
            self.ejection_buffer_packets > 0,
            "ejection buffers must hold a packet"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragon_meets_paper_bandwidth_floor() {
        let cfg = MeshConfig::paragon(MeshShape::new(4, 4));
        // "All other parts of the datapath have at least twice [33 MB/s]".
        assert!(cfg.link_bytes_per_sec >= 2 * 33_000_000);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "input buffers")]
    fn validate_rejects_zero_buffers() {
        let mut cfg = MeshConfig::paragon(MeshShape::new(2, 2));
        cfg.input_buffer_packets = 0;
        cfg.validate();
    }
}
