//! Model of the Intel Paragon routing backplane used by SHRIMP.
//!
//! The paper relies on exactly three properties of the backplane (§3):
//!
//! 1. **Deadlock-free oblivious wormhole routing** — reproduced with
//!    dimension-order (X then Y) routing over a 2-D mesh of routers.
//! 2. **In-order delivery per (sender, receiver) pair** — reproduced
//!    because routes are deterministic and every buffer and link serves
//!    packets FIFO.
//! 3. **Backpressure** — when a destination stops accepting packets
//!    (its NIC's Incoming FIFO is over threshold), router buffers fill and
//!    stall upstream links all the way back to the senders' injection
//!    ports, exactly the flow-control chain described in §4.
//!
//! Packets move at *packet granularity with cut-through timing*: a router
//! forwards a packet after its head has been latched (`hop_latency`) and
//! the link has serialized it (`len / link_bandwidth`). For SHRIMP-sized
//! packets this reproduces the latency envelope of the flit-level
//! hardware; DESIGN.md discusses the approximation.
//!
//! # Examples
//!
//! ```
//! use shrimp_mesh::{MeshConfig, MeshNetwork, MeshPacket, MeshShape, NodeId};
//! use shrimp_sim::SimTime;
//!
//! let mut net: MeshNetwork = MeshNetwork::new(MeshConfig::paragon(MeshShape::new(4, 4)));
//! let pkt = MeshPacket::new(NodeId(0), NodeId(15), vec![1, 2, 3, 4]);
//! assert!(net.try_inject(SimTime::ZERO, pkt).is_ok());
//! net.advance(SimTime::from_picos(u64::MAX / 2));
//! let (delivered, _arrival) = net.eject(NodeId(15)).expect("packet must arrive");
//! assert_eq!(&delivered.payload()[..], &[1, 2, 3, 4]);
//! ```

pub mod config;
pub mod network;
pub mod packet;
pub mod routing;
pub mod topology;

pub use config::MeshConfig;
pub use network::{LinkUse, MeshNetwork, NetworkStats};
pub use packet::{MeshPacket, MeshPayload};
pub use routing::{RouteDecision, RouteTable};
pub use topology::{Direction, MeshCoord, MeshShape, NodeId};
