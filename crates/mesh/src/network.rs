//! The routing backplane simulation.
//!
//! Packets move at packet granularity: each router stores a whole packet
//! in an input buffer, then forwards it over the next link once that link
//! is free *and* the downstream buffer has a free slot (credit-based flow
//! control). A forwarded packet occupies its source slot until its tail
//! has left (`wire_len / link_bandwidth`), and its head appears downstream
//! one `hop_latency` later.
//!
//! Destinations *pull* packets out of a bounded ejection buffer. A NIC
//! that stops pulling (Incoming FIFO over threshold, paper §4) fills the
//! ejection buffer, then the router input buffers, then upstream links —
//! reproducing the paper's end-to-end backpressure chain.

use std::collections::VecDeque;

use bytes::Bytes;
use shrimp_sim::fault::{FaultConfig, LinkFault, LinkFaultSite};
use shrimp_sim::{
    ComponentId, EventQueue, Histogram, SimDuration, SimTime, TraceData, TraceEvent, TraceLevel,
    Tracer,
};

use crate::config::MeshConfig;
use crate::packet::{MeshPacket, MeshPayload};
use crate::routing::{RouteDecision, RouteTable, CH_START};
use crate::topology::{Direction, MeshShape, NodeId};

const PORT_INJECT: usize = 4;
const NUM_PORTS: usize = 5;

#[derive(Debug, Clone)]
enum Event {
    /// A packet has fully arrived in `node`'s input buffer `port`.
    Arrive {
        packet: usize,
        node: NodeId,
        port: usize,
    },
    /// A forwarded packet's tail has left `node`'s input buffer `port`.
    SlotDrained { node: NodeId, port: usize },
    /// Something changed; re-attempt forwarding at `node`.
    Retry { node: NodeId },
    /// The churn schedule fails directed link `link` (`node * 4 + dir`).
    LinkDown { link: usize },
    /// The churn schedule repairs directed link `link`.
    LinkUp { link: usize },
}

#[derive(Debug, Clone, Default)]
struct Buffer {
    queue: VecDeque<usize>,
    /// Slots claimed by packets currently in flight towards this buffer.
    reserved: usize,
    /// Slots still occupied by tails of packets being forwarded out.
    draining: usize,
}

impl Buffer {
    fn occupancy(&self) -> usize {
        self.queue.len() + self.reserved + self.draining
    }
}

#[derive(Debug, Clone)]
struct RouterState {
    inputs: [Buffer; NUM_PORTS],
    ejection: VecDeque<(usize, SimTime)>,
}

#[derive(Debug)]
struct InFlight<P> {
    packet: MeshPacket<P>,
    injected_at: SimTime,
    hops: u16,
    /// When the packet's tail arrives wherever its head currently is.
    /// Cut-through timing: the head moves one `hop_latency` per hop and
    /// serialization is pipelined across the path (uniform link rates),
    /// so the tail trails the head by one serialization time. Ejection —
    /// which needs the whole packet for CRC checking — waits for the
    /// tail.
    tail_at: SimTime,
}

/// Aggregate statistics of a [`MeshNetwork`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets handed to [`MeshNetwork::try_inject`] and accepted.
    pub packets_injected: u64,
    /// Packets pulled out with [`MeshNetwork::eject`].
    pub packets_ejected: u64,
    /// Total bytes serialized over links (wire envelope included).
    pub link_bytes: u64,
    /// Network transit latencies (inject → arrival at ejection buffer),
    /// in picoseconds.
    pub transit_latency: Histogram,
    /// Hop counts of delivered packets.
    pub hops: Histogram,
    /// Packets destroyed on a link by fault injection.
    pub packets_dropped: u64,
    /// Packets that crossed a link with injected bit-flips.
    pub packets_corrupted: u64,
    /// Link traversals that saw injected latency jitter.
    pub packets_jittered: u64,
    /// Forwards whose adaptive west-first direction differed from the
    /// static dimension-order route (the dynamic path was exercised).
    pub reroutes: u64,
    /// Packets bounced back to their source NIC because no legal
    /// west-first path existed (or their link died under them).
    pub bounced: u64,
}

/// Usage accumulated by one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkUse {
    /// Bytes serialized over the link (wire envelope included).
    pub bytes: u64,
    /// Total time the link spent serializing packets.
    pub busy: SimDuration,
}

/// The simulated routing backplane, generic over the payload type its
/// packets carry (raw [`Bytes`] by default; the full machine instantiates
/// it with the NIC's structured packet so nothing is re-serialized at the
/// mesh boundary).
///
/// Drive it with [`MeshNetwork::try_inject`], [`MeshNetwork::advance`] and
/// [`MeshNetwork::eject`]; see the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct MeshNetwork<P = Bytes> {
    config: MeshConfig,
    shape: MeshShape,
    routers: Vec<RouterState>,
    /// `free_at` per directed link, indexed `node * 4 + direction`.
    link_free_at: Vec<SimTime>,
    packets: Vec<Option<InFlight<P>>>,
    events: EventQueue<Event>,
    now: SimTime,
    in_flight: usize,
    /// Earliest pending Retry per node, deduplicating wakeups so
    /// congestion cannot flood the event queue with redundant retries.
    retry_at: Vec<Option<SimTime>>,
    /// Fault site per directed link (same indexing as `link_free_at`);
    /// empty unless [`MeshNetwork::set_fault_injection`] armed one.
    faults: Vec<Option<LinkFaultSite>>,
    stats: NetworkStats,
    /// Per-directed-link usage, indexed like `link_free_at`.
    link_use: Vec<LinkUse>,
    /// Per-directed-link up/down state (same indexing as `link_free_at`).
    link_up: Vec<bool>,
    /// Link-state epoch: bumped on every up/down transition. Route
    /// tables are valid for exactly one epoch.
    epoch: u64,
    /// True once a churn schedule was armed: adaptive west-first
    /// routing and the bounce paths replace static dimension-order.
    churn_armed: bool,
    /// Lazily (re)built west-first table for `table_epoch`.
    table: Option<RouteTable>,
    table_epoch: u64,
    tracer: Tracer,
    /// When on, reroute/bounce decisions made inside [`Component::advance`]
    /// are logged here for the host's flight recorder to drain. Pure
    /// observation: it never affects routing or timing.
    flight_enabled: bool,
    flight_log: Vec<TraceEvent>,
}

impl<P: MeshPayload> MeshNetwork<P> {
    /// Creates an idle backplane.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MeshConfig::validate`].
    pub fn new(config: MeshConfig) -> Self {
        config.validate();
        let shape = config.shape;
        let n = shape.nodes() as usize;
        MeshNetwork {
            config,
            shape,
            routers: (0..n)
                .map(|_| RouterState {
                    inputs: Default::default(),
                    ejection: VecDeque::new(),
                })
                .collect(),
            link_free_at: vec![SimTime::ZERO; n * 4],
            packets: Vec::new(),
            events: EventQueue::new(),
            now: SimTime::ZERO,
            in_flight: 0,
            retry_at: vec![None; n],
            faults: Vec::new(),
            stats: NetworkStats::default(),
            link_use: vec![LinkUse::default(); n * 4],
            link_up: vec![true; n * 4],
            epoch: 0,
            churn_armed: false,
            table: None,
            table_epoch: 0,
            tracer: Tracer::disabled(),
            flight_enabled: false,
            flight_log: Vec::new(),
        }
    }

    /// Arms (or, with an inactive config, disarms) per-link fault
    /// injection. Each directed link gets its own named RNG stream, so a
    /// fault plan is reproducible regardless of traffic order elsewhere.
    ///
    /// An active churn config additionally schedules the entire
    /// fail/repair event set up front (a pure function of the seed) and
    /// switches routing from static dimension-order to west-first
    /// adaptive for the rest of the run.
    pub fn set_fault_injection(&mut self, cfg: &FaultConfig) {
        let links = self.link_free_at.len();
        if cfg.link.is_active() {
            self.faults = (0..links).map(|i| cfg.link_site(i as u64)).collect();
        } else {
            self.faults = Vec::new();
        }
        self.churn_armed = cfg.churn.is_active();
        self.table = None;
        if !self.churn_armed {
            return;
        }
        for link in 0..links {
            let node = NodeId((link / 4) as u16);
            let dir = Direction::ALL[link % 4];
            if self.shape.neighbor(node, dir).is_none() {
                continue; // mesh edge: no physical link to churn
            }
            for (down_at, up_at) in cfg.churn_windows(link as u64) {
                self.events.push(SimTime::ZERO + down_at, Event::LinkDown { link });
                self.events.push(SimTime::ZERO + up_at, Event::LinkUp { link });
            }
        }
    }

    /// Attaches a tracer for link up/down events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The mesh's tracer (link churn events).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Turns flight logging of reroute/bounce decisions on or off.
    /// These happen deep inside `advance`, where the host cannot see
    /// them; the log hands them to the host's flight recorder.
    pub fn set_flight_recording(&mut self, on: bool) {
        self.flight_enabled = on;
        if !on {
            self.flight_log.clear();
        }
    }

    /// Moves all pending flight-log events into `out` (emission order).
    pub fn drain_flight_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.flight_log);
    }

    #[inline]
    fn flight(&mut self, time: SimTime, data: TraceData) {
        if self.flight_enabled {
            self.flight_log.push(TraceEvent {
                time,
                level: TraceLevel::Info,
                component: ComponentId::MESH,
                data,
            });
        }
    }

    /// True when the directed link `from` → its `dir` neighbor is up.
    pub fn link_is_up(&self, from: NodeId, dir: Direction) -> bool {
        self.link_up[from.0 as usize * 4 + dir.index()]
    }

    /// The current link-state epoch (transitions seen so far).
    pub fn link_epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one churn transition: flips the link, bumps the epoch
    /// (invalidating the route table), and wakes every router so heads
    /// that were waiting on — or newly have — a route re-decide.
    fn set_link_state(&mut self, link: usize, up: bool, t: SimTime) {
        if self.link_up[link] == up {
            return;
        }
        self.link_up[link] = up;
        self.epoch += 1;
        if self.tracer.wants(TraceLevel::Info) {
            let from = NodeId((link / 4) as u16);
            let to = self
                .shape
                .neighbor(from, Direction::ALL[link % 4])
                .expect("churn only schedules physical links");
            let data = if up {
                TraceData::LinkUp { from: from.0, to: to.0, epoch: self.epoch }
            } else {
                TraceData::LinkDown { from: from.0, to: to.0, epoch: self.epoch }
            };
            self.tracer.emit(t, TraceLevel::Info, ComponentId::MESH, data);
        }
        for node in 0..self.retry_at.len() {
            self.schedule_retry(NodeId(node as u16), t);
        }
    }

    /// The mesh geometry.
    pub fn shape(&self) -> MeshShape {
        self.shape
    }

    /// The configuration in force.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Per-directed-link usage: `(from, to, use)` for every link that
    /// carried traffic, in deterministic link-index order.
    pub fn link_usage(&self) -> Vec<(NodeId, NodeId, LinkUse)> {
        let mut out = Vec::new();
        for (i, u) in self.link_use.iter().enumerate() {
            if u.bytes == 0 {
                continue;
            }
            let node = NodeId((i / 4) as u16);
            let dir = Direction::ALL[i % 4];
            if let Some(to) = self.shape.neighbor(node, dir) {
                out.push((node, to, *u));
            }
        }
        out
    }

    /// The time of the latest processed internal event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// True if `node` can accept a packet into its injection port right
    /// now. When false, the sender's Outgoing FIFO has ceased draining —
    /// the upstream half of the paper's flow-control chain.
    pub fn can_inject(&self, node: NodeId) -> bool {
        self.routers[node.0 as usize].inputs[PORT_INJECT].occupancy()
            < self.config.input_buffer_packets
    }

    /// Offers a packet to `node`'s injection port at time `now`.
    /// Returns the packet back as `Err` if the injection buffer is full,
    /// so callers retry without cloning it every pump.
    ///
    /// # Panics
    ///
    /// Panics if the packet's source or destination is off-mesh, or if
    /// `now` is earlier than events already processed.
    pub fn try_inject(
        &mut self,
        now: SimTime,
        packet: MeshPacket<P>,
    ) -> Result<(), MeshPacket<P>> {
        assert!(self.shape.contains(packet.src()), "source off mesh");
        assert!(self.shape.contains(packet.dst()), "destination off mesh");
        assert!(now >= self.now, "injection in the past");
        let node = packet.src();
        if !self.can_inject(node) {
            return Err(packet);
        }
        let id = self.packets.len();
        self.packets.push(Some(InFlight {
            packet,
            injected_at: now,
            hops: 0,
            tail_at: now,
        }));
        self.in_flight += 1;
        self.stats.packets_injected += 1;
        self.routers[node.0 as usize].inputs[PORT_INJECT]
            .queue
            .push_back(id);
        self.schedule_retry(node, now);
        Ok(())
    }

    /// Processes all internal events up to and including `until`.
    pub fn advance(&mut self, until: SimTime) {
        while let Some(t) = self.events.peek_time() {
            if t > until {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked event must pop");
            self.now = self.now.max(t);
            match ev {
                Event::Arrive { packet, node, port } => {
                    self.routers[node.0 as usize].inputs[port].reserved -= 1;
                    // If the traversed link died while the packet was on
                    // the wire, the worm is torn: bounce it to its source
                    // NIC for go-back-N recovery instead of letting a
                    // half-arrived packet vanish.
                    if self.churn_armed && port != PORT_INJECT {
                        let feeder = self
                            .shape
                            .neighbor(node, Direction::ALL[port])
                            .expect("transit ports face a neighbor");
                        let link =
                            feeder.0 as usize * 4 + Direction::ALL[port].opposite().index();
                        if !self.link_up[link] {
                            self.bounce(packet, node, t);
                            continue;
                        }
                    }
                    self.routers[node.0 as usize].inputs[port].queue.push_back(packet);
                    self.try_forward(node, t);
                }
                Event::SlotDrained { node, port } => {
                    self.routers[node.0 as usize].inputs[port].draining -= 1;
                    // The feeder of this buffer may have been stalled on
                    // the freed slot.
                    if port != PORT_INJECT {
                        let dir = Direction::ALL[port];
                        if let Some(feeder) = self.shape.neighbor(node, dir) {
                            self.schedule_retry(feeder, t);
                        }
                    }
                    self.try_forward(node, t);
                }
                Event::Retry { node } => {
                    // Clear the dedup slot (stale earlier-time markers too).
                    if self.retry_at[node.0 as usize].is_some_and(|w| w <= t) {
                        self.retry_at[node.0 as usize] = None;
                    }
                    self.try_forward(node, t);
                }
                Event::LinkDown { link } => self.set_link_state(link, false, t),
                Event::LinkUp { link } => self.set_link_state(link, true, t),
            }
        }
    }

    /// The time of the next internal event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Arrival time of the packet at the head of `node`'s ejection buffer.
    pub fn peek_ejection(&self, node: NodeId) -> Option<SimTime> {
        self.routers[node.0 as usize].ejection.front().map(|&(_, t)| t)
    }

    /// Pulls the next delivered packet (and its arrival time) from `node`'s
    /// ejection buffer. Pulling frees a slot, which may restart a stalled
    /// upstream pipeline.
    pub fn eject(&mut self, node: NodeId) -> Option<(MeshPacket<P>, SimTime)> {
        let (id, arrival) = self.routers[node.0 as usize].ejection.pop_front()?;
        let inflight = self.packets[id].take().expect("ejected packet must exist");
        self.in_flight -= 1;
        self.stats.packets_ejected += 1;
        self.stats
            .transit_latency
            .record(arrival.since(inflight.injected_at).as_picos());
        self.stats.hops.record(inflight.hops as u64);
        let retry_at = self.now.max(arrival);
        self.schedule_retry(node, retry_at);
        Some((inflight.packet, arrival))
    }

    /// True when nothing is in flight and no events are pending
    /// (undelivered packets sitting in ejection buffers count as in
    /// flight).
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0 && self.events.is_empty()
    }

    /// Number of packets injected but not yet ejected.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn serialization(&self, wire_len: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(wire_len, self.config.link_bytes_per_sec)
    }

    fn try_forward(&mut self, node: NodeId, t: SimTime) {
        for port in 0..NUM_PORTS {
            // A successful forward exposes the next queued packet, which
            // may also be forwardable (e.g. to a different output link).
            while self.try_forward_head(node, port, t) {}
        }
    }

    /// Attempts to forward the head packet of `(node, port)`.
    /// Returns true if the packet moved.
    fn try_forward_head(&mut self, node: NodeId, port: usize, t: SimTime) -> bool {
        let Some(&id) = self.routers[node.0 as usize].inputs[port].queue.front() else {
            return false;
        };
        let dst = self.packets[id].as_ref().expect("queued packet must exist").packet.dst();

        match self.route(node, port, dst) {
            RouteDecision::Eject => {
                // Eject into the bounded ejection buffer; the packet is
                // only complete (CRC-checkable) once its tail arrives.
                let tail_at = self.packets[id]
                    .as_ref()
                    .expect("queued packet must exist")
                    .tail_at;
                if tail_at > t {
                    self.schedule_retry(node, tail_at);
                    return false;
                }
                let router = &mut self.routers[node.0 as usize];
                if router.ejection.len() >= self.config.ejection_buffer_packets {
                    return false;
                }
                router.inputs[port].queue.pop_front();
                router.ejection.push_back((id, t));
                // The input slot frees immediately: wake the feeder.
                self.wake_feeder(node, port, t);
                true
            }
            RouteDecision::Unreachable => {
                // No legal west-first path under the current link set.
                // Wait for the tail (the bounce carries the whole
                // packet), then return it to the source NIC.
                let tail_at = self.packets[id]
                    .as_ref()
                    .expect("queued packet must exist")
                    .tail_at;
                if tail_at > t {
                    self.schedule_retry(node, tail_at);
                    return false;
                }
                self.routers[node.0 as usize].inputs[port].queue.pop_front();
                self.wake_feeder(node, port, t);
                self.bounce(id, node, t);
                true
            }
            RouteDecision::Forward(dir) => {
                let link_idx = node.0 as usize * 4 + dir.index();
                let link_free = self.link_free_at[link_idx];
                if link_free > t {
                    // Too early: retry when the link frees.
                    self.schedule_retry(node, link_free);
                    return false;
                }
                let down = self
                    .shape
                    .neighbor(node, dir)
                    .expect("route_next only returns on-mesh directions");
                let dport = dir.opposite().index();
                if self.routers[down.0 as usize].inputs[dport].occupancy()
                    >= self.config.input_buffer_packets
                {
                    // Downstream full: the SlotDrained/eject path will
                    // wake us when a credit frees.
                    return false;
                }

                let wire_len = self.packets[id]
                    .as_ref()
                    .expect("queued packet must exist")
                    .packet
                    .wire_len();
                let ser = self.serialization(wire_len);
                let fault = match self.faults.get_mut(link_idx).and_then(Option::as_mut) {
                    Some(site) => site.decide(),
                    None => LinkFault::NONE,
                };
                self.link_free_at[link_idx] = t + ser;
                self.stats.link_bytes += wire_len;
                self.link_use[link_idx].bytes += wire_len;
                self.link_use[link_idx].busy += ser;
                let src_buf = &mut self.routers[node.0 as usize].inputs[port];
                src_buf.queue.pop_front();
                src_buf.draining += 1;
                self.events.push(t + ser, Event::SlotDrained { node, port });
                if fault.drop {
                    // The wire serialized the bytes but the packet is
                    // gone: no downstream reservation, no Arrive.
                    self.packets[id] = None;
                    self.in_flight -= 1;
                    self.stats.packets_dropped += 1;
                    return true;
                }
                self.routers[down.0 as usize].inputs[dport].reserved += 1;
                if self.churn_armed && self.shape.route_next(node, dst) != Some(dir) {
                    self.stats.reroutes += 1;
                    let src = self.packets[id]
                        .as_ref()
                        .expect("forwarding packet must exist")
                        .packet
                        .src();
                    self.flight(
                        t,
                        TraceData::PacketRerouted {
                            src: src.0,
                            dst: dst.0,
                            at: node.0,
                        },
                    );
                }
                let inflight = self.packets[id].as_mut().expect("forwarding packet must exist");
                inflight.hops += 1;
                if fault.corrupt_bits > 0 {
                    // Line noise: flip bits in the payload's wire image.
                    // The payload's own integrity check (CRC for NIC
                    // packets) is expected to catch this downstream.
                    let payload_bits = inflight.packet.payload().byte_len().max(1) * 8;
                    let site = self.faults[link_idx].as_mut().expect("site decided above");
                    for _ in 0..fault.corrupt_bits {
                        let bit = site.pick_bit(payload_bits);
                        inflight.packet.payload_mut().corrupt_bit(bit);
                    }
                    self.stats.packets_corrupted += 1;
                }
                if fault.jitter > SimDuration::ZERO {
                    self.stats.packets_jittered += 1;
                }
                // Cut-through: the head is at the next router after one
                // hop latency; the tail follows one serialization later
                // (it cannot leave here before it has fully arrived).
                let head_at = t + self.config.hop_latency + fault.jitter;
                // The tail leaves once the link has serialized it and it
                // has fully arrived here, then rides the router pipeline.
                inflight.tail_at =
                    (t + ser).max(inflight.tail_at) + self.config.hop_latency + fault.jitter;
                self.events.push(
                    head_at,
                    Event::Arrive {
                        packet: id,
                        node: down,
                        port: dport,
                    },
                );
                true
            }
        }
    }

    /// The routing decision for the head of `(node, port)`: static
    /// dimension-order while the topology is fixed, west-first adaptive
    /// (table rebuilt lazily per link-state epoch) once churn is armed.
    fn route(&mut self, node: NodeId, port: usize, dst: NodeId) -> RouteDecision {
        if !self.churn_armed {
            return match self.shape.route_next(node, dst) {
                None => RouteDecision::Eject,
                Some(dir) => RouteDecision::Forward(dir),
            };
        }
        if self.table.is_none() || self.table_epoch != self.epoch {
            self.table = Some(RouteTable::build(self.shape, &self.link_up));
            self.table_epoch = self.epoch;
        }
        let channel = if port == PORT_INJECT {
            CH_START
        } else {
            Direction::ALL[port].opposite().index()
        };
        self.table.as_ref().expect("table built above").decide(node, channel, dst)
    }

    /// Returns packet `id` to its source node's ejection buffer. The
    /// bounce channel is out of band — not subject to the data ejection
    /// bound — so recovery cannot itself be backpressured into a
    /// deadlock; in practice it is bounded by the NICs' go-back-N
    /// windows.
    fn bounce(&mut self, id: usize, at: NodeId, t: SimTime) {
        let inflight = self.packets[id].as_ref().expect("bounced packet must exist");
        let src = inflight.packet.src();
        let dst = inflight.packet.dst();
        let back_at = t + self.config.hop_latency;
        self.routers[src.0 as usize].ejection.push_back((id, back_at));
        self.stats.bounced += 1;
        self.flight(
            t,
            TraceData::PacketBounced {
                src: src.0,
                dst: dst.0,
                at: at.0,
            },
        );
        // A mesh event at `back_at` so the host pumps ejections then.
        self.schedule_retry(src, back_at);
    }

    fn wake_feeder(&mut self, node: NodeId, port: usize, t: SimTime) {
        if port != PORT_INJECT {
            let dir = Direction::ALL[port];
            if let Some(feeder) = self.shape.neighbor(node, dir) {
                self.schedule_retry(feeder, t);
            }
        }
    }

    /// Pushes a Retry for `node` at `at` unless an earlier-or-equal one
    /// is already pending.
    fn schedule_retry(&mut self, node: NodeId, at: SimTime) {
        let slot = &mut self.retry_at[node.0 as usize];
        if slot.is_none_or(|w| at < w) {
            *slot = Some(at);
            self.events.push(at, Event::Retry { node });
        }
    }
}

/// The mesh as a passive time-advancing component: the machine's run
/// loop interleaves it with scheduler events through this interface.
impl<P: MeshPayload> shrimp_sim::Component for MeshNetwork<P> {
    fn next_event_time(&self) -> Option<SimTime> {
        MeshNetwork::next_event_time(self)
    }

    fn advance(&mut self, until: SimTime) {
        MeshNetwork::advance(self, until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MeshShape;

    const FAR: SimTime = SimTime::from_picos(u64::MAX / 2);

    fn net(w: u16, h: u16) -> MeshNetwork {
        MeshNetwork::new(MeshConfig::paragon(MeshShape::new(w, h)))
    }

    fn pkt(src: u16, dst: u16, len: usize) -> MeshPacket {
        MeshPacket::new(NodeId(src), NodeId(dst), vec![0u8; len])
    }

    fn drain(net: &mut MeshNetwork, node: NodeId) -> Vec<(MeshPacket, SimTime)> {
        let mut out = Vec::new();
        loop {
            net.advance(FAR);
            match net.eject(node) {
                Some(d) => out.push(d),
                None => break,
            }
        }
        out
    }

    #[test]
    fn delivers_across_the_mesh() {
        let mut n = net(4, 4);
        assert!(n.try_inject(SimTime::ZERO, pkt(0, 15, 32)).is_ok());
        let got = drain(&mut n, NodeId(15));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0.payload().len(), 32);
        assert!(n.is_idle());
        assert_eq!(n.stats().packets_ejected, 1);
        // 0 -> 15 on a 4x4 mesh is 6 hops.
        assert_eq!(n.stats().hops.max(), Some(6));
    }

    #[test]
    fn self_send_ejects_locally() {
        let mut n = net(2, 2);
        assert!(n.try_inject(SimTime::ZERO, pkt(1, 1, 8)).is_ok());
        let got = drain(&mut n, NodeId(1));
        assert_eq!(got.len(), 1);
        assert_eq!(n.stats().hops.max(), Some(0));
    }

    #[test]
    fn latency_scales_with_hops() {
        // Same payload, increasing distance on a 1-row mesh.
        let mut lat = Vec::new();
        for dst in [1u16, 2, 3, 4, 5, 6, 7] {
            let mut n = net(8, 1);
            n.try_inject(SimTime::ZERO, pkt(0, dst, 16)).unwrap();
            let got = drain(&mut n, NodeId(dst));
            lat.push(got[0].1.as_picos());
        }
        for w in lat.windows(2) {
            assert!(w[1] > w[0], "latency must grow with distance: {lat:?}");
        }
        // Per-hop increment is hop_latency + serialization, constant here.
        let d1 = lat[1] - lat[0];
        let d2 = lat[2] - lat[1];
        assert_eq!(d1, d2);
    }

    /// Injects `p`, making progress (advancing events, and ejecting
    /// delivered packets at `sink` into `got`) until the port accepts it.
    fn inject_with_progress(
        n: &mut MeshNetwork,
        now: &mut SimTime,
        mut p: MeshPacket,
        sink: NodeId,
        got: &mut Vec<(MeshPacket, SimTime)>,
    ) {
        loop {
            n.advance(*now);
            match n.try_inject(*now, p) {
                Ok(()) => return,
                Err(refused) => p = refused,
            }
            if let Some(next) = n.next_event_time() {
                n.advance(next);
                *now = (*now).max(next);
            } else {
                // Fully backpressured: the receiver must consume.
                got.push(n.eject(sink).expect("backpressured network must have a delivery"));
            }
        }
    }

    #[test]
    fn in_order_per_sender_receiver_pair() {
        let mut n = net(4, 4);
        let mut now = SimTime::ZERO;
        let mut got = Vec::new();
        for i in 0..20u8 {
            let p = MeshPacket::new(NodeId(0), NodeId(15), vec![i; 8]);
            inject_with_progress(&mut n, &mut now, p, NodeId(15), &mut got);
        }
        got.extend(drain(&mut n, NodeId(15)));
        assert_eq!(got.len(), 20);
        for (i, (p, _)) in got.iter().enumerate() {
            assert_eq!(p.payload()[0], i as u8, "delivery must preserve order");
        }
    }

    #[test]
    fn arrival_times_are_monotonic_per_pair() {
        let mut n = net(4, 1);
        let mut now = SimTime::ZERO;
        for i in 0..10u8 {
            loop {
                if n.try_inject(now, MeshPacket::new(NodeId(0), NodeId(3), vec![i; 64])).is_ok() {
                    break;
                }
                let next = n.next_event_time().unwrap();
                n.advance(next);
                now = now.max(next);
            }
        }
        let got = drain(&mut n, NodeId(3));
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn injection_backpressure_when_buffer_full() {
        let mut n = MeshNetwork::new(MeshConfig::constrained(MeshShape::new(2, 1)));
        // Capacity 1: the first packet sits in the injection buffer until
        // forwarded; a second immediate injection must be refused.
        assert!(n.try_inject(SimTime::ZERO, pkt(0, 1, 900)).is_ok());
        assert!(!n.can_inject(NodeId(0)) || n.try_inject(SimTime::ZERO, pkt(0, 1, 900)).is_ok());
        drain(&mut n, NodeId(1));
    }

    #[test]
    fn blocked_receiver_backpressures_to_sender() {
        let mut n = MeshNetwork::new(MeshConfig::constrained(MeshShape::new(2, 1)));
        let mut accepted = 0;
        let mut now = SimTime::ZERO;
        // Never eject at node 1. Buffers: inject(1) + input(1) + eject(1).
        for _ in 0..50 {
            n.advance(now);
            if n.try_inject(now, pkt(0, 1, 100)).is_ok() {
                accepted += 1;
            }
            now += SimDuration::from_us(10);
        }
        n.advance(now);
        assert!(
            accepted <= 4,
            "backpressure must bound acceptance without ejection, got {accepted}"
        );
        assert!(n.in_flight() > 0);
        // Ejecting drains the pipeline completely.
        let got = drain(&mut n, NodeId(1));
        assert_eq!(got.len(), accepted);
        assert!(n.is_idle());
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        // Nodes 0 and 1 both send to node 3 on a 4x1 mesh: the 2->3 link
        // is shared. Compare against node 1 sending alone.
        let payload = 1750; // 10 us serialization at 175 MB/s
        let mut solo = net(4, 1);
        solo.try_inject(SimTime::ZERO, pkt(1, 3, payload)).unwrap();
        let t_solo = drain(&mut solo, NodeId(3))[0].1;

        let mut shared = net(4, 1);
        shared.try_inject(SimTime::ZERO, pkt(0, 3, payload)).unwrap();
        shared.try_inject(SimTime::ZERO, pkt(1, 3, payload)).unwrap();
        let got = drain(&mut shared, NodeId(3));
        assert_eq!(got.len(), 2);
        let last = got.iter().map(|d| d.1).max().unwrap();
        assert!(
            last > t_solo,
            "contending packets must finish later than a solo packet"
        );
    }

    #[test]
    fn stats_account_for_traffic() {
        let mut n = net(3, 3);
        n.try_inject(SimTime::ZERO, pkt(0, 8, 100)).unwrap();
        drain(&mut n, NodeId(8));
        let s = n.stats();
        assert_eq!(s.packets_injected, 1);
        assert_eq!(s.packets_ejected, 1);
        // 4 hops, each serializing wire_len bytes.
        let wire = 100 + crate::packet::ROUTING_OVERHEAD_BYTES;
        assert_eq!(s.link_bytes, 4 * wire);
        assert!(s.transit_latency.count() == 1);
    }

    fn always_drop() -> shrimp_sim::FaultConfig {
        shrimp_sim::FaultConfig {
            seed: 1,
            link: shrimp_sim::LinkFaultConfig {
                drop_rate: 1.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn dropped_packets_never_arrive_but_leave_the_mesh_idle() {
        let mut n = net(2, 2);
        n.set_fault_injection(&always_drop());
        for _ in 0..4 {
            n.try_inject(n.now(), pkt(0, 3, 64)).unwrap();
            n.advance(FAR);
        }
        assert!(drain(&mut n, NodeId(3)).is_empty());
        assert!(n.is_idle(), "drops must not wedge the mesh");
        assert_eq!(n.stats().packets_dropped, 4);
        assert_eq!(n.stats().packets_ejected, 0);
    }

    #[test]
    fn inactive_fault_config_is_free() {
        let mut n = net(2, 2);
        n.set_fault_injection(&shrimp_sim::FaultConfig::default());
        n.try_inject(SimTime::ZERO, pkt(0, 3, 64)).unwrap();
        assert_eq!(drain(&mut n, NodeId(3)).len(), 1);
        assert_eq!(n.stats().packets_dropped, 0);
        assert_eq!(n.stats().packets_corrupted, 0);
    }

    #[test]
    fn fault_plans_are_deterministic() {
        let lossy = shrimp_sim::FaultConfig {
            seed: 9,
            link: shrimp_sim::LinkFaultConfig {
                drop_rate: 0.3,
                jitter_rate: 0.2,
                jitter: (SimDuration::from_ns(1), SimDuration::from_ns(80)),
                ..Default::default()
            },
            ..Default::default()
        };
        let run = || {
            let mut n = net(3, 3);
            n.set_fault_injection(&lossy);
            for i in 0..32u64 {
                let src = (i % 9) as u16;
                let dst = ((i + 4) % 9) as u16;
                if src == dst {
                    continue;
                }
                n.try_inject(n.now().max(SimTime::from_picos(i * 10)), pkt(src, dst, 80))
                    .unwrap();
                n.advance(FAR);
            }
            let mut got = 0;
            for node in 0..9 {
                got += drain(&mut n, NodeId(node)).len();
            }
            (got, n.stats().clone())
        };
        let (a_got, a_stats) = run();
        let (b_got, b_stats) = run();
        assert_eq!(a_got, b_got);
        assert_eq!(a_stats, b_stats);
        assert!(a_stats.packets_dropped > 0, "0.3 drop rate must fire");
    }

    /// Directed link index helper for churn tests.
    fn link(node: u16, dir: Direction) -> usize {
        node as usize * 4 + dir.index()
    }

    #[test]
    fn dead_link_reroutes_adaptively_and_delivers() {
        // 2x2 mesh: 0 -> 1 is one East hop. Kill it; west-first routes
        // the long way round (0 -> 2 -> 3 -> 1 or equivalent).
        let mut n = net(2, 2);
        n.churn_armed = true;
        n.set_link_state(link(0, Direction::East), false, SimTime::ZERO);
        n.try_inject(SimTime::ZERO, pkt(0, 1, 64)).unwrap();
        let got = drain(&mut n, NodeId(1));
        assert_eq!(got.len(), 1, "the detour must deliver");
        assert_eq!(n.stats().hops.max(), Some(3), "non-minimal 3-hop detour");
        assert!(n.stats().reroutes > 0, "the adaptive path was taken");
        assert_eq!(n.stats().bounced, 0);
        assert!(n.is_idle());
    }

    #[test]
    fn unreachable_west_destination_bounces_to_source() {
        // 2x1 mesh: 1 -> 0 needs a West hop; with the only west link
        // dead there is no legal west-first detour. The packet must
        // come back to node 1's ejection buffer for go-back-N.
        let mut n = net(2, 1);
        n.churn_armed = true;
        n.set_link_state(link(1, Direction::West), false, SimTime::ZERO);
        n.try_inject(SimTime::ZERO, pkt(1, 0, 64)).unwrap();
        assert!(drain(&mut n, NodeId(0)).is_empty(), "nothing reaches node 0");
        let back = drain(&mut n, NodeId(1));
        assert_eq!(back.len(), 1, "the packet bounces home");
        assert_eq!(back[0].0.dst(), NodeId(0), "unmodified original packet");
        assert_eq!(n.stats().bounced, 1);
        assert!(n.is_idle());
        // After repair the same route works again.
        n.set_link_state(link(1, Direction::West), true, n.now());
        n.try_inject(n.now(), pkt(1, 0, 64)).unwrap();
        assert_eq!(drain(&mut n, NodeId(0)).len(), 1);
    }

    #[test]
    fn packet_in_flight_across_dying_link_is_bounced() {
        // Head leaves node 0 at t=0 and arrives at t=hop_latency; the
        // link dies in between. The packet must bounce, not vanish.
        let mut n = net(2, 1);
        n.churn_armed = true;
        n.try_inject(SimTime::ZERO, pkt(0, 1, 64)).unwrap();
        // Process the injection retry at t=0 only: the forward happens,
        // the Arrive is now in flight.
        n.advance(SimTime::ZERO);
        let mid = SimTime::from_picos(n.config().hop_latency.as_picos() / 2);
        n.set_link_state(link(0, Direction::East), false, mid);
        assert!(drain(&mut n, NodeId(1)).is_empty(), "the torn worm never arrives");
        let back = drain(&mut n, NodeId(0));
        assert_eq!(back.len(), 1, "the packet bounces to its source");
        assert_eq!(n.stats().bounced, 1);
        assert_eq!(n.stats().packets_dropped, 0, "a bounce is not a drop");
        assert!(n.is_idle());
    }

    #[test]
    fn churn_schedule_is_deterministic_and_settles() {
        let churned = shrimp_sim::FaultConfig {
            seed: 77,
            churn: shrimp_sim::LinkChurnConfig {
                times: 2,
                fail_after: (SimDuration::from_ns(100), SimDuration::from_us(4)),
                repair_after: (SimDuration::from_ns(500), SimDuration::from_us(2)),
            },
            ..Default::default()
        };
        let run = || {
            let mut n = net(3, 3);
            n.set_fault_injection(&churned);
            let mut now = SimTime::ZERO;
            let mut got = 0usize;
            let eject_all = |n: &mut MeshNetwork, got: &mut usize| {
                for node in 0..9 {
                    while n.eject(NodeId(node)).is_some() {
                        *got += 1;
                    }
                }
            };
            for i in 0..40u64 {
                let src = (i % 9) as u16;
                let dst = ((i + 5) % 9) as u16;
                now = now.max(SimTime::from_picos(i * 300_000)).max(n.now());
                let mut p = pkt(src, dst, 80);
                let mut spins = 0;
                loop {
                    n.advance(now);
                    match n.try_inject(now.max(n.now()), p) {
                        Ok(()) => break,
                        Err(refused) => p = refused,
                    }
                    eject_all(&mut n, &mut got);
                    if let Some(next) = n.next_event_time() {
                        n.advance(next);
                        now = now.max(next);
                    }
                    spins += 1;
                    assert!(spins < 100_000, "injection starved under churn");
                }
            }
            loop {
                while let Some(t) = n.next_event_time() {
                    n.advance(t);
                }
                let before = got;
                eject_all(&mut n, &mut got);
                if got == before && n.next_event_time().is_none() {
                    break;
                }
            }
            // Every injected packet either arrived or bounced home;
            // nothing vanished and nothing wedged.
            assert!(n.is_idle(), "churn must not wedge the mesh");
            (got, n.stats().clone())
        };
        let (a_got, a_stats) = run();
        let (b_got, b_stats) = run();
        assert_eq!(a_got, b_got);
        assert_eq!(a_stats, b_stats);
        assert_eq!(
            a_stats.packets_injected,
            a_stats.packets_ejected,
            "bounces come back through ejection: totals reconcile"
        );
    }

    #[test]
    #[should_panic(expected = "destination off mesh")]
    fn off_mesh_destination_panics() {
        let mut n = net(2, 2);
        let _ = n.try_inject(SimTime::ZERO, pkt(0, 99, 4));
    }

    #[test]
    fn many_to_one_hotspot_delivers_everything() {
        let mut n = net(4, 4);
        let mut now = SimTime::ZERO;
        let mut sent = 0;
        let mut got = Vec::new();
        for round in 0..5 {
            for src in 0..16u16 {
                if src == 5 {
                    continue;
                }
                inject_with_progress(&mut n, &mut now, pkt(src, 5, 32 + round), NodeId(5), &mut got);
                sent += 1;
            }
        }
        got.extend(drain(&mut n, NodeId(5)));
        assert_eq!(n.stats().packets_ejected as usize, sent);
        assert_eq!(got.len(), sent);
        assert!(n.is_idle());
    }

// temporary reproduction test
#[test]
fn uniform_traffic_never_wedges() {
    use crate::config::MeshConfig;
    use crate::packet::MeshPacket;
    use crate::topology::{MeshShape, NodeId};
    use shrimp_sim::{SimRng, SimTime, SimDuration};
    use std::collections::VecDeque;

    let shape = MeshShape::new(4, 4);
    let mut net = crate::network::MeshNetwork::new(MeshConfig::paragon(shape));
    let mut rng = SimRng::seed_from(42);
    let mut queues: Vec<VecDeque<MeshPacket>> = (0..16).map(|_| VecDeque::new()).collect();
    let mut now = SimTime::ZERO;
    for round in 0..60 {
        for src in 0..16u16 {
            let mut dst = rng.gen_range(0..16u16);
            while dst == src { dst = rng.gen_range(0..16u16); }
            if queues[src as usize].len() < 4 {
                queues[src as usize].push_back(MeshPacket::new(NodeId(src), NodeId(dst), vec![0u8;128]));
            }
        }
        net.advance(now);
        for n in 0..16u16 {
            while net.eject(NodeId(n)).is_some() {}
            while let Some(p) = queues[n as usize].pop_front() {
                if let Err(p) = net.try_inject(now.max(net.now()), p) {
                    queues[n as usize].push_front(p);
                    break;
                }
            }
        }
        let _ = round;
        now += SimDuration::from_us(4);
    }
    // Drain.
    let mut stall = 0;
    loop {
        let before = net.in_flight() + queues.iter().map(|q| q.len()).sum::<usize>();
        while let Some(t) = net.next_event_time() { net.advance(t); now = now.max(t); }
        for n in 0..16u16 {
            while net.eject(NodeId(n)).is_some() {}
            while let Some(p) = queues[n as usize].pop_front() {
                if let Err(p) = net.try_inject(now.max(net.now()), p) {
                    queues[n as usize].push_front(p);
                    break;
                }
            }
        }
        let after = net.in_flight() + queues.iter().map(|q| q.len()).sum::<usize>();
        if after == 0 {
            // Drain leftover (stale) retry events before the idle check.
            while let Some(t) = net.next_event_time() { net.advance(t); }
            break;
        }
        if after == before && net.next_event_time().is_none() {
            stall += 1;
            assert!(stall < 3, "mesh wedged with {after} packets outstanding");
        } else { stall = 0; }
    }
    assert!(net.is_idle());
}

}
