//! The unit of transfer on the backplane.

use bytes::Bytes;

use crate::topology::NodeId;

/// Per-packet routing envelope overhead in bytes: routing bytes consumed by
/// the iMRC routers plus framing. The NIC-level header (destination
/// coordinates, destination address, CRC) lives *inside* the payload — the
/// mesh is oblivious to it.
pub const ROUTING_OVERHEAD_BYTES: u64 = 4;

/// A payload the mesh can carry.
///
/// The mesh never inspects payload bytes; all it needs is the payload's
/// size on the wire, which drives link serialization and buffer occupancy.
/// Carrying a structured payload (the NIC's `ShrimpPacket`) directly means
/// the sending NIC does not serialize and the receiving NIC does not
/// parse — the same refcounted buffer rides end to end.
pub trait MeshPayload {
    /// Bytes this payload occupies on a link, excluding the routing
    /// envelope.
    fn byte_len(&self) -> u64;

    /// Flips one bit of the payload's wire image, `bit` counted from the
    /// first transmitted bit (fault injection models line noise this
    /// way). Payloads that carry no integrity check may ignore it.
    fn corrupt_bit(&mut self, _bit: u64) {}
}

impl MeshPayload for Bytes {
    fn byte_len(&self) -> u64 {
        self.len() as u64
    }
}

/// One packet in flight on the mesh, generic over the payload it carries
/// (raw [`Bytes`] by default).
///
/// # Examples
///
/// ```
/// use shrimp_mesh::{MeshPacket, NodeId};
///
/// let p: MeshPacket = MeshPacket::new(NodeId(0), NodeId(3), vec![0xaa; 16]);
/// assert_eq!(p.wire_len(), 16 + shrimp_mesh::packet::ROUTING_OVERHEAD_BYTES);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshPacket<P = Bytes> {
    src: NodeId,
    dst: NodeId,
    payload: P,
}

impl<P: MeshPayload> MeshPacket<P> {
    /// Creates a packet carrying `payload` from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId, payload: impl Into<P>) -> Self {
        MeshPacket {
            src,
            dst,
            payload: payload.into(),
        }
    }

    /// Sending node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The payload (opaque to the mesh).
    pub fn payload(&self) -> &P {
        &self.payload
    }

    /// Mutable payload access; fault injection uses it to flip bits
    /// "on the wire" without re-serializing the packet.
    pub fn payload_mut(&mut self) -> &mut P {
        &mut self.payload
    }

    /// Consumes the packet, returning the payload.
    pub fn into_payload(self) -> P {
        self.payload
    }

    /// Bytes this packet occupies on a link, envelope included.
    pub fn wire_len(&self) -> u64 {
        self.payload.byte_len() + ROUTING_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p: MeshPacket = MeshPacket::new(NodeId(1), NodeId(2), vec![1, 2, 3]);
        assert_eq!(p.src(), NodeId(1));
        assert_eq!(p.dst(), NodeId(2));
        assert_eq!(&p.payload()[..], &[1, 2, 3]);
        assert_eq!(p.wire_len(), 3 + ROUTING_OVERHEAD_BYTES);
    }

    #[test]
    fn empty_payload_still_has_envelope() {
        let p: MeshPacket = MeshPacket::new(NodeId(0), NodeId(0), Vec::new());
        assert_eq!(p.wire_len(), ROUTING_OVERHEAD_BYTES);
        assert!(p.into_payload().is_empty());
    }

    #[test]
    fn clone_shares_payload_storage() {
        let p: MeshPacket = MeshPacket::new(NodeId(0), NodeId(1), vec![7u8; 64]);
        let q = p.clone();
        assert_eq!(p.payload().as_slice().as_ptr(), q.payload().as_slice().as_ptr());
    }
}
