//! The unit of transfer on the backplane.

use bytes::Bytes;

use crate::topology::NodeId;

/// Per-packet routing envelope overhead in bytes: routing bytes consumed by
/// the iMRC routers plus framing. The NIC-level header (destination
/// coordinates, destination address, CRC) lives *inside* the payload — the
/// mesh is oblivious to it.
pub const ROUTING_OVERHEAD_BYTES: u64 = 4;

/// One packet in flight on the mesh.
///
/// # Examples
///
/// ```
/// use shrimp_mesh::{MeshPacket, NodeId};
///
/// let p = MeshPacket::new(NodeId(0), NodeId(3), vec![0xaa; 16]);
/// assert_eq!(p.wire_len(), 16 + shrimp_mesh::packet::ROUTING_OVERHEAD_BYTES);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshPacket {
    src: NodeId,
    dst: NodeId,
    payload: Bytes,
}

impl MeshPacket {
    /// Creates a packet carrying `payload` from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId, payload: impl Into<Bytes>) -> Self {
        MeshPacket {
            src,
            dst,
            payload: payload.into(),
        }
    }

    /// Sending node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The opaque payload (the SHRIMP NIC's wire format).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the packet, returning the payload.
    pub fn into_payload(self) -> Bytes {
        self.payload
    }

    /// Bytes this packet occupies on a link, envelope included.
    pub fn wire_len(&self) -> u64 {
        self.payload.len() as u64 + ROUTING_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = MeshPacket::new(NodeId(1), NodeId(2), vec![1, 2, 3]);
        assert_eq!(p.src(), NodeId(1));
        assert_eq!(p.dst(), NodeId(2));
        assert_eq!(p.payload(), &[1, 2, 3]);
        assert_eq!(p.wire_len(), 3 + ROUTING_OVERHEAD_BYTES);
    }

    #[test]
    fn empty_payload_still_has_envelope() {
        let p = MeshPacket::new(NodeId(0), NodeId(0), Vec::new());
        assert_eq!(p.wire_len(), ROUTING_OVERHEAD_BYTES);
        assert!(p.into_payload().is_empty());
    }
}
