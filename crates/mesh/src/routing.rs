//! West-first turn-model adaptive routing over a dynamic link set.
//!
//! Dimension-order routing (X then Y) is deadlock-free but has exactly
//! one path per (src, dst) pair: a single dead link severs every pair
//! routed over it. This module supplies the replacement used while link
//! churn is armed: **west-first routing** (Glass & Ni), the turn model
//! that prohibits the two turns *into* the west direction (N→W and S→W)
//! plus 180° U-turns. Any packet makes all of its westward hops first —
//! in a contiguous prefix starting at injection — and may then route
//! fully adaptively (including non-minimal detours around dead links)
//! among {E, N, S}.
//!
//! # Why this is deadlock-free
//!
//! A cycle of channel-wait dependencies in a 2-D mesh must contain at
//! least one turn into the west direction in each rotational sense;
//! west-first prohibits both (N→W and S→W), so the channel dependency
//! graph is acyclic for *any* subset of live links — including the
//! subsets churn creates — and for non-minimal routes. No reachable
//! configuration of full buffers can wait on itself.
//!
//! # Why this is livelock-free
//!
//! Routes come from a table built per link-state epoch by breadth-first
//! search over the *channel graph*: the states `(router, last hop
//! direction)` plus an injection state, with an edge per legal live
//! turn. Each table entry steps to a state whose BFS distance is
//! exactly one smaller, so every hop strictly decreases the remaining
//! distance and a routed packet reaches its destination in at most
//! `5 * nodes` hops — it cannot revisit a channel.
//!
//! # Incompleteness is real, and handled elsewhere
//!
//! West-first cannot always reach a destination even when the
//! underlying graph is connected: a packet needing a westward hop that
//! finds its west link dead cannot detour north-then-west (N→W is
//! prohibited — allowing it is what would re-admit deadlock). Such
//! packets get [`RouteDecision::Unreachable`] and the mesh bounces them
//! back to their source NIC, whose go-back-N engine retries after the
//! link heals. Churn schedules always repair, so delivery is eventual.

use std::collections::VecDeque;

use crate::topology::{Direction, MeshShape, NodeId};

/// Channel index for a packet sitting in its injection port (no hops
/// taken yet). Direction channels use [`Direction::index`] (0..4).
pub const CH_START: usize = 4;
/// Channel states per router: four last-hop directions plus injection.
pub const NUM_CHANNELS: usize = 5;

const EJECT: u8 = 4;
const UNREACHABLE: u8 = 5;

/// What the table tells a router to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// The packet is at its destination.
    Eject,
    /// Forward over the (live) link in this direction.
    Forward(Direction),
    /// No legal west-first path exists under the current link set;
    /// bounce the packet back to its source for retransmission.
    Unreachable,
}

/// True when a packet whose last hop was `last` (a channel index) may
/// next move in direction `d` under the west-first turn model.
#[must_use]
pub fn turn_legal(last: usize, d: Direction) -> bool {
    if last == CH_START {
        return true;
    }
    let last = Direction::ALL[last];
    // No 180° U-turns, and no turning (back) into west: west hops are
    // only legal while the packet has done nothing but west hops.
    d != last.opposite() && (d != Direction::West || last == Direction::West)
}

/// Routing table for one link-state epoch: for every (destination,
/// router, arrival channel) the next hop, pre-validated against the
/// live link set the table was built from.
#[derive(Debug)]
pub struct RouteTable {
    nodes: usize,
    /// `[dst][node][channel]`, entries 0..4 = Direction index, or
    /// `EJECT` / `UNREACHABLE`.
    next: Vec<u8>,
}

impl RouteTable {
    /// Builds the table for `shape` with `link_up[node * 4 + dir]`
    /// giving each directed link's state. Deterministic: a pure
    /// function of its arguments.
    #[must_use]
    pub fn build(shape: MeshShape, link_up: &[bool]) -> Self {
        let n = shape.nodes() as usize;
        assert_eq!(link_up.len(), n * 4, "one state per directed link");
        let mut next = vec![UNREACHABLE; n * n * NUM_CHANNELS];
        let mut dist = vec![u32::MAX; n * NUM_CHANNELS];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            let table = &mut next[dst * n * NUM_CHANNELS..(dst + 1) * n * NUM_CHANNELS];
            dist.fill(u32::MAX);
            queue.clear();
            // A packet at its destination ejects no matter how it got
            // there — the coord check is on the node, not the path.
            for ch in 0..NUM_CHANNELS {
                dist[dst * NUM_CHANNELS + ch] = 0;
                table[dst * NUM_CHANNELS + ch] = EJECT;
                queue.push_back((dst, ch));
            }
            // Backward BFS over the channel graph. Popping state
            // (m, mch) — "at m, last hop was ALL[mch]" — its forward
            // predecessors are the states (p, pch) at the node p one
            // hop against ALL[mch], for every channel pch allowed to
            // turn into ALL[mch], provided the p→m link is up.
            while let Some((m, mch)) = queue.pop_front() {
                if mch == CH_START {
                    continue; // nothing moves a packet *into* injection
                }
                let d = Direction::ALL[mch];
                let Some(p) = shape.neighbor(NodeId(m as u16), d.opposite()) else {
                    continue;
                };
                let p = p.0 as usize;
                if !link_up[p * 4 + mch] {
                    continue;
                }
                for pch in 0..NUM_CHANNELS {
                    if !turn_legal(pch, d) || dist[p * NUM_CHANNELS + pch] != u32::MAX {
                        continue;
                    }
                    dist[p * NUM_CHANNELS + pch] = dist[m * NUM_CHANNELS + mch] + 1;
                    table[p * NUM_CHANNELS + pch] = mch as u8;
                    queue.push_back((p, pch));
                }
            }
        }
        RouteTable { nodes: n, next }
    }

    /// The routing decision for a packet on `channel` at `node` bound
    /// for `dst`.
    #[must_use]
    pub fn decide(&self, node: NodeId, channel: usize, dst: NodeId) -> RouteDecision {
        let idx = (dst.0 as usize * self.nodes + node.0 as usize) * NUM_CHANNELS + channel;
        match self.next[idx] {
            EJECT => RouteDecision::Eject,
            UNREACHABLE => RouteDecision::Unreachable,
            d => RouteDecision::Forward(Direction::ALL[d as usize]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_up(shape: MeshShape) -> Vec<bool> {
        vec![true; shape.nodes() as usize * 4]
    }

    /// Walks the table from (src, injection) to dst, asserting progress
    /// and turn legality; returns the hop count.
    fn walk(shape: MeshShape, table: &RouteTable, src: NodeId, dst: NodeId) -> u32 {
        let mut node = src;
        let mut ch = CH_START;
        let mut hops = 0;
        loop {
            match table.decide(node, ch, dst) {
                RouteDecision::Eject => {
                    assert_eq!(node, dst, "must only eject at the destination");
                    return hops;
                }
                RouteDecision::Forward(d) => {
                    assert!(turn_legal(ch, d), "illegal turn {ch}->{d:?}");
                    node = shape.neighbor(node, d).expect("forward stays on mesh");
                    ch = d.index();
                    hops += 1;
                    assert!(
                        hops <= shape.nodes() as u32 * NUM_CHANNELS as u32,
                        "route must terminate"
                    );
                }
                RouteDecision::Unreachable => panic!("{src:?}->{dst:?} unreachable"),
            }
        }
    }

    #[test]
    fn all_links_up_routes_are_minimal() {
        let shape = MeshShape::new(4, 3);
        let table = RouteTable::build(shape, &all_up(shape));
        for src in 0..shape.nodes() {
            for dst in 0..shape.nodes() {
                let hops = walk(shape, &table, NodeId(src), NodeId(dst));
                assert_eq!(hops, shape.hops(NodeId(src), NodeId(dst)) as u32);
            }
        }
    }

    #[test]
    fn dead_east_link_detours_non_minimally() {
        // 3x3, kill 3->4 (the middle row's west-to-east link). 3 can
        // still reach 5 by detouring through row 0 or row 2.
        let shape = MeshShape::new(3, 3);
        let mut up = all_up(shape);
        up[3 * 4 + Direction::East.index()] = false;
        let table = RouteTable::build(shape, &up);
        let hops = walk(shape, &table, NodeId(3), NodeId(5));
        assert_eq!(hops, 4, "minimal detour around the dead link");
    }

    #[test]
    fn west_need_with_dead_west_link_is_unreachable() {
        // West hops are only legal in the initial prefix, so a dead
        // west link cannot be detoured around: bounce, don't wander.
        let shape = MeshShape::new(3, 1);
        let mut up = all_up(shape);
        up[2 * 4 + Direction::West.index()] = false;
        let table = RouteTable::build(shape, &up);
        assert_eq!(
            table.decide(NodeId(2), CH_START, NodeId(0)),
            RouteDecision::Unreachable
        );
        // The reverse direction is unaffected.
        assert_eq!(
            table.decide(NodeId(0), CH_START, NodeId(2)),
            RouteDecision::Forward(Direction::East)
        );
    }

    #[test]
    fn turn_model_prohibits_exactly_the_west_turns_and_u_turns() {
        use Direction::*;
        for d in Direction::ALL {
            assert!(turn_legal(CH_START, d), "injection may start any way");
        }
        for last in [North, South, East] {
            assert!(!turn_legal(last.index(), West), "{last:?}->W prohibited");
        }
        for last in Direction::ALL {
            assert!(!turn_legal(last.index(), last.opposite()), "no U-turns");
        }
        assert!(turn_legal(West.index(), West));
        assert!(turn_legal(West.index(), North));
        assert!(turn_legal(East.index(), South));
        assert!(turn_legal(North.index(), East));
    }
}
