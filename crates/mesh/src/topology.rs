//! Mesh geometry and dimension-order routing.

use std::fmt;

/// Identifies one node (one SHRIMP PC) on the backplane.
///
/// Node ids are row-major over the mesh: `id = y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Absolute mesh coordinates of a node; packets carry these so the
/// receiving NIC can verify the packet was routed correctly (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MeshCoord {
    /// Column, `0..width`.
    pub x: u16,
    /// Row, `0..height`.
    pub y: u16,
}

impl fmt::Display for MeshCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The rectangular shape of the backplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshShape {
    width: u16,
    height: u16,
}

/// One of the four mesh link directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards larger x.
    East,
    /// Towards smaller x.
    West,
    /// Towards larger y.
    North,
    /// Towards smaller y.
    South,
}

impl Direction {
    /// All directions, in a fixed deterministic order.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// The direction a packet arrives *from* when sent this way.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }

    /// Stable small index, used for deterministic arbitration.
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
        }
    }
}

impl MeshShape {
    /// Creates a `width x height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        MeshShape { width, height }
    }

    /// Columns.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Rows.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Total node count.
    pub fn nodes(&self) -> u16 {
        self.width * self.height
    }

    /// True if `id` addresses a node on this mesh.
    pub fn contains(&self, id: NodeId) -> bool {
        id.0 < self.nodes()
    }

    /// Coordinates of a node id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the mesh.
    pub fn coord_of(&self, id: NodeId) -> MeshCoord {
        assert!(self.contains(id), "{id} outside {self:?}");
        MeshCoord {
            x: id.0 % self.width,
            y: id.0 / self.width,
        }
    }

    /// Node id at coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn id_at(&self, coord: MeshCoord) -> NodeId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "{coord} outside {self:?}"
        );
        NodeId(coord.y * self.width + coord.x)
    }

    /// The neighbor of `id` in `dir`, if it exists.
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord_of(id);
        let n = match dir {
            Direction::East if c.x + 1 < self.width => MeshCoord { x: c.x + 1, y: c.y },
            Direction::West if c.x > 0 => MeshCoord { x: c.x - 1, y: c.y },
            Direction::North if c.y + 1 < self.height => MeshCoord { x: c.x, y: c.y + 1 },
            Direction::South if c.y > 0 => MeshCoord { x: c.x, y: c.y - 1 },
            _ => return None,
        };
        Some(self.id_at(n))
    }

    /// Dimension-order (X first, then Y) next hop from `at` towards `to`,
    /// or `None` when `at == to` (the packet ejects).
    ///
    /// X-then-Y routing is oblivious and deadlock-free on a mesh
    /// (Dally & Seitz), matching the iMRC backplane.
    pub fn route_next(&self, at: NodeId, to: NodeId) -> Option<Direction> {
        let a = self.coord_of(at);
        let b = self.coord_of(to);
        if a.x < b.x {
            Some(Direction::East)
        } else if a.x > b.x {
            Some(Direction::West)
        } else if a.y < b.y {
            Some(Direction::North)
        } else if a.y > b.y {
            Some(Direction::South)
        } else {
            None
        }
    }

    /// The full route (sequence of nodes, excluding `from`, including `to`).
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut at = from;
        while let Some(dir) = self.route_next(at, to) {
            at = self.neighbor(at, dir).expect("route_next returned an edge direction");
            path.push(at);
        }
        path
    }

    /// Manhattan hop count between two nodes.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u16 {
        let a = self.coord_of(from);
        let b = self.coord_of(to);
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// Iterates all node ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }
}

impl fmt::Display for MeshShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> MeshShape {
        MeshShape::new(4, 3)
    }

    #[test]
    fn id_coord_roundtrip() {
        let m = mesh();
        for id in m.iter_nodes() {
            assert_eq!(m.id_at(m.coord_of(id)), id);
        }
        assert_eq!(m.coord_of(NodeId(0)), MeshCoord { x: 0, y: 0 });
        assert_eq!(m.coord_of(NodeId(5)), MeshCoord { x: 1, y: 1 });
        assert_eq!(m.nodes(), 12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coord_of_out_of_range_panics() {
        mesh().coord_of(NodeId(12));
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = mesh();
        // Corner (0,0).
        assert_eq!(m.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::South), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::East), Some(NodeId(1)));
        assert_eq!(m.neighbor(NodeId(0), Direction::North), Some(NodeId(4)));
        // Opposite corner (3,2) = id 11.
        assert_eq!(m.neighbor(NodeId(11), Direction::East), None);
        assert_eq!(m.neighbor(NodeId(11), Direction::North), None);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = mesh();
        // From (0,0) to (2,2): east, east, then north, north.
        let path = m.route(NodeId(0), NodeId(10));
        assert_eq!(path, vec![NodeId(1), NodeId(2), NodeId(6), NodeId(10)]);
        assert_eq!(m.hops(NodeId(0), NodeId(10)), 4);
    }

    #[test]
    fn route_to_self_is_empty() {
        let m = mesh();
        assert_eq!(m.route_next(NodeId(5), NodeId(5)), None);
        assert!(m.route(NodeId(5), NodeId(5)).is_empty());
        assert_eq!(m.hops(NodeId(5), NodeId(5)), 0);
    }

    #[test]
    fn route_length_equals_hops() {
        let m = MeshShape::new(5, 5);
        for a in m.iter_nodes() {
            for b in m.iter_nodes() {
                assert_eq!(m.route(a, b).len(), m.hops(a, b) as usize);
            }
        }
    }

    #[test]
    fn opposite_directions() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(MeshCoord { x: 1, y: 2 }.to_string(), "(1,2)");
        assert_eq!(mesh().to_string(), "4x3");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        MeshShape::new(0, 4);
    }
}
