//! Property tests for west-first adaptive routing: for any mesh shape,
//! any set of failed directed links and any (src, dst) pair, the route
//! table either walks the packet to the destination over live links
//! with only legal turns and no repeated channel state (so routes are
//! cycle-free by construction), or honestly reports the destination
//! unreachable — and with every link up the walk is minimal.

use proptest::prelude::*;

use shrimp_mesh::routing::{turn_legal, RouteDecision, RouteTable, CH_START};
use shrimp_mesh::{Direction, MeshShape, NodeId};

/// Walks `src -> dst` through the table. Returns `Ok(hops)` on
/// delivery; panics via `Err` strings on any invariant violation.
fn walk(table: &RouteTable, shape: MeshShape, link_up: &[bool], src: NodeId, dst: NodeId) -> Result<u32, String> {
    let mut node = src;
    let mut channel = CH_START;
    let mut hops = 0u32;
    let mut seen = std::collections::HashSet::new();
    loop {
        if !seen.insert((node, channel)) {
            return Err(format!("cycle: revisited node {} channel {channel}", node.0));
        }
        match table.decide(node, channel, dst) {
            RouteDecision::Eject => {
                if node != dst {
                    return Err(format!("ejected at {} instead of {}", node.0, dst.0));
                }
                return Ok(hops);
            }
            RouteDecision::Unreachable => {
                return Err(format!("unreachable mid-walk at node {}", node.0));
            }
            RouteDecision::Forward(d) => {
                if !turn_legal(channel, d) {
                    return Err(format!("illegal turn at node {} channel {channel} -> {d:?}", node.0));
                }
                let link = node.0 as usize * 4 + d.index();
                if !link_up[link] {
                    return Err(format!("routed over dead link {} {d:?}", node.0));
                }
                node = shape.neighbor(node, d).ok_or_else(|| format!("routed off the edge at {}", node.0))?;
                channel = d.index();
                hops += 1;
                if hops > 5 * u32::from(shape.nodes()) {
                    return Err("hop bound exceeded (livelock)".into());
                }
            }
        }
    }
}

proptest! {
    /// With every link up, west-first is complete and minimal: every
    /// pair routes, and in exactly the Manhattan distance.
    #[test]
    fn all_up_routes_are_complete_and_minimal(w in 1u16..5, h in 1u16..5) {
        let shape = MeshShape::new(w, h);
        let link_up = vec![true; shape.nodes() as usize * 4];
        let table = RouteTable::build(shape, &link_up);
        for src in shape.iter_nodes() {
            for dst in shape.iter_nodes() {
                let hops = walk(&table, shape, &link_up, src, dst)
                    .map_err(TestCaseError::fail)?;
                prop_assert_eq!(hops, u32::from(shape.hops(src, dst)));
            }
        }
    }

    /// For any failed-link set, every pair either delivers over live
    /// links with legal turns and no repeated channel state, or the
    /// table says `Unreachable` up front — never a silent black hole.
    #[test]
    fn any_failed_set_is_cycle_free_and_honest(
        w in 2u16..5,
        h in 2u16..5,
        dead in prop::collection::vec(any::<u16>(), 0..12),
    ) {
        let shape = MeshShape::new(w, h);
        let mut link_up = vec![true; shape.nodes() as usize * 4];
        for d in dead {
            let node = NodeId(d % shape.nodes());
            let dir = Direction::ALL[(d / shape.nodes()) as usize % 4];
            // Links fail bidirectionally, like a cut cable.
            if let Some(peer) = shape.neighbor(node, dir) {
                link_up[node.0 as usize * 4 + dir.index()] = false;
                link_up[peer.0 as usize * 4 + dir.opposite().index()] = false;
            }
        }
        let table = RouteTable::build(shape, &link_up);
        for src in shape.iter_nodes() {
            for dst in shape.iter_nodes() {
                match table.decide(src, CH_START, dst) {
                    RouteDecision::Unreachable => {} // honest refusal: bounce + retry after repair
                    _ => {
                        walk(&table, shape, &link_up, src, dst).map_err(TestCaseError::fail)?;
                    }
                }
            }
        }
    }
}
