//! A global recycling pool for large packet payload buffers.
//!
//! The deliberate-update hot path reads a page from memory, wraps it as
//! a [`Payload`](crate::packet::Payload), and ships it through the
//! Outgoing FIFO, the mesh and the delivery DMA — one refcounted buffer
//! end to end. Without pooling, every packet costs one heap allocation
//! at the memory read and one free when the last pipeline stage drops
//! it; on an all-streaming workload that dominates the allocator
//! profile. [`take`] hands out a recycled [`PoolBuf`] instead, and each
//! buffer returns to the pool automatically when its payload is
//! dropped.
//!
//! Determinism: the pool affects *where* buffers live, never their
//! contents, lengths or any simulated time, so results are bit-identical
//! with pooling disabled. The pool is process-global (a `Mutex`) because
//! payloads legitimately migrate between worker threads inside the
//! parallel engine's lookahead windows.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Buffers kept at rest in the pool; beyond this, dropped buffers free
/// normally. Bounds worst-case idle memory at `MAX_POOLED ×
/// MAX_RETAINED_CAPACITY`.
const MAX_POOLED: usize = 4096;

/// Buffers with more capacity than this are never pooled (nothing on
/// the SHRIMP datapath legitimately exceeds a page plus headers).
const MAX_RETAINED_CAPACITY: usize = 16 * 1024;

static POOL: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());

/// A heap buffer that returns to the global pool when dropped.
#[derive(Debug, Default)]
pub struct PoolBuf {
    data: Vec<u8>,
}

impl PoolBuf {
    /// The underlying vector, for growing (merge buffers) or filling.
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

impl Clone for PoolBuf {
    /// Deep copy into another pooled buffer (the clone recycles too).
    fn clone(&self) -> PoolBuf {
        let mut copy = take(self.data.len());
        copy.copy_from_slice(&self.data);
        copy
    }
}

impl Deref for PoolBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if self.data.capacity() == 0 || self.data.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let mut pool = POOL.lock().expect("payload pool poisoned");
        if pool.len() < MAX_POOLED {
            pool.push(std::mem::take(&mut self.data));
        }
    }
}

/// Takes a zero-filled buffer of `len` bytes, recycling a pooled
/// allocation when one is available.
pub fn take(len: usize) -> PoolBuf {
    let mut data = POOL
        .lock()
        .expect("payload pool poisoned")
        .pop()
        .unwrap_or_default();
    data.clear();
    data.resize(len, 0);
    PoolBuf { data }
}

/// Number of buffers currently at rest in the pool (diagnostics only).
pub fn pooled_buffers() -> usize {
    POOL.lock().expect("payload pool poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_through_the_pool() {
        let mut b = take(64);
        assert_eq!(b.len(), 64);
        assert!(b.iter().all(|&x| x == 0));
        b[0] = 0xAB;
        let cap = b.vec_mut().capacity();
        drop(b);
        // The next take of any size may reuse the returned allocation —
        // and must come back zeroed at the requested length.
        let b2 = take(16);
        assert_eq!(b2.len(), 16);
        assert!(b2.iter().all(|&x| x == 0));
        assert!(cap >= 64);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let before = pooled_buffers();
        let mut b = take(0);
        b.vec_mut().reserve(MAX_RETAINED_CAPACITY + 1);
        drop(b);
        assert!(pooled_buffers() <= before + 1);
    }
}
