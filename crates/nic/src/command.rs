//! Virtual-memory-mapped command pages (paper §4.2).
//!
//! The NIC claims a region of *physical address space* (not actual RAM)
//! the same size as physical memory, at a fixed distance from it: command
//! page `p` controls physical page `p`. The kernel maps individual
//! command pages into a process's virtual space to grant it the right to
//! "talk to" the NIC about the corresponding data page entirely from user
//! level; revoking the mapping revokes the right.
//!
//! Writes to a command page carry a [`CommandOp`]; the most important is
//! the deliberate-update start, whose operand is a plain word count — so
//! the paper's protocol ("load a source register with *n* and `CMPXCHG`
//! to the command address") works unchanged.

use shrimp_mem::PhysAddr;

use crate::error::NicError;
use crate::nipt::UpdatePolicy;

/// Operations a user process can issue through a command page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandOp {
    /// Start a deliberate-update DMA transfer of `words` 32-bit words
    /// beginning at the data address corresponding to the written command
    /// address. Encoded as the bare word count, exactly as in §4.3.
    StartTransfer {
        /// Number of words to transfer (1..=2^26-1).
        words: u32,
    },
    /// Switch the mapping segment covering the corresponding data address
    /// to a different update policy (the §4.2 example of switching a page
    /// from single-write to blocked-write mode).
    SetPolicy(UpdatePolicy),
    /// Request an interrupt the next time data arrives for the
    /// corresponding page (one-shot).
    ArmInterrupt,
    /// Cancel a pending interrupt request.
    DisarmInterrupt,
}

const OP_SHIFT: u32 = 26;
const OPERAND_MASK: u32 = (1 << OP_SHIFT) - 1;
const OP_SET_POLICY: u32 = 1;
const OP_ARM_IRQ: u32 = 2;
const OP_DISARM_IRQ: u32 = 3;

impl CommandOp {
    /// Encodes to the 32-bit value a store to a command page carries.
    pub fn encode(self) -> u32 {
        match self {
            CommandOp::StartTransfer { words } => words,
            CommandOp::SetPolicy(p) => {
                let operand = match p {
                    UpdatePolicy::AutomaticSingle => 0,
                    UpdatePolicy::AutomaticBlocked => 1,
                    UpdatePolicy::Deliberate => 2,
                };
                (OP_SET_POLICY << OP_SHIFT) | operand
            }
            CommandOp::ArmInterrupt => OP_ARM_IRQ << OP_SHIFT,
            CommandOp::DisarmInterrupt => OP_DISARM_IRQ << OP_SHIFT,
        }
    }

    /// Decodes a stored value.
    ///
    /// # Errors
    ///
    /// Returns [`NicError::Malformed`] for unknown opcodes or operands,
    /// and for a zero word count.
    pub fn decode(value: u32) -> Result<CommandOp, NicError> {
        let op = value >> OP_SHIFT;
        let operand = value & OPERAND_MASK;
        match op {
            0 => {
                if operand == 0 {
                    Err(NicError::Malformed("zero-word transfer command"))
                } else {
                    Ok(CommandOp::StartTransfer { words: operand })
                }
            }
            OP_SET_POLICY => match operand {
                0 => Ok(CommandOp::SetPolicy(UpdatePolicy::AutomaticSingle)),
                1 => Ok(CommandOp::SetPolicy(UpdatePolicy::AutomaticBlocked)),
                2 => Ok(CommandOp::SetPolicy(UpdatePolicy::Deliberate)),
                _ => Err(NicError::Malformed("unknown update policy")),
            },
            OP_ARM_IRQ => Ok(CommandOp::ArmInterrupt),
            OP_DISARM_IRQ => Ok(CommandOp::DisarmInterrupt),
            _ => Err(NicError::Malformed("unknown command opcode")),
        }
    }
}

/// The command address region of one node.
///
/// # Examples
///
/// ```
/// use shrimp_nic::CommandSpace;
/// use shrimp_mem::PhysAddr;
///
/// // 64 pages of DRAM: commands live at the same distance above it.
/// let cmd = CommandSpace::new(64 * 4096);
/// let data = PhysAddr::new(3 * 4096 + 8);
/// let cmd_addr = cmd.command_addr_for(data);
/// assert_eq!(cmd.data_addr_for(cmd_addr), Some(data));
/// assert!(cmd.contains(cmd_addr));
/// assert!(!cmd.contains(data));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandSpace {
    /// Start of the command region == installed physical bytes, so the
    /// "distance" between a data address and its command address is
    /// exactly the memory size (§4.2).
    base: u64,
    size: u64,
}

impl CommandSpace {
    /// Creates the command region for a node with `phys_size` bytes of
    /// DRAM.
    pub fn new(phys_size: u64) -> Self {
        CommandSpace {
            base: phys_size,
            size: phys_size,
        }
    }

    /// True if `addr` falls inside the command region.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        (self.base..self.base + self.size).contains(&addr.raw())
    }

    /// The data address a command address controls, or `None` if `addr`
    /// is not a command address.
    pub fn data_addr_for(&self, addr: PhysAddr) -> Option<PhysAddr> {
        self.contains(addr).then(|| PhysAddr::new(addr.raw() - self.base))
    }

    /// The command address controlling `data` (same in-page offset).
    ///
    /// # Panics
    ///
    /// Panics if `data` is outside installed memory.
    pub fn command_addr_for(&self, data: PhysAddr) -> PhysAddr {
        assert!(data.raw() < self.base, "data address outside installed memory");
        PhysAddr::new(data.raw() + self.base)
    }

    /// First command address.
    pub fn base(&self) -> PhysAddr {
        PhysAddr::new(self.base)
    }

    /// Region size in bytes (== installed memory).
    pub fn size(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_encoding_roundtrips() {
        let ops = [
            CommandOp::StartTransfer { words: 1 },
            CommandOp::StartTransfer { words: 1024 },
            CommandOp::SetPolicy(UpdatePolicy::AutomaticSingle),
            CommandOp::SetPolicy(UpdatePolicy::AutomaticBlocked),
            CommandOp::SetPolicy(UpdatePolicy::Deliberate),
            CommandOp::ArmInterrupt,
            CommandOp::DisarmInterrupt,
        ];
        for op in ops {
            assert_eq!(CommandOp::decode(op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn bare_word_count_is_a_start_command() {
        // The paper's protocol stores the plain word count.
        assert_eq!(
            CommandOp::decode(512).unwrap(),
            CommandOp::StartTransfer { words: 512 }
        );
    }

    #[test]
    fn bad_encodings_rejected() {
        assert!(CommandOp::decode(0).is_err(), "zero word count");
        assert!(CommandOp::decode((1 << 26) | 7).is_err(), "bad policy");
        assert!(CommandOp::decode(15 << 26).is_err(), "bad opcode");
    }

    #[test]
    fn space_geometry() {
        let cmd = CommandSpace::new(16 * 4096);
        assert_eq!(cmd.base(), PhysAddr::new(16 * 4096));
        assert_eq!(cmd.size(), 16 * 4096);
        assert!(!cmd.contains(PhysAddr::new(16 * 4096 - 1)));
        assert!(cmd.contains(PhysAddr::new(16 * 4096)));
        assert!(cmd.contains(PhysAddr::new(32 * 4096 - 1)));
        assert!(!cmd.contains(PhysAddr::new(32 * 4096)));
    }

    #[test]
    fn addr_mapping_preserves_offset() {
        let cmd = CommandSpace::new(16 * 4096);
        let data = PhysAddr::new(5 * 4096 + 123);
        let c = cmd.command_addr_for(data);
        assert_eq!(c.offset(), 123);
        assert_eq!(cmd.data_addr_for(c), Some(data));
        assert_eq!(cmd.data_addr_for(data), None);
    }

    #[test]
    #[should_panic(expected = "outside installed memory")]
    fn command_addr_for_rejects_high_addresses() {
        CommandSpace::new(4096).command_addr_for(PhysAddr::new(4096));
    }
}
