//! Network interface configuration.

use shrimp_sim::SimDuration;

/// Tunable parameters of the network interface board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicConfig {
    /// Outgoing FIFO capacity in bytes.
    pub out_fifo_bytes: u64,
    /// Outgoing FIFO threshold in bytes: above it the CPU is interrupted
    /// and waits until the FIFO drains (paper §4).
    pub out_fifo_threshold: u64,
    /// Incoming FIFO capacity in bytes.
    pub in_fifo_bytes: u64,
    /// Incoming FIFO threshold in bytes: above it the NIC ceases to accept
    /// packets from the network (paper §4).
    pub in_fifo_threshold: u64,
    /// Time to snoop a bus write, index the NIPT and build a packet header.
    pub packetize_latency: SimDuration,
    /// Time for the destination NIC to check coordinates/CRC and index its
    /// NIPT before starting the memory transfer.
    pub receive_latency: SimDuration,
    /// The blocked-write merge window: consecutive same-page writes within
    /// this limit of one another join the pending packet (§4.1).
    pub merge_window: SimDuration,
    /// Largest payload of one packet in bytes. Deliberate-update transfers
    /// are also limited to one page per command (§4.3).
    pub max_payload: u64,
    /// Fixed setup cost for the deliberate-update DMA engine per transfer.
    pub dma_setup: SimDuration,
    /// Link-level go-back-N retransmission. Disabled by default: the
    /// baseline wire format and timing are then bit-identical to a NIC
    /// without the engine.
    pub retx: RetxConfig,
    /// Parameters of the unpinned (NP-RDMA-style) backend. Inert on the
    /// pinned SHRIMP backend, so carrying them here keeps [`NicConfig`]
    /// the single NIC parameter block either backend is built from.
    pub unpinned: UnpinnedConfig,
}

/// Parameters of the unpinned backend's outgoing IOTLB and dynamic
/// map-in path (see `shrimp_nic::unpinned`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnpinnedConfig {
    /// Outgoing-translation IOTLB capacity in pages. Capacity pressure
    /// evicts the least-recently-used entry through the shootdown path.
    pub iotlb_entries: usize,
    /// Kernel round-trip charged for one dynamic map-in: the time from
    /// an IOTLB miss to the entry being installed and the buffered
    /// write(s) replayed.
    pub map_in_latency: SimDuration,
}

impl UnpinnedConfig {
    /// Defaults sized for the prototype mesh: a 32-page IOTLB and a
    /// 20 µs kernel round-trip per dynamic map-in.
    pub fn prototype() -> Self {
        UnpinnedConfig {
            iotlb_entries: 32,
            map_in_latency: SimDuration::from_us(20),
        }
    }
}

impl Default for UnpinnedConfig {
    fn default() -> Self {
        UnpinnedConfig::prototype()
    }
}

/// Go-back-N retransmission parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetxConfig {
    /// Master switch. When off, packets carry no sequence trailer.
    pub enabled: bool,
    /// Per-destination retransmit buffer size in packets; when full the
    /// NIC stops pulling new data for that destination (backpressure up
    /// the FIFO chain).
    pub window_packets: usize,
    /// Initial retransmit timeout after the last send to a destination.
    pub base_timeout: SimDuration,
    /// Exponential-backoff cap for the retransmit timeout.
    pub max_timeout: SimDuration,
    /// Replay pacing after the mesh *bounces* a frame back (no route to
    /// the destination under the current link set). A bounce means the
    /// fabric is down, not lossy: the engine retries every
    /// `reroute_backoff` at a flat rate instead of escalating the
    /// exponential loss backoff, so recovery starts promptly once a
    /// link heals or a reroute appears.
    pub reroute_backoff: SimDuration,
}

impl RetxConfig {
    /// The engine switched off (the default).
    pub fn disabled() -> Self {
        RetxConfig {
            enabled: false,
            ..RetxConfig::reliable()
        }
    }

    /// Reliable delivery with parameters sized for the prototype mesh:
    /// the base timeout comfortably exceeds a page-packet round trip.
    pub fn reliable() -> Self {
        RetxConfig {
            enabled: true,
            window_packets: 32,
            base_timeout: SimDuration::from_us(60),
            max_timeout: SimDuration::from_us(960),
            reroute_backoff: SimDuration::from_us(30),
        }
    }
}

impl Default for RetxConfig {
    fn default() -> Self {
        RetxConfig::disabled()
    }
}

impl NicConfig {
    /// Parameters of the EISA-prototype board described in the paper.
    pub fn prototype() -> Self {
        NicConfig {
            out_fifo_bytes: 8 * 1024,
            out_fifo_threshold: 6 * 1024,
            in_fifo_bytes: 8 * 1024,
            in_fifo_threshold: 6 * 1024,
            packetize_latency: SimDuration::from_ns(350),
            receive_latency: SimDuration::from_ns(350),
            merge_window: SimDuration::from_ns(500),
            max_payload: 4096,
            dma_setup: SimDuration::from_ns(200),
            retx: RetxConfig::disabled(),
            unpinned: UnpinnedConfig::prototype(),
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if a threshold exceeds its FIFO capacity, capacities cannot
    /// hold one maximal packet, or `max_payload` is zero.
    pub fn validate(&self) {
        assert!(self.max_payload > 0, "max payload must be positive");
        assert!(
            self.out_fifo_threshold <= self.out_fifo_bytes,
            "outgoing threshold exceeds capacity"
        );
        assert!(
            self.in_fifo_threshold <= self.in_fifo_bytes,
            "incoming threshold exceeds capacity"
        );
        let link = if self.retx.enabled {
            crate::packet::LinkCtl::WIRE_BYTES
        } else {
            0
        };
        let max_wire = crate::packet::WireHeader::WIRE_BYTES + self.max_payload + link + 4;
        assert!(
            self.out_fifo_bytes >= max_wire && self.in_fifo_bytes >= max_wire,
            "FIFOs must hold at least one maximal packet"
        );
        if self.retx.enabled {
            assert!(self.retx.window_packets >= 1, "retx window must be positive");
            assert!(
                self.retx.base_timeout > SimDuration::ZERO
                    && self.retx.base_timeout <= self.retx.max_timeout,
                "retx timeouts must be positive and ordered"
            );
            assert!(
                self.retx.reroute_backoff > SimDuration::ZERO,
                "reroute backoff must be positive"
            );
        }
        assert!(
            self.unpinned.iotlb_entries >= 1,
            "IOTLB must hold at least one entry"
        );
        assert!(
            self.unpinned.map_in_latency > SimDuration::ZERO,
            "map-in latency must be positive"
        );
    }
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_validates() {
        NicConfig::prototype().validate();
    }

    #[test]
    #[should_panic(expected = "threshold exceeds capacity")]
    fn bad_threshold_rejected() {
        let mut c = NicConfig::prototype();
        c.in_fifo_threshold = c.in_fifo_bytes + 1;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "hold at least one maximal packet")]
    fn tiny_fifo_rejected() {
        let mut c = NicConfig::prototype();
        c.out_fifo_bytes = 64;
        c.out_fifo_threshold = 32;
        c.validate();
    }
}
