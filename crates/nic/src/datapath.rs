//! The update datapath: snooped automatic updates and command-initiated
//! deliberate updates (paper §4.2–§4.3).
//!
//! Snooped bus writes enter here ([`NetworkInterface::snoop_write`]),
//! merge into blocked-write packets or packetize immediately, and leave
//! through the Outgoing FIFO (see [`crate::outgoing`]). Command-space
//! cycles ([`NetworkInterface::command_write`] /
//! [`NetworkInterface::command_read`]) drive the deliberate-update DMA
//! engine.

use shrimp_mem::{PageNum, PhysAddr, WORD_SIZE};
use shrimp_sim::SimTime;

use crate::command::CommandOp;
use crate::error::NicError;
use crate::nic::NetworkInterface;
use crate::nipt::{OutSegment, UpdatePolicy};
use crate::packet::Payload;

/// What the NIC did with one snooped bus write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopOutcome {
    /// The address is not mapped out (or is mapped for deliberate update):
    /// the write is an ordinary memory write.
    Ignored,
    /// A packet was queued in the Outgoing FIFO (single-write automatic
    /// update, or a blocked-write flush).
    Queued,
    /// The write joined (or opened) a pending blocked-write packet.
    Merged,
    /// The Outgoing FIFO could not take the packet: the CPU must stall
    /// until the FIFO drains (paper §4). The data is buffered and will be
    /// queued by [`NetworkInterface::poll`] once space frees.
    Stalled,
}

impl SnoopOutcome {
    /// True when the write produced or joined an outgoing packet.
    pub fn queued(self) -> bool {
        matches!(self, SnoopOutcome::Queued | SnoopOutcome::Merged)
    }
}

/// The effect of a command-page write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandEffect {
    /// A deliberate-update transfer was started; the packet will be ready
    /// at the reported time.
    DmaStarted {
        /// When the DMA engine finishes reading and packetizing.
        done_at: SimTime,
    },
    /// The engine was busy; the hardware ignored the write. Correct code
    /// never sees this because the `CMPXCHG` read phase returns busy.
    DmaBusy,
    /// A mapping segment's update policy was switched.
    PolicyChanged,
    /// The interrupt-on-arrival request was armed or disarmed.
    InterruptToggled,
}

/// An interrupt raised towards the node CPU/kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicInterrupt {
    /// The Outgoing FIFO crossed its threshold; the CPU waits for it to
    /// drain.
    OutgoingThreshold,
    /// Data arrived for a page whose interrupt request was armed (§4.2).
    DataArrival {
        /// The page the data landed on.
        page: PageNum,
    },
    /// An arriving packet addressed a page that is not mapped in; the
    /// kernel is told so it can fault the offending connection.
    BadDelivery,
}

/// An open blocked-write packet accumulating consecutive snooped words.
#[derive(Debug, Clone)]
pub(crate) struct PendingBlocked {
    pub(crate) dst_node: shrimp_mesh::NodeId,
    pub(crate) dst_base: PhysAddr,
    pub(crate) src_page: PageNum,
    pub(crate) next_offset: u64,
    pub(crate) data: crate::arena::PoolBuf,
    pub(crate) last_write: SimTime,
}

impl NetworkInterface {
    // ───────────────────────── outgoing: snoop path ──────────────────────

    /// Reacts to a snooped write transaction on the memory bus.
    ///
    /// `addr` must be a data (not command) address; the machine routes
    /// command-space stores to [`NetworkInterface::command_write`].
    pub fn snoop_write(&mut self, now: SimTime, addr: PhysAddr, data: &[u8]) -> SnoopOutcome {
        // A pending blocked-write packet must be terminated by any
        // non-mergeable intervening write.
        let mergeable = self.pending.as_ref().is_some_and(|p| {
            addr.page() == p.src_page
                && addr.offset() == p.next_offset
                && now.saturating_since(p.last_write) <= self.config.merge_window
                && p.data.len() + data.len() <= self.config.max_payload as usize
        });

        let seg = match self.nipt.lookup_out(addr) {
            Some(seg) if seg.policy.is_automatic() => *seg,
            _ => {
                // Deliberate pages and unmapped pages: plain memory write;
                // but it still terminates a pending merge on another page?
                // No: only writes the NIC captures interact with the merge
                // buffer. Expire it on time alone.
                self.poll(now);
                return SnoopOutcome::Ignored;
            }
        };

        match seg.policy {
            UpdatePolicy::AutomaticSingle => {
                self.flush_pending(now);
                let dst = seg.translate(addr.offset());
                self.metrics.incr(self.ids.single_write_packets);
                // A snooped store is at most a word: the payload inlines.
                self.queue_packet(
                    now + self.config.packetize_latency,
                    seg.dst_node,
                    dst,
                    Payload::copy_from_slice(data),
                )
            }
            UpdatePolicy::AutomaticBlocked => {
                if mergeable
                    && self
                        .pending
                        .as_ref()
                        .is_some_and(|p| p.dst_node == seg.dst_node)
                {
                    let p = self.pending.as_mut().expect("mergeable implies pending");
                    p.data.vec_mut().extend_from_slice(data);
                    p.next_offset += data.len() as u64;
                    p.last_write = now;
                    self.metrics.incr(self.ids.merged_writes);
                    SnoopOutcome::Merged
                } else {
                    self.flush_pending(now);
                    self.pending = Some(PendingBlocked {
                        dst_node: seg.dst_node,
                        dst_base: seg.translate(addr.offset()),
                        src_page: addr.page(),
                        next_offset: addr.offset() + data.len() as u64,
                        data: {
                            let mut buf = crate::arena::take(0);
                            buf.vec_mut().extend_from_slice(data);
                            buf
                        },
                        last_write: now,
                    });
                    SnoopOutcome::Merged
                }
            }
            UpdatePolicy::Deliberate => unreachable!("filtered above"),
        }
    }

    /// Terminates the pending blocked-write packet, if any, queueing it.
    /// Returns true if a packet was flushed.
    pub fn flush_pending(&mut self, now: SimTime) -> bool {
        let Some(p) = self.pending.take() else {
            return false;
        };
        self.metrics.incr(self.ids.blocked_write_packets);
        self.queue_packet(
            now + self.config.packetize_latency,
            p.dst_node,
            p.dst_base,
            Payload::from(p.data),
        );
        true
    }

    // ───────────────────────── command space ─────────────────────────────

    /// True if `addr` is one of this NIC's command addresses.
    pub fn is_command_addr(&self, addr: PhysAddr) -> bool {
        self.cmd_space.contains(addr)
    }

    /// A read cycle on a command address: the DMA status word (§4.3).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a command address.
    pub fn command_read(&mut self, now: SimTime, addr: PhysAddr) -> u32 {
        let data_addr = self
            .cmd_space
            .data_addr_for(addr)
            .expect("command_read on a non-command address");
        self.dma.status(now, data_addr).0
    }

    /// A write cycle on a command address.
    ///
    /// For a deliberate-update start the NIC needs to read the source
    /// region from main memory; `mem_read` performs that read over the
    /// memory bus and returns the payload plus the bus completion time.
    /// Callers fill an [`arena`](crate::arena) buffer so the hot path
    /// recycles allocations instead of growing the heap per packet.
    ///
    /// # Errors
    ///
    /// Returns [`NicError::Malformed`] for an undecodable command,
    /// [`NicError::NotDeliberateMapped`] /
    /// [`NicError::CrossesPageBoundary`] for invalid transfers.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a command address.
    pub fn command_write(
        &mut self,
        now: SimTime,
        addr: PhysAddr,
        value: u32,
        mem_read: impl FnOnce(PhysAddr, u64) -> (Payload, SimTime),
    ) -> Result<CommandEffect, NicError> {
        let data_addr = self
            .cmd_space
            .data_addr_for(addr)
            .expect("command_write on a non-command address");
        match CommandOp::decode(value)? {
            CommandOp::StartTransfer { words } => {
                self.start_deliberate(now, data_addr, words, mem_read)
            }
            CommandOp::SetPolicy(policy) => {
                let page = data_addr.page();
                let seg = self
                    .nipt
                    .entry(page)
                    .and_then(|e| e.segment_at(data_addr.offset()))
                    .copied()
                    .ok_or(NicError::NotDeliberateMapped { addr: data_addr })?;
                self.nipt
                    .set_out_segment(page, OutSegment { policy, ..seg })?;
                Ok(CommandEffect::PolicyChanged)
            }
            CommandOp::ArmInterrupt => {
                self.nipt.set_interrupt_on_arrival(data_addr.page(), true)?;
                Ok(CommandEffect::InterruptToggled)
            }
            CommandOp::DisarmInterrupt => {
                self.nipt.set_interrupt_on_arrival(data_addr.page(), false)?;
                Ok(CommandEffect::InterruptToggled)
            }
        }
    }

    fn start_deliberate(
        &mut self,
        now: SimTime,
        src: PhysAddr,
        words: u32,
        mem_read: impl FnOnce(PhysAddr, u64) -> (Payload, SimTime),
    ) -> Result<CommandEffect, NicError> {
        let len = words as u64 * WORD_SIZE;
        if src.offset() + len > shrimp_mem::PAGE_SIZE {
            return Err(NicError::CrossesPageBoundary);
        }
        if len > self.config.max_payload {
            return Err(NicError::CrossesPageBoundary);
        }
        let seg = match self.nipt.lookup_out(src) {
            Some(seg) if seg.policy == UpdatePolicy::Deliberate => *seg,
            _ => return Err(NicError::NotDeliberateMapped { addr: src }),
        };
        if src.offset() + len > seg.src_end {
            return Err(NicError::BadMapping("transfer extends past the mapped segment"));
        }
        if !self.dma.is_idle(now) {
            return Ok(CommandEffect::DmaBusy);
        }
        // The DMA engine reads the region from memory; the snooping
        // datapath captures the data (paper §4.3).
        let (data, read_done) = mem_read(src, len);
        assert_eq!(data.len() as u64, len, "mem_read returned wrong length");
        let done_at = read_done + self.config.dma_setup;
        let started = self.dma.start(now, src, words, done_at);
        debug_assert!(started, "engine was idle");
        let dst = seg.translate(src.offset());
        self.metrics.incr(self.ids.dma_packets);
        // One buffer from here on: the pooled buffer read from memory is
        // the refcounted payload shared by FIFO, mesh and delivery DMA,
        // and returns to the arena when the last stage drops it.
        self.queue_packet(done_at, seg.dst_node, dst, data);
        Ok(CommandEffect::DmaStarted { done_at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NicError;
    use crate::testutil::{map_out, nic, t};
    use shrimp_mem::PAGE_SIZE;
    use shrimp_mesh::NodeId;
    use shrimp_sim::SimDuration;

    #[test]
    fn single_write_becomes_a_packet() {
        let mut n = nic();
        map_out(&mut n, 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let addr = PageNum::new(2).at_offset(16);
        let out = n.snoop_write(t(0), addr, &7u32.to_le_bytes());
        assert_eq!(out, SnoopOutcome::Queued);
        // Not ready before packetize latency.
        assert!(n.pop_outgoing(t(0)).is_none());
        let mp = n.pop_outgoing(t(1000)).expect("ready after packetize");
        assert_eq!(mp.dst(), NodeId(1));
        let packet = mp.into_payload();
        assert!(packet.verify_crc());
        assert_eq!(packet.header().dst_addr, PageNum::new(9).at_offset(16));
        assert_eq!(packet.payload(), &7u32.to_le_bytes());
        assert!(
            matches!(packet.into_payload(), Payload::Inline { len: 4, .. }),
            "a snooped word must not allocate"
        );
        assert_eq!(n.stats().single_write_packets, 1);
    }

    #[test]
    fn unmapped_write_is_ignored() {
        let mut n = nic();
        assert_eq!(
            n.snoop_write(t(0), PhysAddr::new(0), &[1, 2, 3, 4]),
            SnoopOutcome::Ignored
        );
        assert_eq!(n.stats().packets_sent, 0);
    }

    #[test]
    fn deliberate_page_writes_are_ignored_by_snoop() {
        let mut n = nic();
        map_out(&mut n, 2, 1, 9, UpdatePolicy::Deliberate);
        assert_eq!(
            n.snoop_write(t(0), PageNum::new(2).base(), &[0; 4]),
            SnoopOutcome::Ignored
        );
    }

    #[test]
    fn blocked_writes_merge_when_consecutive() {
        let mut n = nic();
        map_out(&mut n, 3, 1, 9, UpdatePolicy::AutomaticBlocked);
        let base = PageNum::new(3).base();
        assert_eq!(n.snoop_write(t(0), base, &[1; 4]), SnoopOutcome::Merged);
        assert_eq!(n.snoop_write(t(100), base.add(4), &[2; 4]), SnoopOutcome::Merged);
        assert_eq!(n.snoop_write(t(200), base.add(8), &[3; 4]), SnoopOutcome::Merged);
        assert_eq!(n.stats().merged_writes, 2);
        // Nothing sent yet.
        assert!(n.pop_outgoing(t(10_000)).is_none());
        // Window expiry flushes one packet with all 12 bytes.
        n.poll(t(1000));
        let mp = n.pop_outgoing(t(10_000)).expect("flushed");
        assert_eq!(mp.payload().payload().len(), 12);
        assert_eq!(n.stats().blocked_write_packets, 1);
    }

    #[test]
    fn non_consecutive_blocked_write_starts_new_packet() {
        let mut n = nic();
        map_out(&mut n, 3, 1, 9, UpdatePolicy::AutomaticBlocked);
        let base = PageNum::new(3).base();
        n.snoop_write(t(0), base, &[1; 4]);
        // Skip a word: must terminate the first packet.
        n.snoop_write(t(50), base.add(12), &[2; 4]);
        n.poll(t(5000));
        let a = n.pop_outgoing(t(100_000)).unwrap();
        let b = n.pop_outgoing(t(100_000)).unwrap();
        assert_eq!(a.payload().payload().len(), 4);
        assert_eq!(b.payload().payload().len(), 4);
    }

    #[test]
    fn merge_window_expiry_splits_packets() {
        let mut n = nic();
        map_out(&mut n, 3, 1, 9, UpdatePolicy::AutomaticBlocked);
        let base = PageNum::new(3).base();
        n.snoop_write(t(0), base, &[1; 4]);
        // Longer than the 500ns window later:
        n.snoop_write(t(2000), base.add(4), &[2; 4]);
        n.poll(t(10_000));
        assert_eq!(n.stats().blocked_write_packets, 2);
    }

    #[test]
    fn single_write_flushes_pending_blocked_packet_first() {
        let mut n = nic();
        map_out(&mut n, 3, 1, 9, UpdatePolicy::AutomaticBlocked);
        map_out(&mut n, 4, 1, 10, UpdatePolicy::AutomaticSingle);
        n.snoop_write(t(0), PageNum::new(3).base(), &[1; 4]);
        n.snoop_write(t(10), PageNum::new(4).base(), &[2; 4]);
        // Both packets must be queued, blocked first.
        let first = n.pop_outgoing(t(100_000)).unwrap();
        let second = n.pop_outgoing(t(100_000)).unwrap();
        assert_eq!(first.payload().header().dst_addr.page(), PageNum::new(9));
        assert_eq!(second.payload().header().dst_addr.page(), PageNum::new(10));
    }

    #[test]
    fn split_page_translates_via_correct_segment() {
        let mut n = nic();
        n.nipt_mut()
            .set_out_segment(
                PageNum::new(5),
                OutSegment {
                    src_start: 0,
                    src_end: 2048,
                    dst_node: NodeId(1),
                    dst_base: PageNum::new(8).at_offset(2048),
                    policy: UpdatePolicy::AutomaticSingle,
                },
            )
            .unwrap();
        n.nipt_mut()
            .set_out_segment(
                PageNum::new(5),
                OutSegment {
                    src_start: 2048,
                    src_end: PAGE_SIZE,
                    dst_node: NodeId(2),
                    dst_base: PageNum::new(3).base(),
                    policy: UpdatePolicy::AutomaticSingle,
                },
            )
            .unwrap();
        n.snoop_write(t(0), PageNum::new(5).at_offset(0), &[0; 4]);
        n.snoop_write(t(1), PageNum::new(5).at_offset(2048), &[0; 4]);
        let a = n.pop_outgoing(t(100_000)).unwrap();
        let b = n.pop_outgoing(t(100_000)).unwrap();
        assert_eq!(a.dst(), NodeId(1));
        assert_eq!(
            a.payload().header().dst_addr,
            PageNum::new(8).at_offset(2048)
        );
        assert_eq!(b.dst(), NodeId(2));
        assert_eq!(b.payload().header().dst_addr, PageNum::new(3).base());
    }

    #[test]
    fn deliberate_update_full_protocol() {
        let mut n = nic();
        map_out(&mut n, 6, 1, 12, UpdatePolicy::Deliberate);
        let data_addr = PageNum::new(6).base();
        let cmd_addr = n.command_space().command_addr_for(data_addr);
        assert!(n.is_command_addr(cmd_addr));
        // Read phase: engine free → 0.
        assert_eq!(n.command_read(t(0), cmd_addr), 0);
        // Write phase: start 256 words.
        let effect = n
            .command_write(t(0), cmd_addr, 256, |src, len| {
                assert_eq!(src, data_addr);
                assert_eq!(len, 1024);
                (Payload::from(vec![0x5a; 1024]), t(500))
            })
            .unwrap();
        let CommandEffect::DmaStarted { done_at } = effect else {
            panic!("expected DmaStarted, got {effect:?}");
        };
        assert!(done_at > t(500));
        // While busy: status shows remaining words and base match.
        let status = crate::dma::DmaStatus(n.command_read(t(100), cmd_addr));
        assert!(!status.is_free());
        assert!(status.base_matches());
        // A second start while busy is ignored by hardware.
        let e2 = n
            .command_write(t(100), cmd_addr, 16, |_, _| unreachable!("busy engine must not read"))
            .unwrap();
        assert_eq!(e2, CommandEffect::DmaBusy);
        // Packet appears once DMA finishes.
        assert!(n.pop_outgoing(done_at - SimDuration::from_ns(1)).is_none());
        let mp = n.pop_outgoing(done_at).unwrap();
        let packet = mp.into_payload();
        assert_eq!(packet.payload().len(), 1024);
        assert_eq!(packet.header().dst_addr, PageNum::new(12).base());
        assert_eq!(n.stats().dma_packets, 1);
    }

    #[test]
    fn deliberate_rejects_bad_transfers() {
        let mut n = nic();
        map_out(&mut n, 6, 1, 12, UpdatePolicy::Deliberate);
        let cmd = n
            .command_space()
            .command_addr_for(PageNum::new(6).at_offset(4092));
        // Crossing the page boundary.
        assert!(matches!(
            n.command_write(t(0), cmd, 2, |_, _| unreachable!()),
            Err(NicError::CrossesPageBoundary)
        ));
        // Page without a deliberate mapping.
        let cmd2 = n.command_space().command_addr_for(PageNum::new(7).base());
        assert!(matches!(
            n.command_write(t(0), cmd2, 2, |_, _| unreachable!()),
            Err(NicError::NotDeliberateMapped { .. })
        ));
        // Automatic mapping is not deliberate.
        map_out(&mut n, 8, 1, 13, UpdatePolicy::AutomaticSingle);
        let cmd3 = n.command_space().command_addr_for(PageNum::new(8).base());
        assert!(matches!(
            n.command_write(t(0), cmd3, 2, |_, _| unreachable!()),
            Err(NicError::NotDeliberateMapped { .. })
        ));
    }

    #[test]
    fn command_switches_policy_and_arms_interrupts() {
        let mut n = nic();
        map_out(&mut n, 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let cmd = n.command_space().command_addr_for(PageNum::new(2).base());
        let e = n
            .command_write(
                t(0),
                cmd,
                CommandOp::SetPolicy(UpdatePolicy::AutomaticBlocked).encode(),
                |_, _| unreachable!(),
            )
            .unwrap();
        assert_eq!(e, CommandEffect::PolicyChanged);
        assert_eq!(
            n.nipt().lookup_out(PageNum::new(2).base()).unwrap().policy,
            UpdatePolicy::AutomaticBlocked
        );
        let e = n
            .command_write(t(0), cmd, CommandOp::ArmInterrupt.encode(), |_, _| unreachable!())
            .unwrap();
        assert_eq!(e, CommandEffect::InterruptToggled);
        assert!(!n.nipt().entry(PageNum::new(2)).unwrap().is_mapped_in());
    }
}
