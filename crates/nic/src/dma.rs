//! The deliberate-update DMA engine.
//!
//! The network interface has **one** DMA engine serving one request at a
//! time (paper §4.3). User processes start transfers with a locked
//! `CMPXCHG` to a command page:
//!
//! * the read cycle returns **0** when the engine is free — which makes
//!   the `CMPXCHG` succeed and emit the write cycle carrying the word
//!   count, starting the transfer;
//! * when busy, the read returns the number of words remaining plus a
//!   flag telling the reader whether the engine is working on *its* base
//!   address — a single read therefore doubles as a completion poll and
//!   as input to a backoff strategy.

use shrimp_mem::{PhysAddr, WORD_SIZE};
use shrimp_sim::SimTime;

/// Status word returned by a command-page read, in the paper's encoding:
/// zero means the engine is free; otherwise the low 31 bits hold the
/// remaining word count and bit 31 is the base-address match flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaStatus(pub u32);

impl DmaStatus {
    /// The free-engine status (reads as zero).
    pub const FREE: DmaStatus = DmaStatus(0);

    /// Builds a busy status.
    pub fn busy(words_remaining: u32, base_matches: bool) -> Self {
        debug_assert!(words_remaining > 0 && words_remaining < (1 << 31));
        DmaStatus(words_remaining | if base_matches { 1 << 31 } else { 0 })
    }

    /// True when the engine is free (`CMPXCHG` against 0 will succeed).
    pub fn is_free(self) -> bool {
        self.0 == 0
    }

    /// Words left in the current transfer (0 when free).
    pub fn words_remaining(self) -> u32 {
        self.0 & !(1 << 31)
    }

    /// True when the polled address matches the engine's current base.
    pub fn base_matches(self) -> bool {
        self.0 & (1 << 31) != 0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Busy {
        base: PhysAddr,
        words: u32,
        done_at: SimTime,
    },
}

/// The single deliberate-update DMA engine.
///
/// # Examples
///
/// ```
/// use shrimp_nic::{DmaEngine, DmaStatus};
/// use shrimp_mem::PhysAddr;
/// use shrimp_sim::{SimTime, SimDuration};
///
/// let mut dma = DmaEngine::new();
/// assert!(dma.status(SimTime::ZERO, PhysAddr::new(0)).is_free());
/// dma.start(SimTime::ZERO, PhysAddr::new(0), 16, SimTime::ZERO + SimDuration::from_us(1));
/// let s = dma.status(SimTime::ZERO, PhysAddr::new(0));
/// assert!(!s.is_free());
/// assert!(s.base_matches());
/// ```
#[derive(Debug, Clone)]
pub struct DmaEngine {
    state: State,
    /// Span of the in-progress transfer in picoseconds, for progress
    /// interpolation in [`DmaEngine::status`].
    started_span_ps: f64,
    transfers: u64,
    words_total: u64,
    busy_rejections: u64,
}

impl Default for DmaEngine {
    fn default() -> Self {
        DmaEngine::new()
    }
}

impl DmaEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        DmaEngine {
            state: State::Idle,
            started_span_ps: 0.0,
            transfers: 0,
            words_total: 0,
            busy_rejections: 0,
        }
    }

    /// The status a read cycle at `addr` returns at time `now`. This is
    /// what the `CMPXCHG` read phase sees.
    pub fn status(&mut self, now: SimTime, addr: PhysAddr) -> DmaStatus {
        self.expire(now);
        match self.state {
            State::Idle => DmaStatus::FREE,
            State::Busy { base, words, done_at } => {
                // Remaining words decay linearly over the transfer window.
                let total = self.current_total_duration(words, done_at, now);
                DmaStatus::busy(total.max(1), addr == base)
            }
        }
    }

    fn current_total_duration(&self, words: u32, done_at: SimTime, now: SimTime) -> u32 {
        if now >= done_at {
            return 0;
        }
        // Linear interpolation of progress; the exact shape does not
        // matter to correctness, only that it is monotone non-increasing.
        let remaining_ps = done_at.since(now).as_picos() as f64;
        let started_span = self
            .started_span_ps
            .max(remaining_ps.max(1.0));
        let frac = (remaining_ps / started_span).clamp(0.0, 1.0);
        ((words as f64 * frac).ceil() as u32).clamp(1, words)
    }

    /// Attempts to start a transfer (the write cycle of a successful
    /// `CMPXCHG`). Returns `false` — and counts a rejection — if the
    /// engine is busy at `now`.
    pub fn start(&mut self, now: SimTime, base: PhysAddr, words: u32, done_at: SimTime) -> bool {
        self.expire(now);
        if !matches!(self.state, State::Idle) {
            self.busy_rejections += 1;
            return false;
        }
        assert!(words > 0, "zero-word DMA transfer");
        assert!(done_at >= now, "completion before start");
        self.state = State::Busy { base, words, done_at };
        self.started_span_ps = done_at.since(now).as_picos() as f64;
        self.transfers += 1;
        self.words_total += words as u64;
        true
    }

    /// True when the engine is idle at `now`.
    pub fn is_idle(&mut self, now: SimTime) -> bool {
        self.expire(now);
        matches!(self.state, State::Idle)
    }

    /// When the current transfer finishes, if one is in progress.
    pub fn busy_until(&self) -> Option<SimTime> {
        match self.state {
            State::Busy { done_at, .. } => Some(done_at),
            State::Idle => None,
        }
    }

    /// Bytes the current transfer covers, if one is in progress.
    pub fn current_bytes(&self) -> Option<u64> {
        match self.state {
            State::Busy { words, .. } => Some(words as u64 * WORD_SIZE),
            State::Idle => None,
        }
    }

    /// Transfers started so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total words moved (including the in-progress transfer).
    pub fn words_total(&self) -> u64 {
        self.words_total
    }

    /// Start attempts refused because the engine was busy — each one is a
    /// user-level retry (paper §4.3).
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections
    }

    fn expire(&mut self, now: SimTime) {
        if let State::Busy { done_at, .. } = self.state {
            if now >= done_at {
                self.state = State::Idle;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn free_engine_reads_zero_and_starts() {
        let mut dma = DmaEngine::new();
        assert_eq!(dma.status(t(0), PhysAddr::new(0)), DmaStatus::FREE);
        assert!(dma.start(t(0), PhysAddr::new(0x1000), 1024, t(10)));
        assert_eq!(dma.transfers(), 1);
        assert_eq!(dma.current_bytes(), Some(4096));
    }

    #[test]
    fn busy_engine_rejects_and_counts() {
        let mut dma = DmaEngine::new();
        dma.start(t(0), PhysAddr::new(0), 16, t(10));
        assert!(!dma.start(t(5), PhysAddr::new(64), 16, t(20)));
        assert_eq!(dma.busy_rejections(), 1);
        // After completion it accepts again.
        assert!(dma.start(t(10), PhysAddr::new(64), 16, t(20)));
    }

    #[test]
    fn status_reports_base_match() {
        let mut dma = DmaEngine::new();
        let base = PhysAddr::new(0x2000);
        dma.start(t(0), base, 100, t(10));
        let s = dma.status(t(5), base);
        assert!(!s.is_free());
        assert!(s.base_matches());
        let other = dma.status(t(5), PhysAddr::new(0x3000));
        assert!(!other.base_matches());
        assert!(other.words_remaining() > 0);
    }

    #[test]
    fn remaining_words_monotonically_decrease() {
        let mut dma = DmaEngine::new();
        let base = PhysAddr::new(0);
        dma.start(t(0), base, 1000, t(100));
        let mut last = u32::MAX;
        for us in [10u64, 30, 50, 70, 90] {
            let s = dma.status(t(us), base);
            assert!(s.words_remaining() <= last);
            assert!(s.words_remaining() >= 1);
            last = s.words_remaining();
        }
        assert!(dma.status(t(100), base).is_free());
        assert!(dma.is_idle(t(101)));
    }

    #[test]
    fn completion_poll_is_the_two_instruction_check() {
        // Paper §5.2: checking whether a DMA finished costs a read (plus a
        // branch). Model-wise: one status() call flips to FREE at done_at.
        let mut dma = DmaEngine::new();
        dma.start(t(0), PhysAddr::new(0), 8, t(1));
        assert!(!dma.status(t(0), PhysAddr::new(0)).is_free());
        assert!(dma.status(t(1), PhysAddr::new(0)).is_free());
    }

    #[test]
    fn status_encoding_roundtrip() {
        let s = DmaStatus::busy(12345, true);
        assert_eq!(s.words_remaining(), 12345);
        assert!(s.base_matches());
        let s = DmaStatus::busy(1, false);
        assert_eq!(s.words_remaining(), 1);
        assert!(!s.base_matches());
    }

    #[test]
    #[should_panic(expected = "zero-word")]
    fn zero_word_transfer_rejected() {
        DmaEngine::new().start(t(0), PhysAddr::new(0), 0, t(1));
    }
}
