//! Network interface error type.

use std::error::Error;
use std::fmt;

use shrimp_mem::{PageNum, PhysAddr};
use shrimp_mesh::{MeshCoord, NodeId};

/// Errors raised by the network interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// An arriving packet's destination coordinates do not match this
    /// node — it was misrouted (checked per paper §3.1).
    WrongDestination {
        /// Coordinates in the packet header.
        packet: MeshCoord,
        /// This NIC's coordinates.
        local: MeshCoord,
    },
    /// The packet failed its CRC check.
    BadCrc,
    /// The packet's bytes could not be parsed at all.
    Malformed(&'static str),
    /// An arriving packet addressed a page that is not mapped in.
    NotMappedIn {
        /// The offending page.
        page: PageNum,
    },
    /// An arriving packet addressed a page outside installed memory.
    PageOutOfRange {
        /// The offending page.
        page: PageNum,
    },
    /// The incoming FIFO cannot hold the packet.
    IncomingFifoFull,
    /// An outgoing mapping was rejected.
    BadMapping(&'static str),
    /// A deliberate-update command addressed a page without a deliberate
    /// mapping at that offset.
    NotDeliberateMapped {
        /// The address the command named.
        addr: PhysAddr,
    },
    /// A transfer would cross a page boundary (one page per command, §4.3).
    CrossesPageBoundary,
    /// The destination node in a mapping is off-mesh.
    UnknownNode(NodeId),
}

impl fmt::Display for NicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NicError::WrongDestination { packet, local } => {
                write!(f, "packet routed to {local} but addressed to {packet}")
            }
            NicError::BadCrc => write!(f, "packet failed CRC check"),
            NicError::Malformed(why) => write!(f, "malformed packet: {why}"),
            NicError::NotMappedIn { page } => write!(f, "page {page} is not mapped in"),
            NicError::PageOutOfRange { page } => {
                write!(f, "page {page} is outside installed memory")
            }
            NicError::IncomingFifoFull => write!(f, "incoming FIFO full"),
            NicError::BadMapping(why) => write!(f, "invalid mapping: {why}"),
            NicError::NotDeliberateMapped { addr } => {
                write!(f, "no deliberate-update mapping covers {addr}")
            }
            NicError::CrossesPageBoundary => {
                write!(f, "transfer crosses a page boundary")
            }
            NicError::UnknownNode(node) => write!(f, "destination {node} is off-mesh"),
        }
    }
}

impl Error for NicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = NicError::WrongDestination {
            packet: MeshCoord { x: 1, y: 2 },
            local: MeshCoord { x: 0, y: 0 },
        };
        assert!(e.to_string().contains("(1,2)"));
        assert!(NicError::BadCrc.to_string().contains("CRC"));
        assert!(NicError::NotMappedIn { page: PageNum::new(3) }
            .to_string()
            .contains("pfn:3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn takes<E: Error + Send + Sync>(_: E) {}
        takes(NicError::BadCrc);
    }
}
