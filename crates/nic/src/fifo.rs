//! The Outgoing and Incoming FIFOs.
//!
//! Both FIFOs are byte-capacity bounded and expose a *programmable
//! threshold* (paper §4): the Incoming FIFO's threshold tells the NIC to
//! stop accepting packets from the network; the Outgoing FIFO's threshold
//! interrupts the CPU, which waits until the FIFO drains.

use std::collections::VecDeque;

use shrimp_sim::SimTime;

use crate::packet::ShrimpPacket;

/// A bounded FIFO of packets with byte accounting and a threshold.
///
/// # Examples
///
/// ```
/// use shrimp_nic::PacketFifo;
/// use shrimp_nic::{ShrimpPacket, WireHeader};
/// use shrimp_mesh::{MeshCoord, NodeId};
/// use shrimp_mem::PhysAddr;
/// use shrimp_sim::SimTime;
///
/// let mut fifo = PacketFifo::new(1024, 512);
/// let header = WireHeader { dst_coord: MeshCoord { x: 0, y: 0 }, src: NodeId(0), dst_addr: PhysAddr::new(0) };
/// let p = ShrimpPacket::new(header, vec![0; 100]);
/// assert!(fifo.try_push(SimTime::ZERO, p).is_ok());
/// assert!(!fifo.over_threshold());
/// ```
#[derive(Debug, Clone)]
pub struct PacketFifo {
    capacity: u64,
    threshold: u64,
    bytes: u64,
    queue: VecDeque<(ShrimpPacket, SimTime)>,
    high_watermark: u64,
    pushes: u64,
    rejections: u64,
}

impl PacketFifo {
    /// Creates an empty FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `threshold > capacity`.
    pub fn new(capacity: u64, threshold: u64) -> Self {
        assert!(threshold <= capacity, "threshold exceeds capacity");
        PacketFifo {
            capacity,
            threshold,
            bytes: 0,
            queue: VecDeque::new(),
            high_watermark: 0,
            pushes: 0,
            rejections: 0,
        }
    }

    /// Appends a packet if its wire bytes fit.
    ///
    /// # Errors
    ///
    /// Returns the packet back when it does not fit, so the caller can
    /// stall and retry (the CPU for the Outgoing FIFO, the network for the
    /// Incoming FIFO).
    pub fn try_push(&mut self, now: SimTime, packet: ShrimpPacket) -> Result<(), ShrimpPacket> {
        let len = packet.wire_len();
        if self.bytes + len > self.capacity {
            self.rejections += 1;
            return Err(packet);
        }
        self.bytes += len;
        self.high_watermark = self.high_watermark.max(self.bytes);
        self.pushes += 1;
        self.queue.push_back((packet, now));
        Ok(())
    }

    /// True if a push of `len` wire bytes would fit right now.
    pub fn would_fit(&self, len: u64) -> bool {
        self.bytes + len <= self.capacity
    }

    /// Removes and returns the head packet and the time it was pushed.
    pub fn pop(&mut self) -> Option<(ShrimpPacket, SimTime)> {
        let (packet, at) = self.queue.pop_front()?;
        self.bytes -= packet.wire_len();
        Some((packet, at))
    }

    /// The head packet, without removing it.
    pub fn peek(&self) -> Option<&ShrimpPacket> {
        self.queue.front().map(|(p, _)| p)
    }

    /// The head packet and the time it was pushed, without removing it.
    pub fn peek_with_time(&self) -> Option<(&ShrimpPacket, SimTime)> {
        self.queue.front().map(|(p, t)| (p, *t))
    }

    /// Occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Packets queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when occupancy exceeds the programmable threshold.
    pub fn over_threshold(&self) -> bool {
        self.bytes > self.threshold
    }

    /// Highest occupancy seen.
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Pushes refused for lack of space.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::WireHeader;
    use shrimp_mesh::{MeshCoord, NodeId};
    use shrimp_mem::PhysAddr;

    fn pkt(payload: usize) -> ShrimpPacket {
        ShrimpPacket::new(
            WireHeader {
                dst_coord: MeshCoord { x: 0, y: 0 },
                src: NodeId(0),
                dst_addr: PhysAddr::new(0),
            },
            vec![0xaa; payload],
        )
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut f = PacketFifo::new(4096, 2048);
        let a = pkt(10);
        let b = pkt(20);
        let total = a.wire_len() + b.wire_len();
        f.try_push(SimTime::ZERO, a.clone()).unwrap();
        f.try_push(SimTime::ZERO, b.clone()).unwrap();
        assert_eq!(f.bytes(), total);
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop().unwrap().0, a);
        assert_eq!(f.pop().unwrap().0, b);
        assert!(f.is_empty());
        assert_eq!(f.bytes(), 0);
        assert_eq!(f.high_watermark(), total);
    }

    #[test]
    fn rejects_when_full_and_returns_packet() {
        let one = pkt(100).wire_len();
        let mut f = PacketFifo::new(one, one);
        f.try_push(SimTime::ZERO, pkt(100)).unwrap();
        let refused = f.try_push(SimTime::ZERO, pkt(100)).unwrap_err();
        assert_eq!(refused.payload().len(), 100);
        assert_eq!(f.rejections(), 1);
        assert!(!f.would_fit(one));
        f.pop();
        assert!(f.would_fit(one));
    }

    #[test]
    fn threshold_signal() {
        let one = pkt(100).wire_len();
        let mut f = PacketFifo::new(10 * one, one);
        f.try_push(SimTime::ZERO, pkt(100)).unwrap();
        assert!(!f.over_threshold(), "at threshold is not over it");
        f.try_push(SimTime::ZERO, pkt(100)).unwrap();
        assert!(f.over_threshold());
        f.pop();
        assert!(!f.over_threshold());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = PacketFifo::new(4096, 4096);
        f.try_push(SimTime::ZERO, pkt(4)).unwrap();
        assert_eq!(f.peek().unwrap().payload().len(), 4);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn push_timestamps_are_preserved() {
        let mut f = PacketFifo::new(4096, 4096);
        let t = SimTime::from_picos(777);
        f.try_push(t, pkt(4)).unwrap();
        assert_eq!(f.pop().unwrap().1, t);
    }

    #[test]
    #[should_panic(expected = "threshold exceeds capacity")]
    fn bad_threshold_panics() {
        PacketFifo::new(10, 11);
    }
}
