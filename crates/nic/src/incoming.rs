//! The incoming path: mesh → Incoming FIFO → EISA delivery DMA.
//!
//! [`NetworkInterface::accept_packet`] verifies routing and CRC, then
//! dispatches to the go-back-N receiver book (see [`crate::retx`]) or
//! queues the packet straight on the Incoming FIFO;
//! [`NetworkInterface::pop_incoming`] yields deliveries once they clear
//! the receive pipeline.

use shrimp_mesh::MeshPacket;
use shrimp_mesh::NodeId;
use shrimp_mem::PhysAddr;
use shrimp_sim::{SimTime, TraceData, TraceLevel};

use crate::datapath::NicInterrupt;
use crate::error::NicError;
use crate::nic::NetworkInterface;
use crate::packet::{FrameKind, LinkCtl, PacketStamp, Payload, ShrimpPacket};

/// A packet popped from the Incoming FIFO, ready for the memory transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncomingDelivery {
    /// Destination physical address.
    pub dst_addr: PhysAddr,
    /// The data to deposit — the same buffer the sender packetized,
    /// passed along by refcount.
    pub data: Payload,
    /// Earliest time the memory transfer may start.
    pub ready_at: SimTime,
    /// The sending node.
    pub src: NodeId,
    /// True if the page's one-shot interrupt request was armed.
    pub interrupt: bool,
    /// Lifecycle timestamps carried by the packet through the datapath.
    pub stamp: PacketStamp,
}

impl NetworkInterface {
    /// Emits an in-FIFO backpressure trace event on threshold crossings.
    /// Call after any Incoming FIFO push or pop.
    pub(crate) fn trace_in_threshold(&mut self, now: SimTime) {
        if !self.tracer.wants(TraceLevel::Info) {
            return;
        }
        let over = self.in_fifo.over_threshold();
        if over != self.in_threshold_traced {
            self.in_threshold_traced = over;
            let component = self.component();
            let occupancy = self.in_fifo.bytes();
            self.tracer.emit(
                now,
                TraceLevel::Info,
                component,
                TraceData::FifoThreshold {
                    fifo: "in",
                    raised: over,
                    occupancy,
                },
            );
        }
    }

    /// True while the NIC accepts packets from the network. Below the
    /// Incoming FIFO threshold only (paper §4).
    pub fn can_accept_from_network(&self) -> bool {
        !self.in_fifo.over_threshold()
    }

    /// [`NetworkInterface::can_accept_from_network`], additionally
    /// honouring an injected transient receive stall at time `now`.
    pub fn can_accept_from_network_at(&self, now: SimTime) -> bool {
        self.stall_until.is_none_or(|s| now >= s) && self.can_accept_from_network()
    }

    /// Accepts one packet from the mesh: verifies routing and CRC, then
    /// either consumes it (link-level ack/nack), sequence-checks it
    /// (go-back-N data frame) or queues it straight on the Incoming FIFO
    /// (legacy unframed packet). The CRC check recomputes the checksum
    /// over header, payload and trailer slices — no wire buffer exists.
    ///
    /// # Errors
    ///
    /// Returns the verification error; the packet is dropped and counted.
    /// A lost data frame is *not* an error here: go-back-N recovers it
    /// invisibly via nack or timeout.
    pub fn accept_packet(
        &mut self,
        now: SimTime,
        packet: MeshPacket<ShrimpPacket>,
    ) -> Result<(), NicError> {
        let mut packet = packet.into_payload();
        if !packet.verify_crc() {
            // Corruption anywhere (header, payload, seq trailer) lands
            // here; with go-back-N on, the sender's timeout or a later
            // gap-nack triggers the resend.
            self.metrics.incr(self.ids.crc_drops);
            return Err(NicError::BadCrc);
        }
        if packet.header().src == self.node && packet.header().dst_coord != self.coord {
            // One of our own frames came home: the mesh bounced it
            // because no legal route to its destination existed under
            // the current link set (or its link died mid-flight).
            return self.accept_bounce(now, &packet);
        }
        if packet.header().dst_coord != self.coord {
            self.metrics.incr(self.ids.misroutes);
            return Err(NicError::WrongDestination {
                packet: packet.header().dst_coord,
                local: self.coord,
            });
        }
        self.maybe_stall_after_arrival(now);
        packet.stamp.accepted = now;
        let src = packet.header().src;
        match packet.link() {
            None => {
                self.metrics.incr(self.ids.packets_received);
                self.metrics.add(self.ids.bytes_received, packet.payload().len() as u64);
                let pushed = self
                    .in_fifo
                    .try_push(now, packet)
                    .map_err(|_| NicError::IncomingFifoFull);
                self.trace_in_threshold(now);
                pushed
            }
            Some(LinkCtl {
                kind: FrameKind::Ack,
                seq,
            }) => {
                self.metrics.incr(self.ids.acks_received);
                self.handle_ack(now, src, seq);
                Ok(())
            }
            Some(LinkCtl {
                kind: FrameKind::Nack,
                seq,
            }) => {
                self.metrics.incr(self.ids.nacks_received);
                self.handle_nack(now, src, seq);
                Ok(())
            }
            Some(LinkCtl {
                kind: FrameKind::Data,
                seq,
            }) => self.accept_data_frame(now, src, seq, packet),
        }
    }

    /// Fault injection: after each good arrival, the receive port may
    /// wedge shut for a while.
    pub(crate) fn maybe_stall_after_arrival(&mut self, now: SimTime) {
        if let Some(site) = self.fault.as_mut() {
            if let Some(d) = site.decide_stall() {
                let until = now + d;
                if self.stall_until.is_none_or(|s| until > s) {
                    self.stall_until = Some(until);
                }
                self.metrics.incr(self.ids.fault_stalls);
            }
        }
    }

    /// Pops the head of the Incoming FIFO once it has cleared the receive
    /// pipeline, yielding the memory transfer to perform — or an error if
    /// the addressed page is not mapped in (the packet is dropped and a
    /// [`NicInterrupt::BadDelivery`] is raised).
    pub fn pop_incoming(&mut self, now: SimTime) -> Option<Result<IncomingDelivery, NicError>> {
        let ready_at = {
            let (_, pushed) = self.in_fifo.peek_with_time()?;
            pushed + self.config.receive_latency
        };
        if ready_at > now {
            return None;
        }
        let (packet, _) = self.in_fifo.pop().expect("head checked above");
        self.trace_in_threshold(now);
        let page = packet.header().dst_addr.page();
        if !self.nipt.is_mapped_in(page) {
            self.metrics.incr(self.ids.unmapped_drops);
            self.interrupts.push(NicInterrupt::BadDelivery);
            return Some(Err(NicError::NotMappedIn { page }));
        }
        let interrupt = self.nipt.take_interrupt_request(page);
        if interrupt {
            self.interrupts.push(NicInterrupt::DataArrival { page });
        }
        let src = packet.header().src;
        let dst_addr = packet.header().dst_addr;
        let stamp = packet.stamp;
        Some(Ok(IncomingDelivery {
            dst_addr,
            data: packet.into_payload(),
            ready_at,
            src,
            interrupt,
            stamp,
        }))
    }

    /// When the head incoming packet clears the receive pipeline, if any.
    pub fn incoming_ready_at(&self) -> Option<SimTime> {
        self.in_fifo.peek_with_time()
            .map(|(_, pushed)| pushed + self.config.receive_latency)
    }

    /// Incoming FIFO occupancy in bytes.
    pub fn in_fifo_bytes(&self) -> u64 {
        self.in_fifo.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{nic, t, wire_packet_for};
    use shrimp_mem::PageNum;
    use shrimp_mesh::MeshCoord;
    use shrimp_sim::SimDuration;

    #[test]
    fn incoming_delivery_to_mapped_in_page() {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        let mp = wire_packet_for(&n, PageNum::new(4).at_offset(8), vec![9; 16]);
        n.accept_packet(t(0), mp).unwrap();
        assert!(n.pop_incoming(t(0)).is_none(), "receive latency first");
        let d = n.pop_incoming(t(1000)).unwrap().unwrap();
        assert_eq!(d.dst_addr, PageNum::new(4).at_offset(8));
        assert_eq!(d.data.as_slice(), &[9u8; 16][..]);
        assert!(!d.interrupt);
        assert_eq!(d.src, NodeId(3));
        assert_eq!(n.stats().packets_received, 1);
    }

    #[test]
    fn incoming_to_unmapped_page_drops_and_interrupts() {
        let mut n = nic();
        let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![1; 4]);
        n.accept_packet(t(0), mp).unwrap();
        let r = n.pop_incoming(t(1000)).unwrap();
        assert!(matches!(r, Err(NicError::NotMappedIn { .. })));
        assert_eq!(n.stats().unmapped_drops, 1);
        assert_eq!(n.take_interrupts(), vec![NicInterrupt::BadDelivery]);
    }

    #[test]
    fn misrouted_packet_rejected() {
        let mut n = nic();
        let p = ShrimpPacket::new(
            crate::packet::WireHeader {
                dst_coord: MeshCoord { x: 1, y: 1 },
                src: NodeId(3),
                dst_addr: PhysAddr::new(0),
            },
            vec![0; 4],
        );
        let mp = MeshPacket::new(NodeId(3), n.node(), p);
        assert!(matches!(
            n.accept_packet(t(0), mp),
            Err(NicError::WrongDestination { .. })
        ));
        assert_eq!(n.stats().misroutes, 1);
    }

    #[test]
    fn corrupted_packet_rejected() {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![1; 8]);
        // A network error: payload bytes change, stored CRC does not.
        let good = mp.into_payload();
        let mut corrupted = good.payload().to_vec();
        corrupted[5] ^= 0xff;
        let bad = ShrimpPacket::from_parts(*good.header(), corrupted, good.crc());
        let mp = MeshPacket::new(NodeId(3), n.node(), bad);
        assert!(matches!(n.accept_packet(t(0), mp), Err(NicError::BadCrc)));
        assert_eq!(n.stats().crc_drops, 1);
    }

    #[test]
    fn arrival_interrupt_fires_once() {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        n.nipt_mut().set_interrupt_on_arrival(PageNum::new(4), true).unwrap();
        for _ in 0..2 {
            let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![1; 4]);
            n.accept_packet(t(0), mp).unwrap();
        }
        let d1 = n.pop_incoming(t(1000)).unwrap().unwrap();
        assert!(d1.interrupt);
        let d2 = n.pop_incoming(t(1000)).unwrap().unwrap();
        assert!(!d2.interrupt, "one-shot request");
        assert_eq!(
            n.take_interrupts(),
            vec![NicInterrupt::DataArrival { page: PageNum::new(4) }]
        );
    }

    #[test]
    fn incoming_threshold_gates_acceptance() {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        assert!(n.can_accept_from_network());
        // Fill past the threshold (6 KB of 8 KB) with 1 KB payloads.
        let mut pushed = 0;
        while n.can_accept_from_network() {
            let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![0; 1024]);
            n.accept_packet(t(0), mp).unwrap();
            pushed += 1;
        }
        assert!(pushed >= 6);
        // Draining re-opens acceptance.
        while n.pop_incoming(t(1_000_000)).is_some() {}
        assert!(n.can_accept_from_network());
    }

    #[test]
    fn injected_stall_gates_acceptance_until_deadline() {
        use shrimp_sim::fault::{FaultConfig, NicFaultConfig};
        let mut n = nic();
        let cfg = FaultConfig {
            seed: 3,
            nic: NicFaultConfig {
                stall_rate: 1.0,
                stall: (SimDuration::from_ns(500), SimDuration::from_ns(500)),
            },
            ..FaultConfig::default()
        };
        n.set_fault_injection(cfg.nic_site(0).expect("active"));
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        assert!(n.can_accept_from_network_at(t(0)));
        let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![1; 8]);
        n.accept_packet(t(0), mp).unwrap();
        assert_eq!(n.stats().fault_stalls, 1);
        assert!(!n.can_accept_from_network_at(t(100)), "stalled");
        assert_eq!(n.next_deadline(), Some(t(500)), "wakeup at stall end");
        assert!(n.can_accept_from_network_at(t(500)), "stall expired");
        n.poll(t(500));
        assert!(n.next_deadline().is_none());
    }
}
