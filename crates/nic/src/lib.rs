//! The SHRIMP virtual memory-mapped network interface.
//!
//! This crate models the custom NIC board of Figure 4 of the paper:
//!
//! * [`nipt`] — the **Network Interface Page Table**: one entry per page
//!   of local physical memory, holding outgoing mapping segments (a page
//!   may be split between two mappings at a configurable offset, §3.2),
//!   the update policy (automatic single-write, automatic blocked-write,
//!   or deliberate), and incoming ("mapped in") state.
//! * [`packet`] — the wire format: destination mesh coordinates (checked
//!   on arrival), destination physical address, payload, and a CRC32.
//! * [`fifo`] — the Outgoing and Incoming FIFOs with programmable
//!   thresholds that drive the flow-control chain of §4.
//! * [`dma`] — the single deliberate-update DMA engine and its
//!   `CMPXCHG`-based user-level start protocol (§4.3).
//! * [`command`] — virtual-memory-mapped command pages (§4.2): a command
//!   address space the same size as physical memory, at a fixed distance
//!   from it, through which user processes talk to the NIC without any
//!   kernel involvement.
//! * [`nic`] — the [`NetworkInterface`] state machine composing all of the
//!   above; the machine crate (`shrimp-core`) wires it to the CPU's memory
//!   bus (snooping), the mesh, and the EISA DMA path.
//!
//! # Examples
//!
//! ```
//! use shrimp_nic::{NetworkInterface, NicConfig, OutSegment, UpdatePolicy};
//! use shrimp_mem::{PhysAddr, PageNum};
//! use shrimp_mesh::{MeshShape, NodeId};
//! use shrimp_sim::SimTime;
//!
//! let shape = MeshShape::new(2, 1);
//! let mut nic = NetworkInterface::new(NodeId(0), shape, NicConfig::default(), 64);
//! // Map local page 3 out to node 1's page 7, automatic single-write.
//! nic.nipt_mut().set_out_segment(
//!     PageNum::new(3),
//!     OutSegment::full_page(NodeId(1), PageNum::new(7), UpdatePolicy::AutomaticSingle),
//! )?;
//! // A snooped store to page 3 becomes a network packet.
//! let outcome = nic.snoop_write(SimTime::ZERO, PhysAddr::new(3 * 4096 + 8), &42u32.to_le_bytes());
//! assert!(outcome.queued());
//! # Ok::<(), shrimp_nic::NicError>(())
//! ```

pub mod arena;
pub mod command;
pub mod config;
pub mod datapath;
pub mod dma;
pub mod error;
pub mod fifo;
pub mod incoming;
pub mod model;
pub mod nic;
pub mod nipt;
pub mod outgoing;
pub mod packet;
pub mod retx;
pub mod stats;
pub mod unpinned;

#[cfg(test)]
pub(crate) mod testutil;

pub use arena::PoolBuf;
pub use command::{CommandOp, CommandSpace};
pub use config::{NicConfig, RetxConfig, UnpinnedConfig};
pub use dma::{DmaEngine, DmaStatus};
pub use error::NicError;
pub use fifo::PacketFifo;
pub use model::{AnyNic, NicBackend, NicModel, ShrimpNicModel};
pub use nic::{IncomingDelivery, NetworkInterface, NicInterrupt, SnoopOutcome};
pub use nipt::{Nipt, NiptEntry, OutSegment, UpdatePolicy};
pub use packet::{
    crc32, Crc32, FrameKind, LinkCtl, PacketStamp, Payload, ShrimpPacket, WireHeader,
    INLINE_PAYLOAD_MAX,
};
pub use stats::NicStats;
pub use unpinned::{IotlbStats, UnpinnedNicModel};

/// Builds a [`Payload`] of `len` bytes backed by a pooled [`arena`]
/// buffer, filled in place by `fill`. This is the supported way for bus
/// glue (the deliberate-update DMA read in `shrimp-core`) to hand the
/// NIC a zero-extra-copy payload without reaching into the arena
/// directly.
pub fn pooled_payload(len: usize, fill: impl FnOnce(&mut [u8])) -> Payload {
    let mut buf = arena::take(len);
    fill(&mut buf);
    Payload::from(buf)
}
