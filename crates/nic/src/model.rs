//! The pluggable NIC backend boundary.
//!
//! [`NicModel`] captures exactly the surface the machine model
//! (`shrimp-core`'s `node.rs` / `machine.rs`) consumes from a network
//! interface: the snoop/command datapath, the inject/eject pump, DMA
//! delivery, map/unmap + shootdown hooks, and counters. Two backends
//! implement it:
//!
//! - [`ShrimpNicModel`] — the paper's pinned design (map-time pinning,
//!   NIPT translation at the NIC); this is [`NetworkInterface`], the
//!   reference implementation.
//! - [`crate::unpinned::UnpinnedNicModel`] — an NP-RDMA-style design
//!   with no map-time pinning: outgoing translation goes through a
//!   bounded IOTLB whose misses trigger deterministic dynamic map-ins.
//!
//! [`AnyNic`] is the enum the machine embeds in each node. Enum (not
//! generic) dispatch keeps `Node` a single concrete type, which the
//! conservative parallel engine requires: its worker pool crosses raw
//! node pointers between threads, and worker byte-identity is proven
//! for one node layout, not a family of instantiations.

use shrimp_mem::{PageNum, PhysAddr};
use shrimp_mesh::{MeshPacket, MeshShape, NodeId};
use shrimp_sim::fault::NicFaultSite;
use shrimp_sim::{MetricsRegistry, SimTime, Tracer};

use crate::command::CommandSpace;
use crate::config::NicConfig;
use crate::datapath::{CommandEffect, NicInterrupt, SnoopOutcome};
use crate::error::NicError;
use crate::incoming::IncomingDelivery;
use crate::nic::NetworkInterface;
use crate::nipt::{Nipt, OutSegment};
use crate::packet::{Payload, ShrimpPacket};
use crate::stats::NicStats;
use crate::unpinned::{IotlbStats, UnpinnedNicModel};

/// Which NIC backend a machine is built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NicBackend {
    /// The paper's design: pages are pinned at map time and the NIPT at
    /// the NIC always holds a valid translation.
    #[default]
    Shrimp,
    /// NP-RDMA-style: no map-time pinning; outgoing translations are
    /// cached in a bounded IOTLB and faulted in dynamically on miss.
    Unpinned,
}

impl NicBackend {
    /// The DSL/CLI spelling of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            NicBackend::Shrimp => "shrimp",
            NicBackend::Unpinned => "unpinned",
        }
    }

    /// Parses the DSL/CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "shrimp" => Some(NicBackend::Shrimp),
            "unpinned" => Some(NicBackend::Unpinned),
            _ => None,
        }
    }
}

/// The paper's pinned NIC — the reference [`NicModel`] implementation.
pub type ShrimpNicModel = NetworkInterface;

/// The surface `shrimp-core` consumes from a NIC backend.
///
/// The default method bodies implement the map/unmap hooks directly on
/// the NIPT — the pinned behaviour. A backend with extra translation
/// state (the unpinned IOTLB) overrides them to observe kernel-side
/// mapping changes, and overrides [`NicModel::invalidate_translation`]
/// — the shootdown hook — to drop cached translations.
pub trait NicModel {
    /// This NIC's node id.
    fn node(&self) -> NodeId;
    /// The configuration in force.
    fn config(&self) -> &NicConfig;
    /// Installs the typed trace sink.
    fn set_tracer(&mut self, tracer: Tracer);
    /// The trace events recorded by this NIC so far.
    fn tracer(&self) -> &Tracer;
    /// Arms transient receive-stall fault injection.
    fn set_fault_injection(&mut self, site: NicFaultSite);
    /// The network interface page table (shared by both backends: it is
    /// the single source of translation truth; the unpinned backend's
    /// IOTLB only caches *residency*).
    fn nipt(&self) -> &Nipt;
    /// Mutable access to the NIPT. Kernel code should prefer the typed
    /// hooks ([`NicModel::map_in`], [`NicModel::map_out_segment`],
    /// [`NicModel::unmap_out`]) so backends observe the transition.
    fn nipt_mut(&mut self) -> &mut Nipt;
    /// The command address region.
    fn command_space(&self) -> CommandSpace;
    /// Counter snapshot.
    fn stats(&self) -> NicStats;
    /// Registers counters and gauges under `prefix`.
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str);

    // ── datapath ─────────────────────────────────────────────────────
    /// Reacts to a snooped write transaction on the memory bus.
    fn snoop_write(&mut self, now: SimTime, addr: PhysAddr, data: &[u8]) -> SnoopOutcome;
    /// True if `addr` is one of this NIC's command addresses.
    fn is_command_addr(&self, addr: PhysAddr) -> bool;
    /// A read cycle on a command address (the DMA status word).
    fn command_read(&mut self, now: SimTime, addr: PhysAddr) -> u32;
    /// A write cycle on a command address; `mem_read` performs the
    /// deliberate-update source read over the memory bus.
    ///
    /// # Errors
    ///
    /// See [`NetworkInterface::command_write`].
    fn command_write(
        &mut self,
        now: SimTime,
        addr: PhysAddr,
        value: u32,
        mem_read: impl FnOnce(PhysAddr, u64) -> (Payload, SimTime),
    ) -> Result<CommandEffect, NicError>;

    // ── pump ─────────────────────────────────────────────────────────
    /// Housekeeping whenever simulated time advances.
    fn poll(&mut self, now: SimTime);
    /// The next time-based deadline this NIC needs a `poll` at.
    fn next_deadline(&self) -> Option<SimTime>;
    /// True while mapped writes must stall the CPU.
    fn cpu_must_stall(&self) -> bool;

    // ── inject / eject ───────────────────────────────────────────────
    /// When the head outgoing packet becomes ready for injection.
    fn outgoing_ready_at(&self) -> Option<SimTime>;
    /// Pops the next outgoing mesh packet ready by `now`.
    fn pop_outgoing(&mut self, now: SimTime) -> Option<MeshPacket<ShrimpPacket>>;
    /// True when control frames or replays are waiting to inject.
    fn has_pending_control(&self) -> bool;
    /// True while the NIC accepts packets from the network at `now`.
    fn can_accept_from_network_at(&self, now: SimTime) -> bool;
    /// Accepts one packet from the mesh.
    ///
    /// # Errors
    ///
    /// See [`NetworkInterface::accept_packet`].
    fn accept_packet(
        &mut self,
        now: SimTime,
        packet: MeshPacket<ShrimpPacket>,
    ) -> Result<(), NicError>;
    /// Pops the head incoming delivery once it clears the receive
    /// pipeline.
    fn pop_incoming(&mut self, now: SimTime) -> Option<Result<IncomingDelivery, NicError>>;
    /// When the head incoming packet clears the receive pipeline.
    fn incoming_ready_at(&self) -> Option<SimTime>;
    /// Drains raised interrupts.
    fn take_interrupts(&mut self) -> Vec<NicInterrupt>;
    /// Outgoing FIFO occupancy in bytes.
    fn out_fifo_bytes(&self) -> u64;
    /// Incoming FIFO occupancy in bytes.
    fn in_fifo_bytes(&self) -> u64;

    // ── map / unmap + shootdown hooks ────────────────────────────────
    /// Kernel hook: a page became (un)importable — receive-side mapping.
    ///
    /// # Errors
    ///
    /// Propagates [`Nipt::set_mapped_in`] failures (off-table page).
    fn map_in(&mut self, page: PageNum, mapped: bool) -> Result<(), NicError> {
        self.nipt_mut().set_mapped_in(page, mapped)?;
        if !mapped {
            self.invalidate_translation(page);
        }
        Ok(())
    }
    /// Kernel hook: an outgoing mapping segment was installed/rewritten.
    ///
    /// # Errors
    ///
    /// Propagates [`Nipt::set_out_segment`] failures (overlap, bad
    /// segment).
    fn map_out_segment(&mut self, page: PageNum, seg: OutSegment) -> Result<(), NicError> {
        self.nipt_mut().set_out_segment(page, seg)
    }
    /// Kernel hook: the outgoing segment of `page` at `offset` was torn
    /// down. Cached translations for the page are shot down.
    fn unmap_out(&mut self, page: PageNum, offset: u64) -> Option<OutSegment> {
        let seg = self.nipt_mut().clear_out_segment(page, offset);
        self.invalidate_translation(page);
        seg
    }
    /// Shootdown hook: every cached translation for `page` must be
    /// dropped (TLB-shootdown analogue). A no-op on the pinned backend,
    /// whose NIPT is always authoritative.
    fn invalidate_translation(&mut self, page: PageNum) {
        let _ = page;
    }
    /// IOTLB counters, when the backend has one.
    fn iotlb_stats(&self) -> Option<IotlbStats> {
        None
    }
}

impl NicModel for NetworkInterface {
    fn node(&self) -> NodeId {
        NetworkInterface::node(self)
    }
    fn config(&self) -> &NicConfig {
        NetworkInterface::config(self)
    }
    fn set_tracer(&mut self, tracer: Tracer) {
        NetworkInterface::set_tracer(self, tracer);
    }
    fn tracer(&self) -> &Tracer {
        NetworkInterface::tracer(self)
    }
    fn set_fault_injection(&mut self, site: NicFaultSite) {
        NetworkInterface::set_fault_injection(self, site);
    }
    fn nipt(&self) -> &Nipt {
        NetworkInterface::nipt(self)
    }
    fn nipt_mut(&mut self) -> &mut Nipt {
        NetworkInterface::nipt_mut(self)
    }
    fn command_space(&self) -> CommandSpace {
        NetworkInterface::command_space(self)
    }
    fn stats(&self) -> NicStats {
        NetworkInterface::stats(self)
    }
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        NetworkInterface::register_metrics(self, reg, prefix);
    }
    fn snoop_write(&mut self, now: SimTime, addr: PhysAddr, data: &[u8]) -> SnoopOutcome {
        NetworkInterface::snoop_write(self, now, addr, data)
    }
    fn is_command_addr(&self, addr: PhysAddr) -> bool {
        NetworkInterface::is_command_addr(self, addr)
    }
    fn command_read(&mut self, now: SimTime, addr: PhysAddr) -> u32 {
        NetworkInterface::command_read(self, now, addr)
    }
    fn command_write(
        &mut self,
        now: SimTime,
        addr: PhysAddr,
        value: u32,
        mem_read: impl FnOnce(PhysAddr, u64) -> (Payload, SimTime),
    ) -> Result<CommandEffect, NicError> {
        NetworkInterface::command_write(self, now, addr, value, mem_read)
    }
    fn poll(&mut self, now: SimTime) {
        NetworkInterface::poll(self, now);
    }
    fn next_deadline(&self) -> Option<SimTime> {
        NetworkInterface::next_deadline(self)
    }
    fn cpu_must_stall(&self) -> bool {
        NetworkInterface::cpu_must_stall(self)
    }
    fn outgoing_ready_at(&self) -> Option<SimTime> {
        NetworkInterface::outgoing_ready_at(self)
    }
    fn pop_outgoing(&mut self, now: SimTime) -> Option<MeshPacket<ShrimpPacket>> {
        NetworkInterface::pop_outgoing(self, now)
    }
    fn has_pending_control(&self) -> bool {
        NetworkInterface::has_pending_control(self)
    }
    fn can_accept_from_network_at(&self, now: SimTime) -> bool {
        NetworkInterface::can_accept_from_network_at(self, now)
    }
    fn accept_packet(
        &mut self,
        now: SimTime,
        packet: MeshPacket<ShrimpPacket>,
    ) -> Result<(), NicError> {
        NetworkInterface::accept_packet(self, now, packet)
    }
    fn pop_incoming(&mut self, now: SimTime) -> Option<Result<IncomingDelivery, NicError>> {
        NetworkInterface::pop_incoming(self, now)
    }
    fn incoming_ready_at(&self) -> Option<SimTime> {
        NetworkInterface::incoming_ready_at(self)
    }
    fn take_interrupts(&mut self) -> Vec<NicInterrupt> {
        NetworkInterface::take_interrupts(self)
    }
    fn out_fifo_bytes(&self) -> u64 {
        NetworkInterface::out_fifo_bytes(self)
    }
    fn in_fifo_bytes(&self) -> u64 {
        NetworkInterface::in_fifo_bytes(self)
    }
}

/// The backend a node actually embeds: enum dispatch over the
/// [`NicModel`] family (see the module docs for why not generics).
#[derive(Debug, Clone)]
pub enum AnyNic {
    /// The pinned reference backend.
    Shrimp(ShrimpNicModel),
    /// The NP-RDMA-style unpinned backend.
    Unpinned(UnpinnedNicModel),
}

impl AnyNic {
    /// Builds the selected backend for `node`.
    pub fn new(
        backend: NicBackend,
        node: NodeId,
        shape: MeshShape,
        config: NicConfig,
        num_pages: u64,
    ) -> Self {
        match backend {
            NicBackend::Shrimp => {
                AnyNic::Shrimp(NetworkInterface::new(node, shape, config, num_pages))
            }
            NicBackend::Unpinned => {
                AnyNic::Unpinned(UnpinnedNicModel::new(node, shape, config, num_pages))
            }
        }
    }

    /// Which backend this is.
    pub fn backend(&self) -> NicBackend {
        match self {
            AnyNic::Shrimp(_) => NicBackend::Shrimp,
            AnyNic::Unpinned(_) => NicBackend::Unpinned,
        }
    }

    /// The unpinned backend, if that is what this node runs.
    pub fn as_unpinned(&self) -> Option<&UnpinnedNicModel> {
        match self {
            AnyNic::Shrimp(_) => None,
            AnyNic::Unpinned(n) => Some(n),
        }
    }
}

/// Forwards every [`NicModel`] method to the active variant.
macro_rules! dispatch {
    ($self:ident, $n:ident => $body:expr) => {
        match $self {
            AnyNic::Shrimp($n) => $body,
            AnyNic::Unpinned($n) => $body,
        }
    };
}

impl NicModel for AnyNic {
    fn node(&self) -> NodeId {
        dispatch!(self, n => n.node())
    }
    fn config(&self) -> &NicConfig {
        dispatch!(self, n => n.config())
    }
    fn set_tracer(&mut self, tracer: Tracer) {
        dispatch!(self, n => n.set_tracer(tracer))
    }
    fn tracer(&self) -> &Tracer {
        dispatch!(self, n => n.tracer())
    }
    fn set_fault_injection(&mut self, site: NicFaultSite) {
        dispatch!(self, n => n.set_fault_injection(site))
    }
    fn nipt(&self) -> &Nipt {
        dispatch!(self, n => n.nipt())
    }
    fn nipt_mut(&mut self) -> &mut Nipt {
        dispatch!(self, n => n.nipt_mut())
    }
    fn command_space(&self) -> CommandSpace {
        dispatch!(self, n => n.command_space())
    }
    fn stats(&self) -> NicStats {
        dispatch!(self, n => n.stats())
    }
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        dispatch!(self, n => n.register_metrics(reg, prefix))
    }
    fn snoop_write(&mut self, now: SimTime, addr: PhysAddr, data: &[u8]) -> SnoopOutcome {
        dispatch!(self, n => n.snoop_write(now, addr, data))
    }
    fn is_command_addr(&self, addr: PhysAddr) -> bool {
        dispatch!(self, n => n.is_command_addr(addr))
    }
    fn command_read(&mut self, now: SimTime, addr: PhysAddr) -> u32 {
        dispatch!(self, n => n.command_read(now, addr))
    }
    fn command_write(
        &mut self,
        now: SimTime,
        addr: PhysAddr,
        value: u32,
        mem_read: impl FnOnce(PhysAddr, u64) -> (Payload, SimTime),
    ) -> Result<CommandEffect, NicError> {
        dispatch!(self, n => n.command_write(now, addr, value, mem_read))
    }
    fn poll(&mut self, now: SimTime) {
        dispatch!(self, n => n.poll(now))
    }
    fn next_deadline(&self) -> Option<SimTime> {
        dispatch!(self, n => n.next_deadline())
    }
    fn cpu_must_stall(&self) -> bool {
        dispatch!(self, n => n.cpu_must_stall())
    }
    fn outgoing_ready_at(&self) -> Option<SimTime> {
        dispatch!(self, n => n.outgoing_ready_at())
    }
    fn pop_outgoing(&mut self, now: SimTime) -> Option<MeshPacket<ShrimpPacket>> {
        dispatch!(self, n => n.pop_outgoing(now))
    }
    fn has_pending_control(&self) -> bool {
        dispatch!(self, n => n.has_pending_control())
    }
    fn can_accept_from_network_at(&self, now: SimTime) -> bool {
        dispatch!(self, n => n.can_accept_from_network_at(now))
    }
    fn accept_packet(
        &mut self,
        now: SimTime,
        packet: MeshPacket<ShrimpPacket>,
    ) -> Result<(), NicError> {
        dispatch!(self, n => n.accept_packet(now, packet))
    }
    fn pop_incoming(&mut self, now: SimTime) -> Option<Result<IncomingDelivery, NicError>> {
        dispatch!(self, n => n.pop_incoming(now))
    }
    fn incoming_ready_at(&self) -> Option<SimTime> {
        dispatch!(self, n => n.incoming_ready_at())
    }
    fn take_interrupts(&mut self) -> Vec<NicInterrupt> {
        dispatch!(self, n => n.take_interrupts())
    }
    fn out_fifo_bytes(&self) -> u64 {
        dispatch!(self, n => n.out_fifo_bytes())
    }
    fn in_fifo_bytes(&self) -> u64 {
        dispatch!(self, n => n.in_fifo_bytes())
    }
    fn map_in(&mut self, page: PageNum, mapped: bool) -> Result<(), NicError> {
        dispatch!(self, n => n.map_in(page, mapped))
    }
    fn map_out_segment(&mut self, page: PageNum, seg: OutSegment) -> Result<(), NicError> {
        dispatch!(self, n => n.map_out_segment(page, seg))
    }
    fn unmap_out(&mut self, page: PageNum, offset: u64) -> Option<OutSegment> {
        dispatch!(self, n => n.unmap_out(page, offset))
    }
    fn invalidate_translation(&mut self, page: PageNum) {
        dispatch!(self, n => n.invalidate_translation(page))
    }
    fn iotlb_stats(&self) -> Option<IotlbStats> {
        // Qualified: the unpinned backend also has an inherent
        // `iotlb_stats` returning the bare struct.
        dispatch!(self, n => NicModel::iotlb_stats(n))
    }
}
