//! The network interface state machine.
//!
//! [`NetworkInterface`] composes the NIPT, FIFOs, DMA engine and command
//! space into the datapath of Figure 4. It is a passive component: the
//! machine model in `shrimp-core` feeds it snooped bus writes, drains its
//! Outgoing FIFO into the mesh, offers it arriving mesh packets, and
//! performs the EISA DMA for deliveries it pops from the Incoming FIFO.
//!
//! The behaviour is split across sibling modules, all implementing
//! methods on [`NetworkInterface`]:
//!
//! - [`crate::datapath`] — snooped automatic updates and command-driven
//!   deliberate updates,
//! - [`crate::outgoing`] — Outgoing FIFO, overflow spill/refill, and the
//!   FIFO→mesh injection path,
//! - [`crate::incoming`] — mesh→Incoming FIFO acceptance and delivery,
//! - [`crate::retx`] — go-back-N retransmission and bounce/reroute
//!   recovery,
//! - [`crate::stats`] — counters and registry wiring.
//!
//! This module keeps the struct itself, construction, and the shared
//! housekeeping (`poll` / `next_deadline`).

use shrimp_mesh::{MeshCoord, MeshShape, NodeId};
use shrimp_sim::fault::NicFaultSite;
use shrimp_sim::{ComponentId, MetricSet, SimTime, Tracer};

use crate::command::CommandSpace;
use crate::config::NicConfig;
use crate::dma::DmaEngine;
use crate::fifo::PacketFifo;
use crate::nipt::Nipt;
use crate::packet::ShrimpPacket;

// Re-exports so the long-standing `shrimp_nic::nic::*` paths keep
// resolving after the module split.
pub use crate::datapath::{CommandEffect, NicInterrupt, SnoopOutcome};
pub use crate::incoming::IncomingDelivery;
pub use crate::stats::NicStats;

pub(crate) use crate::datapath::PendingBlocked;
pub(crate) use crate::retx::RetxState;
pub(crate) use crate::stats::NicCounterIds;

/// The SHRIMP network interface of one node.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct NetworkInterface {
    pub(crate) node: NodeId,
    pub(crate) coord: MeshCoord,
    pub(crate) shape: MeshShape,
    pub(crate) config: NicConfig,
    pub(crate) nipt: Nipt,
    pub(crate) cmd_space: CommandSpace,
    pub(crate) out_fifo: PacketFifo,
    pub(crate) in_fifo: PacketFifo,
    pub(crate) pending: Option<PendingBlocked>,
    pub(crate) overflow: std::collections::VecDeque<ShrimpPacket>,
    pub(crate) dma: DmaEngine,
    pub(crate) interrupts: Vec<NicInterrupt>,
    pub(crate) out_threshold_raised: bool,
    /// Go-back-N engine state; `None` when retransmission is disabled.
    pub(crate) retx: Option<RetxState>,
    /// Pending ack/nack frames `(ready_at, dst, frame)`. Control frames
    /// bypass the data FIFO: the hardware generates them on the receive
    /// side and data backpressure must not block them (deadlock).
    pub(crate) ctl_queue: std::collections::VecDeque<(SimTime, NodeId, ShrimpPacket)>,
    /// Fault injection: transient receive stalls.
    pub(crate) fault: Option<NicFaultSite>,
    /// While set, the NIC refuses packets from the network.
    pub(crate) stall_until: Option<SimTime>,
    /// Hot-path counters, read back via [`NetworkInterface::stats`] or a
    /// [`shrimp_sim::MetricsRegistry`].
    pub(crate) metrics: MetricSet,
    /// Handles into `metrics`, resolved once at construction.
    pub(crate) ids: NicCounterIds,
    /// Typed trace sink (disabled by default: recording costs nothing).
    pub(crate) tracer: Tracer,
    /// Mirrors `in_fifo.over_threshold()` so threshold crossings emit
    /// exactly one raise/clear trace pair per backpressure episode.
    pub(crate) in_threshold_traced: bool,
}

impl NetworkInterface {
    /// Creates the NIC of `node` on a `shape` backplane with `num_pages`
    /// of local physical memory behind it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the node is off-mesh.
    pub fn new(node: NodeId, shape: MeshShape, config: NicConfig, num_pages: u64) -> Self {
        config.validate();
        let coord = shape.coord_of(node);
        let mut metrics = MetricSet::new();
        let ids = NicCounterIds::register(&mut metrics);
        NetworkInterface {
            node,
            coord,
            shape,
            config,
            nipt: Nipt::new(num_pages),
            cmd_space: CommandSpace::new(num_pages * shrimp_mem::PAGE_SIZE),
            out_fifo: PacketFifo::new(config.out_fifo_bytes, config.out_fifo_threshold),
            in_fifo: PacketFifo::new(config.in_fifo_bytes, config.in_fifo_threshold),
            pending: None,
            overflow: std::collections::VecDeque::new(),
            dma: DmaEngine::new(),
            interrupts: Vec::new(),
            out_threshold_raised: false,
            retx: config.retx.enabled.then(RetxState::default),
            ctl_queue: std::collections::VecDeque::new(),
            fault: None,
            stall_until: None,
            metrics,
            ids,
            tracer: Tracer::disabled(),
            in_threshold_traced: false,
        }
    }

    /// Installs the typed trace sink. Tracing is off until this is called
    /// (and free when the installed tracer is disabled).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The trace events recorded by this NIC so far.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// This NIC's trace component id (`nic0`, `nic1`, …).
    pub(crate) fn component(&self) -> ComponentId {
        ComponentId::nic(self.node.0)
    }

    /// Arms transient receive-stall fault injection on this NIC.
    pub fn set_fault_injection(&mut self, site: NicFaultSite) {
        self.fault = Some(site);
    }

    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This NIC's mesh coordinates.
    pub fn coord(&self) -> MeshCoord {
        self.coord
    }

    /// The configuration in force.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// The network interface page table.
    pub fn nipt(&self) -> &Nipt {
        &self.nipt
    }

    /// Mutable access to the NIPT — the `map` system call's target.
    pub fn nipt_mut(&mut self) -> &mut Nipt {
        &mut self.nipt
    }

    /// The command address region.
    pub fn command_space(&self) -> CommandSpace {
        self.cmd_space
    }

    /// The DMA engine (primarily for inspection in tests and benches).
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }

    /// Housekeeping: expires the blocked-write merge window and retries
    /// overflowed packets. Call whenever simulated time advances.
    pub fn poll(&mut self, now: SimTime) {
        if let Some(p) = &self.pending {
            // At or past the deadline the packet is terminated (>=, so a
            // wakeup scheduled exactly at the deadline makes progress).
            if now.saturating_since(p.last_write) >= self.config.merge_window {
                self.flush_pending(now);
            }
        }
        self.refill_from_overflow(now);
        self.clear_out_threshold(now);
        if self.stall_until.is_some_and(|s| now >= s) {
            self.stall_until = None;
        }
        self.poll_retx(now);
    }

    /// The next time-based deadline this NIC needs a `poll` at: merge
    /// window expiry, retransmit timer, or the end of an injected stall.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut deadline = self
            .pending
            .as_ref()
            .map(|p| p.last_write + self.config.merge_window);
        let fold = |t: SimTime, d: Option<SimTime>| Some(d.map_or(t, |cur| cur.min(t)));
        if let Some(s) = self.stall_until {
            deadline = fold(s, deadline);
        }
        if let Some(st) = &self.retx {
            for peer in st.send.values() {
                if let Some(t) = peer.timeout_at {
                    deadline = fold(t, deadline);
                }
            }
        }
        deadline
    }

    /// Drains raised interrupts.
    pub fn take_interrupts(&mut self) -> Vec<NicInterrupt> {
        std::mem::take(&mut self.interrupts)
    }
}
