//! The network interface state machine.
//!
//! [`NetworkInterface`] composes the NIPT, FIFOs, DMA engine and command
//! space into the datapath of Figure 4. It is a passive component: the
//! machine model in `shrimp-core` feeds it snooped bus writes, drains its
//! Outgoing FIFO into the mesh, offers it arriving mesh packets, and
//! performs the EISA DMA for deliveries it pops from the Incoming FIFO.

use shrimp_mem::{PhysAddr, PageNum, WORD_SIZE};
use shrimp_mesh::{MeshCoord, MeshPacket, MeshShape, NodeId};
use shrimp_sim::fault::NicFaultSite;
use shrimp_sim::{
    ComponentId, CounterId, MetricSet, MetricsRegistry, SimDuration, SimTime, TraceData,
    TraceLevel, Tracer,
};

use std::collections::BTreeMap;

use crate::command::{CommandOp, CommandSpace};
use crate::config::NicConfig;
use crate::dma::DmaEngine;
use crate::error::NicError;
use crate::fifo::PacketFifo;
use crate::nipt::{Nipt, OutSegment, UpdatePolicy};
use crate::packet::{FrameKind, LinkCtl, PacketStamp, Payload, ShrimpPacket, WireHeader};

/// What the NIC did with one snooped bus write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopOutcome {
    /// The address is not mapped out (or is mapped for deliberate update):
    /// the write is an ordinary memory write.
    Ignored,
    /// A packet was queued in the Outgoing FIFO (single-write automatic
    /// update, or a blocked-write flush).
    Queued,
    /// The write joined (or opened) a pending blocked-write packet.
    Merged,
    /// The Outgoing FIFO could not take the packet: the CPU must stall
    /// until the FIFO drains (paper §4). The data is buffered and will be
    /// queued by [`NetworkInterface::poll`] once space frees.
    Stalled,
}

impl SnoopOutcome {
    /// True when the write produced or joined an outgoing packet.
    pub fn queued(self) -> bool {
        matches!(self, SnoopOutcome::Queued | SnoopOutcome::Merged)
    }
}

/// The effect of a command-page write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandEffect {
    /// A deliberate-update transfer was started; the packet will be ready
    /// at the reported time.
    DmaStarted {
        /// When the DMA engine finishes reading and packetizing.
        done_at: SimTime,
    },
    /// The engine was busy; the hardware ignored the write. Correct code
    /// never sees this because the `CMPXCHG` read phase returns busy.
    DmaBusy,
    /// A mapping segment's update policy was switched.
    PolicyChanged,
    /// The interrupt-on-arrival request was armed or disarmed.
    InterruptToggled,
}

/// An interrupt raised towards the node CPU/kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicInterrupt {
    /// The Outgoing FIFO crossed its threshold; the CPU waits for it to
    /// drain.
    OutgoingThreshold,
    /// Data arrived for a page whose interrupt request was armed (§4.2).
    DataArrival {
        /// The page the data landed on.
        page: PageNum,
    },
    /// An arriving packet addressed a page that is not mapped in; the
    /// kernel is told so it can fault the offending connection.
    BadDelivery,
}

/// A packet popped from the Incoming FIFO, ready for the memory transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncomingDelivery {
    /// Destination physical address.
    pub dst_addr: PhysAddr,
    /// The data to deposit — the same buffer the sender packetized,
    /// passed along by refcount.
    pub data: Payload,
    /// Earliest time the memory transfer may start.
    pub ready_at: SimTime,
    /// The sending node.
    pub src: NodeId,
    /// True if the page's one-shot interrupt request was armed.
    pub interrupt: bool,
    /// Lifecycle timestamps carried by the packet through the datapath.
    pub stamp: PacketStamp,
}

/// Counters exposed by the NIC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Packets queued for the network.
    pub packets_sent: u64,
    /// Payload bytes queued for the network.
    pub bytes_sent: u64,
    /// Packets accepted from the network.
    pub packets_received: u64,
    /// Payload bytes accepted from the network.
    pub bytes_received: u64,
    /// Snooped writes merged into a pending blocked-write packet.
    pub merged_writes: u64,
    /// Packets produced by the single-write path.
    pub single_write_packets: u64,
    /// Packets produced by the blocked-write path.
    pub blocked_write_packets: u64,
    /// Packets produced by the deliberate-update DMA engine.
    pub dma_packets: u64,
    /// Arriving packets dropped for CRC/framing errors.
    pub crc_drops: u64,
    /// Arriving packets dropped because they were misrouted.
    pub misroutes: u64,
    /// Arriving packets addressed to pages that are not mapped in.
    pub unmapped_drops: u64,
    /// Data packets re-sent by the go-back-N engine.
    pub retransmissions: u64,
    /// Retransmit timeouts that fired (each rewinds one send window).
    pub retx_timeouts: u64,
    /// Ack control frames generated.
    pub acks_sent: u64,
    /// Ack control frames consumed.
    pub acks_received: u64,
    /// Nack control frames generated.
    pub nacks_sent: u64,
    /// Nack control frames consumed.
    pub nacks_received: u64,
    /// Arriving data frames dropped as already-delivered duplicates.
    pub dup_drops: u64,
    /// Arriving data frames dropped for a sequence gap (a predecessor
    /// was lost; go-back-N refetches from the hole).
    pub gap_drops: u64,
    /// Injected receive-FIFO stalls (fault injection).
    pub fault_stalls: u64,
    /// Elevated retransmit backoffs reset by ack progress.
    pub gbn_backoff_resets: u64,
    /// Gap nacks suppressed because the hole was already nacked (the
    /// nack-storm guard fired).
    pub gbn_nack_suppressions: u64,
    /// Own frames returned by the mesh bounce path (no route to the
    /// destination under the link set in force).
    pub gbn_bounces: u64,
}

/// Registry handles into the NIC's [`MetricSet`], one per [`NicStats`]
/// counter. Resolved once at construction so every hot-path increment is
/// an indexed vector add, never a name lookup.
#[derive(Debug, Clone, Copy)]
struct NicCounterIds {
    packets_sent: CounterId,
    bytes_sent: CounterId,
    packets_received: CounterId,
    bytes_received: CounterId,
    merged_writes: CounterId,
    single_write_packets: CounterId,
    blocked_write_packets: CounterId,
    dma_packets: CounterId,
    crc_drops: CounterId,
    misroutes: CounterId,
    unmapped_drops: CounterId,
    retransmissions: CounterId,
    retx_timeouts: CounterId,
    acks_sent: CounterId,
    acks_received: CounterId,
    nacks_sent: CounterId,
    nacks_received: CounterId,
    dup_drops: CounterId,
    gap_drops: CounterId,
    fault_stalls: CounterId,
    gbn_retransmissions: CounterId,
    gbn_backoff_resets: CounterId,
    gbn_nack_suppressions: CounterId,
    gbn_bounces: CounterId,
}

impl NicCounterIds {
    /// Registers every NIC counter in `set`. The dotted names become
    /// registry entries under the NIC's prefix, e.g.
    /// `nic0.retx.timeouts`.
    fn register(set: &mut MetricSet) -> Self {
        NicCounterIds {
            packets_sent: set.counter("packets_sent"),
            bytes_sent: set.counter("bytes_sent"),
            packets_received: set.counter("packets_received"),
            bytes_received: set.counter("bytes_received"),
            merged_writes: set.counter("merged_writes"),
            single_write_packets: set.counter("single_write_packets"),
            blocked_write_packets: set.counter("blocked_write_packets"),
            dma_packets: set.counter("dma_packets"),
            crc_drops: set.counter("crc_drops"),
            misroutes: set.counter("misroutes"),
            unmapped_drops: set.counter("unmapped_drops"),
            retransmissions: set.counter("retx.retransmissions"),
            retx_timeouts: set.counter("retx.timeouts"),
            acks_sent: set.counter("retx.acks_sent"),
            acks_received: set.counter("retx.acks_received"),
            nacks_sent: set.counter("retx.nacks_sent"),
            nacks_received: set.counter("retx.nacks_received"),
            dup_drops: set.counter("retx.dup_drops"),
            gap_drops: set.counter("retx.gap_drops"),
            fault_stalls: set.counter("fault_stalls"),
            // Go-back-N health rollup: one namespace a churn soak can
            // assert recovery against. `gbn.retransmissions` mirrors
            // `retx.retransmissions` so the namespace is self-contained.
            gbn_retransmissions: set.counter("gbn.retransmissions"),
            gbn_backoff_resets: set.counter("gbn.backoff_resets"),
            gbn_nack_suppressions: set.counter("gbn.nack_suppressions"),
            gbn_bounces: set.counter("gbn.bounces"),
        }
    }
}

/// Go-back-N sender state toward one destination node.
#[derive(Debug, Clone)]
struct SendPeer {
    /// Sequence number the next new data frame will carry.
    next_seq: u32,
    /// Lowest unacknowledged sequence number.
    base_seq: u32,
    /// Frames `base_seq..next_seq`, retained until cumulatively acked.
    unacked: std::collections::VecDeque<ShrimpPacket>,
    /// When `Some(s)`, the engine is replaying `s..next_seq` ahead of any
    /// new data.
    resend_from: Option<u32>,
    /// Current retransmit timeout (doubles on expiry, capped).
    rto: SimDuration,
    /// Deadline of the running retransmit timer, armed while frames are
    /// outstanding.
    timeout_at: Option<SimTime>,
}

impl SendPeer {
    fn new(rto: SimDuration) -> Self {
        SendPeer {
            next_seq: 0,
            base_seq: 0,
            unacked: std::collections::VecDeque::new(),
            resend_from: None,
            rto,
            timeout_at: None,
        }
    }
}

/// Go-back-N receiver state from one source node.
#[derive(Debug, Clone, Default)]
struct RecvPeer {
    /// Next in-order sequence number wanted.
    expected: u32,
    /// Last sequence nacked, to suppress a nack storm while the same
    /// hole drains; cleared on progress.
    last_nacked: Option<u32>,
}

/// All go-back-N state of one NIC (present only when
/// [`crate::RetxConfig::enabled`] is set).
#[derive(Debug, Clone, Default)]
struct RetxState {
    /// Sender books, keyed by destination node id (BTreeMap for
    /// deterministic iteration order).
    send: BTreeMap<u16, SendPeer>,
    /// Receiver books, keyed by source node id.
    recv: BTreeMap<u16, RecvPeer>,
}

#[derive(Debug, Clone)]
struct PendingBlocked {
    dst_node: NodeId,
    dst_base: PhysAddr,
    src_page: PageNum,
    next_offset: u64,
    data: crate::arena::PoolBuf,
    last_write: SimTime,
}

/// The SHRIMP network interface of one node.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct NetworkInterface {
    node: NodeId,
    coord: MeshCoord,
    shape: MeshShape,
    config: NicConfig,
    nipt: Nipt,
    cmd_space: CommandSpace,
    out_fifo: PacketFifo,
    in_fifo: PacketFifo,
    pending: Option<PendingBlocked>,
    overflow: std::collections::VecDeque<ShrimpPacket>,
    dma: DmaEngine,
    interrupts: Vec<NicInterrupt>,
    out_threshold_raised: bool,
    /// Go-back-N engine state; `None` when retransmission is disabled.
    retx: Option<RetxState>,
    /// Pending ack/nack frames `(ready_at, dst, frame)`. Control frames
    /// bypass the data FIFO: the hardware generates them on the receive
    /// side and data backpressure must not block them (deadlock).
    ctl_queue: std::collections::VecDeque<(SimTime, NodeId, ShrimpPacket)>,
    /// Fault injection: transient receive stalls.
    fault: Option<NicFaultSite>,
    /// While set, the NIC refuses packets from the network.
    stall_until: Option<SimTime>,
    /// Hot-path counters, read back via [`NetworkInterface::stats`] or a
    /// [`MetricsRegistry`].
    metrics: MetricSet,
    /// Handles into `metrics`, resolved once at construction.
    ids: NicCounterIds,
    /// Typed trace sink (disabled by default: recording costs nothing).
    tracer: Tracer,
    /// Mirrors `in_fifo.over_threshold()` so threshold crossings emit
    /// exactly one raise/clear trace pair per backpressure episode.
    in_threshold_traced: bool,
}

impl NetworkInterface {
    /// Creates the NIC of `node` on a `shape` backplane with `num_pages`
    /// of local physical memory behind it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the node is off-mesh.
    pub fn new(node: NodeId, shape: MeshShape, config: NicConfig, num_pages: u64) -> Self {
        config.validate();
        let coord = shape.coord_of(node);
        let mut metrics = MetricSet::new();
        let ids = NicCounterIds::register(&mut metrics);
        NetworkInterface {
            node,
            coord,
            shape,
            config,
            nipt: Nipt::new(num_pages),
            cmd_space: CommandSpace::new(num_pages * shrimp_mem::PAGE_SIZE),
            out_fifo: PacketFifo::new(config.out_fifo_bytes, config.out_fifo_threshold),
            in_fifo: PacketFifo::new(config.in_fifo_bytes, config.in_fifo_threshold),
            pending: None,
            overflow: std::collections::VecDeque::new(),
            dma: DmaEngine::new(),
            interrupts: Vec::new(),
            out_threshold_raised: false,
            retx: config.retx.enabled.then(RetxState::default),
            ctl_queue: std::collections::VecDeque::new(),
            fault: None,
            stall_until: None,
            metrics,
            ids,
            tracer: Tracer::disabled(),
            in_threshold_traced: false,
        }
    }

    /// Installs the typed trace sink. Tracing is off until this is called
    /// (and free when the installed tracer is disabled).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The trace events recorded by this NIC so far.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// This NIC's trace component id (`nic0`, `nic1`, …).
    fn component(&self) -> ComponentId {
        ComponentId::nic(self.node.0)
    }

    /// Arms transient receive-stall fault injection on this NIC.
    pub fn set_fault_injection(&mut self, site: NicFaultSite) {
        self.fault = Some(site);
    }

    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This NIC's mesh coordinates.
    pub fn coord(&self) -> MeshCoord {
        self.coord
    }

    /// The configuration in force.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// The network interface page table.
    pub fn nipt(&self) -> &Nipt {
        &self.nipt
    }

    /// Mutable access to the NIPT — the `map` system call's target.
    pub fn nipt_mut(&mut self) -> &mut Nipt {
        &mut self.nipt
    }

    /// The command address region.
    pub fn command_space(&self) -> CommandSpace {
        self.cmd_space
    }

    /// Counters, rebuilt as a plain struct from the metric set (the
    /// registry view is [`NetworkInterface::register_metrics`]).
    pub fn stats(&self) -> NicStats {
        let v = |id| self.metrics.get(id);
        NicStats {
            packets_sent: v(self.ids.packets_sent),
            bytes_sent: v(self.ids.bytes_sent),
            packets_received: v(self.ids.packets_received),
            bytes_received: v(self.ids.bytes_received),
            merged_writes: v(self.ids.merged_writes),
            single_write_packets: v(self.ids.single_write_packets),
            blocked_write_packets: v(self.ids.blocked_write_packets),
            dma_packets: v(self.ids.dma_packets),
            crc_drops: v(self.ids.crc_drops),
            misroutes: v(self.ids.misroutes),
            unmapped_drops: v(self.ids.unmapped_drops),
            retransmissions: v(self.ids.retransmissions),
            retx_timeouts: v(self.ids.retx_timeouts),
            acks_sent: v(self.ids.acks_sent),
            acks_received: v(self.ids.acks_received),
            nacks_sent: v(self.ids.nacks_sent),
            nacks_received: v(self.ids.nacks_received),
            dup_drops: v(self.ids.dup_drops),
            gap_drops: v(self.ids.gap_drops),
            fault_stalls: v(self.ids.fault_stalls),
            gbn_backoff_resets: v(self.ids.gbn_backoff_resets),
            gbn_nack_suppressions: v(self.ids.gbn_nack_suppressions),
            gbn_bounces: v(self.ids.gbn_bounces),
        }
    }

    /// Registers this NIC's counters and FIFO gauges under `prefix`
    /// (e.g. `nic0` → `nic0.packets_sent`, `nic0.fifo.out.occupancy`).
    pub fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.extend_set(prefix, &self.metrics);
        for (name, fifo) in [("out", &self.out_fifo), ("in", &self.in_fifo)] {
            reg.set_gauge(format!("{prefix}.fifo.{name}.occupancy"), fifo.bytes() as f64);
            reg.set_counter(format!("{prefix}.fifo.{name}.peak_bytes"), fifo.high_watermark());
            reg.set_counter(format!("{prefix}.fifo.{name}.pushes"), fifo.pushes());
            reg.set_counter(format!("{prefix}.fifo.{name}.rejections"), fifo.rejections());
        }
    }

    /// The DMA engine (primarily for inspection in tests and benches).
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }

    // ───────────────────────── outgoing: snoop path ──────────────────────

    /// Reacts to a snooped write transaction on the memory bus.
    ///
    /// `addr` must be a data (not command) address; the machine routes
    /// command-space stores to [`NetworkInterface::command_write`].
    pub fn snoop_write(&mut self, now: SimTime, addr: PhysAddr, data: &[u8]) -> SnoopOutcome {
        // A pending blocked-write packet must be terminated by any
        // non-mergeable intervening write.
        let mergeable = self.pending.as_ref().is_some_and(|p| {
            addr.page() == p.src_page
                && addr.offset() == p.next_offset
                && now.saturating_since(p.last_write) <= self.config.merge_window
                && p.data.len() + data.len() <= self.config.max_payload as usize
        });

        let seg = match self.nipt.lookup_out(addr) {
            Some(seg) if seg.policy.is_automatic() => *seg,
            _ => {
                // Deliberate pages and unmapped pages: plain memory write;
                // but it still terminates a pending merge on another page?
                // No: only writes the NIC captures interact with the merge
                // buffer. Expire it on time alone.
                self.poll(now);
                return SnoopOutcome::Ignored;
            }
        };

        match seg.policy {
            UpdatePolicy::AutomaticSingle => {
                self.flush_pending(now);
                let dst = seg.translate(addr.offset());
                self.metrics.incr(self.ids.single_write_packets);
                // A snooped store is at most a word: the payload inlines.
                self.queue_packet(
                    now + self.config.packetize_latency,
                    seg.dst_node,
                    dst,
                    Payload::copy_from_slice(data),
                )
            }
            UpdatePolicy::AutomaticBlocked => {
                if mergeable
                    && self
                        .pending
                        .as_ref()
                        .is_some_and(|p| p.dst_node == seg.dst_node)
                {
                    let p = self.pending.as_mut().expect("mergeable implies pending");
                    p.data.vec_mut().extend_from_slice(data);
                    p.next_offset += data.len() as u64;
                    p.last_write = now;
                    self.metrics.incr(self.ids.merged_writes);
                    SnoopOutcome::Merged
                } else {
                    self.flush_pending(now);
                    self.pending = Some(PendingBlocked {
                        dst_node: seg.dst_node,
                        dst_base: seg.translate(addr.offset()),
                        src_page: addr.page(),
                        next_offset: addr.offset() + data.len() as u64,
                        data: {
                            let mut buf = crate::arena::take(0);
                            buf.vec_mut().extend_from_slice(data);
                            buf
                        },
                        last_write: now,
                    });
                    SnoopOutcome::Merged
                }
            }
            UpdatePolicy::Deliberate => unreachable!("filtered above"),
        }
    }

    /// Terminates the pending blocked-write packet, if any, queueing it.
    /// Returns true if a packet was flushed.
    pub fn flush_pending(&mut self, now: SimTime) -> bool {
        let Some(p) = self.pending.take() else {
            return false;
        };
        self.metrics.incr(self.ids.blocked_write_packets);
        self.queue_packet(
            now + self.config.packetize_latency,
            p.dst_node,
            p.dst_base,
            Payload::from(p.data),
        );
        true
    }

    /// Housekeeping: expires the blocked-write merge window and retries
    /// overflowed packets. Call whenever simulated time advances.
    pub fn poll(&mut self, now: SimTime) {
        if let Some(p) = &self.pending {
            // At or past the deadline the packet is terminated (>=, so a
            // wakeup scheduled exactly at the deadline makes progress).
            if now.saturating_since(p.last_write) >= self.config.merge_window {
                self.flush_pending(now);
            }
        }
        self.refill_from_overflow(now);
        self.clear_out_threshold(now);
        if self.stall_until.is_some_and(|s| now >= s) {
            self.stall_until = None;
        }
        if let Some(st) = self.retx.as_mut() {
            let max_rto = self.config.retx.max_timeout;
            let base_rto = self.config.retx.base_timeout;
            let component = ComponentId::nic(self.node.0);
            for (&peer_id, peer) in st.send.iter_mut() {
                if peer.unacked.is_empty() {
                    peer.timeout_at = None;
                    peer.resend_from = None;
                } else if peer.timeout_at.is_some_and(|t| now >= t) {
                    // Nothing came back in time: go back to the window
                    // base and double the timeout (capped).
                    peer.resend_from = Some(peer.base_seq);
                    peer.rto = (peer.rto * 2).min(max_rto);
                    peer.timeout_at = Some(now + peer.rto);
                    self.metrics.incr(self.ids.retx_timeouts);
                    if self.tracer.wants(TraceLevel::Warn) {
                        let attempt =
                            (peer.rto.as_picos() / base_rto.as_picos().max(1)).max(1) as u32;
                        self.tracer.emit(
                            now,
                            TraceLevel::Warn,
                            component,
                            TraceData::RetxTimeout {
                                peer: peer_id,
                                base_seq: peer.base_seq,
                                attempt,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Moves stalled packets into the Outgoing FIFO as space frees,
    /// preserving order.
    ///
    /// A stalled deliberate-update packet may still be waiting on its
    /// DMA read: `stamp.born` is the engine's `done_at`, possibly in the
    /// future. Re-entering the FIFO at the refill instant would let the
    /// packet inject before its data exists, which the born clamp at the
    /// pop sites then papers over by rewriting `born` backwards. Refill
    /// at `max(now, born)` instead, matching the ready time the packet
    /// would have had without the overflow detour.
    fn refill_from_overflow(&mut self, now: SimTime) {
        while let Some(pkt) = self.overflow.front() {
            if !self.out_fifo.would_fit(pkt.wire_len()) {
                break;
            }
            let pkt = self.overflow.pop_front().expect("front checked above");
            let ready = now.max(pkt.stamp.born);
            self.out_fifo
                .try_push(ready, pkt)
                .expect("would_fit checked above");
        }
    }

    /// The next time-based deadline this NIC needs a `poll` at: merge
    /// window expiry, retransmit timer, or the end of an injected stall.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut deadline = self
            .pending
            .as_ref()
            .map(|p| p.last_write + self.config.merge_window);
        let fold = |t: SimTime, d: Option<SimTime>| Some(d.map_or(t, |cur| cur.min(t)));
        if let Some(s) = self.stall_until {
            deadline = fold(s, deadline);
        }
        if let Some(st) = &self.retx {
            for peer in st.send.values() {
                if let Some(t) = peer.timeout_at {
                    deadline = fold(t, deadline);
                }
            }
        }
        deadline
    }

    fn queue_packet(
        &mut self,
        ready_at: SimTime,
        dst_node: NodeId,
        dst_addr: PhysAddr,
        data: Payload,
    ) -> SnoopOutcome {
        self.metrics.incr(self.ids.packets_sent);
        self.metrics.add(self.ids.bytes_sent, data.len() as u64);
        let mut packet = ShrimpPacket::new(
            WireHeader {
                dst_coord: self.shape.coord_of(dst_node),
                src: self.node,
                dst_addr,
            },
            data,
        );
        packet.stamp.born = ready_at;
        match self.out_fifo.try_push(ready_at, packet) {
            Ok(()) => {
                if self.out_fifo.over_threshold() && !self.out_threshold_raised {
                    self.out_threshold_raised = true;
                    self.interrupts.push(NicInterrupt::OutgoingThreshold);
                    self.trace_out_threshold(ready_at, true);
                }
                SnoopOutcome::Queued
            }
            Err(packet) => {
                self.overflow.push_back(packet);
                if !self.out_threshold_raised {
                    self.out_threshold_raised = true;
                    self.interrupts.push(NicInterrupt::OutgoingThreshold);
                    self.trace_out_threshold(ready_at, true);
                }
                SnoopOutcome::Stalled
            }
        }
    }

    /// Emits an out-FIFO backpressure raise/clear trace event.
    fn trace_out_threshold(&mut self, at: SimTime, raised: bool) {
        if self.tracer.wants(TraceLevel::Info) {
            let component = self.component();
            let occupancy = self.out_fifo.bytes();
            self.tracer.emit(
                at,
                TraceLevel::Info,
                component,
                TraceData::FifoThreshold {
                    fifo: "out",
                    raised,
                    occupancy,
                },
            );
        }
    }

    /// Clears the out-FIFO backpressure flag (tracing the transition)
    /// once the FIFO has drained below its threshold.
    fn clear_out_threshold(&mut self, now: SimTime) {
        if self.out_threshold_raised && !self.out_fifo.over_threshold() {
            self.out_threshold_raised = false;
            self.trace_out_threshold(now, false);
        }
    }

    /// Emits an in-FIFO backpressure trace event on threshold crossings.
    /// Call after any Incoming FIFO push or pop.
    fn trace_in_threshold(&mut self, now: SimTime) {
        if !self.tracer.wants(TraceLevel::Info) {
            return;
        }
        let over = self.in_fifo.over_threshold();
        if over != self.in_threshold_traced {
            self.in_threshold_traced = over;
            let component = self.component();
            let occupancy = self.in_fifo.bytes();
            self.tracer.emit(
                now,
                TraceLevel::Info,
                component,
                TraceData::FifoThreshold {
                    fifo: "in",
                    raised: over,
                    occupancy,
                },
            );
        }
    }

    // ───────────────────────── outgoing: FIFO → mesh ─────────────────────

    /// When the head outgoing packet (data or link control) becomes
    /// ready for injection, if any. The `try_push` timestamp doubles as
    /// the readiness time; pending retransmissions are ready immediately.
    pub fn outgoing_ready_at(&self) -> Option<SimTime> {
        let mut ready = self.out_fifo.peek_with_time().map(|(_, t)| t);
        if let Some((t, _, _)) = self.ctl_queue.front() {
            ready = Some(ready.map_or(*t, |r| r.min(*t)));
        }
        if let Some(st) = &self.retx {
            if st.send.values().any(|p| p.resend_from.is_some()) {
                ready = Some(SimTime::ZERO);
            }
        }
        ready
    }

    /// Pops the next outgoing mesh packet if one is ready by `now`:
    /// ack/nack control frames first, then pending go-back-N resends,
    /// then new data from the Outgoing FIFO (held back while the
    /// destination's retransmit window is full — that backpressure is
    /// what eventually stalls the CPU, per the paper's flow-control
    /// chain). The packet is handed to the mesh whole — no serialization.
    pub fn pop_outgoing(&mut self, now: SimTime) -> Option<MeshPacket<ShrimpPacket>> {
        if let Some((ready, _, _)) = self.ctl_queue.front() {
            if *ready <= now {
                let (_, dst, frame) = self.ctl_queue.pop_front().expect("front checked above");
                return Some(MeshPacket::new(self.node, dst, frame));
            }
        }
        if self.retx.is_some() {
            if let Some(mp) = self.pop_resend(now) {
                return Some(mp);
            }
        }
        let (head, ready) = self.out_fifo.peek_with_time()?;
        if ready > now {
            return None;
        }
        if self.retx.is_some() {
            let dst = self.shape.id_at(head.header().dst_coord);
            let base_rto = self.config.retx.base_timeout;
            let window = self.config.retx.window_packets;
            let st = self.retx.as_mut().expect("checked above");
            let peer = st
                .send
                .entry(dst.0)
                .or_insert_with(|| SendPeer::new(base_rto));
            if peer.unacked.len() >= window {
                // Retransmit buffer full: stop draining until acks or a
                // timeout free it.
                return None;
            }
            let (packet, _) = self.out_fifo.pop().expect("head peeked above");
            let seq = peer.next_seq;
            peer.next_seq += 1;
            let stamp = packet.stamp;
            let mut framed = ShrimpPacket::with_link(
                *packet.header(),
                packet.into_payload(),
                LinkCtl {
                    kind: FrameKind::Data,
                    seq,
                },
            );
            framed.stamp = stamp;
            framed.stamp.injected = now;
            // Defensive: refill_from_overflow preserves `born` as the
            // ready time, so injection can no longer precede it; the
            // clamp only degrades gracefully if that invariant breaks.
            framed.stamp.born = framed.stamp.born.min(now);
            peer.unacked.push_back(framed.clone());
            peer.timeout_at = Some(now + peer.rto);
            self.refill_from_overflow(now);
            self.clear_out_threshold(now);
            return Some(MeshPacket::new(self.node, dst, framed));
        }
        let (mut packet, _) = self.out_fifo.pop()?;
        packet.stamp.injected = now;
        packet.stamp.born = packet.stamp.born.min(now);
        let dst = self.shape.id_at(packet.header().dst_coord);
        // Space freed: stalled packets enter the FIFO now.
        self.refill_from_overflow(now);
        self.clear_out_threshold(now);
        Some(MeshPacket::new(self.node, dst, packet))
    }

    /// True when link-level control frames or go-back-N replays are
    /// waiting to be injected. Always false with retransmission off, so
    /// callers can gate extra drain passes on it for free.
    pub fn has_pending_control(&self) -> bool {
        !self.ctl_queue.is_empty()
            || self
                .retx
                .as_ref()
                .is_some_and(|st| st.send.values().any(|p| p.resend_from.is_some()))
    }

    /// Emits the next frame of an in-progress go-back-N replay, if any.
    fn pop_resend(&mut self, now: SimTime) -> Option<MeshPacket<ShrimpPacket>> {
        let node = self.node;
        let st = self.retx.as_mut()?;
        for (&peer_id, peer) in st.send.iter_mut() {
            let Some(from) = peer.resend_from else {
                continue;
            };
            let idx = from.wrapping_sub(peer.base_seq) as usize;
            if idx >= peer.unacked.len() {
                peer.resend_from = None;
                continue;
            }
            let mut framed = peer.unacked[idx].clone();
            framed.stamp.injected = now;
            let next = from + 1;
            let more = (next.wrapping_sub(peer.base_seq) as usize) < peer.unacked.len();
            peer.resend_from = more.then_some(next);
            peer.timeout_at = Some(now + peer.rto);
            self.metrics.incr(self.ids.retransmissions);
            self.metrics.incr(self.ids.gbn_retransmissions);
            if self.tracer.wants(TraceLevel::Warn) {
                self.tracer.emit(
                    now,
                    TraceLevel::Warn,
                    ComponentId::nic(node.0),
                    TraceData::Retransmit { peer: peer_id, seq: from },
                );
            }
            return Some(MeshPacket::new(node, NodeId(peer_id), framed));
        }
        None
    }

    /// True while the Outgoing FIFO is over its threshold — the CPU must
    /// not issue further mapped writes (paper §4).
    pub fn cpu_must_stall(&self) -> bool {
        self.out_fifo.over_threshold() || !self.overflow.is_empty()
    }

    // ───────────────────────── command space ─────────────────────────────

    /// True if `addr` is one of this NIC's command addresses.
    pub fn is_command_addr(&self, addr: PhysAddr) -> bool {
        self.cmd_space.contains(addr)
    }

    /// A read cycle on a command address: the DMA status word (§4.3).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a command address.
    pub fn command_read(&mut self, now: SimTime, addr: PhysAddr) -> u32 {
        let data_addr = self
            .cmd_space
            .data_addr_for(addr)
            .expect("command_read on a non-command address");
        self.dma.status(now, data_addr).0
    }

    /// A write cycle on a command address.
    ///
    /// For a deliberate-update start the NIC needs to read the source
    /// region from main memory; `mem_read` performs that read over the
    /// memory bus and returns the payload plus the bus completion time.
    /// Callers fill an [`arena`](crate::arena) buffer so the hot path
    /// recycles allocations instead of growing the heap per packet.
    ///
    /// # Errors
    ///
    /// Returns [`NicError::Malformed`] for an undecodable command,
    /// [`NicError::NotDeliberateMapped`] /
    /// [`NicError::CrossesPageBoundary`] for invalid transfers.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a command address.
    pub fn command_write(
        &mut self,
        now: SimTime,
        addr: PhysAddr,
        value: u32,
        mem_read: impl FnOnce(PhysAddr, u64) -> (Payload, SimTime),
    ) -> Result<CommandEffect, NicError> {
        let data_addr = self
            .cmd_space
            .data_addr_for(addr)
            .expect("command_write on a non-command address");
        match CommandOp::decode(value)? {
            CommandOp::StartTransfer { words } => {
                self.start_deliberate(now, data_addr, words, mem_read)
            }
            CommandOp::SetPolicy(policy) => {
                let page = data_addr.page();
                let seg = self
                    .nipt
                    .entry(page)
                    .and_then(|e| e.segment_at(data_addr.offset()))
                    .copied()
                    .ok_or(NicError::NotDeliberateMapped { addr: data_addr })?;
                self.nipt
                    .set_out_segment(page, OutSegment { policy, ..seg })?;
                Ok(CommandEffect::PolicyChanged)
            }
            CommandOp::ArmInterrupt => {
                self.nipt.set_interrupt_on_arrival(data_addr.page(), true)?;
                Ok(CommandEffect::InterruptToggled)
            }
            CommandOp::DisarmInterrupt => {
                self.nipt.set_interrupt_on_arrival(data_addr.page(), false)?;
                Ok(CommandEffect::InterruptToggled)
            }
        }
    }

    fn start_deliberate(
        &mut self,
        now: SimTime,
        src: PhysAddr,
        words: u32,
        mem_read: impl FnOnce(PhysAddr, u64) -> (Payload, SimTime),
    ) -> Result<CommandEffect, NicError> {
        let len = words as u64 * WORD_SIZE;
        if src.offset() + len > shrimp_mem::PAGE_SIZE {
            return Err(NicError::CrossesPageBoundary);
        }
        if len > self.config.max_payload {
            return Err(NicError::CrossesPageBoundary);
        }
        let seg = match self.nipt.lookup_out(src) {
            Some(seg) if seg.policy == UpdatePolicy::Deliberate => *seg,
            _ => return Err(NicError::NotDeliberateMapped { addr: src }),
        };
        if src.offset() + len > seg.src_end {
            return Err(NicError::BadMapping("transfer extends past the mapped segment"));
        }
        if !self.dma.is_idle(now) {
            return Ok(CommandEffect::DmaBusy);
        }
        // The DMA engine reads the region from memory; the snooping
        // datapath captures the data (paper §4.3).
        let (data, read_done) = mem_read(src, len);
        assert_eq!(data.len() as u64, len, "mem_read returned wrong length");
        let done_at = read_done + self.config.dma_setup;
        let started = self.dma.start(now, src, words, done_at);
        debug_assert!(started, "engine was idle");
        let dst = seg.translate(src.offset());
        self.metrics.incr(self.ids.dma_packets);
        // One buffer from here on: the pooled buffer read from memory is
        // the refcounted payload shared by FIFO, mesh and delivery DMA,
        // and returns to the arena when the last stage drops it.
        self.queue_packet(done_at, seg.dst_node, dst, data);
        Ok(CommandEffect::DmaStarted { done_at })
    }

    // ───────────────────────── incoming path ─────────────────────────────

    /// True while the NIC accepts packets from the network. Below the
    /// Incoming FIFO threshold only (paper §4).
    pub fn can_accept_from_network(&self) -> bool {
        !self.in_fifo.over_threshold()
    }

    /// [`NetworkInterface::can_accept_from_network`], additionally
    /// honouring an injected transient receive stall at time `now`.
    pub fn can_accept_from_network_at(&self, now: SimTime) -> bool {
        self.stall_until.is_none_or(|s| now >= s) && self.can_accept_from_network()
    }

    /// Accepts one packet from the mesh: verifies routing and CRC, then
    /// either consumes it (link-level ack/nack), sequence-checks it
    /// (go-back-N data frame) or queues it straight on the Incoming FIFO
    /// (legacy unframed packet). The CRC check recomputes the checksum
    /// over header, payload and trailer slices — no wire buffer exists.
    ///
    /// # Errors
    ///
    /// Returns the verification error; the packet is dropped and counted.
    /// A lost data frame is *not* an error here: go-back-N recovers it
    /// invisibly via nack or timeout.
    pub fn accept_packet(
        &mut self,
        now: SimTime,
        packet: MeshPacket<ShrimpPacket>,
    ) -> Result<(), NicError> {
        let mut packet = packet.into_payload();
        if !packet.verify_crc() {
            // Corruption anywhere (header, payload, seq trailer) lands
            // here; with go-back-N on, the sender's timeout or a later
            // gap-nack triggers the resend.
            self.metrics.incr(self.ids.crc_drops);
            return Err(NicError::BadCrc);
        }
        if packet.header().src == self.node && packet.header().dst_coord != self.coord {
            // One of our own frames came home: the mesh bounced it
            // because no legal route to its destination existed under
            // the current link set (or its link died mid-flight).
            return self.accept_bounce(now, &packet);
        }
        if packet.header().dst_coord != self.coord {
            self.metrics.incr(self.ids.misroutes);
            return Err(NicError::WrongDestination {
                packet: packet.header().dst_coord,
                local: self.coord,
            });
        }
        self.maybe_stall_after_arrival(now);
        packet.stamp.accepted = now;
        let src = packet.header().src;
        match packet.link() {
            None => {
                self.metrics.incr(self.ids.packets_received);
                self.metrics.add(self.ids.bytes_received, packet.payload().len() as u64);
                let pushed = self
                    .in_fifo
                    .try_push(now, packet)
                    .map_err(|_| NicError::IncomingFifoFull);
                self.trace_in_threshold(now);
                pushed
            }
            Some(LinkCtl {
                kind: FrameKind::Ack,
                seq,
            }) => {
                self.metrics.incr(self.ids.acks_received);
                self.handle_ack(now, src, seq);
                Ok(())
            }
            Some(LinkCtl {
                kind: FrameKind::Nack,
                seq,
            }) => {
                self.metrics.incr(self.ids.nacks_received);
                self.handle_nack(now, src, seq);
                Ok(())
            }
            Some(LinkCtl {
                kind: FrameKind::Data,
                seq,
            }) => self.accept_data_frame(now, src, seq, packet),
        }
    }

    /// Handles one of our own frames returned by the mesh bounce path.
    ///
    /// For a data frame the send window toward its destination is still
    /// holding it (nothing was acked), so recovery is a rewind: reset
    /// the loss backoff — the fabric is *down*, not lossy, and
    /// escalation would only delay recovery past the repair — cancel
    /// any pending replay, and arm a flat-rate retry
    /// [`crate::RetxConfig::reroute_backoff`] from now. Every further
    /// bounce re-arms the same pacing, so the engine probes the fabric
    /// at a constant rate until a route exists again. Bounced ack/nack
    /// frames are simply dropped: the data path's own timers recover.
    fn accept_bounce(&mut self, now: SimTime, packet: &ShrimpPacket) -> Result<(), NicError> {
        self.metrics.incr(self.ids.gbn_bounces);
        let base_rto = self.config.retx.base_timeout;
        let pace = self.config.retx.reroute_backoff;
        if let Some(LinkCtl { kind: FrameKind::Data, .. }) = packet.link() {
            let dst = self.shape.id_at(packet.header().dst_coord);
            if let Some(peer) = self.retx.as_mut().and_then(|st| st.send.get_mut(&dst.0)) {
                if !peer.unacked.is_empty() {
                    peer.rto = base_rto;
                    peer.resend_from = None;
                    peer.timeout_at = Some(now + pace);
                }
            }
        }
        Ok(())
    }

    /// Sequence-checks one framed data packet against the per-source
    /// receiver book: in-order frames are delivered and acked, duplicates
    /// re-acked, gaps nacked (once per hole).
    fn accept_data_frame(
        &mut self,
        now: SimTime,
        src: NodeId,
        seq: u32,
        packet: ShrimpPacket,
    ) -> Result<(), NicError> {
        let Some(st) = self.retx.as_mut() else {
            // A framed packet with the local engine off (mixed
            // configuration): deliver it like a legacy packet.
            self.metrics.incr(self.ids.packets_received);
            self.metrics.add(self.ids.bytes_received, packet.payload().len() as u64);
            let pushed = self
                .in_fifo
                .try_push(now, packet)
                .map_err(|_| NicError::IncomingFifoFull);
            self.trace_in_threshold(now);
            return pushed;
        };
        let peer = st.recv.entry(src.0).or_default();
        let expected = peer.expected;
        if seq == expected {
            let payload_len = packet.payload().len() as u64;
            if let Err(packet) = self.in_fifo.try_push(now, packet) {
                // FIFO full: drop without advancing; the sender's
                // timeout replays it once we drain.
                drop(packet);
                return Err(NicError::IncomingFifoFull);
            }
            self.metrics.incr(self.ids.packets_received);
            self.metrics.add(self.ids.bytes_received, payload_len);
            let st = self.retx.as_mut().expect("engine checked above");
            let peer = st.recv.get_mut(&src.0).expect("entry created above");
            peer.expected = expected + 1;
            peer.last_nacked = None;
            let ack = peer.expected;
            self.queue_control(now, src, FrameKind::Ack, ack);
            self.trace_in_threshold(now);
            Ok(())
        } else if seq < expected {
            // Already delivered (a replayed frame): re-ack so a lost ack
            // cannot stall the sender forever.
            self.metrics.incr(self.ids.dup_drops);
            self.queue_control(now, src, FrameKind::Ack, expected);
            Ok(())
        } else {
            // Gap: a predecessor died on the wire. Request a replay from
            // the hole, but only once per hole — the frames already in
            // flight behind it would each re-trigger it otherwise.
            self.metrics.incr(self.ids.gap_drops);
            let nack = peer.last_nacked != Some(expected);
            peer.last_nacked = Some(expected);
            if nack {
                self.queue_control(now, src, FrameKind::Nack, expected);
            } else {
                self.metrics.incr(self.ids.gbn_nack_suppressions);
            }
            Ok(())
        }
    }

    /// Cumulative ack: every sequence below `seq` has arrived at `peer`.
    fn handle_ack(&mut self, now: SimTime, peer_node: NodeId, seq: u32) {
        let base_rto = self.config.retx.base_timeout;
        let Some(st) = self.retx.as_mut() else {
            return;
        };
        let Some(peer) = st.send.get_mut(&peer_node.0) else {
            return;
        };
        let mut progressed = false;
        while peer.base_seq < seq && !peer.unacked.is_empty() {
            peer.unacked.pop_front();
            peer.base_seq += 1;
            progressed = true;
        }
        if progressed {
            // Progress restarts the timer and resets the backoff.
            if peer.rto > base_rto {
                self.metrics.incr(self.ids.gbn_backoff_resets);
            }
            peer.rto = base_rto;
            peer.timeout_at = if peer.unacked.is_empty() {
                None
            } else {
                Some(now + peer.rto)
            };
            if let Some(r) = peer.resend_from {
                let r = r.max(peer.base_seq);
                let live = (r.wrapping_sub(peer.base_seq) as usize) < peer.unacked.len();
                peer.resend_from = live.then_some(r);
            }
        }
    }

    /// Go-back-N request: replay everything from `seq` on. Also carries
    /// the cumulative-ack meaning for sequences below `seq`.
    fn handle_nack(&mut self, now: SimTime, peer_node: NodeId, seq: u32) {
        self.handle_ack(now, peer_node, seq);
        let Some(st) = self.retx.as_mut() else {
            return;
        };
        let Some(peer) = st.send.get_mut(&peer_node.0) else {
            return;
        };
        if seq >= peer.base_seq && !peer.unacked.is_empty() {
            peer.resend_from = Some(peer.base_seq);
            peer.timeout_at = Some(now + peer.rto);
        }
    }

    /// Queues a link-level control frame for immediate injection.
    fn queue_control(&mut self, now: SimTime, dst: NodeId, kind: FrameKind, seq: u32) {
        match kind {
            FrameKind::Ack => self.metrics.incr(self.ids.acks_sent),
            FrameKind::Nack => self.metrics.incr(self.ids.nacks_sent),
            FrameKind::Data => unreachable!("data frames travel via the FIFO"),
        }
        let frame = ShrimpPacket::control(self.shape.coord_of(dst), self.node, kind, seq);
        self.ctl_queue.push_back((now, dst, frame));
    }

    /// Fault injection: after each good arrival, the receive port may
    /// wedge shut for a while.
    fn maybe_stall_after_arrival(&mut self, now: SimTime) {
        if let Some(site) = self.fault.as_mut() {
            if let Some(d) = site.decide_stall() {
                let until = now + d;
                if self.stall_until.is_none_or(|s| until > s) {
                    self.stall_until = Some(until);
                }
                self.metrics.incr(self.ids.fault_stalls);
            }
        }
    }

    /// Pops the head of the Incoming FIFO once it has cleared the receive
    /// pipeline, yielding the memory transfer to perform — or an error if
    /// the addressed page is not mapped in (the packet is dropped and a
    /// [`NicInterrupt::BadDelivery`] is raised).
    pub fn pop_incoming(&mut self, now: SimTime) -> Option<Result<IncomingDelivery, NicError>> {
        let ready_at = {
            let (_, pushed) = self.in_fifo.peek_with_time()?;
            pushed + self.config.receive_latency
        };
        if ready_at > now {
            return None;
        }
        let (packet, _) = self.in_fifo.pop().expect("head checked above");
        self.trace_in_threshold(now);
        let page = packet.header().dst_addr.page();
        if !self.nipt.is_mapped_in(page) {
            self.metrics.incr(self.ids.unmapped_drops);
            self.interrupts.push(NicInterrupt::BadDelivery);
            return Some(Err(NicError::NotMappedIn { page }));
        }
        let interrupt = self.nipt.take_interrupt_request(page);
        if interrupt {
            self.interrupts.push(NicInterrupt::DataArrival { page });
        }
        let src = packet.header().src;
        let dst_addr = packet.header().dst_addr;
        let stamp = packet.stamp;
        Some(Ok(IncomingDelivery {
            dst_addr,
            data: packet.into_payload(),
            ready_at,
            src,
            interrupt,
            stamp,
        }))
    }

    /// When the head incoming packet clears the receive pipeline, if any.
    pub fn incoming_ready_at(&self) -> Option<SimTime> {
        self.in_fifo.peek_with_time()
            .map(|(_, pushed)| pushed + self.config.receive_latency)
    }

    /// Drains raised interrupts.
    pub fn take_interrupts(&mut self) -> Vec<NicInterrupt> {
        std::mem::take(&mut self.interrupts)
    }

    /// Outgoing FIFO occupancy in bytes (for flow-control benches).
    pub fn out_fifo_bytes(&self) -> u64 {
        self.out_fifo.bytes()
    }

    /// Incoming FIFO occupancy in bytes.
    pub fn in_fifo_bytes(&self) -> u64 {
        self.in_fifo.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::PAGE_SIZE;
    use shrimp_sim::SimDuration;

    fn shape() -> MeshShape {
        MeshShape::new(2, 2)
    }

    fn nic() -> NetworkInterface {
        NetworkInterface::new(NodeId(0), shape(), NicConfig::default(), 64)
    }

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    fn map_out(n: &mut NetworkInterface, page: u64, dst: u16, dst_page: u64, policy: UpdatePolicy) {
        n.nipt_mut()
            .set_out_segment(
                PageNum::new(page),
                OutSegment::full_page(NodeId(dst), PageNum::new(dst_page), policy),
            )
            .unwrap();
    }

    #[test]
    fn single_write_becomes_a_packet() {
        let mut n = nic();
        map_out(&mut n, 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let addr = PageNum::new(2).at_offset(16);
        let out = n.snoop_write(t(0), addr, &7u32.to_le_bytes());
        assert_eq!(out, SnoopOutcome::Queued);
        // Not ready before packetize latency.
        assert!(n.pop_outgoing(t(0)).is_none());
        let mp = n.pop_outgoing(t(1000)).expect("ready after packetize");
        assert_eq!(mp.dst(), NodeId(1));
        let packet = mp.into_payload();
        assert!(packet.verify_crc());
        assert_eq!(packet.header().dst_addr, PageNum::new(9).at_offset(16));
        assert_eq!(packet.payload(), &7u32.to_le_bytes());
        assert!(
            matches!(packet.into_payload(), Payload::Inline { len: 4, .. }),
            "a snooped word must not allocate"
        );
        assert_eq!(n.stats().single_write_packets, 1);
    }

    #[test]
    fn unmapped_write_is_ignored() {
        let mut n = nic();
        assert_eq!(
            n.snoop_write(t(0), PhysAddr::new(0), &[1, 2, 3, 4]),
            SnoopOutcome::Ignored
        );
        assert_eq!(n.stats().packets_sent, 0);
    }

    #[test]
    fn deliberate_page_writes_are_ignored_by_snoop() {
        let mut n = nic();
        map_out(&mut n, 2, 1, 9, UpdatePolicy::Deliberate);
        assert_eq!(
            n.snoop_write(t(0), PageNum::new(2).base(), &[0; 4]),
            SnoopOutcome::Ignored
        );
    }

    #[test]
    fn blocked_writes_merge_when_consecutive() {
        let mut n = nic();
        map_out(&mut n, 3, 1, 9, UpdatePolicy::AutomaticBlocked);
        let base = PageNum::new(3).base();
        assert_eq!(n.snoop_write(t(0), base, &[1; 4]), SnoopOutcome::Merged);
        assert_eq!(n.snoop_write(t(100), base.add(4), &[2; 4]), SnoopOutcome::Merged);
        assert_eq!(n.snoop_write(t(200), base.add(8), &[3; 4]), SnoopOutcome::Merged);
        assert_eq!(n.stats().merged_writes, 2);
        // Nothing sent yet.
        assert!(n.pop_outgoing(t(10_000)).is_none());
        // Window expiry flushes one packet with all 12 bytes.
        n.poll(t(1000));
        let mp = n.pop_outgoing(t(10_000)).expect("flushed");
        assert_eq!(mp.payload().payload().len(), 12);
        assert_eq!(n.stats().blocked_write_packets, 1);
    }

    #[test]
    fn non_consecutive_blocked_write_starts_new_packet() {
        let mut n = nic();
        map_out(&mut n, 3, 1, 9, UpdatePolicy::AutomaticBlocked);
        let base = PageNum::new(3).base();
        n.snoop_write(t(0), base, &[1; 4]);
        // Skip a word: must terminate the first packet.
        n.snoop_write(t(50), base.add(12), &[2; 4]);
        n.poll(t(5000));
        let a = n.pop_outgoing(t(100_000)).unwrap();
        let b = n.pop_outgoing(t(100_000)).unwrap();
        assert_eq!(a.payload().payload().len(), 4);
        assert_eq!(b.payload().payload().len(), 4);
    }

    #[test]
    fn merge_window_expiry_splits_packets() {
        let mut n = nic();
        map_out(&mut n, 3, 1, 9, UpdatePolicy::AutomaticBlocked);
        let base = PageNum::new(3).base();
        n.snoop_write(t(0), base, &[1; 4]);
        // Longer than the 500ns window later:
        n.snoop_write(t(2000), base.add(4), &[2; 4]);
        n.poll(t(10_000));
        assert_eq!(n.stats().blocked_write_packets, 2);
    }

    #[test]
    fn single_write_flushes_pending_blocked_packet_first() {
        let mut n = nic();
        map_out(&mut n, 3, 1, 9, UpdatePolicy::AutomaticBlocked);
        map_out(&mut n, 4, 1, 10, UpdatePolicy::AutomaticSingle);
        n.snoop_write(t(0), PageNum::new(3).base(), &[1; 4]);
        n.snoop_write(t(10), PageNum::new(4).base(), &[2; 4]);
        // Both packets must be queued, blocked first.
        let first = n.pop_outgoing(t(100_000)).unwrap();
        let second = n.pop_outgoing(t(100_000)).unwrap();
        assert_eq!(first.payload().header().dst_addr.page(), PageNum::new(9));
        assert_eq!(second.payload().header().dst_addr.page(), PageNum::new(10));
    }

    #[test]
    fn split_page_translates_via_correct_segment() {
        let mut n = nic();
        n.nipt_mut()
            .set_out_segment(
                PageNum::new(5),
                OutSegment {
                    src_start: 0,
                    src_end: 2048,
                    dst_node: NodeId(1),
                    dst_base: PageNum::new(8).at_offset(2048),
                    policy: UpdatePolicy::AutomaticSingle,
                },
            )
            .unwrap();
        n.nipt_mut()
            .set_out_segment(
                PageNum::new(5),
                OutSegment {
                    src_start: 2048,
                    src_end: PAGE_SIZE,
                    dst_node: NodeId(2),
                    dst_base: PageNum::new(3).base(),
                    policy: UpdatePolicy::AutomaticSingle,
                },
            )
            .unwrap();
        n.snoop_write(t(0), PageNum::new(5).at_offset(0), &[0; 4]);
        n.snoop_write(t(1), PageNum::new(5).at_offset(2048), &[0; 4]);
        let a = n.pop_outgoing(t(100_000)).unwrap();
        let b = n.pop_outgoing(t(100_000)).unwrap();
        assert_eq!(a.dst(), NodeId(1));
        assert_eq!(
            a.payload().header().dst_addr,
            PageNum::new(8).at_offset(2048)
        );
        assert_eq!(b.dst(), NodeId(2));
        assert_eq!(b.payload().header().dst_addr, PageNum::new(3).base());
    }

    #[test]
    fn deliberate_update_full_protocol() {
        let mut n = nic();
        map_out(&mut n, 6, 1, 12, UpdatePolicy::Deliberate);
        let data_addr = PageNum::new(6).base();
        let cmd_addr = n.command_space().command_addr_for(data_addr);
        assert!(n.is_command_addr(cmd_addr));
        // Read phase: engine free → 0.
        assert_eq!(n.command_read(t(0), cmd_addr), 0);
        // Write phase: start 256 words.
        let effect = n
            .command_write(t(0), cmd_addr, 256, |src, len| {
                assert_eq!(src, data_addr);
                assert_eq!(len, 1024);
                (Payload::from(vec![0x5a; 1024]), t(500))
            })
            .unwrap();
        let CommandEffect::DmaStarted { done_at } = effect else {
            panic!("expected DmaStarted, got {effect:?}");
        };
        assert!(done_at > t(500));
        // While busy: status shows remaining words and base match.
        let status = crate::dma::DmaStatus(n.command_read(t(100), cmd_addr));
        assert!(!status.is_free());
        assert!(status.base_matches());
        // A second start while busy is ignored by hardware.
        let e2 = n
            .command_write(t(100), cmd_addr, 16, |_, _| unreachable!("busy engine must not read"))
            .unwrap();
        assert_eq!(e2, CommandEffect::DmaBusy);
        // Packet appears once DMA finishes.
        assert!(n.pop_outgoing(done_at - SimDuration::from_ns(1)).is_none());
        let mp = n.pop_outgoing(done_at).unwrap();
        let packet = mp.into_payload();
        assert_eq!(packet.payload().len(), 1024);
        assert_eq!(packet.header().dst_addr, PageNum::new(12).base());
        assert_eq!(n.stats().dma_packets, 1);
    }

    /// Regression for the overflow-refill born clamp: a deliberate
    /// packet whose DMA read finishes in the future (`born == done_at`)
    /// that detours through the overflow queue must re-enter the FIFO at
    /// `born`, not at the refill instant. Before the fix, the refill's
    /// fresh ready time let the packet inject *before* its data existed
    /// and the pop-site clamp rewrote `born` backwards, silently
    /// shortening the out-FIFO stage. A session transfer popped in the
    /// same instant as its refill must show `born == injected` exactly,
    /// so the stage sums still telescope to end-to-end.
    #[test]
    fn overflow_refill_preserves_future_born() {
        let mut n = nic();
        map_out(&mut n, 6, 1, 12, UpdatePolicy::Deliberate);
        map_out(&mut n, 7, 1, 13, UpdatePolicy::Deliberate);
        let full_page = PAGE_SIZE as u32 / WORD_SIZE as u32;

        // First transfer: fills just over half the 8 KB out FIFO.
        let e1 = n
            .command_write(t(0), n.command_space().command_addr_for(PageNum::new(6).base()),
                full_page, |_, len| (Payload::from(vec![0x11; len as usize]), t(500)))
            .unwrap();
        let CommandEffect::DmaStarted { done_at: done1 } = e1 else {
            panic!("expected DmaStarted, got {e1:?}");
        };

        // Second transfer, started once the engine frees: its packet no
        // longer fits behind the first, so it lands in overflow with a
        // future born (= its own done_at).
        let e2 = n
            .command_write(done1, n.command_space().command_addr_for(PageNum::new(7).base()),
                full_page, |_, len| (Payload::from(vec![0x22; len as usize]), done1 + SimDuration::from_ns(500)))
            .unwrap();
        let CommandEffect::DmaStarted { done_at: done2 } = e2 else {
            panic!("expected DmaStarted, got {e2:?}");
        };
        assert!(done2 > done1);

        // Popping the first packet triggers refill_from_overflow at
        // `done1`, while the second packet's DMA is still in flight.
        let first = n.pop_outgoing(done1).expect("first packet ready at its done_at");
        assert_eq!(first.payload().payload()[0], 0x11);

        // The refilled packet must stay invisible until its read is done…
        assert!(
            n.pop_outgoing(done2 - SimDuration::from_ns(1)).is_none(),
            "overflowed packet must not inject before its DMA read completes"
        );

        // …and at `done2` it pops with born == injected == done2: the
        // same-instant refill/pop case telescopes with a zero out-FIFO
        // stage instead of a clamped, rewritten born.
        let second = n.pop_outgoing(done2).expect("ready exactly at done_at");
        let stamp = second.payload().stamp;
        assert_eq!(stamp.born, done2);
        assert_eq!(stamp.injected, done2);
        assert_eq!(stamp.injected.since(stamp.born), SimDuration::ZERO);
    }

    #[test]
    fn deliberate_rejects_bad_transfers() {
        let mut n = nic();
        map_out(&mut n, 6, 1, 12, UpdatePolicy::Deliberate);
        let cmd = n
            .command_space()
            .command_addr_for(PageNum::new(6).at_offset(4092));
        // Crossing the page boundary.
        assert!(matches!(
            n.command_write(t(0), cmd, 2, |_, _| unreachable!()),
            Err(NicError::CrossesPageBoundary)
        ));
        // Page without a deliberate mapping.
        let cmd2 = n.command_space().command_addr_for(PageNum::new(7).base());
        assert!(matches!(
            n.command_write(t(0), cmd2, 2, |_, _| unreachable!()),
            Err(NicError::NotDeliberateMapped { .. })
        ));
        // Automatic mapping is not deliberate.
        map_out(&mut n, 8, 1, 13, UpdatePolicy::AutomaticSingle);
        let cmd3 = n.command_space().command_addr_for(PageNum::new(8).base());
        assert!(matches!(
            n.command_write(t(0), cmd3, 2, |_, _| unreachable!()),
            Err(NicError::NotDeliberateMapped { .. })
        ));
    }

    #[test]
    fn command_switches_policy_and_arms_interrupts() {
        let mut n = nic();
        map_out(&mut n, 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let cmd = n.command_space().command_addr_for(PageNum::new(2).base());
        let e = n
            .command_write(
                t(0),
                cmd,
                CommandOp::SetPolicy(UpdatePolicy::AutomaticBlocked).encode(),
                |_, _| unreachable!(),
            )
            .unwrap();
        assert_eq!(e, CommandEffect::PolicyChanged);
        assert_eq!(
            n.nipt().lookup_out(PageNum::new(2).base()).unwrap().policy,
            UpdatePolicy::AutomaticBlocked
        );
        let e = n
            .command_write(t(0), cmd, CommandOp::ArmInterrupt.encode(), |_, _| unreachable!())
            .unwrap();
        assert_eq!(e, CommandEffect::InterruptToggled);
        assert!(!n.nipt().entry(PageNum::new(2)).unwrap().is_mapped_in());
    }

    fn wire_packet_for(
        n: &NetworkInterface,
        dst_addr: PhysAddr,
        data: Vec<u8>,
    ) -> MeshPacket<ShrimpPacket> {
        let p = ShrimpPacket::new(
            WireHeader {
                dst_coord: n.coord(),
                src: NodeId(3),
                dst_addr,
            },
            data,
        );
        MeshPacket::new(NodeId(3), n.node(), p)
    }

    #[test]
    fn incoming_delivery_to_mapped_in_page() {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        let mp = wire_packet_for(&n, PageNum::new(4).at_offset(8), vec![9; 16]);
        n.accept_packet(t(0), mp).unwrap();
        assert!(n.pop_incoming(t(0)).is_none(), "receive latency first");
        let d = n.pop_incoming(t(1000)).unwrap().unwrap();
        assert_eq!(d.dst_addr, PageNum::new(4).at_offset(8));
        assert_eq!(d.data.as_slice(), &[9u8; 16][..]);
        assert!(!d.interrupt);
        assert_eq!(d.src, NodeId(3));
        assert_eq!(n.stats().packets_received, 1);
    }

    #[test]
    fn incoming_to_unmapped_page_drops_and_interrupts() {
        let mut n = nic();
        let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![1; 4]);
        n.accept_packet(t(0), mp).unwrap();
        let r = n.pop_incoming(t(1000)).unwrap();
        assert!(matches!(r, Err(NicError::NotMappedIn { .. })));
        assert_eq!(n.stats().unmapped_drops, 1);
        assert_eq!(n.take_interrupts(), vec![NicInterrupt::BadDelivery]);
    }

    #[test]
    fn misrouted_packet_rejected() {
        let mut n = nic();
        let p = ShrimpPacket::new(
            WireHeader {
                dst_coord: MeshCoord { x: 1, y: 1 },
                src: NodeId(3),
                dst_addr: PhysAddr::new(0),
            },
            vec![0; 4],
        );
        let mp = MeshPacket::new(NodeId(3), n.node(), p);
        assert!(matches!(
            n.accept_packet(t(0), mp),
            Err(NicError::WrongDestination { .. })
        ));
        assert_eq!(n.stats().misroutes, 1);
    }

    #[test]
    fn corrupted_packet_rejected() {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![1; 8]);
        // A network error: payload bytes change, stored CRC does not.
        let good = mp.into_payload();
        let mut corrupted = good.payload().to_vec();
        corrupted[5] ^= 0xff;
        let bad = ShrimpPacket::from_parts(*good.header(), corrupted, good.crc());
        let mp = MeshPacket::new(NodeId(3), n.node(), bad);
        assert!(matches!(n.accept_packet(t(0), mp), Err(NicError::BadCrc)));
        assert_eq!(n.stats().crc_drops, 1);
    }

    #[test]
    fn arrival_interrupt_fires_once() {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        n.nipt_mut().set_interrupt_on_arrival(PageNum::new(4), true).unwrap();
        for _ in 0..2 {
            let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![1; 4]);
            n.accept_packet(t(0), mp).unwrap();
        }
        let d1 = n.pop_incoming(t(1000)).unwrap().unwrap();
        assert!(d1.interrupt);
        let d2 = n.pop_incoming(t(1000)).unwrap().unwrap();
        assert!(!d2.interrupt, "one-shot request");
        assert_eq!(
            n.take_interrupts(),
            vec![NicInterrupt::DataArrival { page: PageNum::new(4) }]
        );
    }

    #[test]
    fn incoming_threshold_gates_acceptance() {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        assert!(n.can_accept_from_network());
        // Fill past the threshold (6 KB of 8 KB) with 1 KB payloads.
        let mut pushed = 0;
        while n.can_accept_from_network() {
            let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![0; 1024]);
            n.accept_packet(t(0), mp).unwrap();
            pushed += 1;
        }
        assert!(pushed >= 6);
        // Draining re-opens acceptance.
        while n.pop_incoming(t(1_000_000)).is_some() {}
        assert!(n.can_accept_from_network());
    }

    #[test]
    fn outgoing_threshold_raises_cpu_stall() {
        let mut n = nic();
        map_out(&mut n, 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let addr = PageNum::new(2).base();
        let mut writes = 0;
        while !n.cpu_must_stall() {
            n.snoop_write(t(writes), addr, &[0u8; 4]);
            writes += 1;
            assert!(writes < 10_000, "threshold must eventually trip");
        }
        assert!(n
            .take_interrupts()
            .contains(&NicInterrupt::OutgoingThreshold));
        // Draining clears the stall.
        while n.pop_outgoing(SimTime::from_picos(u64::MAX / 2)).is_some() {}
        n.poll(t(writes));
        assert!(!n.cpu_must_stall());
    }

    // ───────────────────── go-back-N retransmission ───────────────────────

    use crate::config::RetxConfig;

    fn rnic(node: u16) -> NetworkInterface {
        let cfg = NicConfig {
            retx: RetxConfig::reliable(),
            ..NicConfig::default()
        };
        NetworkInterface::new(NodeId(node), shape(), cfg, 64)
    }

    /// A sender NIC (node 0) with page 2 mapped single-word to node 1's
    /// page 4, and the matching receiver NIC.
    fn rpair() -> (NetworkInterface, NetworkInterface) {
        let mut s = rnic(0);
        map_out(&mut s, 2, 1, 4, UpdatePolicy::AutomaticSingle);
        let mut r = rnic(1);
        r.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        (s, r)
    }

    /// Snoops word `i` on the sender and pops the framed mesh packet.
    fn send_word(s: &mut NetworkInterface, i: u32, at_ns: u64) -> MeshPacket<ShrimpPacket> {
        let addr = PageNum::new(2).at_offset(u64::from(i) * 4);
        assert_eq!(s.snoop_write(t(at_ns), addr, &i.to_le_bytes()), SnoopOutcome::Queued);
        s.pop_outgoing(t(at_ns + 1000)).expect("framed data packet")
    }

    /// Drains the receiver's control queue into the sender.
    fn relay_ctl(r: &mut NetworkInterface, s: &mut NetworkInterface, at_ns: u64) -> usize {
        let mut n = 0;
        while let Some(mp) = r.pop_outgoing(t(at_ns)) {
            s.accept_packet(t(at_ns), mp).unwrap();
            n += 1;
        }
        n
    }

    #[test]
    fn retx_data_frames_carry_sequence_numbers() {
        let (mut s, _r) = rpair();
        for i in 0..3 {
            let mp = send_word(&mut s, i, u64::from(i) * 2000);
            let link = mp.payload().link().expect("retx frames data");
            assert_eq!(link.kind, FrameKind::Data);
            assert_eq!(link.seq, i);
            assert!(mp.payload().verify_crc(), "CRC covers the trailer");
        }
    }

    #[test]
    fn retx_acks_retire_the_window() {
        let (mut s, mut r) = rpair();
        for i in 0..3 {
            let mp = send_word(&mut s, i, u64::from(i) * 2000);
            r.accept_packet(t(u64::from(i) * 2000 + 1100), mp).unwrap();
        }
        assert_eq!(r.stats().packets_received, 3);
        assert_eq!(r.stats().acks_sent, 3);
        assert_eq!(relay_ctl(&mut r, &mut s, 10_000), 3);
        assert_eq!(s.stats().acks_received, 3);
        // Everything acked: no retransmit timer remains.
        assert!(s.next_deadline().is_none());
        // In-order delivery out the far side.
        for i in 0..3u32 {
            let d = r.pop_incoming(t(50_000)).unwrap().unwrap();
            assert_eq!(d.data.as_slice(), &i.to_le_bytes());
        }
    }

    #[test]
    fn retx_gap_nack_triggers_go_back_n() {
        let (mut s, mut r) = rpair();
        let lost = send_word(&mut s, 0, 0);
        drop(lost); // the mesh ate frame 0
        let mp1 = send_word(&mut s, 1, 2000);
        r.accept_packet(t(3100), mp1).unwrap();
        assert_eq!(r.stats().gap_drops, 1);
        assert_eq!(r.stats().nacks_sent, 1);
        assert_eq!(r.stats().packets_received, 0, "out-of-order is not delivered");
        // Nack reaches the sender: it replays 0 and 1.
        assert_eq!(relay_ctl(&mut r, &mut s, 4000), 1);
        assert_eq!(s.stats().nacks_received, 1);
        let r0 = s.pop_outgoing(t(4000)).expect("replay of frame 0");
        assert_eq!(r0.payload().link().unwrap().seq, 0);
        let r1 = s.pop_outgoing(t(4000)).expect("replay of frame 1");
        assert_eq!(r1.payload().link().unwrap().seq, 1);
        assert_eq!(s.stats().retransmissions, 2);
        r.accept_packet(t(5000), r0).unwrap();
        r.accept_packet(t(5100), r1).unwrap();
        assert_eq!(r.stats().packets_received, 2);
        relay_ctl(&mut r, &mut s, 6000);
        assert!(s.next_deadline().is_none(), "window fully retired");
        // Payload order is preserved end to end.
        for i in 0..2u32 {
            let d = r.pop_incoming(t(50_000)).unwrap().unwrap();
            assert_eq!(d.data.as_slice(), &i.to_le_bytes());
        }
    }

    #[test]
    fn retx_duplicates_are_dropped_and_reacked() {
        let (mut s, mut r) = rpair();
        let mp = send_word(&mut s, 0, 0);
        let dup = mp.clone();
        r.accept_packet(t(1100), mp).unwrap();
        r.accept_packet(t(1200), dup).unwrap();
        assert_eq!(r.stats().packets_received, 1);
        assert_eq!(r.stats().dup_drops, 1);
        // Both arrivals ack, so a lost first ack cannot wedge the sender.
        assert_eq!(r.stats().acks_sent, 2);
    }

    #[test]
    fn retx_timeout_replays_with_backoff() {
        let (mut s, mut r) = rpair();
        let mp = send_word(&mut s, 0, 0);
        drop(mp); // lost, and no later frame will surface the gap
        let base = s.config().retx.base_timeout;
        let first_deadline = s.next_deadline().expect("timer armed");
        s.poll(first_deadline);
        assert_eq!(s.stats().retx_timeouts, 1);
        let replay = s.pop_outgoing(first_deadline).expect("timeout replay");
        assert_eq!(replay.payload().link().unwrap().seq, 0);
        assert_eq!(s.stats().retransmissions, 1);
        // Backoff: the next timer is 2× base after the replay.
        let second_deadline = s.next_deadline().expect("timer re-armed");
        assert_eq!(second_deadline, first_deadline + base * 2);
        // Delivery + ack cancels the timer and resets the backoff.
        r.accept_packet(second_deadline, replay).unwrap();
        relay_ctl(&mut r, &mut s, 1_000_000);
        assert!(s.next_deadline().is_none());
    }

    #[test]
    fn retx_window_full_asserts_backpressure() {
        let cfg = NicConfig {
            retx: RetxConfig {
                window_packets: 2,
                ..RetxConfig::reliable()
            },
            ..NicConfig::default()
        };
        let mut s = NetworkInterface::new(NodeId(0), shape(), cfg, 64);
        map_out(&mut s, 2, 1, 4, UpdatePolicy::AutomaticSingle);
        let mut r = rnic(1);
        r.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        for i in 0..3u32 {
            let addr = PageNum::new(2).at_offset(u64::from(i) * 4);
            s.snoop_write(t(u64::from(i) * 10), addr, &i.to_le_bytes());
        }
        let a = s.pop_outgoing(t(5000)).expect("frame 0");
        let _b = s.pop_outgoing(t(5000)).expect("frame 1");
        assert!(
            s.pop_outgoing(t(5000)).is_none(),
            "window of 2 must hold back the third frame"
        );
        // An ack for frame 0 reopens the window.
        r.accept_packet(t(5100), a).unwrap();
        relay_ctl(&mut r, &mut s, 6000);
        let c = s.pop_outgoing(t(6000)).expect("window reopened");
        assert_eq!(c.payload().link().unwrap().seq, 2);
    }

    #[test]
    fn injected_stall_gates_acceptance_until_deadline() {
        use shrimp_sim::fault::{FaultConfig, NicFaultConfig};
        let mut n = nic();
        let cfg = FaultConfig {
            seed: 3,
            nic: NicFaultConfig {
                stall_rate: 1.0,
                stall: (SimDuration::from_ns(500), SimDuration::from_ns(500)),
            },
            ..FaultConfig::default()
        };
        n.set_fault_injection(cfg.nic_site(0).expect("active"));
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        assert!(n.can_accept_from_network_at(t(0)));
        let mp = wire_packet_for(&n, PageNum::new(4).base(), vec![1; 8]);
        n.accept_packet(t(0), mp).unwrap();
        assert_eq!(n.stats().fault_stalls, 1);
        assert!(!n.can_accept_from_network_at(t(100)), "stalled");
        assert_eq!(n.next_deadline(), Some(t(500)), "wakeup at stall end");
        assert!(n.can_accept_from_network_at(t(500)), "stall expired");
        n.poll(t(500));
        assert!(n.next_deadline().is_none());
    }
}
