//! The Network Interface Page Table (NIPT).
//!
//! "The NIPT has one entry for each page of physical memory on the node,
//! and contains information about whether, and how, the page is mapped"
//! (paper §4). Each entry holds:
//!
//! * up to **two outgoing mapping segments** — a page can be split between
//!   two separate mappings at a configurable offset (§3.2), which lets
//!   applications map buffers that are not page-aligned;
//! * the **mapped-in** bit — whether incoming packets may be delivered to
//!   this page;
//! * a one-shot **interrupt-on-arrival** request, settable from user level
//!   through a command page (§4.2).

use shrimp_mem::{PageNum, PhysAddr, PAGE_SIZE};
use shrimp_mesh::NodeId;

use crate::error::NicError;

/// How snooped writes to a mapped-out region are transferred (§2, §4.1,
/// §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdatePolicy {
    /// Every store becomes a packet immediately: lowest latency.
    AutomaticSingle,
    /// Consecutive same-page stores within the merge window share one
    /// packet: better bandwidth at slightly higher latency.
    AutomaticBlocked,
    /// Data moves only when the process issues an explicit send through a
    /// command page; the DMA engine streams the region: highest bandwidth.
    Deliberate,
}

impl UpdatePolicy {
    /// True for either automatic-update flavor.
    pub fn is_automatic(self) -> bool {
        !matches!(self, UpdatePolicy::Deliberate)
    }
}

/// One outgoing mapping segment: a byte range of a local physical page
/// mapped to a contiguous destination region on a remote node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutSegment {
    /// First covered in-page byte offset (inclusive).
    pub src_start: u64,
    /// End of the covered range (exclusive, at most [`PAGE_SIZE`]).
    pub src_end: u64,
    /// The node the data is sent to.
    pub dst_node: NodeId,
    /// Destination physical address corresponding to `src_start`.
    pub dst_base: PhysAddr,
    /// Transfer strategy for this segment.
    pub policy: UpdatePolicy,
}

impl OutSegment {
    /// A segment covering a whole page, mapped to a whole remote page —
    /// the common, page-aligned case.
    pub fn full_page(dst_node: NodeId, dst_page: PageNum, policy: UpdatePolicy) -> Self {
        OutSegment {
            src_start: 0,
            src_end: PAGE_SIZE,
            dst_node,
            dst_base: dst_page.base(),
            policy,
        }
    }

    /// True if this segment covers the in-page byte `offset`.
    pub fn contains(&self, offset: u64) -> bool {
        (self.src_start..self.src_end).contains(&offset)
    }

    /// Destination address for in-page byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the segment.
    pub fn translate(&self, offset: u64) -> PhysAddr {
        assert!(self.contains(offset), "offset {offset} outside segment");
        self.dst_base.add(offset - self.src_start)
    }

    /// Covered length in bytes.
    pub fn len(&self) -> u64 {
        self.src_end - self.src_start
    }

    /// True for an empty (degenerate) segment.
    pub fn is_empty(&self) -> bool {
        self.src_start >= self.src_end
    }

    fn validate(&self) -> Result<(), NicError> {
        if self.is_empty() {
            return Err(NicError::BadMapping("empty segment"));
        }
        if self.src_end > PAGE_SIZE {
            return Err(NicError::BadMapping("segment extends past the page"));
        }
        if self.dst_base.offset() + self.len() > PAGE_SIZE {
            return Err(NicError::BadMapping(
                "destination region crosses a page boundary; split the mapping",
            ));
        }
        Ok(())
    }

    fn overlaps(&self, other: &OutSegment) -> bool {
        self.src_start < other.src_end && other.src_start < self.src_end
    }
}

/// One NIPT entry (one local physical page).
#[derive(Debug, Clone, Default)]
pub struct NiptEntry {
    segments: [Option<OutSegment>; 2],
    mapped_in: bool,
    interrupt_on_arrival: bool,
}

impl NiptEntry {
    /// The outgoing segments configured on this page.
    pub fn segments(&self) -> impl Iterator<Item = &OutSegment> {
        self.segments.iter().flatten()
    }

    /// The segment covering in-page byte `offset`, if any.
    pub fn segment_at(&self, offset: u64) -> Option<&OutSegment> {
        self.segments().find(|s| s.contains(offset))
    }

    /// True if incoming packets may be delivered to this page.
    pub fn is_mapped_in(&self) -> bool {
        self.mapped_in
    }

    /// True if any outgoing segment is configured.
    pub fn is_mapped_out(&self) -> bool {
        self.segments().next().is_some()
    }
}

/// The page table of one network interface.
///
/// # Examples
///
/// ```
/// use shrimp_nic::{Nipt, OutSegment, UpdatePolicy};
/// use shrimp_mem::{PageNum, PhysAddr};
/// use shrimp_mesh::NodeId;
///
/// let mut nipt = Nipt::new(16);
/// nipt.set_out_segment(
///     PageNum::new(2),
///     OutSegment::full_page(NodeId(1), PageNum::new(5), UpdatePolicy::Deliberate),
/// )?;
/// let seg = nipt.lookup_out(PhysAddr::new(2 * 4096 + 100)).unwrap();
/// assert_eq!(seg.translate(100), PhysAddr::new(5 * 4096 + 100));
/// # Ok::<(), shrimp_nic::NicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Nipt {
    entries: Vec<NiptEntry>,
}

impl Nipt {
    /// Creates a NIPT with one (unmapped) entry per local physical page.
    pub fn new(num_pages: u64) -> Self {
        Nipt {
            entries: vec![NiptEntry::default(); num_pages as usize],
        }
    }

    /// Number of entries (== local physical pages).
    pub fn num_pages(&self) -> u64 {
        self.entries.len() as u64
    }

    /// The entry for `page`, if the page exists.
    pub fn entry(&self, page: PageNum) -> Option<&NiptEntry> {
        self.entries.get(page.raw() as usize)
    }

    fn entry_mut(&mut self, page: PageNum) -> Result<&mut NiptEntry, NicError> {
        self.entries
            .get_mut(page.raw() as usize)
            .ok_or(NicError::PageOutOfRange { page })
    }

    /// Installs an outgoing segment on `page`. A segment with the same
    /// `src_start` is replaced; otherwise the segment takes the free slot.
    ///
    /// # Errors
    ///
    /// Returns [`NicError::BadMapping`] if the segment is malformed,
    /// overlaps an existing segment, or both slots are taken (a page can
    /// be split between at most two mappings, §3.2);
    /// [`NicError::PageOutOfRange`] if `page` does not exist.
    pub fn set_out_segment(&mut self, page: PageNum, seg: OutSegment) -> Result<(), NicError> {
        seg.validate()?;
        let entry = self.entry_mut(page)?;
        // Replace in place if same start.
        if let Some(_slot) = entry
            .segments
            .iter_mut()
            .flatten()
            .find(|s| s.src_start == seg.src_start)
        {
            if entry
                .segments
                .iter()
                .flatten()
                .any(|s| s.src_start != seg.src_start && s.overlaps(&seg))
            {
                return Err(NicError::BadMapping("segments overlap"));
            }
            let slot = entry
                .segments
                .iter_mut()
                .flatten()
                .find(|s| s.src_start == seg.src_start)
                .expect("checked above");
            *slot = seg;
            return Ok(());
        }
        if entry.segments.iter().flatten().any(|s| s.overlaps(&seg)) {
            return Err(NicError::BadMapping("segments overlap"));
        }
        match entry.segments.iter_mut().find(|s| s.is_none()) {
            Some(slot) => {
                *slot = Some(seg);
                Ok(())
            }
            None => Err(NicError::BadMapping(
                "page already split between two mappings",
            )),
        }
    }

    /// Removes the outgoing segment that covers `offset` on `page`.
    /// Returns the removed segment.
    pub fn clear_out_segment(&mut self, page: PageNum, offset: u64) -> Option<OutSegment> {
        let entry = self.entries.get_mut(page.raw() as usize)?;
        for slot in entry.segments.iter_mut() {
            if slot.is_some_and(|s| s.contains(offset)) {
                return slot.take();
            }
        }
        None
    }

    /// Removes all outgoing segments on `page`, returning how many were
    /// removed.
    pub fn clear_out_segments(&mut self, page: PageNum) -> usize {
        match self.entries.get_mut(page.raw() as usize) {
            Some(entry) => entry.segments.iter_mut().filter_map(Option::take).count(),
            None => 0,
        }
    }

    /// The outgoing segment covering physical address `addr`, if any.
    /// This is the lookup the snooping datapath performs on every bus
    /// write.
    pub fn lookup_out(&self, addr: PhysAddr) -> Option<&OutSegment> {
        self.entry(addr.page())?.segment_at(addr.offset())
    }

    /// Marks `page` as mapped in (or not).
    ///
    /// # Errors
    ///
    /// Returns [`NicError::PageOutOfRange`] if `page` does not exist.
    pub fn set_mapped_in(&mut self, page: PageNum, mapped: bool) -> Result<(), NicError> {
        self.entry_mut(page)?.mapped_in = mapped;
        Ok(())
    }

    /// True if incoming packets may be delivered to `page`.
    pub fn is_mapped_in(&self, page: PageNum) -> bool {
        self.entry(page).is_some_and(|e| e.mapped_in)
    }

    /// Arms (or disarms) the one-shot interrupt-on-arrival request for
    /// `page` (§4.2).
    ///
    /// # Errors
    ///
    /// Returns [`NicError::PageOutOfRange`] if `page` does not exist.
    pub fn set_interrupt_on_arrival(&mut self, page: PageNum, armed: bool) -> Result<(), NicError> {
        self.entry_mut(page)?.interrupt_on_arrival = armed;
        Ok(())
    }

    /// Consumes the one-shot interrupt request for `page`, returning
    /// whether it was armed.
    pub fn take_interrupt_request(&mut self, page: PageNum) -> bool {
        match self.entries.get_mut(page.raw() as usize) {
            Some(e) => std::mem::take(&mut e.interrupt_on_arrival),
            None => false,
        }
    }

    /// Iterates pages with at least one outgoing segment.
    pub fn mapped_out_pages(&self) -> impl Iterator<Item = PageNum> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_mapped_out())
            .map(|(i, _)| PageNum::new(i as u64))
    }

    /// Iterates pages that are mapped in.
    pub fn mapped_in_pages(&self) -> impl Iterator<Item = PageNum> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.mapped_in)
            .map(|(i, _)| PageNum::new(i as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start: u64, end: u64, dst_off: u64) -> OutSegment {
        OutSegment {
            src_start: start,
            src_end: end,
            dst_node: NodeId(1),
            dst_base: PageNum::new(9).base().add(dst_off),
            policy: UpdatePolicy::AutomaticSingle,
        }
    }

    #[test]
    fn full_page_mapping_translates_identically() {
        let s = OutSegment::full_page(NodeId(2), PageNum::new(4), UpdatePolicy::Deliberate);
        assert_eq!(s.len(), PAGE_SIZE);
        assert_eq!(s.translate(0), PageNum::new(4).base());
        assert_eq!(s.translate(4095), PageNum::new(4).base().add(4095));
        assert!(!s.policy.is_automatic());
    }

    #[test]
    fn split_page_mapping_two_segments() {
        // Paper §3.2: one page split at offset 1000 between two mappings.
        let mut nipt = Nipt::new(8);
        let p = PageNum::new(3);
        nipt.set_out_segment(p, seg(0, 1000, 3096)).unwrap(); // tail of remote page
        nipt.set_out_segment(p, seg(1000, PAGE_SIZE, 0)).unwrap(); // next region
        let low = nipt.lookup_out(p.at_offset(500)).unwrap();
        assert_eq!(low.translate(500), PageNum::new(9).base().add(3096 + 500));
        let high = nipt.lookup_out(p.at_offset(1000)).unwrap();
        assert_eq!(high.translate(1000), PageNum::new(9).base());
        assert_eq!(nipt.entry(p).unwrap().segments().count(), 2);
    }

    #[test]
    fn third_segment_rejected() {
        let mut nipt = Nipt::new(8);
        let p = PageNum::new(0);
        nipt.set_out_segment(p, seg(0, 100, 0)).unwrap();
        nipt.set_out_segment(p, seg(100, 200, 100)).unwrap();
        assert!(matches!(
            nipt.set_out_segment(p, seg(200, 300, 200)),
            Err(NicError::BadMapping(_))
        ));
    }

    #[test]
    fn overlapping_segments_rejected() {
        let mut nipt = Nipt::new(8);
        let p = PageNum::new(0);
        nipt.set_out_segment(p, seg(0, 200, 0)).unwrap();
        assert!(matches!(
            nipt.set_out_segment(p, seg(100, 300, 500)),
            Err(NicError::BadMapping(_))
        ));
    }

    #[test]
    fn same_start_replaces() {
        let mut nipt = Nipt::new(8);
        let p = PageNum::new(0);
        nipt.set_out_segment(p, seg(0, 200, 0)).unwrap();
        let mut replacement = seg(0, 150, 64);
        replacement.policy = UpdatePolicy::Deliberate;
        nipt.set_out_segment(p, replacement).unwrap();
        let s = nipt.lookup_out(p.at_offset(0)).unwrap();
        assert_eq!(s.src_end, 150);
        assert_eq!(s.policy, UpdatePolicy::Deliberate);
        assert!(nipt.lookup_out(p.at_offset(180)).is_none());
    }

    #[test]
    fn malformed_segments_rejected() {
        let mut nipt = Nipt::new(8);
        let p = PageNum::new(0);
        assert!(nipt.set_out_segment(p, seg(100, 100, 0)).is_err(), "empty");
        assert!(
            nipt.set_out_segment(p, seg(0, PAGE_SIZE + 1, 0)).is_err(),
            "past page end"
        );
        // Destination region crossing a page boundary must be split.
        assert!(
            nipt.set_out_segment(p, seg(0, 200, PAGE_SIZE - 100)).is_err(),
            "dest crosses boundary"
        );
    }

    #[test]
    fn lookup_out_misses_unmapped() {
        let nipt = Nipt::new(4);
        assert!(nipt.lookup_out(PhysAddr::new(0)).is_none());
        assert!(nipt.entry(PageNum::new(4)).is_none());
    }

    #[test]
    fn page_out_of_range_errors() {
        let mut nipt = Nipt::new(4);
        assert!(matches!(
            nipt.set_out_segment(PageNum::new(9), seg(0, 10, 0)),
            Err(NicError::PageOutOfRange { .. })
        ));
        assert!(nipt.set_mapped_in(PageNum::new(9), true).is_err());
    }

    #[test]
    fn mapped_in_and_interrupt_flags() {
        let mut nipt = Nipt::new(4);
        let p = PageNum::new(2);
        assert!(!nipt.is_mapped_in(p));
        nipt.set_mapped_in(p, true).unwrap();
        assert!(nipt.is_mapped_in(p));
        nipt.set_interrupt_on_arrival(p, true).unwrap();
        assert!(nipt.take_interrupt_request(p), "armed request fires");
        assert!(!nipt.take_interrupt_request(p), "one-shot: cleared");
    }

    #[test]
    fn clear_segments() {
        let mut nipt = Nipt::new(4);
        let p = PageNum::new(1);
        nipt.set_out_segment(p, seg(0, 100, 0)).unwrap();
        nipt.set_out_segment(p, seg(200, 300, 200)).unwrap();
        let removed = nipt.clear_out_segment(p, 250).unwrap();
        assert_eq!(removed.src_start, 200);
        assert_eq!(nipt.clear_out_segments(p), 1);
        assert!(!nipt.entry(p).unwrap().is_mapped_out());
    }

    #[test]
    fn mapped_page_iterators() {
        let mut nipt = Nipt::new(6);
        nipt.set_out_segment(PageNum::new(1), seg(0, 10, 0)).unwrap();
        nipt.set_out_segment(PageNum::new(4), seg(0, 10, 0)).unwrap();
        nipt.set_mapped_in(PageNum::new(5), true).unwrap();
        let out: Vec<_> = nipt.mapped_out_pages().collect();
        assert_eq!(out, vec![PageNum::new(1), PageNum::new(4)]);
        let inn: Vec<_> = nipt.mapped_in_pages().collect();
        assert_eq!(inn, vec![PageNum::new(5)]);
    }
}
