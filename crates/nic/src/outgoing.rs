//! Outgoing FIFO management: queueing, overflow spill/refill, threshold
//! backpressure, and the FIFO→mesh injection path.
//!
//! Packets produced by the datapath land here via
//! [`NetworkInterface::queue_packet`]; the machine drains them with
//! [`NetworkInterface::pop_outgoing`]. When the FIFO is full, packets
//! detour through the overflow queue and re-enter in order as space
//! frees — the overflow is the modelled "CPU stalled, data buffered"
//! state of paper §4.

use shrimp_mem::PhysAddr;
use shrimp_mesh::{MeshPacket, NodeId};
use shrimp_sim::{SimTime, TraceData, TraceLevel};

use crate::datapath::{NicInterrupt, SnoopOutcome};
use crate::nic::NetworkInterface;
use crate::packet::{FrameKind, LinkCtl, Payload, ShrimpPacket, WireHeader};
use crate::retx::SendPeer;

impl NetworkInterface {
    pub(crate) fn queue_packet(
        &mut self,
        ready_at: SimTime,
        dst_node: NodeId,
        dst_addr: PhysAddr,
        data: Payload,
    ) -> SnoopOutcome {
        self.metrics.incr(self.ids.packets_sent);
        self.metrics.add(self.ids.bytes_sent, data.len() as u64);
        let mut packet = ShrimpPacket::new(
            WireHeader {
                dst_coord: self.shape.coord_of(dst_node),
                src: self.node,
                dst_addr,
            },
            data,
        );
        packet.stamp.born = ready_at;
        match self.out_fifo.try_push(ready_at, packet) {
            Ok(()) => {
                if self.out_fifo.over_threshold() && !self.out_threshold_raised {
                    self.out_threshold_raised = true;
                    self.interrupts.push(NicInterrupt::OutgoingThreshold);
                    self.trace_out_threshold(ready_at, true);
                }
                SnoopOutcome::Queued
            }
            Err(packet) => {
                self.overflow.push_back(packet);
                if !self.out_threshold_raised {
                    self.out_threshold_raised = true;
                    self.interrupts.push(NicInterrupt::OutgoingThreshold);
                    self.trace_out_threshold(ready_at, true);
                }
                SnoopOutcome::Stalled
            }
        }
    }

    /// Emits an out-FIFO backpressure raise/clear trace event.
    fn trace_out_threshold(&mut self, at: SimTime, raised: bool) {
        if self.tracer.wants(TraceLevel::Info) {
            let component = self.component();
            let occupancy = self.out_fifo.bytes();
            self.tracer.emit(
                at,
                TraceLevel::Info,
                component,
                TraceData::FifoThreshold {
                    fifo: "out",
                    raised,
                    occupancy,
                },
            );
        }
    }

    /// Clears the out-FIFO backpressure flag (tracing the transition)
    /// once the FIFO has drained below its threshold.
    pub(crate) fn clear_out_threshold(&mut self, now: SimTime) {
        if self.out_threshold_raised && !self.out_fifo.over_threshold() {
            self.out_threshold_raised = false;
            self.trace_out_threshold(now, false);
        }
    }

    /// Moves stalled packets into the Outgoing FIFO as space frees,
    /// preserving order.
    ///
    /// A stalled deliberate-update packet may still be waiting on its
    /// DMA read: `stamp.born` is the engine's `done_at`, possibly in the
    /// future. Re-entering the FIFO at the refill instant would let the
    /// packet inject before its data exists, which the born clamp at the
    /// pop sites then papers over by rewriting `born` backwards. Refill
    /// at `max(now, born)` instead, matching the ready time the packet
    /// would have had without the overflow detour.
    pub(crate) fn refill_from_overflow(&mut self, now: SimTime) {
        while let Some(pkt) = self.overflow.front() {
            if !self.out_fifo.would_fit(pkt.wire_len()) {
                break;
            }
            let pkt = self.overflow.pop_front().expect("front checked above");
            let ready = now.max(pkt.stamp.born);
            self.out_fifo
                .try_push(ready, pkt)
                .expect("would_fit checked above");
        }
    }

    // ───────────────────────── outgoing: FIFO → mesh ─────────────────────

    /// When the head outgoing packet (data or link control) becomes
    /// ready for injection, if any. The `try_push` timestamp doubles as
    /// the readiness time; pending retransmissions are ready immediately.
    pub fn outgoing_ready_at(&self) -> Option<SimTime> {
        let mut ready = self.out_fifo.peek_with_time().map(|(_, t)| t);
        if let Some((t, _, _)) = self.ctl_queue.front() {
            ready = Some(ready.map_or(*t, |r| r.min(*t)));
        }
        if let Some(st) = &self.retx {
            if st.send.values().any(|p| p.resend_from.is_some()) {
                ready = Some(SimTime::ZERO);
            }
        }
        ready
    }

    /// Pops the next outgoing mesh packet if one is ready by `now`:
    /// ack/nack control frames first, then pending go-back-N resends,
    /// then new data from the Outgoing FIFO (held back while the
    /// destination's retransmit window is full — that backpressure is
    /// what eventually stalls the CPU, per the paper's flow-control
    /// chain). The packet is handed to the mesh whole — no serialization.
    pub fn pop_outgoing(&mut self, now: SimTime) -> Option<MeshPacket<ShrimpPacket>> {
        if let Some((ready, _, _)) = self.ctl_queue.front() {
            if *ready <= now {
                let (_, dst, frame) = self.ctl_queue.pop_front().expect("front checked above");
                return Some(MeshPacket::new(self.node, dst, frame));
            }
        }
        if self.retx.is_some() {
            if let Some(mp) = self.pop_resend(now) {
                return Some(mp);
            }
        }
        let (head, ready) = self.out_fifo.peek_with_time()?;
        if ready > now {
            return None;
        }
        if self.retx.is_some() {
            let dst = self.shape.id_at(head.header().dst_coord);
            let base_rto = self.config.retx.base_timeout;
            let window = self.config.retx.window_packets;
            let st = self.retx.as_mut().expect("checked above");
            let peer = st
                .send
                .entry(dst.0)
                .or_insert_with(|| SendPeer::new(base_rto));
            if peer.unacked.len() >= window {
                // Retransmit buffer full: stop draining until acks or a
                // timeout free it.
                return None;
            }
            let (packet, _) = self.out_fifo.pop().expect("head peeked above");
            let seq = peer.next_seq;
            peer.next_seq += 1;
            let stamp = packet.stamp;
            let mut framed = ShrimpPacket::with_link(
                *packet.header(),
                packet.into_payload(),
                LinkCtl {
                    kind: FrameKind::Data,
                    seq,
                },
            );
            framed.stamp = stamp;
            framed.stamp.injected = now;
            // Defensive: refill_from_overflow preserves `born` as the
            // ready time, so injection can no longer precede it; the
            // clamp only degrades gracefully if that invariant breaks.
            framed.stamp.born = framed.stamp.born.min(now);
            peer.unacked.push_back(framed.clone());
            peer.timeout_at = Some(now + peer.rto);
            self.refill_from_overflow(now);
            self.clear_out_threshold(now);
            return Some(MeshPacket::new(self.node, dst, framed));
        }
        let (mut packet, _) = self.out_fifo.pop()?;
        packet.stamp.injected = now;
        packet.stamp.born = packet.stamp.born.min(now);
        let dst = self.shape.id_at(packet.header().dst_coord);
        // Space freed: stalled packets enter the FIFO now.
        self.refill_from_overflow(now);
        self.clear_out_threshold(now);
        Some(MeshPacket::new(self.node, dst, packet))
    }

    /// True when link-level control frames or go-back-N replays are
    /// waiting to be injected. Always false with retransmission off, so
    /// callers can gate extra drain passes on it for free.
    pub fn has_pending_control(&self) -> bool {
        !self.ctl_queue.is_empty()
            || self
                .retx
                .as_ref()
                .is_some_and(|st| st.send.values().any(|p| p.resend_from.is_some()))
    }

    /// True while the Outgoing FIFO is over its threshold — the CPU must
    /// not issue further mapped writes (paper §4).
    pub fn cpu_must_stall(&self) -> bool {
        self.out_fifo.over_threshold() || !self.overflow.is_empty()
    }

    /// Outgoing FIFO occupancy in bytes (for flow-control benches).
    pub fn out_fifo_bytes(&self) -> u64 {
        self.out_fifo.bytes()
    }
}

#[cfg(test)]
mod tests {
    use crate::datapath::CommandEffect;
    use crate::nipt::UpdatePolicy;
    use crate::packet::Payload;
    use crate::testutil::{map_out, nic, t};
    use shrimp_mem::{PageNum, PAGE_SIZE, WORD_SIZE};
    use shrimp_sim::{SimDuration, SimTime};

    /// Regression for the overflow-refill born clamp: a deliberate
    /// packet whose DMA read finishes in the future (`born == done_at`)
    /// that detours through the overflow queue must re-enter the FIFO at
    /// `born`, not at the refill instant. Before the fix, the refill's
    /// fresh ready time let the packet inject *before* its data existed
    /// and the pop-site clamp rewrote `born` backwards, silently
    /// shortening the out-FIFO stage. A session transfer popped in the
    /// same instant as its refill must show `born == injected` exactly,
    /// so the stage sums still telescope to end-to-end.
    #[test]
    fn overflow_refill_preserves_future_born() {
        let mut n = nic();
        map_out(&mut n, 6, 1, 12, UpdatePolicy::Deliberate);
        map_out(&mut n, 7, 1, 13, UpdatePolicy::Deliberate);
        let full_page = PAGE_SIZE as u32 / WORD_SIZE as u32;

        // First transfer: fills just over half the 8 KB out FIFO.
        let e1 = n
            .command_write(t(0), n.command_space().command_addr_for(PageNum::new(6).base()),
                full_page, |_, len| (Payload::from(vec![0x11; len as usize]), t(500)))
            .unwrap();
        let CommandEffect::DmaStarted { done_at: done1 } = e1 else {
            panic!("expected DmaStarted, got {e1:?}");
        };

        // Second transfer, started once the engine frees: its packet no
        // longer fits behind the first, so it lands in overflow with a
        // future born (= its own done_at).
        let e2 = n
            .command_write(done1, n.command_space().command_addr_for(PageNum::new(7).base()),
                full_page, |_, len| (Payload::from(vec![0x22; len as usize]), done1 + SimDuration::from_ns(500)))
            .unwrap();
        let CommandEffect::DmaStarted { done_at: done2 } = e2 else {
            panic!("expected DmaStarted, got {e2:?}");
        };
        assert!(done2 > done1);

        // Popping the first packet triggers refill_from_overflow at
        // `done1`, while the second packet's DMA is still in flight.
        let first = n.pop_outgoing(done1).expect("first packet ready at its done_at");
        assert_eq!(first.payload().payload()[0], 0x11);

        // The refilled packet must stay invisible until its read is done…
        assert!(
            n.pop_outgoing(done2 - SimDuration::from_ns(1)).is_none(),
            "overflowed packet must not inject before its DMA read completes"
        );

        // …and at `done2` it pops with born == injected == done2: the
        // same-instant refill/pop case telescopes with a zero out-FIFO
        // stage instead of a clamped, rewritten born.
        let second = n.pop_outgoing(done2).expect("ready exactly at done_at");
        let stamp = second.payload().stamp;
        assert_eq!(stamp.born, done2);
        assert_eq!(stamp.injected, done2);
        assert_eq!(stamp.injected.since(stamp.born), SimDuration::ZERO);
    }

    #[test]
    fn outgoing_threshold_raises_cpu_stall() {
        let mut n = nic();
        map_out(&mut n, 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let addr = PageNum::new(2).base();
        let mut writes = 0;
        while !n.cpu_must_stall() {
            n.snoop_write(t(writes), addr, &[0u8; 4]);
            writes += 1;
            assert!(writes < 10_000, "threshold must eventually trip");
        }
        assert!(n
            .take_interrupts()
            .contains(&crate::datapath::NicInterrupt::OutgoingThreshold));
        // Draining clears the stall.
        while n.pop_outgoing(SimTime::from_picos(u64::MAX / 2)).is_some() {}
        n.poll(t(writes));
        assert!(!n.cpu_must_stall());
    }
}
