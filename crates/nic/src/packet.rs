//! The NIC wire format.
//!
//! A packet consists of "routing information, the absolute mesh
//! coordinates of the intended receiver, destination memory address,
//! data, and a CRC checksum to detect network errors" (paper §3.1). The
//! routing information proper is consumed by the mesh model
//! ([`shrimp_mesh::packet::ROUTING_OVERHEAD_BYTES`]); everything else is
//! encoded here.
//!
//! Packets are *not* serialized on the simulated datapath: the CRC is
//! computed by streaming over the header fields and the payload slice at
//! construction, and the structured packet itself rides the mesh (it
//! implements [`shrimp_mesh::MeshPayload`]). [`ShrimpPacket::encode`] and
//! [`ShrimpPacket::decode`] produce/parse the equivalent wire bytes and
//! exist for wire-level tests and tools.

use bytes::Bytes;
use shrimp_mesh::{MeshCoord, MeshPayload, NodeId};
use shrimp_mem::PhysAddr;
use shrimp_sim::SimTime;

use crate::error::NicError;

/// Lifecycle timestamps stamped onto a packet as it moves through the
/// datapath: creation (snoop/deliberate send), injection into the mesh
/// (Outgoing FIFO pop), and acceptance at the receiving NIC (Incoming
/// FIFO push). The stamp is simulation metadata, not part of the wire
/// image: it is ignored by [`ShrimpPacket`] equality and never enters
/// the CRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketStamp {
    /// When the packet was created and queued on the sending NIC.
    pub born: SimTime,
    /// When the packet left the Outgoing FIFO for the mesh (updated on
    /// every retransmission, so stage latencies reflect the final trip).
    pub injected: SimTime,
    /// When the receiving NIC accepted the packet into its Incoming FIFO.
    pub accepted: SimTime,
}

impl Default for PacketStamp {
    fn default() -> Self {
        PacketStamp {
            born: SimTime::ZERO,
            injected: SimTime::ZERO,
            accepted: SimTime::ZERO,
        }
    }
}

/// The decoded header of a SHRIMP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Absolute mesh coordinates of the intended receiver, used by the
    /// receiving NIC to verify correct routing.
    pub dst_coord: MeshCoord,
    /// Sending node (used for statistics and debugging; the hardware
    /// guarantees per-sender order so receivers never need it for
    /// reassembly).
    pub src: NodeId,
    /// Destination physical byte address on the receiving node.
    pub dst_addr: PhysAddr,
}

impl WireHeader {
    /// Encoded header size: dst x/y (2) + src (2) + dst_addr (8) +
    /// payload length (2).
    pub const WIRE_BYTES: u64 = 14;

    /// The header's wire bytes, for streaming into a CRC without
    /// materializing the full wire buffer. `len` is the payload length
    /// field value.
    fn wire_bytes(&self, len: u16) -> [u8; Self::WIRE_BYTES as usize] {
        let mut b = [0u8; Self::WIRE_BYTES as usize];
        b[0] = self.dst_coord.x as u8;
        b[1] = self.dst_coord.y as u8;
        b[2..4].copy_from_slice(&self.src.0.to_le_bytes());
        b[4..12].copy_from_slice(&self.dst_addr.raw().to_le_bytes());
        b[12..14].copy_from_slice(&len.to_le_bytes());
        b
    }
}

/// Role of a link-level frame when retransmission is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// An ordinary data packet carrying a sequence number.
    Data,
    /// Cumulative acknowledgement: every seq below `seq` arrived.
    Ack,
    /// Go-back-N request: resend everything from `seq` on.
    Nack,
}

impl FrameKind {
    fn to_wire(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
            FrameKind::Nack => 2,
        }
    }

    fn from_wire(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Ack),
            2 => Some(FrameKind::Nack),
            _ => None,
        }
    }
}

/// Link-level control trailer carried only when the go-back-N engine is
/// enabled: a frame kind byte plus a per-(src,dst) sequence number.
/// Packets sent with retransmission off omit it entirely, so the
/// baseline wire format and CRC are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCtl {
    /// What this frame is.
    pub kind: FrameKind,
    /// Sequence number (data) or cumulative ack/nack point (control).
    pub seq: u32,
}

impl LinkCtl {
    /// Encoded trailer size: kind (1) + seq (4).
    pub const WIRE_BYTES: u64 = 5;

    fn wire_bytes(&self) -> [u8; Self::WIRE_BYTES as usize] {
        let mut b = [0u8; Self::WIRE_BYTES as usize];
        b[0] = self.kind.to_wire();
        b[1..5].copy_from_slice(&self.seq.to_le_bytes());
        b
    }
}

/// Largest payload stored inline, without touching the heap. Snooped
/// automatic-update packets carry a single word (4 bytes), so the common
/// small packet never allocates.
pub const INLINE_PAYLOAD_MAX: usize = 8;

/// A packet payload: tiny payloads live inline in the packet struct,
/// larger ones are refcounted so every pipeline stage (Outgoing FIFO,
/// mesh, Incoming FIFO, DMA) shares one buffer.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Up to [`INLINE_PAYLOAD_MAX`] bytes, stored in place.
    Inline { len: u8, buf: [u8; INLINE_PAYLOAD_MAX] },
    /// A refcounted slice of a shared buffer.
    Shared(Bytes),
    /// A refcounted buffer from the [`arena`](crate::arena) pool; the
    /// allocation is recycled when the last pipeline stage drops it.
    Pooled(std::sync::Arc<crate::arena::PoolBuf>),
}

impl Payload {
    /// Builds a payload from a slice, inlining it when it fits.
    pub fn copy_from_slice(data: &[u8]) -> Payload {
        if data.len() <= INLINE_PAYLOAD_MAX {
            let mut buf = [0u8; INLINE_PAYLOAD_MAX];
            buf[..data.len()].copy_from_slice(data);
            Payload::Inline {
                len: data.len() as u8,
                buf,
            }
        } else {
            Payload::Shared(Bytes::copy_from_slice(data))
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Inline { len, buf } => &buf[..*len as usize],
            Payload::Shared(b) => b,
            Payload::Pooled(p) => p,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Inline { len, .. } => *len as usize,
            Payload::Shared(b) => b.len(),
            Payload::Pooled(p) => p.len(),
        }
    }

    /// True when the payload carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flips one bit in place. A shared payload is copied first so other
    /// holders of the buffer are unaffected (fault injection only).
    fn flip_bit(&mut self, byte: usize, mask: u8) {
        match self {
            Payload::Inline { buf, .. } => buf[byte] ^= mask,
            Payload::Shared(b) => {
                let mut v = b.to_vec();
                v[byte] ^= mask;
                *b = Bytes::from(v);
            }
            Payload::Pooled(p) => {
                // Fault injection only — copy, other holders keep the
                // pristine buffer.
                let mut copy = crate::arena::take(p.len());
                copy.copy_from_slice(p);
                copy[byte] ^= mask;
                *self = Payload::Pooled(std::sync::Arc::new(copy));
            }
        }
    }
}

impl From<crate::arena::PoolBuf> for Payload {
    /// Wraps a pool buffer, inlining tiny payloads (the buffer returns
    /// to the pool immediately in that case).
    fn from(b: crate::arena::PoolBuf) -> Payload {
        if b.len() <= INLINE_PAYLOAD_MAX {
            Payload::copy_from_slice(&b)
        } else {
            Payload::Pooled(std::sync::Arc::new(b))
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        if v.len() <= INLINE_PAYLOAD_MAX {
            Payload::copy_from_slice(&v)
        } else {
            Payload::Shared(Bytes::from(v))
        }
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        Payload::Shared(b)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload::copy_from_slice(v)
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::Inline {
            len: 0,
            buf: [0; INLINE_PAYLOAD_MAX],
        }
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A complete SHRIMP packet: header, payload, CRC32.
///
/// The CRC is computed once at construction (over the logical wire bytes:
/// header, length field, payload) and carried with the packet;
/// [`ShrimpPacket::verify_crc`] recomputes and compares on receipt.
///
/// # Examples
///
/// ```
/// use shrimp_nic::{ShrimpPacket, WireHeader};
/// use shrimp_mesh::{MeshCoord, NodeId};
/// use shrimp_mem::PhysAddr;
///
/// let header = WireHeader {
///     dst_coord: MeshCoord { x: 1, y: 0 },
///     src: NodeId(0),
///     dst_addr: PhysAddr::new(0x2000),
/// };
/// let packet = ShrimpPacket::new(header, vec![1, 2, 3, 4]);
/// let wire = packet.encode();
/// let decoded = ShrimpPacket::decode(&wire)?;
/// assert_eq!(decoded.payload(), &[1, 2, 3, 4]);
/// # Ok::<(), shrimp_nic::NicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShrimpPacket {
    header: WireHeader,
    payload: Payload,
    /// Present only when the go-back-N engine framed the packet; legacy
    /// packets carry no trailer and their wire image is unchanged.
    link: Option<LinkCtl>,
    crc: u32,
    /// Datapath lifecycle timestamps (simulation metadata; excluded from
    /// equality and the CRC).
    pub stamp: PacketStamp,
}

/// Equality covers the wire image only — the lifecycle stamp is
/// simulation metadata, so a decoded packet compares equal to the one
/// that was encoded.
impl PartialEq for ShrimpPacket {
    fn eq(&self, other: &ShrimpPacket) -> bool {
        self.header == other.header
            && self.payload == other.payload
            && self.link == other.link
            && self.crc == other.crc
    }
}

impl Eq for ShrimpPacket {}

impl ShrimpPacket {
    /// Builds a packet, computing its CRC.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes (the length field).
    pub fn new(header: WireHeader, payload: impl Into<Payload>) -> Self {
        let payload = payload.into();
        assert!(payload.len() <= u16::MAX as usize, "payload too large");
        let crc = body_crc(&header, payload.as_slice(), None);
        ShrimpPacket {
            header,
            payload,
            link: None,
            crc,
            stamp: PacketStamp::default(),
        }
    }

    /// Builds a sequence-framed packet (data or control), computing its
    /// CRC over header, payload *and* the link trailer so trailer
    /// corruption is caught like any other.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes (the length field).
    pub fn with_link(header: WireHeader, payload: impl Into<Payload>, link: LinkCtl) -> Self {
        let payload = payload.into();
        assert!(payload.len() <= u16::MAX as usize, "payload too large");
        let crc = body_crc(&header, payload.as_slice(), Some(link));
        ShrimpPacket {
            header,
            payload,
            link: Some(link),
            crc,
            stamp: PacketStamp::default(),
        }
    }

    /// Builds an empty-payload ack/nack control frame.
    pub fn control(dst_coord: MeshCoord, src: NodeId, kind: FrameKind, seq: u32) -> Self {
        ShrimpPacket::with_link(
            WireHeader {
                dst_coord,
                src,
                dst_addr: PhysAddr::new(0),
            },
            Payload::default(),
            LinkCtl { kind, seq },
        )
    }

    /// Reassembles a packet from parts without recomputing the CRC — the
    /// decode path and wire-corruption tests, where the stored CRC must be
    /// whatever arrived.
    pub fn from_parts(header: WireHeader, payload: impl Into<Payload>, crc: u32) -> Self {
        let payload = payload.into();
        assert!(payload.len() <= u16::MAX as usize, "payload too large");
        ShrimpPacket {
            header,
            payload,
            link: None,
            crc,
            stamp: PacketStamp::default(),
        }
    }

    /// The decoded header.
    pub fn header(&self) -> &WireHeader {
        &self.header
    }

    /// The data bytes.
    pub fn payload(&self) -> &[u8] {
        self.payload.as_slice()
    }

    /// Consumes the packet, returning the payload.
    pub fn into_payload(self) -> Payload {
        self.payload
    }

    /// The link-level trailer, if the packet is sequence-framed.
    pub fn link(&self) -> Option<LinkCtl> {
        self.link
    }

    /// The CRC32 carried by the packet.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// Recomputes the CRC over header, payload and any link trailer and
    /// compares it with the stored one — what the receiving NIC does on
    /// arrival.
    pub fn verify_crc(&self) -> bool {
        body_crc(&self.header, self.payload.as_slice(), self.link) == self.crc
    }

    /// Total encoded size in bytes (header + payload [+ link trailer]
    /// + CRC32).
    pub fn wire_len(&self) -> u64 {
        let link = if self.link.is_some() {
            LinkCtl::WIRE_BYTES
        } else {
            0
        };
        WireHeader::WIRE_BYTES + self.payload.len() as u64 + link + 4
    }

    /// Serializes to wire bytes: header, payload, link trailer (when
    /// present), then the *stored* CRC (so a corrupted packet encodes to
    /// corrupted wire bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len() as usize);
        out.extend_from_slice(&self.header.wire_bytes(self.payload.len() as u16));
        out.extend_from_slice(self.payload.as_slice());
        if let Some(link) = self.link {
            out.extend_from_slice(&link.wire_bytes());
        }
        out.extend_from_slice(&self.crc.to_le_bytes());
        out
    }

    /// Flips one bit of the packet's wire image in place, keeping the
    /// stored CRC for every region except the CRC field itself — exactly
    /// what line noise does to a packet in flight. `bit` is taken modulo
    /// the wire size. Bits of the length field (which the structured
    /// packet cannot represent inconsistently) are folded into the CRC
    /// word: either way the checksum no longer matches the body.
    pub fn corrupt_bit(&mut self, bit: u64) {
        let bit = bit % (self.wire_len() * 8);
        let byte = bit / 8;
        let mask = 1u8 << (bit % 8);
        const H: u64 = WireHeader::WIRE_BYTES;
        let plen = self.payload.len() as u64;
        let link_end = H + plen + if self.link.is_some() {
            LinkCtl::WIRE_BYTES
        } else {
            0
        };
        if byte < H {
            match byte {
                0 => self.header.dst_coord.x ^= mask as u16,
                1 => self.header.dst_coord.y ^= mask as u16,
                2 | 3 => self.header.src.0 ^= (mask as u16) << ((byte - 2) * 8),
                4..=11 => {
                    let raw = self.header.dst_addr.raw() ^ ((mask as u64) << ((byte - 4) * 8));
                    self.header.dst_addr = PhysAddr::new(raw);
                }
                _ => self.crc ^= mask as u32,
            }
        } else if byte < H + plen {
            self.payload.flip_bit((byte - H) as usize, mask);
        } else if byte < link_end {
            let link = self.link.as_mut().expect("link region implies trailer");
            match byte - (H + plen) {
                // The kind byte folds into the seq field: any flip still
                // de-syncs the trailer from the stored CRC.
                0 => link.seq ^= mask as u32,
                off => link.seq ^= (mask as u32) << ((off - 1) * 8),
            }
        } else {
            self.crc ^= (mask as u32) << ((byte - link_end) * 8);
        }
    }

    /// Parses and verifies wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NicError::Malformed`] for truncated or length-inconsistent
    /// input and [`NicError::BadCrc`] when the checksum does not match.
    pub fn decode(wire: &[u8]) -> Result<ShrimpPacket, NicError> {
        const H: usize = WireHeader::WIRE_BYTES as usize;
        if wire.len() < H + 4 {
            return Err(NicError::Malformed("truncated packet"));
        }
        let (body, crc_bytes) = wire.split_at(wire.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        if crc32(body) != stored {
            return Err(NicError::BadCrc);
        }
        let len = u16::from_le_bytes([body[12], body[13]]) as usize;
        const L: usize = LinkCtl::WIRE_BYTES as usize;
        let link = if body.len() == H + len {
            None
        } else if body.len() == H + len + L {
            let trailer = &body[H + len..];
            let kind = FrameKind::from_wire(trailer[0])
                .ok_or(NicError::Malformed("bad frame kind"))?;
            let seq = u32::from_le_bytes(trailer[1..5].try_into().expect("4-byte seq"));
            Some(LinkCtl { kind, seq })
        } else {
            return Err(NicError::Malformed("length field mismatch"));
        };
        let header = WireHeader {
            dst_coord: MeshCoord {
                x: body[0] as u16,
                y: body[1] as u16,
            },
            src: NodeId(u16::from_le_bytes([body[2], body[3]])),
            dst_addr: PhysAddr::new(u64::from_le_bytes(
                body[4..12].try_into().expect("8-byte address"),
            )),
        };
        let mut packet = ShrimpPacket::from_parts(
            header,
            Payload::copy_from_slice(&body[H..H + len]),
            stored,
        );
        packet.link = link;
        Ok(packet)
    }
}

/// The mesh ships SHRIMP packets whole; it needs the wire size for link
/// timing and the bit-flip hook for fault injection.
impl MeshPayload for ShrimpPacket {
    fn byte_len(&self) -> u64 {
        self.wire_len()
    }

    fn corrupt_bit(&mut self, bit: u64) {
        ShrimpPacket::corrupt_bit(self, bit);
    }
}

/// CRC of the logical wire body (header bytes, payload, then any link
/// trailer), streamed — no wire buffer is materialized.
fn body_crc(header: &WireHeader, payload: &[u8], link: Option<LinkCtl>) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&header.wire_bytes(payload.len() as u16));
    crc.update(payload);
    if let Some(link) = link {
        crc.update(&link.wire_bytes());
    }
    crc.finish()
}

/// Byte-at-a-time table for the IEEE 802.3 polynomial.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental IEEE 802.3 CRC-32.
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32(0xffff_ffff)
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &byte in data {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xff) as usize];
        }
        self.0 = crc;
    }

    /// Finalizes and returns the checksum.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// IEEE 802.3 CRC-32 of a contiguous buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> WireHeader {
        WireHeader {
            dst_coord: MeshCoord { x: 3, y: 1 },
            src: NodeId(7),
            dst_addr: PhysAddr::new(0xdead_b000),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streamed_crc_matches_contiguous() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0, 1, 13, 128, 255, 256] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data));
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = ShrimpPacket::new(header(), (0..=255).collect::<Vec<u8>>());
        let wire = p.encode();
        assert_eq!(wire.len() as u64, p.wire_len());
        let d = ShrimpPacket::decode(&wire).unwrap();
        assert_eq!(d, p);
        assert_eq!(d.header().dst_addr, PhysAddr::new(0xdead_b000));
        assert_eq!(d.header().src, NodeId(7));
        assert!(d.verify_crc());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let p = ShrimpPacket::new(header(), Vec::new());
        let d = ShrimpPacket::decode(&p.encode()).unwrap();
        assert!(d.payload().is_empty());
    }

    #[test]
    fn small_payload_is_inline() {
        let p = ShrimpPacket::new(header(), vec![1, 2, 3, 4]);
        assert!(matches!(p.into_payload(), Payload::Inline { len: 4, .. }));
        let p = ShrimpPacket::new(header(), vec![0; INLINE_PAYLOAD_MAX + 1]);
        assert!(matches!(p.into_payload(), Payload::Shared(_)));
    }

    #[test]
    fn shared_payload_clone_is_refcounted() {
        let p = ShrimpPacket::new(header(), vec![9u8; 64]);
        let q = p.clone();
        assert_eq!(p.payload().as_ptr(), q.payload().as_ptr());
    }

    #[test]
    fn corruption_is_detected_anywhere() {
        let p = ShrimpPacket::new(header(), vec![5; 32]);
        let wire = p.encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let r = ShrimpPacket::decode(&bad);
            assert!(r.is_err(), "flip at byte {i} must be detected");
        }
    }

    #[test]
    fn stored_crc_mismatch_detected() {
        let good = ShrimpPacket::new(header(), vec![7u8; 16]);
        assert!(good.verify_crc());
        let bad = ShrimpPacket::from_parts(*good.header(), vec![7u8; 16], good.crc() ^ 1);
        assert!(!bad.verify_crc());
        // The corrupted packet encodes to corrupted wire bytes.
        assert_eq!(ShrimpPacket::decode(&bad.encode()), Err(NicError::BadCrc));
    }

    #[test]
    fn truncation_is_detected() {
        let p = ShrimpPacket::new(header(), vec![1, 2, 3]);
        let wire = p.encode();
        assert!(matches!(
            ShrimpPacket::decode(&wire[..10]),
            Err(NicError::Malformed(_))
        ));
        // Cutting payload bytes breaks the CRC first.
        assert!(ShrimpPacket::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn length_field_mismatch_detected() {
        // Hand-build a packet whose length field disagrees with its size,
        // with a valid CRC over the inconsistent body.
        let p = ShrimpPacket::new(header(), vec![9; 8]);
        let mut wire = p.encode();
        let body_end = wire.len() - 4;
        wire[12] = 4; // claim 4 bytes of payload instead of 8
        let crc = crc32(&wire[..body_end]);
        wire[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ShrimpPacket::decode(&wire),
            Err(NicError::Malformed("length field mismatch"))
        );
    }

    #[test]
    fn wire_len_matches_constant() {
        let p = ShrimpPacket::new(header(), vec![0; 4]);
        assert_eq!(p.wire_len(), WireHeader::WIRE_BYTES + 4 + 4);
        use shrimp_mesh::MeshPayload;
        assert_eq!(p.byte_len(), p.wire_len());
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversized_payload_rejected() {
        ShrimpPacket::new(header(), vec![0; 70_000]);
    }

    #[test]
    fn link_framed_roundtrip() {
        let link = LinkCtl {
            kind: FrameKind::Data,
            seq: 0xdead_0042,
        };
        let p = ShrimpPacket::with_link(header(), vec![3u8; 21], link);
        assert_eq!(
            p.wire_len(),
            WireHeader::WIRE_BYTES + 21 + LinkCtl::WIRE_BYTES + 4
        );
        let d = ShrimpPacket::decode(&p.encode()).unwrap();
        assert_eq!(d.link(), Some(link));
        assert_eq!(d, p);
        assert!(d.verify_crc());
    }

    #[test]
    fn control_frames_are_empty_and_checked() {
        let p = ShrimpPacket::control(MeshCoord { x: 1, y: 1 }, NodeId(4), FrameKind::Nack, 17);
        assert!(p.payload().is_empty());
        assert!(p.verify_crc());
        let d = ShrimpPacket::decode(&p.encode()).unwrap();
        assert_eq!(
            d.link(),
            Some(LinkCtl {
                kind: FrameKind::Nack,
                seq: 17
            })
        );
    }

    #[test]
    fn link_trailer_corruption_is_detected() {
        let p = ShrimpPacket::with_link(
            header(),
            vec![8u8; 12],
            LinkCtl {
                kind: FrameKind::Data,
                seq: 7,
            },
        );
        let wire = p.encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x10;
            assert!(
                ShrimpPacket::decode(&bad).is_err(),
                "flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn structured_corrupt_bit_tracks_the_wire() {
        // Flipping any single bit via corrupt_bit must (a) fail
        // verify_crc and (b) produce the same wire image as flipping the
        // encoded bytes directly.
        for with_link in [false, true] {
            let fresh = || {
                if with_link {
                    ShrimpPacket::with_link(
                        header(),
                        vec![0xa5; 16],
                        LinkCtl {
                            kind: FrameKind::Data,
                            seq: 3,
                        },
                    )
                } else {
                    ShrimpPacket::new(header(), vec![0xa5; 16])
                }
            };
            let clean_wire = fresh().encode();
            for bit in 0..(fresh().wire_len() * 8) {
                let mut p = fresh();
                p.corrupt_bit(bit);
                assert!(!p.verify_crc(), "bit {bit} ({with_link}) must stale the CRC");
                // Length-field and frame-kind bits are folded elsewhere,
                // so only check wire equivalence for directly-mapped bits.
                let byte = (bit / 8) as usize;
                let kind_byte = WireHeader::WIRE_BYTES as usize + 16;
                if (12..14).contains(&byte) || (with_link && byte == kind_byte) {
                    continue;
                }
                let mut wire = clean_wire.clone();
                wire[byte] ^= 1 << (bit % 8);
                assert_eq!(p.encode(), wire, "bit {bit} maps onto the wire image");
            }
        }
    }
}
