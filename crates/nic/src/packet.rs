//! The NIC wire format.
//!
//! A packet consists of "routing information, the absolute mesh
//! coordinates of the intended receiver, destination memory address,
//! data, and a CRC checksum to detect network errors" (paper §3.1). The
//! routing information proper is consumed by the mesh model
//! ([`shrimp_mesh::packet::ROUTING_OVERHEAD_BYTES`]); everything else is
//! encoded here.

use shrimp_mesh::{MeshCoord, NodeId};
use shrimp_mem::PhysAddr;

use crate::error::NicError;

/// The decoded header of a SHRIMP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Absolute mesh coordinates of the intended receiver, used by the
    /// receiving NIC to verify correct routing.
    pub dst_coord: MeshCoord,
    /// Sending node (used for statistics and debugging; the hardware
    /// guarantees per-sender order so receivers never need it for
    /// reassembly).
    pub src: NodeId,
    /// Destination physical byte address on the receiving node.
    pub dst_addr: PhysAddr,
}

impl WireHeader {
    /// Encoded header size: dst x/y (2) + src (2) + dst_addr (8) +
    /// payload length (2).
    pub const WIRE_BYTES: u64 = 14;
}

/// A complete SHRIMP packet: header, payload, CRC32.
///
/// # Examples
///
/// ```
/// use shrimp_nic::{ShrimpPacket, WireHeader};
/// use shrimp_mesh::{MeshCoord, NodeId};
/// use shrimp_mem::PhysAddr;
///
/// let header = WireHeader {
///     dst_coord: MeshCoord { x: 1, y: 0 },
///     src: NodeId(0),
///     dst_addr: PhysAddr::new(0x2000),
/// };
/// let packet = ShrimpPacket::new(header, vec![1, 2, 3, 4]);
/// let wire = packet.encode();
/// let decoded = ShrimpPacket::decode(&wire)?;
/// assert_eq!(decoded.payload(), &[1, 2, 3, 4]);
/// # Ok::<(), shrimp_nic::NicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrimpPacket {
    header: WireHeader,
    payload: Vec<u8>,
}

impl ShrimpPacket {
    /// Builds a packet.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes (the length field).
    pub fn new(header: WireHeader, payload: Vec<u8>) -> Self {
        assert!(payload.len() <= u16::MAX as usize, "payload too large");
        ShrimpPacket { header, payload }
    }

    /// The decoded header.
    pub fn header(&self) -> &WireHeader {
        &self.header
    }

    /// The data bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the packet, returning the payload.
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }

    /// Total encoded size in bytes (header + payload + CRC32).
    pub fn wire_len(&self) -> u64 {
        WireHeader::WIRE_BYTES + self.payload.len() as u64 + 4
    }

    /// Serializes to wire bytes, appending the CRC32 of everything before
    /// it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len() as usize);
        out.push(self.header.dst_coord.x as u8);
        out.push(self.header.dst_coord.y as u8);
        out.extend_from_slice(&self.header.src.0.to_le_bytes());
        out.extend_from_slice(&self.header.dst_addr.raw().to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and verifies wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NicError::Malformed`] for truncated or length-inconsistent
    /// input and [`NicError::BadCrc`] when the checksum does not match.
    pub fn decode(wire: &[u8]) -> Result<ShrimpPacket, NicError> {
        const H: usize = WireHeader::WIRE_BYTES as usize;
        if wire.len() < H + 4 {
            return Err(NicError::Malformed("truncated packet"));
        }
        let (body, crc_bytes) = wire.split_at(wire.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        if crc32(body) != stored {
            return Err(NicError::BadCrc);
        }
        let len = u16::from_le_bytes([body[12], body[13]]) as usize;
        if body.len() != H + len {
            return Err(NicError::Malformed("length field mismatch"));
        }
        let header = WireHeader {
            dst_coord: MeshCoord {
                x: body[0] as u16,
                y: body[1] as u16,
            },
            src: NodeId(u16::from_le_bytes([body[2], body[3]])),
            dst_addr: PhysAddr::new(u64::from_le_bytes(
                body[4..12].try_into().expect("8-byte address"),
            )),
        };
        Ok(ShrimpPacket {
            header,
            payload: body[H..].to_vec(),
        })
    }
}

/// IEEE 802.3 CRC-32, bitwise (table-free) implementation.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> WireHeader {
        WireHeader {
            dst_coord: MeshCoord { x: 3, y: 1 },
            src: NodeId(7),
            dst_addr: PhysAddr::new(0xdead_b000),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = ShrimpPacket::new(header(), (0..=255).collect());
        let wire = p.encode();
        assert_eq!(wire.len() as u64, p.wire_len());
        let d = ShrimpPacket::decode(&wire).unwrap();
        assert_eq!(d, p);
        assert_eq!(d.header().dst_addr, PhysAddr::new(0xdead_b000));
        assert_eq!(d.header().src, NodeId(7));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let p = ShrimpPacket::new(header(), Vec::new());
        let d = ShrimpPacket::decode(&p.encode()).unwrap();
        assert!(d.payload().is_empty());
    }

    #[test]
    fn corruption_is_detected_anywhere() {
        let p = ShrimpPacket::new(header(), vec![5; 32]);
        let wire = p.encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let r = ShrimpPacket::decode(&bad);
            assert!(r.is_err(), "flip at byte {i} must be detected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let p = ShrimpPacket::new(header(), vec![1, 2, 3]);
        let wire = p.encode();
        assert!(matches!(
            ShrimpPacket::decode(&wire[..10]),
            Err(NicError::Malformed(_))
        ));
        // Cutting payload bytes breaks the CRC first.
        assert!(ShrimpPacket::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn length_field_mismatch_detected() {
        // Hand-build a packet whose length field disagrees with its size,
        // with a valid CRC over the inconsistent body.
        let p = ShrimpPacket::new(header(), vec![9; 8]);
        let mut wire = p.encode();
        let body_end = wire.len() - 4;
        wire[12] = 4; // claim 4 bytes of payload instead of 8
        let crc = crc32(&wire[..body_end]);
        wire[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ShrimpPacket::decode(&wire),
            Err(NicError::Malformed("length field mismatch"))
        );
    }

    #[test]
    fn wire_len_matches_constant() {
        let p = ShrimpPacket::new(header(), vec![0; 4]);
        assert_eq!(p.wire_len(), WireHeader::WIRE_BYTES + 4 + 4);
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversized_payload_rejected() {
        ShrimpPacket::new(header(), vec![0; 70_000]);
    }
}
