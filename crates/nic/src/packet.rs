//! The NIC wire format.
//!
//! A packet consists of "routing information, the absolute mesh
//! coordinates of the intended receiver, destination memory address,
//! data, and a CRC checksum to detect network errors" (paper §3.1). The
//! routing information proper is consumed by the mesh model
//! ([`shrimp_mesh::packet::ROUTING_OVERHEAD_BYTES`]); everything else is
//! encoded here.
//!
//! Packets are *not* serialized on the simulated datapath: the CRC is
//! computed by streaming over the header fields and the payload slice at
//! construction, and the structured packet itself rides the mesh (it
//! implements [`shrimp_mesh::MeshPayload`]). [`ShrimpPacket::encode`] and
//! [`ShrimpPacket::decode`] produce/parse the equivalent wire bytes and
//! exist for wire-level tests and tools.

use bytes::Bytes;
use shrimp_mesh::{MeshCoord, MeshPayload, NodeId};
use shrimp_mem::PhysAddr;

use crate::error::NicError;

/// The decoded header of a SHRIMP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Absolute mesh coordinates of the intended receiver, used by the
    /// receiving NIC to verify correct routing.
    pub dst_coord: MeshCoord,
    /// Sending node (used for statistics and debugging; the hardware
    /// guarantees per-sender order so receivers never need it for
    /// reassembly).
    pub src: NodeId,
    /// Destination physical byte address on the receiving node.
    pub dst_addr: PhysAddr,
}

impl WireHeader {
    /// Encoded header size: dst x/y (2) + src (2) + dst_addr (8) +
    /// payload length (2).
    pub const WIRE_BYTES: u64 = 14;

    /// The header's wire bytes, for streaming into a CRC without
    /// materializing the full wire buffer. `len` is the payload length
    /// field value.
    fn wire_bytes(&self, len: u16) -> [u8; Self::WIRE_BYTES as usize] {
        let mut b = [0u8; Self::WIRE_BYTES as usize];
        b[0] = self.dst_coord.x as u8;
        b[1] = self.dst_coord.y as u8;
        b[2..4].copy_from_slice(&self.src.0.to_le_bytes());
        b[4..12].copy_from_slice(&self.dst_addr.raw().to_le_bytes());
        b[12..14].copy_from_slice(&len.to_le_bytes());
        b
    }
}

/// Largest payload stored inline, without touching the heap. Snooped
/// automatic-update packets carry a single word (4 bytes), so the common
/// small packet never allocates.
pub const INLINE_PAYLOAD_MAX: usize = 8;

/// A packet payload: tiny payloads live inline in the packet struct,
/// larger ones are refcounted so every pipeline stage (Outgoing FIFO,
/// mesh, Incoming FIFO, DMA) shares one buffer.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Up to [`INLINE_PAYLOAD_MAX`] bytes, stored in place.
    Inline { len: u8, buf: [u8; INLINE_PAYLOAD_MAX] },
    /// A refcounted slice of a shared buffer.
    Shared(Bytes),
}

impl Payload {
    /// Builds a payload from a slice, inlining it when it fits.
    pub fn copy_from_slice(data: &[u8]) -> Payload {
        if data.len() <= INLINE_PAYLOAD_MAX {
            let mut buf = [0u8; INLINE_PAYLOAD_MAX];
            buf[..data.len()].copy_from_slice(data);
            Payload::Inline {
                len: data.len() as u8,
                buf,
            }
        } else {
            Payload::Shared(Bytes::copy_from_slice(data))
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Inline { len, buf } => &buf[..*len as usize],
            Payload::Shared(b) => b,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Inline { len, .. } => *len as usize,
            Payload::Shared(b) => b.len(),
        }
    }

    /// True when the payload carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        if v.len() <= INLINE_PAYLOAD_MAX {
            Payload::copy_from_slice(&v)
        } else {
            Payload::Shared(Bytes::from(v))
        }
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        Payload::Shared(b)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload::copy_from_slice(v)
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::Inline {
            len: 0,
            buf: [0; INLINE_PAYLOAD_MAX],
        }
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A complete SHRIMP packet: header, payload, CRC32.
///
/// The CRC is computed once at construction (over the logical wire bytes:
/// header, length field, payload) and carried with the packet;
/// [`ShrimpPacket::verify_crc`] recomputes and compares on receipt.
///
/// # Examples
///
/// ```
/// use shrimp_nic::{ShrimpPacket, WireHeader};
/// use shrimp_mesh::{MeshCoord, NodeId};
/// use shrimp_mem::PhysAddr;
///
/// let header = WireHeader {
///     dst_coord: MeshCoord { x: 1, y: 0 },
///     src: NodeId(0),
///     dst_addr: PhysAddr::new(0x2000),
/// };
/// let packet = ShrimpPacket::new(header, vec![1, 2, 3, 4]);
/// let wire = packet.encode();
/// let decoded = ShrimpPacket::decode(&wire)?;
/// assert_eq!(decoded.payload(), &[1, 2, 3, 4]);
/// # Ok::<(), shrimp_nic::NicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrimpPacket {
    header: WireHeader,
    payload: Payload,
    crc: u32,
}

impl ShrimpPacket {
    /// Builds a packet, computing its CRC.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes (the length field).
    pub fn new(header: WireHeader, payload: impl Into<Payload>) -> Self {
        let payload = payload.into();
        assert!(payload.len() <= u16::MAX as usize, "payload too large");
        let crc = body_crc(&header, payload.as_slice());
        ShrimpPacket {
            header,
            payload,
            crc,
        }
    }

    /// Reassembles a packet from parts without recomputing the CRC — the
    /// decode path and wire-corruption tests, where the stored CRC must be
    /// whatever arrived.
    pub fn from_parts(header: WireHeader, payload: impl Into<Payload>, crc: u32) -> Self {
        let payload = payload.into();
        assert!(payload.len() <= u16::MAX as usize, "payload too large");
        ShrimpPacket {
            header,
            payload,
            crc,
        }
    }

    /// The decoded header.
    pub fn header(&self) -> &WireHeader {
        &self.header
    }

    /// The data bytes.
    pub fn payload(&self) -> &[u8] {
        self.payload.as_slice()
    }

    /// Consumes the packet, returning the payload.
    pub fn into_payload(self) -> Payload {
        self.payload
    }

    /// The CRC32 carried by the packet.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// Recomputes the CRC over header and payload and compares it with
    /// the stored one — what the receiving NIC does on arrival.
    pub fn verify_crc(&self) -> bool {
        body_crc(&self.header, self.payload.as_slice()) == self.crc
    }

    /// Total encoded size in bytes (header + payload + CRC32).
    pub fn wire_len(&self) -> u64 {
        WireHeader::WIRE_BYTES + self.payload.len() as u64 + 4
    }

    /// Serializes to wire bytes: header, payload, then the *stored* CRC
    /// (so a corrupted packet encodes to corrupted wire bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len() as usize);
        out.extend_from_slice(&self.header.wire_bytes(self.payload.len() as u16));
        out.extend_from_slice(self.payload.as_slice());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out
    }

    /// Parses and verifies wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NicError::Malformed`] for truncated or length-inconsistent
    /// input and [`NicError::BadCrc`] when the checksum does not match.
    pub fn decode(wire: &[u8]) -> Result<ShrimpPacket, NicError> {
        const H: usize = WireHeader::WIRE_BYTES as usize;
        if wire.len() < H + 4 {
            return Err(NicError::Malformed("truncated packet"));
        }
        let (body, crc_bytes) = wire.split_at(wire.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        if crc32(body) != stored {
            return Err(NicError::BadCrc);
        }
        let len = u16::from_le_bytes([body[12], body[13]]) as usize;
        if body.len() != H + len {
            return Err(NicError::Malformed("length field mismatch"));
        }
        let header = WireHeader {
            dst_coord: MeshCoord {
                x: body[0] as u16,
                y: body[1] as u16,
            },
            src: NodeId(u16::from_le_bytes([body[2], body[3]])),
            dst_addr: PhysAddr::new(u64::from_le_bytes(
                body[4..12].try_into().expect("8-byte address"),
            )),
        };
        Ok(ShrimpPacket::from_parts(
            header,
            Payload::copy_from_slice(&body[H..]),
            stored,
        ))
    }
}

/// The mesh ships SHRIMP packets whole; only the wire size matters to it.
impl MeshPayload for ShrimpPacket {
    fn byte_len(&self) -> u64 {
        self.wire_len()
    }
}

/// CRC of the logical wire body (header bytes then payload), streamed —
/// no wire buffer is materialized.
fn body_crc(header: &WireHeader, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&header.wire_bytes(payload.len() as u16));
    crc.update(payload);
    crc.finish()
}

/// Byte-at-a-time table for the IEEE 802.3 polynomial.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental IEEE 802.3 CRC-32.
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32(0xffff_ffff)
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &byte in data {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xff) as usize];
        }
        self.0 = crc;
    }

    /// Finalizes and returns the checksum.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// IEEE 802.3 CRC-32 of a contiguous buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> WireHeader {
        WireHeader {
            dst_coord: MeshCoord { x: 3, y: 1 },
            src: NodeId(7),
            dst_addr: PhysAddr::new(0xdead_b000),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streamed_crc_matches_contiguous() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0, 1, 13, 128, 255, 256] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data));
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = ShrimpPacket::new(header(), (0..=255).collect::<Vec<u8>>());
        let wire = p.encode();
        assert_eq!(wire.len() as u64, p.wire_len());
        let d = ShrimpPacket::decode(&wire).unwrap();
        assert_eq!(d, p);
        assert_eq!(d.header().dst_addr, PhysAddr::new(0xdead_b000));
        assert_eq!(d.header().src, NodeId(7));
        assert!(d.verify_crc());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let p = ShrimpPacket::new(header(), Vec::new());
        let d = ShrimpPacket::decode(&p.encode()).unwrap();
        assert!(d.payload().is_empty());
    }

    #[test]
    fn small_payload_is_inline() {
        let p = ShrimpPacket::new(header(), vec![1, 2, 3, 4]);
        assert!(matches!(p.into_payload(), Payload::Inline { len: 4, .. }));
        let p = ShrimpPacket::new(header(), vec![0; INLINE_PAYLOAD_MAX + 1]);
        assert!(matches!(p.into_payload(), Payload::Shared(_)));
    }

    #[test]
    fn shared_payload_clone_is_refcounted() {
        let p = ShrimpPacket::new(header(), vec![9u8; 64]);
        let q = p.clone();
        assert_eq!(p.payload().as_ptr(), q.payload().as_ptr());
    }

    #[test]
    fn corruption_is_detected_anywhere() {
        let p = ShrimpPacket::new(header(), vec![5; 32]);
        let wire = p.encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let r = ShrimpPacket::decode(&bad);
            assert!(r.is_err(), "flip at byte {i} must be detected");
        }
    }

    #[test]
    fn stored_crc_mismatch_detected() {
        let good = ShrimpPacket::new(header(), vec![7u8; 16]);
        assert!(good.verify_crc());
        let bad = ShrimpPacket::from_parts(*good.header(), vec![7u8; 16], good.crc() ^ 1);
        assert!(!bad.verify_crc());
        // The corrupted packet encodes to corrupted wire bytes.
        assert_eq!(ShrimpPacket::decode(&bad.encode()), Err(NicError::BadCrc));
    }

    #[test]
    fn truncation_is_detected() {
        let p = ShrimpPacket::new(header(), vec![1, 2, 3]);
        let wire = p.encode();
        assert!(matches!(
            ShrimpPacket::decode(&wire[..10]),
            Err(NicError::Malformed(_))
        ));
        // Cutting payload bytes breaks the CRC first.
        assert!(ShrimpPacket::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn length_field_mismatch_detected() {
        // Hand-build a packet whose length field disagrees with its size,
        // with a valid CRC over the inconsistent body.
        let p = ShrimpPacket::new(header(), vec![9; 8]);
        let mut wire = p.encode();
        let body_end = wire.len() - 4;
        wire[12] = 4; // claim 4 bytes of payload instead of 8
        let crc = crc32(&wire[..body_end]);
        wire[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ShrimpPacket::decode(&wire),
            Err(NicError::Malformed("length field mismatch"))
        );
    }

    #[test]
    fn wire_len_matches_constant() {
        let p = ShrimpPacket::new(header(), vec![0; 4]);
        assert_eq!(p.wire_len(), WireHeader::WIRE_BYTES + 4 + 4);
        use shrimp_mesh::MeshPayload;
        assert_eq!(p.byte_len(), p.wire_len());
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversized_payload_rejected() {
        ShrimpPacket::new(header(), vec![0; 70_000]);
    }
}
