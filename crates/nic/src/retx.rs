//! Go-back-N retransmission state and the bounce/reroute recovery path.
//!
//! Per-peer sender and receiver books live in [`RetxState`] (present only
//! when [`crate::RetxConfig::enabled`] is set). The engine distinguishes
//! two loss regimes: a *lossy* fabric (timeouts escalate with exponential
//! backoff, capped) and a *down* fabric (a bounced own-frame resets the
//! backoff and arms a flat [`crate::RetxConfig::reroute_backoff`] pace —
//! escalation would only delay recovery past the repair).

use std::collections::BTreeMap;

use shrimp_mesh::{MeshPacket, NodeId};
use shrimp_sim::{ComponentId, SimDuration, SimTime, TraceData, TraceLevel};

use crate::error::NicError;
use crate::nic::NetworkInterface;
use crate::packet::{FrameKind, LinkCtl, ShrimpPacket};

/// Go-back-N sender state toward one destination node.
#[derive(Debug, Clone)]
pub(crate) struct SendPeer {
    /// Sequence number the next new data frame will carry.
    pub(crate) next_seq: u32,
    /// Lowest unacknowledged sequence number.
    pub(crate) base_seq: u32,
    /// Frames `base_seq..next_seq`, retained until cumulatively acked.
    pub(crate) unacked: std::collections::VecDeque<ShrimpPacket>,
    /// When `Some(s)`, the engine is replaying `s..next_seq` ahead of any
    /// new data.
    pub(crate) resend_from: Option<u32>,
    /// Current retransmit timeout (doubles on expiry, capped).
    pub(crate) rto: SimDuration,
    /// Deadline of the running retransmit timer, armed while frames are
    /// outstanding.
    pub(crate) timeout_at: Option<SimTime>,
}

impl SendPeer {
    pub(crate) fn new(rto: SimDuration) -> Self {
        SendPeer {
            next_seq: 0,
            base_seq: 0,
            unacked: std::collections::VecDeque::new(),
            resend_from: None,
            rto,
            timeout_at: None,
        }
    }
}

/// Go-back-N receiver state from one source node.
#[derive(Debug, Clone, Default)]
pub(crate) struct RecvPeer {
    /// Next in-order sequence number wanted.
    pub(crate) expected: u32,
    /// Last sequence nacked, to suppress a nack storm while the same
    /// hole drains; cleared on progress.
    pub(crate) last_nacked: Option<u32>,
}

/// All go-back-N state of one NIC (present only when
/// [`crate::RetxConfig::enabled`] is set).
#[derive(Debug, Clone, Default)]
pub(crate) struct RetxState {
    /// Sender books, keyed by destination node id (BTreeMap for
    /// deterministic iteration order).
    pub(crate) send: BTreeMap<u16, SendPeer>,
    /// Receiver books, keyed by source node id.
    pub(crate) recv: BTreeMap<u16, RecvPeer>,
}

impl NetworkInterface {
    /// Scans the per-peer retransmit timers at `now`: an expired timer
    /// rewinds the window to its base and doubles the timeout (capped).
    /// Called from [`NetworkInterface::poll`].
    pub(crate) fn poll_retx(&mut self, now: SimTime) {
        let Some(st) = self.retx.as_mut() else {
            return;
        };
        let max_rto = self.config.retx.max_timeout;
        let base_rto = self.config.retx.base_timeout;
        let component = ComponentId::nic(self.node.0);
        for (&peer_id, peer) in st.send.iter_mut() {
            if peer.unacked.is_empty() {
                peer.timeout_at = None;
                peer.resend_from = None;
            } else if peer.timeout_at.is_some_and(|t| now >= t) {
                // Nothing came back in time: go back to the window
                // base and double the timeout (capped).
                peer.resend_from = Some(peer.base_seq);
                peer.rto = (peer.rto * 2).min(max_rto);
                peer.timeout_at = Some(now + peer.rto);
                self.metrics.incr(self.ids.retx_timeouts);
                if self.tracer.wants(TraceLevel::Warn) {
                    let attempt =
                        (peer.rto.as_picos() / base_rto.as_picos().max(1)).max(1) as u32;
                    self.tracer.emit(
                        now,
                        TraceLevel::Warn,
                        component,
                        TraceData::RetxTimeout {
                            peer: peer_id,
                            base_seq: peer.base_seq,
                            attempt,
                        },
                    );
                }
            }
        }
    }

    /// Emits the next frame of an in-progress go-back-N replay, if any.
    pub(crate) fn pop_resend(&mut self, now: SimTime) -> Option<MeshPacket<ShrimpPacket>> {
        let node = self.node;
        let st = self.retx.as_mut()?;
        for (&peer_id, peer) in st.send.iter_mut() {
            let Some(from) = peer.resend_from else {
                continue;
            };
            let idx = from.wrapping_sub(peer.base_seq) as usize;
            if idx >= peer.unacked.len() {
                peer.resend_from = None;
                continue;
            }
            let mut framed = peer.unacked[idx].clone();
            framed.stamp.injected = now;
            let next = from + 1;
            let more = (next.wrapping_sub(peer.base_seq) as usize) < peer.unacked.len();
            peer.resend_from = more.then_some(next);
            peer.timeout_at = Some(now + peer.rto);
            self.metrics.incr(self.ids.retransmissions);
            self.metrics.incr(self.ids.gbn_retransmissions);
            if self.tracer.wants(TraceLevel::Warn) {
                self.tracer.emit(
                    now,
                    TraceLevel::Warn,
                    ComponentId::nic(node.0),
                    TraceData::Retransmit { peer: peer_id, seq: from },
                );
            }
            return Some(MeshPacket::new(node, NodeId(peer_id), framed));
        }
        None
    }

    /// Handles one of our own frames returned by the mesh bounce path.
    ///
    /// For a data frame the send window toward its destination is still
    /// holding it (nothing was acked), so recovery is a rewind: reset
    /// the loss backoff — the fabric is *down*, not lossy, and
    /// escalation would only delay recovery past the repair — cancel
    /// any pending replay, and arm a flat-rate retry
    /// [`crate::RetxConfig::reroute_backoff`] from now. Every further
    /// bounce re-arms the same pacing, so the engine probes the fabric
    /// at a constant rate until a route exists again. Bounced ack/nack
    /// frames are simply dropped: the data path's own timers recover.
    pub(crate) fn accept_bounce(&mut self, now: SimTime, packet: &ShrimpPacket) -> Result<(), NicError> {
        self.metrics.incr(self.ids.gbn_bounces);
        let base_rto = self.config.retx.base_timeout;
        let pace = self.config.retx.reroute_backoff;
        if let Some(LinkCtl { kind: FrameKind::Data, .. }) = packet.link() {
            let dst = self.shape.id_at(packet.header().dst_coord);
            if let Some(peer) = self.retx.as_mut().and_then(|st| st.send.get_mut(&dst.0)) {
                if !peer.unacked.is_empty() {
                    peer.rto = base_rto;
                    peer.resend_from = None;
                    peer.timeout_at = Some(now + pace);
                }
            }
        }
        Ok(())
    }

    /// Sequence-checks one framed data packet against the per-source
    /// receiver book: in-order frames are delivered and acked, duplicates
    /// re-acked, gaps nacked (once per hole).
    pub(crate) fn accept_data_frame(
        &mut self,
        now: SimTime,
        src: NodeId,
        seq: u32,
        packet: ShrimpPacket,
    ) -> Result<(), NicError> {
        let Some(st) = self.retx.as_mut() else {
            // A framed packet with the local engine off (mixed
            // configuration): deliver it like a legacy packet.
            self.metrics.incr(self.ids.packets_received);
            self.metrics.add(self.ids.bytes_received, packet.payload().len() as u64);
            let pushed = self
                .in_fifo
                .try_push(now, packet)
                .map_err(|_| NicError::IncomingFifoFull);
            self.trace_in_threshold(now);
            return pushed;
        };
        let peer = st.recv.entry(src.0).or_default();
        let expected = peer.expected;
        if seq == expected {
            let payload_len = packet.payload().len() as u64;
            if let Err(packet) = self.in_fifo.try_push(now, packet) {
                // FIFO full: drop without advancing; the sender's
                // timeout replays it once we drain.
                drop(packet);
                return Err(NicError::IncomingFifoFull);
            }
            self.metrics.incr(self.ids.packets_received);
            self.metrics.add(self.ids.bytes_received, payload_len);
            let st = self.retx.as_mut().expect("engine checked above");
            let peer = st.recv.get_mut(&src.0).expect("entry created above");
            peer.expected = expected + 1;
            peer.last_nacked = None;
            let ack = peer.expected;
            self.queue_control(now, src, FrameKind::Ack, ack);
            self.trace_in_threshold(now);
            Ok(())
        } else if seq < expected {
            // Already delivered (a replayed frame): re-ack so a lost ack
            // cannot stall the sender forever.
            self.metrics.incr(self.ids.dup_drops);
            self.queue_control(now, src, FrameKind::Ack, expected);
            Ok(())
        } else {
            // Gap: a predecessor died on the wire. Request a replay from
            // the hole, but only once per hole — the frames already in
            // flight behind it would each re-trigger it otherwise.
            self.metrics.incr(self.ids.gap_drops);
            let nack = peer.last_nacked != Some(expected);
            peer.last_nacked = Some(expected);
            if nack {
                self.queue_control(now, src, FrameKind::Nack, expected);
            } else {
                self.metrics.incr(self.ids.gbn_nack_suppressions);
            }
            Ok(())
        }
    }

    /// Cumulative ack: every sequence below `seq` has arrived at `peer`.
    pub(crate) fn handle_ack(&mut self, now: SimTime, peer_node: NodeId, seq: u32) {
        let base_rto = self.config.retx.base_timeout;
        let Some(st) = self.retx.as_mut() else {
            return;
        };
        let Some(peer) = st.send.get_mut(&peer_node.0) else {
            return;
        };
        let mut progressed = false;
        while peer.base_seq < seq && !peer.unacked.is_empty() {
            peer.unacked.pop_front();
            peer.base_seq += 1;
            progressed = true;
        }
        if progressed {
            // Progress restarts the timer and resets the backoff.
            if peer.rto > base_rto {
                self.metrics.incr(self.ids.gbn_backoff_resets);
            }
            peer.rto = base_rto;
            peer.timeout_at = if peer.unacked.is_empty() {
                None
            } else {
                Some(now + peer.rto)
            };
            if let Some(r) = peer.resend_from {
                let r = r.max(peer.base_seq);
                let live = (r.wrapping_sub(peer.base_seq) as usize) < peer.unacked.len();
                peer.resend_from = live.then_some(r);
            }
        }
    }

    /// Go-back-N request: replay everything from `seq` on. Also carries
    /// the cumulative-ack meaning for sequences below `seq`.
    pub(crate) fn handle_nack(&mut self, now: SimTime, peer_node: NodeId, seq: u32) {
        self.handle_ack(now, peer_node, seq);
        let Some(st) = self.retx.as_mut() else {
            return;
        };
        let Some(peer) = st.send.get_mut(&peer_node.0) else {
            return;
        };
        if seq >= peer.base_seq && !peer.unacked.is_empty() {
            peer.resend_from = Some(peer.base_seq);
            peer.timeout_at = Some(now + peer.rto);
        }
    }

    /// Queues a link-level control frame for immediate injection.
    pub(crate) fn queue_control(&mut self, now: SimTime, dst: NodeId, kind: FrameKind, seq: u32) {
        match kind {
            FrameKind::Ack => self.metrics.incr(self.ids.acks_sent),
            FrameKind::Nack => self.metrics.incr(self.ids.nacks_sent),
            FrameKind::Data => unreachable!("data frames travel via the FIFO"),
        }
        let frame = ShrimpPacket::control(self.shape.coord_of(dst), self.node, kind, seq);
        self.ctl_queue.push_back((now, dst, frame));
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{NicConfig, RetxConfig};
    use crate::nipt::UpdatePolicy;
    use crate::packet::FrameKind;
    use crate::testutil::{map_out, relay_ctl, rnic, rpair, send_word, shape, t};
    use shrimp_mem::PageNum;
    use shrimp_mesh::NodeId;
    use crate::nic::NetworkInterface;

    #[test]
    fn retx_data_frames_carry_sequence_numbers() {
        let (mut s, _r) = rpair();
        for i in 0..3 {
            let mp = send_word(&mut s, i, u64::from(i) * 2000);
            let link = mp.payload().link().expect("retx frames data");
            assert_eq!(link.kind, FrameKind::Data);
            assert_eq!(link.seq, i);
            assert!(mp.payload().verify_crc(), "CRC covers the trailer");
        }
    }

    #[test]
    fn retx_acks_retire_the_window() {
        let (mut s, mut r) = rpair();
        for i in 0..3 {
            let mp = send_word(&mut s, i, u64::from(i) * 2000);
            r.accept_packet(t(u64::from(i) * 2000 + 1100), mp).unwrap();
        }
        assert_eq!(r.stats().packets_received, 3);
        assert_eq!(r.stats().acks_sent, 3);
        assert_eq!(relay_ctl(&mut r, &mut s, 10_000), 3);
        assert_eq!(s.stats().acks_received, 3);
        // Everything acked: no retransmit timer remains.
        assert!(s.next_deadline().is_none());
        // In-order delivery out the far side.
        for i in 0..3u32 {
            let d = r.pop_incoming(t(50_000)).unwrap().unwrap();
            assert_eq!(d.data.as_slice(), &i.to_le_bytes());
        }
    }

    #[test]
    fn retx_gap_nack_triggers_go_back_n() {
        let (mut s, mut r) = rpair();
        let lost = send_word(&mut s, 0, 0);
        drop(lost); // the mesh ate frame 0
        let mp1 = send_word(&mut s, 1, 2000);
        r.accept_packet(t(3100), mp1).unwrap();
        assert_eq!(r.stats().gap_drops, 1);
        assert_eq!(r.stats().nacks_sent, 1);
        assert_eq!(r.stats().packets_received, 0, "out-of-order is not delivered");
        // Nack reaches the sender: it replays 0 and 1.
        assert_eq!(relay_ctl(&mut r, &mut s, 4000), 1);
        assert_eq!(s.stats().nacks_received, 1);
        let r0 = s.pop_outgoing(t(4000)).expect("replay of frame 0");
        assert_eq!(r0.payload().link().unwrap().seq, 0);
        let r1 = s.pop_outgoing(t(4000)).expect("replay of frame 1");
        assert_eq!(r1.payload().link().unwrap().seq, 1);
        assert_eq!(s.stats().retransmissions, 2);
        r.accept_packet(t(5000), r0).unwrap();
        r.accept_packet(t(5100), r1).unwrap();
        assert_eq!(r.stats().packets_received, 2);
        relay_ctl(&mut r, &mut s, 6000);
        assert!(s.next_deadline().is_none(), "window fully retired");
        // Payload order is preserved end to end.
        for i in 0..2u32 {
            let d = r.pop_incoming(t(50_000)).unwrap().unwrap();
            assert_eq!(d.data.as_slice(), &i.to_le_bytes());
        }
    }

    #[test]
    fn retx_duplicates_are_dropped_and_reacked() {
        let (mut s, mut r) = rpair();
        let mp = send_word(&mut s, 0, 0);
        let dup = mp.clone();
        r.accept_packet(t(1100), mp).unwrap();
        r.accept_packet(t(1200), dup).unwrap();
        assert_eq!(r.stats().packets_received, 1);
        assert_eq!(r.stats().dup_drops, 1);
        // Both arrivals ack, so a lost first ack cannot wedge the sender.
        assert_eq!(r.stats().acks_sent, 2);
    }

    #[test]
    fn retx_timeout_replays_with_backoff() {
        let (mut s, mut r) = rpair();
        let mp = send_word(&mut s, 0, 0);
        drop(mp); // lost, and no later frame will surface the gap
        let base = s.config().retx.base_timeout;
        let first_deadline = s.next_deadline().expect("timer armed");
        s.poll(first_deadline);
        assert_eq!(s.stats().retx_timeouts, 1);
        let replay = s.pop_outgoing(first_deadline).expect("timeout replay");
        assert_eq!(replay.payload().link().unwrap().seq, 0);
        assert_eq!(s.stats().retransmissions, 1);
        // Backoff: the next timer is 2× base after the replay.
        let second_deadline = s.next_deadline().expect("timer re-armed");
        assert_eq!(second_deadline, first_deadline + base * 2);
        // Delivery + ack cancels the timer and resets the backoff.
        r.accept_packet(second_deadline, replay).unwrap();
        relay_ctl(&mut r, &mut s, 1_000_000);
        assert!(s.next_deadline().is_none());
    }

    #[test]
    fn retx_window_full_asserts_backpressure() {
        let cfg = NicConfig {
            retx: RetxConfig {
                window_packets: 2,
                ..RetxConfig::reliable()
            },
            ..NicConfig::default()
        };
        let mut s = NetworkInterface::new(NodeId(0), shape(), cfg, 64);
        map_out(&mut s, 2, 1, 4, UpdatePolicy::AutomaticSingle);
        let mut r = rnic(1);
        r.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        for i in 0..3u32 {
            let addr = PageNum::new(2).at_offset(u64::from(i) * 4);
            s.snoop_write(t(u64::from(i) * 10), addr, &i.to_le_bytes());
        }
        let a = s.pop_outgoing(t(5000)).expect("frame 0");
        let _b = s.pop_outgoing(t(5000)).expect("frame 1");
        assert!(
            s.pop_outgoing(t(5000)).is_none(),
            "window of 2 must hold back the third frame"
        );
        // An ack for frame 0 reopens the window.
        r.accept_packet(t(5100), a).unwrap();
        relay_ctl(&mut r, &mut s, 6000);
        let c = s.pop_outgoing(t(6000)).expect("window reopened");
        assert_eq!(c.payload().link().unwrap().seq, 2);
    }
}
