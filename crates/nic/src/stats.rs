//! NIC counters: the [`NicStats`] snapshot struct and the pre-resolved
//! [`MetricSet`] handles behind it.
//!
//! Every hot-path increment in the datapath goes through a [`CounterId`]
//! resolved once at construction, never a name lookup; [`NicStats`] is
//! rebuilt on demand for tests and the machine's instrumentation API.

use shrimp_sim::{CounterId, MetricSet, MetricsRegistry};

use crate::nic::NetworkInterface;

/// Counters exposed by the NIC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Packets queued for the network.
    pub packets_sent: u64,
    /// Payload bytes queued for the network.
    pub bytes_sent: u64,
    /// Packets accepted from the network.
    pub packets_received: u64,
    /// Payload bytes accepted from the network.
    pub bytes_received: u64,
    /// Snooped writes merged into a pending blocked-write packet.
    pub merged_writes: u64,
    /// Packets produced by the single-write path.
    pub single_write_packets: u64,
    /// Packets produced by the blocked-write path.
    pub blocked_write_packets: u64,
    /// Packets produced by the deliberate-update DMA engine.
    pub dma_packets: u64,
    /// Arriving packets dropped for CRC/framing errors.
    pub crc_drops: u64,
    /// Arriving packets dropped because they were misrouted.
    pub misroutes: u64,
    /// Arriving packets addressed to pages that are not mapped in.
    pub unmapped_drops: u64,
    /// Data packets re-sent by the go-back-N engine.
    pub retransmissions: u64,
    /// Retransmit timeouts that fired (each rewinds one send window).
    pub retx_timeouts: u64,
    /// Ack control frames generated.
    pub acks_sent: u64,
    /// Ack control frames consumed.
    pub acks_received: u64,
    /// Nack control frames generated.
    pub nacks_sent: u64,
    /// Nack control frames consumed.
    pub nacks_received: u64,
    /// Arriving data frames dropped as already-delivered duplicates.
    pub dup_drops: u64,
    /// Arriving data frames dropped for a sequence gap (a predecessor
    /// was lost; go-back-N refetches from the hole).
    pub gap_drops: u64,
    /// Injected receive-FIFO stalls (fault injection).
    pub fault_stalls: u64,
    /// Elevated retransmit backoffs reset by ack progress.
    pub gbn_backoff_resets: u64,
    /// Gap nacks suppressed because the hole was already nacked (the
    /// nack-storm guard fired).
    pub gbn_nack_suppressions: u64,
    /// Own frames returned by the mesh bounce path (no route to the
    /// destination under the link set in force).
    pub gbn_bounces: u64,
}

/// Registry handles into the NIC's [`MetricSet`], one per [`NicStats`]
/// counter. Resolved once at construction so every hot-path increment is
/// an indexed vector add, never a name lookup.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NicCounterIds {
    pub(crate) packets_sent: CounterId,
    pub(crate) bytes_sent: CounterId,
    pub(crate) packets_received: CounterId,
    pub(crate) bytes_received: CounterId,
    pub(crate) merged_writes: CounterId,
    pub(crate) single_write_packets: CounterId,
    pub(crate) blocked_write_packets: CounterId,
    pub(crate) dma_packets: CounterId,
    pub(crate) crc_drops: CounterId,
    pub(crate) misroutes: CounterId,
    pub(crate) unmapped_drops: CounterId,
    pub(crate) retransmissions: CounterId,
    pub(crate) retx_timeouts: CounterId,
    pub(crate) acks_sent: CounterId,
    pub(crate) acks_received: CounterId,
    pub(crate) nacks_sent: CounterId,
    pub(crate) nacks_received: CounterId,
    pub(crate) dup_drops: CounterId,
    pub(crate) gap_drops: CounterId,
    pub(crate) fault_stalls: CounterId,
    pub(crate) gbn_retransmissions: CounterId,
    pub(crate) gbn_backoff_resets: CounterId,
    pub(crate) gbn_nack_suppressions: CounterId,
    pub(crate) gbn_bounces: CounterId,
}

impl NicCounterIds {
    /// Registers every NIC counter in `set`. The dotted names become
    /// registry entries under the NIC's prefix, e.g.
    /// `nic0.retx.timeouts`.
    pub(crate) fn register(set: &mut MetricSet) -> Self {
        NicCounterIds {
            packets_sent: set.counter("packets_sent"),
            bytes_sent: set.counter("bytes_sent"),
            packets_received: set.counter("packets_received"),
            bytes_received: set.counter("bytes_received"),
            merged_writes: set.counter("merged_writes"),
            single_write_packets: set.counter("single_write_packets"),
            blocked_write_packets: set.counter("blocked_write_packets"),
            dma_packets: set.counter("dma_packets"),
            crc_drops: set.counter("crc_drops"),
            misroutes: set.counter("misroutes"),
            unmapped_drops: set.counter("unmapped_drops"),
            retransmissions: set.counter("retx.retransmissions"),
            retx_timeouts: set.counter("retx.timeouts"),
            acks_sent: set.counter("retx.acks_sent"),
            acks_received: set.counter("retx.acks_received"),
            nacks_sent: set.counter("retx.nacks_sent"),
            nacks_received: set.counter("retx.nacks_received"),
            dup_drops: set.counter("retx.dup_drops"),
            gap_drops: set.counter("retx.gap_drops"),
            fault_stalls: set.counter("fault_stalls"),
            // Go-back-N health rollup: one namespace a churn soak can
            // assert recovery against. `gbn.retransmissions` mirrors
            // `retx.retransmissions` so the namespace is self-contained.
            gbn_retransmissions: set.counter("gbn.retransmissions"),
            gbn_backoff_resets: set.counter("gbn.backoff_resets"),
            gbn_nack_suppressions: set.counter("gbn.nack_suppressions"),
            gbn_bounces: set.counter("gbn.bounces"),
        }
    }
}

impl NetworkInterface {
    /// Counters, rebuilt as a plain struct from the metric set (the
    /// registry view is [`NetworkInterface::register_metrics`]).
    pub fn stats(&self) -> NicStats {
        let v = |id| self.metrics.get(id);
        NicStats {
            packets_sent: v(self.ids.packets_sent),
            bytes_sent: v(self.ids.bytes_sent),
            packets_received: v(self.ids.packets_received),
            bytes_received: v(self.ids.bytes_received),
            merged_writes: v(self.ids.merged_writes),
            single_write_packets: v(self.ids.single_write_packets),
            blocked_write_packets: v(self.ids.blocked_write_packets),
            dma_packets: v(self.ids.dma_packets),
            crc_drops: v(self.ids.crc_drops),
            misroutes: v(self.ids.misroutes),
            unmapped_drops: v(self.ids.unmapped_drops),
            retransmissions: v(self.ids.retransmissions),
            retx_timeouts: v(self.ids.retx_timeouts),
            acks_sent: v(self.ids.acks_sent),
            acks_received: v(self.ids.acks_received),
            nacks_sent: v(self.ids.nacks_sent),
            nacks_received: v(self.ids.nacks_received),
            dup_drops: v(self.ids.dup_drops),
            gap_drops: v(self.ids.gap_drops),
            fault_stalls: v(self.ids.fault_stalls),
            gbn_backoff_resets: v(self.ids.gbn_backoff_resets),
            gbn_nack_suppressions: v(self.ids.gbn_nack_suppressions),
            gbn_bounces: v(self.ids.gbn_bounces),
        }
    }

    /// Registers this NIC's counters and FIFO gauges under `prefix`
    /// (e.g. `nic0` → `nic0.packets_sent`, `nic0.fifo.out.occupancy`).
    pub fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.extend_set(prefix, &self.metrics);
        for (name, fifo) in [("out", &self.out_fifo), ("in", &self.in_fifo)] {
            reg.set_gauge(format!("{prefix}.fifo.{name}.occupancy"), fifo.bytes() as f64);
            reg.set_counter(format!("{prefix}.fifo.{name}.peak_bytes"), fifo.high_watermark());
            reg.set_counter(format!("{prefix}.fifo.{name}.pushes"), fifo.pushes());
            reg.set_counter(format!("{prefix}.fifo.{name}.rejections"), fifo.rejections());
        }
    }
}
