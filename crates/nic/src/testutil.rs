//! Shared fixtures for the NIC unit tests, used by the per-module
//! `tests` blocks across the crate.

use shrimp_mem::{PageNum, PhysAddr};
use shrimp_mesh::{MeshPacket, MeshShape, NodeId};
use shrimp_sim::{SimDuration, SimTime};

use crate::config::{NicConfig, RetxConfig};
use crate::datapath::SnoopOutcome;
use crate::nic::NetworkInterface;
use crate::nipt::{Nipt, OutSegment, UpdatePolicy};
use crate::packet::{ShrimpPacket, WireHeader};

pub(crate) fn shape() -> MeshShape {
    MeshShape::new(2, 2)
}

pub(crate) fn nic() -> NetworkInterface {
    NetworkInterface::new(NodeId(0), shape(), NicConfig::default(), 64)
}

pub(crate) fn t(ns: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_ns(ns)
}

pub(crate) fn map_out(
    n: &mut NetworkInterface,
    page: u64,
    dst: u16,
    dst_page: u64,
    policy: UpdatePolicy,
) {
    map_out_on(n.nipt_mut(), page, dst, dst_page, policy);
}

/// [`map_out`] directly on a NIPT, for backends that wrap the reference
/// datapath.
pub(crate) fn map_out_on(nipt: &mut Nipt, page: u64, dst: u16, dst_page: u64, policy: UpdatePolicy) {
    nipt.set_out_segment(
        PageNum::new(page),
        OutSegment::full_page(NodeId(dst), PageNum::new(dst_page), policy),
    )
    .unwrap();
}

pub(crate) fn wire_packet_for(
    n: &NetworkInterface,
    dst_addr: PhysAddr,
    data: Vec<u8>,
) -> MeshPacket<ShrimpPacket> {
    let p = ShrimpPacket::new(
        WireHeader {
            dst_coord: n.coord(),
            src: NodeId(3),
            dst_addr,
        },
        data,
    );
    MeshPacket::new(NodeId(3), n.node(), p)
}

pub(crate) fn rnic(node: u16) -> NetworkInterface {
    let cfg = NicConfig {
        retx: RetxConfig::reliable(),
        ..NicConfig::default()
    };
    NetworkInterface::new(NodeId(node), shape(), cfg, 64)
}

/// A sender NIC (node 0) with page 2 mapped single-word to node 1's
/// page 4, and the matching receiver NIC.
pub(crate) fn rpair() -> (NetworkInterface, NetworkInterface) {
    let mut s = rnic(0);
    map_out(&mut s, 2, 1, 4, UpdatePolicy::AutomaticSingle);
    let mut r = rnic(1);
    r.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
    (s, r)
}

/// Snoops word `i` on the sender and pops the framed mesh packet.
pub(crate) fn send_word(
    s: &mut NetworkInterface,
    i: u32,
    at_ns: u64,
) -> MeshPacket<ShrimpPacket> {
    let addr = PageNum::new(2).at_offset(u64::from(i) * 4);
    assert_eq!(s.snoop_write(t(at_ns), addr, &i.to_le_bytes()), SnoopOutcome::Queued);
    s.pop_outgoing(t(at_ns + 1000)).expect("framed data packet")
}

/// Drains the receiver's control queue into the sender.
pub(crate) fn relay_ctl(r: &mut NetworkInterface, s: &mut NetworkInterface, at_ns: u64) -> usize {
    let mut n = 0;
    while let Some(mp) = r.pop_outgoing(t(at_ns)) {
        s.accept_packet(t(at_ns), mp).unwrap();
        n += 1;
    }
    n
}
