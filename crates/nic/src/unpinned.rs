//! The unpinned (NP-RDMA-style) NIC backend.
//!
//! The paper's design pins every mapped page at map time so the NIC's
//! NIPT translation is always backed by resident memory. This backend
//! models the alternative explored by NP-RDMA-class designs: **no
//! map-time pinning**. Outgoing translation goes through a bounded
//! IOTLB; a miss means the page is not NIC-resident and a dynamic
//! map-in — one kernel round trip, [`crate::config::UnpinnedConfig::
//! map_in_latency`] — must complete before the write can packetize.
//!
//! Mechanics, all deterministic:
//!
//! - A snooped write whose page hits the IOTLB proceeds exactly as on
//!   the pinned backend (the IOTLB caches *residency* only; the
//!   translation content is always read from the shared NIPT, so a
//!   stale entry can never produce a wrong address — invalidation is a
//!   timing matter, not a correctness one).
//! - A miss buffers the write and schedules a map-in completing at
//!   `now + map_in_latency`. Writes that miss on a page whose map-in
//!   is already in flight join the pending entry without escalating
//!   the wait — the flat-pacing discipline the go-back-N engine uses
//!   for reroute bounces (a miss means "not resident yet", not "lossy
//!   path", so there is nothing to back off from).
//! - When the map-in completes (driven by [`NicModel::poll`] at event
//!   times, which are worker-invariant), the entry is installed and
//!   the buffered writes replay through the ordinary snoop path,
//!   stamped at the map-in completion time.
//! - Installing into a full IOTLB evicts the least-recently-used entry
//!   through the same invalidation routine the kernel shootdown hook
//!   ([`NicModel::invalidate_translation`]) uses.

use std::collections::BTreeMap;

use shrimp_mem::{PageNum, PhysAddr};
use shrimp_mesh::{MeshPacket, MeshShape, NodeId};
use shrimp_sim::fault::NicFaultSite;
use shrimp_sim::{MetricsRegistry, SimDuration, SimTime, Tracer};

use crate::command::{CommandOp, CommandSpace};
use crate::config::NicConfig;
use crate::datapath::{CommandEffect, NicInterrupt, SnoopOutcome};
use crate::error::NicError;
use crate::incoming::IncomingDelivery;
use crate::model::NicModel;
use crate::nic::NetworkInterface;
use crate::nipt::Nipt;
use crate::packet::{Payload, ShrimpPacket};
use crate::stats::NicStats;

/// IOTLB and dynamic map-in counters of the unpinned backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IotlbStats {
    /// Outgoing translations served from the IOTLB.
    pub hits: u64,
    /// Outgoing translations that missed (write buffered or DMA start
    /// delayed behind a dynamic map-in).
    pub misses: u64,
    /// Dynamic map-in round trips performed.
    pub map_ins: u64,
    /// Entries evicted under capacity pressure (LRU shootdown).
    pub evictions: u64,
    /// Entries currently resident.
    pub resident: u64,
}

/// One snooped write parked behind an in-flight map-in. Snooped stores
/// are at most a bus word, so the data inlines.
#[derive(Debug, Clone, Copy)]
struct BufferedWrite {
    addr: PhysAddr,
    len: u8,
    data: [u8; 8],
}

/// An in-flight dynamic map-in for one page.
#[derive(Debug, Clone)]
struct MissEntry {
    /// When the kernel round trip completes and the entry installs.
    ready: SimTime,
    /// Writes to replay, in snoop order, once the page is resident.
    writes: Vec<BufferedWrite>,
}

/// The unpinned backend: the full SHRIMP datapath behind a bounded
/// outgoing IOTLB with dynamic map-in on miss.
#[derive(Debug, Clone)]
pub struct UnpinnedNicModel {
    inner: NetworkInterface,
    /// Resident pages → last-use tick. The LRU victim is the entry with
    /// the smallest `(tick, page)` — total order, so eviction is
    /// deterministic.
    iotlb: BTreeMap<PageNum, u64>,
    use_tick: u64,
    /// In-flight map-ins keyed by page.
    pending: BTreeMap<PageNum, MissEntry>,
    hits: u64,
    misses: u64,
    map_ins: u64,
    evictions: u64,
}

impl UnpinnedNicModel {
    /// Creates the unpinned NIC of `node`; parameters come from
    /// `config.unpinned`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the node is off-mesh.
    pub fn new(node: NodeId, shape: MeshShape, config: NicConfig, num_pages: u64) -> Self {
        UnpinnedNicModel {
            inner: NetworkInterface::new(node, shape, config, num_pages),
            iotlb: BTreeMap::new(),
            use_tick: 0,
            pending: BTreeMap::new(),
            hits: 0,
            misses: 0,
            map_ins: 0,
            evictions: 0,
        }
    }

    /// The wrapped reference datapath (inspection only).
    pub fn inner(&self) -> &NetworkInterface {
        &self.inner
    }

    /// IOTLB counter snapshot.
    pub fn iotlb_stats(&self) -> IotlbStats {
        IotlbStats {
            hits: self.hits,
            misses: self.misses,
            map_ins: self.map_ins,
            evictions: self.evictions,
            resident: self.iotlb.len() as u64,
        }
    }

    /// Marks `page` most recently used.
    fn touch(&mut self, page: PageNum) {
        self.use_tick += 1;
        self.iotlb.insert(page, self.use_tick);
    }

    /// Installs `page`, evicting the LRU entry if the IOTLB is full.
    fn install(&mut self, page: PageNum) {
        let cap = self.inner.config().unpinned.iotlb_entries;
        while !self.iotlb.contains_key(&page) && self.iotlb.len() >= cap {
            let victim = self
                .iotlb
                .iter()
                .min_by_key(|&(p, t)| (*t, *p))
                .map(|(p, _)| *p)
                .expect("full IOTLB has a victim");
            self.evict(victim);
        }
        self.touch(page);
    }

    /// Drops `page` from the IOTLB — the shootdown routine, shared by
    /// capacity eviction and the kernel unmap hook.
    fn evict(&mut self, page: PageNum) {
        if self.iotlb.remove(&page).is_some() {
            self.evictions += 1;
        }
    }

    /// Completes every map-in that is ready by `now`: installs the
    /// entry and replays its buffered writes at the completion instant.
    fn complete_map_ins(&mut self, now: SimTime) {
        while let Some((page, ready)) = self
            .pending
            .iter()
            .filter(|(_, e)| e.ready <= now)
            .min_by_key(|(p, e)| (e.ready, **p))
            .map(|(p, e)| (*p, e.ready))
        {
            let entry = self.pending.remove(&page).expect("entry was just found");
            self.install(page);
            for w in &entry.writes {
                self.inner
                    .snoop_write(ready, w.addr, &w.data[..usize::from(w.len)]);
            }
        }
    }
}

impl NicModel for UnpinnedNicModel {
    fn node(&self) -> NodeId {
        self.inner.node()
    }
    fn config(&self) -> &NicConfig {
        self.inner.config()
    }
    fn set_tracer(&mut self, tracer: Tracer) {
        self.inner.set_tracer(tracer);
    }
    fn tracer(&self) -> &Tracer {
        self.inner.tracer()
    }
    fn set_fault_injection(&mut self, site: NicFaultSite) {
        self.inner.set_fault_injection(site);
    }
    fn nipt(&self) -> &Nipt {
        self.inner.nipt()
    }
    fn nipt_mut(&mut self) -> &mut Nipt {
        self.inner.nipt_mut()
    }
    fn command_space(&self) -> CommandSpace {
        self.inner.command_space()
    }
    fn stats(&self) -> NicStats {
        self.inner.stats()
    }
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        self.inner.register_metrics(reg, prefix);
        reg.set_counter(format!("{prefix}.iotlb.hits"), self.hits);
        reg.set_counter(format!("{prefix}.iotlb.misses"), self.misses);
        reg.set_counter(format!("{prefix}.iotlb.map_ins"), self.map_ins);
        reg.set_counter(format!("{prefix}.iotlb.evictions"), self.evictions);
    }

    fn snoop_write(&mut self, now: SimTime, addr: PhysAddr, data: &[u8]) -> SnoopOutcome {
        let automatic = self
            .inner
            .nipt()
            .lookup_out(addr)
            .is_some_and(|seg| seg.policy.is_automatic());
        if !automatic {
            // Unmapped or deliberate pages: the reference path ignores
            // the write; no residency is involved.
            return self.inner.snoop_write(now, addr, data);
        }
        let page = addr.page();
        if self.iotlb.contains_key(&page) {
            self.hits += 1;
            self.touch(page);
            return self.inner.snoop_write(now, addr, data);
        }
        // Miss: buffer the write behind a dynamic map-in. A second miss
        // on a page already being mapped in joins the in-flight entry —
        // flat pacing, no escalation (see the module docs).
        self.misses += 1;
        let mut w = BufferedWrite {
            addr,
            len: data.len() as u8,
            data: [0; 8],
        };
        w.data[..data.len()].copy_from_slice(data);
        if let Some(entry) = self.pending.get_mut(&page) {
            entry.writes.push(w);
        } else {
            self.map_ins += 1;
            let ready = now + self.inner.config().unpinned.map_in_latency;
            self.pending.insert(
                page,
                MissEntry {
                    ready,
                    writes: vec![w],
                },
            );
        }
        SnoopOutcome::Stalled
    }

    fn is_command_addr(&self, addr: PhysAddr) -> bool {
        self.inner.is_command_addr(addr)
    }
    fn command_read(&mut self, now: SimTime, addr: PhysAddr) -> u32 {
        self.inner.command_read(now, addr)
    }

    fn command_write(
        &mut self,
        now: SimTime,
        addr: PhysAddr,
        value: u32,
        mem_read: impl FnOnce(PhysAddr, u64) -> (Payload, SimTime),
    ) -> Result<CommandEffect, NicError> {
        // A deliberate-update start needs the source page resident; on a
        // miss the DMA source read is held behind one synchronous map-in
        // round trip (the kernel is already involved on this path, so
        // the latency folds into the bus read completion time).
        let data_page = self.inner.command_space().data_addr_for(addr).map(PhysAddr::page);
        let is_start = matches!(CommandOp::decode(value), Ok(CommandOp::StartTransfer { .. }));
        let miss = is_start && data_page.is_some_and(|p| !self.iotlb.contains_key(&p));
        let extra = if miss {
            self.inner.config().unpinned.map_in_latency
        } else {
            SimDuration::ZERO
        };
        let result = self.inner.command_write(now, addr, value, |src, len| {
            let (payload, read_done) = mem_read(src, len);
            (payload, read_done + extra)
        });
        if let (true, Ok(CommandEffect::DmaStarted { .. }), Some(page)) =
            (is_start, &result, data_page)
        {
            if miss {
                self.misses += 1;
                self.map_ins += 1;
                self.install(page);
            } else {
                self.hits += 1;
                self.touch(page);
            }
        }
        result
    }

    fn poll(&mut self, now: SimTime) {
        self.complete_map_ins(now);
        self.inner.poll(now);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        let map_in = self.pending.values().map(|e| e.ready).min();
        match (self.inner.next_deadline(), map_in) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn cpu_must_stall(&self) -> bool {
        // Map-ins are asynchronous (the miss buffers the write and the
        // CPU proceeds); only the reference FIFO backpressure stalls.
        self.inner.cpu_must_stall()
    }

    fn outgoing_ready_at(&self) -> Option<SimTime> {
        self.inner.outgoing_ready_at()
    }
    fn pop_outgoing(&mut self, now: SimTime) -> Option<MeshPacket<ShrimpPacket>> {
        self.inner.pop_outgoing(now)
    }
    fn has_pending_control(&self) -> bool {
        self.inner.has_pending_control()
    }
    fn can_accept_from_network_at(&self, now: SimTime) -> bool {
        self.inner.can_accept_from_network_at(now)
    }
    fn accept_packet(
        &mut self,
        now: SimTime,
        packet: MeshPacket<ShrimpPacket>,
    ) -> Result<(), NicError> {
        self.inner.accept_packet(now, packet)
    }
    fn pop_incoming(&mut self, now: SimTime) -> Option<Result<IncomingDelivery, NicError>> {
        self.inner.pop_incoming(now)
    }
    fn incoming_ready_at(&self) -> Option<SimTime> {
        self.inner.incoming_ready_at()
    }
    fn take_interrupts(&mut self) -> Vec<NicInterrupt> {
        self.inner.take_interrupts()
    }
    fn out_fifo_bytes(&self) -> u64 {
        self.inner.out_fifo_bytes()
    }
    fn in_fifo_bytes(&self) -> u64 {
        self.inner.in_fifo_bytes()
    }

    fn invalidate_translation(&mut self, page: PageNum) {
        self.evict(page);
        // Buffered misses for the page die with the mapping: by the time
        // the map-in would complete there is nothing to translate
        // through, matching the reference backend's treatment of writes
        // to pages unmapped mid-flight.
        self.pending.remove(&page);
    }

    fn iotlb_stats(&self) -> Option<IotlbStats> {
        Some(UnpinnedNicModel::iotlb_stats(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nipt::UpdatePolicy;
    use crate::testutil::{map_out_on, shape, t};
    use shrimp_sim::SimDuration;

    fn unic() -> UnpinnedNicModel {
        UnpinnedNicModel::new(NodeId(0), shape(), NicConfig::default(), 64)
    }

    fn tiny_unic(entries: usize) -> UnpinnedNicModel {
        let cfg = NicConfig {
            unpinned: crate::config::UnpinnedConfig {
                iotlb_entries: entries,
                ..crate::config::UnpinnedConfig::prototype()
            },
            ..NicConfig::default()
        };
        UnpinnedNicModel::new(NodeId(0), shape(), cfg, 64)
    }

    #[test]
    fn miss_buffers_then_replays_after_map_in() {
        let mut n = unic();
        map_out_on(n.nipt_mut(), 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let addr = PageNum::new(2).at_offset(16);
        // First touch misses: buffered, no packet yet.
        assert_eq!(n.snoop_write(t(0), addr, &7u32.to_le_bytes()), SnoopOutcome::Stalled);
        assert!(n.pop_outgoing(t(10_000)).is_none());
        let lat = n.config().unpinned.map_in_latency;
        assert_eq!(n.next_deadline(), Some(t(0) + lat));
        // Map-in completes: the write replays stamped at completion.
        n.poll(t(0) + lat);
        let mp = n
            .pop_outgoing(t(0) + lat + SimDuration::from_us(1))
            .expect("replayed after map-in");
        assert_eq!(mp.payload().payload(), &7u32.to_le_bytes());
        let s = UnpinnedNicModel::iotlb_stats(&n);
        assert_eq!((s.misses, s.map_ins, s.hits, s.resident), (1, 1, 0, 1));
    }

    #[test]
    fn second_miss_joins_inflight_map_in() {
        let mut n = unic();
        map_out_on(n.nipt_mut(), 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let base = PageNum::new(2).base();
        assert_eq!(n.snoop_write(t(0), base, &[1; 4]), SnoopOutcome::Stalled);
        assert_eq!(n.snoop_write(t(100), base.add(4), &[2; 4]), SnoopOutcome::Stalled);
        let s = UnpinnedNicModel::iotlb_stats(&n);
        // Two misses, ONE kernel round trip: the second write joined the
        // in-flight entry (flat pacing, no escalation).
        assert_eq!((s.misses, s.map_ins), (2, 1));
        let lat = n.config().unpinned.map_in_latency;
        n.poll(t(0) + lat);
        assert!(n.pop_outgoing(t(0) + lat + SimDuration::from_us(1)).is_some());
        assert!(n.pop_outgoing(t(0) + lat + SimDuration::from_us(1)).is_some());
    }

    #[test]
    fn resident_page_hits_like_pinned() {
        let mut n = unic();
        map_out_on(n.nipt_mut(), 2, 1, 9, UpdatePolicy::AutomaticSingle);
        let addr = PageNum::new(2).at_offset(8);
        n.snoop_write(t(0), addr, &[1; 4]);
        let lat = n.config().unpinned.map_in_latency;
        n.poll(t(0) + lat);
        n.pop_outgoing(t(0) + lat + SimDuration::from_us(1)).unwrap();
        // Resident now: the next write queues immediately.
        assert_eq!(
            n.snoop_write(t(100_000), addr, &[2; 4]),
            SnoopOutcome::Queued
        );
        assert_eq!(UnpinnedNicModel::iotlb_stats(&n).hits, 1);
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        let mut n = tiny_unic(2);
        for page in 2..5 {
            map_out_on(n.nipt_mut(), page, 1, 9 + page, UpdatePolicy::AutomaticSingle);
        }
        let lat = n.config().unpinned.map_in_latency;
        let mut now = t(0);
        for page in 2..5u64 {
            n.snoop_write(now, PageNum::new(page).base(), &[page as u8; 4]);
            now += lat;
            n.poll(now);
        }
        let s = UnpinnedNicModel::iotlb_stats(&n);
        // Page 2 (least recently used) was shot down for page 4.
        assert_eq!((s.evictions, s.resident), (1, 2));
        assert_eq!(
            n.snoop_write(now, PageNum::new(2).base(), &[9; 4]),
            SnoopOutcome::Stalled,
            "evicted page must miss again"
        );
        assert_eq!(
            n.snoop_write(now, PageNum::new(4).base(), &[9; 4]),
            SnoopOutcome::Queued,
            "most recent page stays resident"
        );
    }

    #[test]
    fn unmap_shootdown_drops_entry_and_pending_misses() {
        let mut n = unic();
        map_out_on(n.nipt_mut(), 2, 1, 9, UpdatePolicy::AutomaticSingle);
        n.snoop_write(t(0), PageNum::new(2).base(), &[1; 4]);
        n.unmap_out(PageNum::new(2), 0);
        let lat = n.config().unpinned.map_in_latency;
        n.poll(t(0) + lat);
        assert!(
            n.pop_outgoing(t(0) + lat + SimDuration::from_us(1)).is_none(),
            "buffered write for an unmapped page must not replay"
        );
        assert_eq!(UnpinnedNicModel::iotlb_stats(&n).resident, 0);
    }

    #[test]
    fn deliberate_start_pays_map_in_on_miss_only() {
        let mut n = unic();
        map_out_on(n.nipt_mut(), 6, 1, 12, UpdatePolicy::Deliberate);
        let data_addr = PageNum::new(6).base();
        let cmd = n.command_space().command_addr_for(data_addr);
        let lat = n.config().unpinned.map_in_latency;
        let e = n
            .command_write(t(0), cmd, 4, |_, _| (Payload::from(vec![0; 16]), t(500)))
            .unwrap();
        let CommandEffect::DmaStarted { done_at } = e else {
            panic!("expected DmaStarted, got {e:?}");
        };
        assert!(done_at >= t(500) + lat, "miss pays the kernel round trip");
        // Second transfer on the now-resident page pays no map-in.
        let done_at = done_at + SimDuration::from_us(1);
        let e2 = n
            .command_write(done_at, cmd, 4, |_, _| {
                (Payload::from(vec![0; 16]), done_at + SimDuration::from_ns(500))
            })
            .unwrap();
        let CommandEffect::DmaStarted { done_at: d2 } = e2 else {
            panic!("expected DmaStarted, got {e2:?}");
        };
        assert!(d2 < done_at + lat, "hit must not pay the round trip");
        let s = UnpinnedNicModel::iotlb_stats(&n);
        assert_eq!((s.misses, s.hits, s.map_ins), (1, 1, 1));
    }
}
