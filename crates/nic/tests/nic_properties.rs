//! Property-based tests of the network interface invariants.

use proptest::prelude::*;

use shrimp_mem::{PageNum, PhysAddr, PAGE_SIZE};
use shrimp_mesh::{MeshCoord, MeshShape, NodeId};
use shrimp_nic::{
    crc32, CommandOp, Crc32, FrameKind, LinkCtl, NetworkInterface, NicConfig, OutSegment,
    PacketFifo, ShrimpPacket, UpdatePolicy, WireHeader,
};
use shrimp_sim::{SimDuration, SimTime};

fn nic() -> NetworkInterface {
    NetworkInterface::new(NodeId(0), MeshShape::new(2, 1), NicConfig::default(), 64)
}

proptest! {
    /// The Outgoing FIFO's byte accounting is exact under any push/pop
    /// interleaving, and capacity is never exceeded.
    #[test]
    fn fifo_byte_accounting(ops in prop::collection::vec((any::<bool>(), 0usize..600), 1..200)) {
        let mut fifo = PacketFifo::new(4096, 2048);
        let header = WireHeader {
            dst_coord: MeshCoord { x: 0, y: 0 },
            src: NodeId(0),
            dst_addr: PhysAddr::new(0),
        };
        let mut model: Vec<u64> = Vec::new();
        for (push, len) in ops {
            if push {
                let pkt = ShrimpPacket::new(header, vec![0u8; len]);
                let wire = pkt.wire_len();
                match fifo.try_push(SimTime::ZERO, pkt) {
                    Ok(()) => model.push(wire),
                    Err(_) => {
                        prop_assert!(model.iter().sum::<u64>() + wire > 4096, "refusal only when full");
                    }
                }
            } else if let Some((pkt, _)) = fifo.pop() {
                let expect = model.remove(0);
                prop_assert_eq!(pkt.wire_len(), expect, "FIFO order");
            } else {
                prop_assert!(model.is_empty());
            }
            prop_assert_eq!(fifo.bytes(), model.iter().sum::<u64>());
            prop_assert!(fifo.bytes() <= 4096);
            prop_assert_eq!(fifo.len(), model.len());
        }
    }

    /// Every decodable command round-trips; undecodable words are
    /// rejected, never misinterpreted.
    #[test]
    fn command_decode_total(value in any::<u32>()) {
        match CommandOp::decode(value) {
            Ok(op) => prop_assert_eq!(op.encode() >> 26, value >> 26, "opcode preserved"),
            Err(_) => {
                let op = value >> 26;
                prop_assert!(
                    op > 3 || (op == 0 && value & ((1 << 26) - 1) == 0)
                        || (op == 1 && (value & ((1 << 26) - 1)) > 2),
                    "only genuinely invalid encodings error: {value:#x}"
                );
            }
        }
    }

    /// Blocked-write merging never loses or reorders bytes: any store
    /// sequence to a mapped page produces packets that replay to exactly
    /// the stored data.
    #[test]
    fn blocked_write_merging_preserves_data(
        // Word-aligned stores at increasing offsets with random gaps and delays.
        stores in prop::collection::vec((0u64..16, 0u64..2000, any::<u32>()), 1..60),
    ) {
        let mut n = nic();
        n.nipt_mut()
            .set_out_segment(
                PageNum::new(3),
                OutSegment::full_page(NodeId(1), PageNum::new(9), UpdatePolicy::AutomaticBlocked),
            )
            .unwrap();
        // Model of the remote page.
        let mut expect = vec![0u8; PAGE_SIZE as usize];
        let mut offset = 0u64;
        let mut now = SimTime::ZERO;
        let mut wrote = Vec::new();
        for (gap_words, delay_ns, value) in stores {
            offset += gap_words * 4;
            if offset + 4 > PAGE_SIZE {
                break;
            }
            now += SimDuration::from_ns(delay_ns);
            n.snoop_write(now, PageNum::new(3).at_offset(offset), &value.to_le_bytes());
            expect[offset as usize..offset as usize + 4].copy_from_slice(&value.to_le_bytes());
            wrote.push(offset);
            offset += 4;
        }
        // Flush and replay all packets into a model page.
        n.poll(now + SimDuration::from_us(100));
        let mut replay = vec![0u8; PAGE_SIZE as usize];
        let far = SimTime::from_picos(u64::MAX / 2);
        while let Some(mp) = n.pop_outgoing(far) {
            let p = mp.into_payload();
            prop_assert!(p.verify_crc());
            let off = p.header().dst_addr.offset() as usize;
            replay[off..off + p.payload().len()].copy_from_slice(p.payload());
        }
        for &o in &wrote {
            let o = o as usize;
            prop_assert_eq!(&replay[o..o + 4], &expect[o..o + 4], "bytes at {}", o);
        }
    }

    /// The incoming threshold gate is sound: acceptance stops at or
    /// above the threshold and always resumes after draining.
    #[test]
    fn incoming_threshold_gate(sizes in prop::collection::vec(16usize..1500, 1..40)) {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        let mut accepted = 0u64;
        for (i, len) in sizes.iter().enumerate() {
            if !n.can_accept_from_network() {
                break;
            }
            let p = ShrimpPacket::new(
                WireHeader {
                    dst_coord: n.coord(),
                    src: NodeId(1),
                    dst_addr: PageNum::new(4).base(),
                },
                vec![i as u8; *len],
            );
            let mp = shrimp_mesh::MeshPacket::new(NodeId(1), NodeId(0), p);
            n.accept_packet(SimTime::ZERO, mp).unwrap();
            accepted += 1;
            prop_assert!(n.in_fifo_bytes() <= n.config().in_fifo_bytes);
        }
        // Drain fully: acceptance must resume.
        let far = SimTime::from_picos(u64::MAX / 2);
        let mut drained = 0u64;
        while let Some(r) = n.pop_incoming(far) {
            r.unwrap();
            drained += 1;
        }
        prop_assert_eq!(drained, accepted);
        prop_assert!(n.can_accept_from_network());
    }
    /// Line-noise soundness: any combination of 1–4 distinct bit flips
    /// anywhere on the wire image — header, payload, link trailer or
    /// the CRC word itself — must fail the CRC check and be rejected by
    /// `accept_packet`. Payloads stay under 300 bytes so the whole
    /// frame is inside CRC-32's Hamming-distance-5 length bound and
    /// four flips are guaranteed detectable.
    #[test]
    fn bit_flips_are_always_detected(
        payload in prop::collection::vec(any::<u8>(), 0usize..300),
        raw_bits in prop::collection::vec(any::<u64>(), 1usize..5),
        seq in any::<u32>(),
        framed in any::<bool>(),
    ) {
        let mut n = nic();
        n.nipt_mut().set_mapped_in(PageNum::new(4), true).unwrap();
        let header = WireHeader {
            dst_coord: n.coord(),
            src: NodeId(1),
            dst_addr: PageNum::new(4).base(),
        };
        let mut pkt = if framed {
            ShrimpPacket::with_link(header, payload, LinkCtl { kind: FrameKind::Data, seq })
        } else {
            ShrimpPacket::new(header, payload)
        };
        prop_assert!(pkt.verify_crc());

        // Reduce to the distinct wire bits flipped an odd number of
        // times; an even count cancels itself out.
        let total_bits = pkt.wire_len() * 8;
        let mut counts = std::collections::BTreeMap::new();
        for b in raw_bits {
            *counts.entry(b % total_bits).or_insert(0u32) += 1;
        }
        let bits: Vec<u64> = counts
            .into_iter()
            .filter(|&(_, c)| c % 2 == 1)
            .map(|(b, _)| b)
            .collect();
        if bits.is_empty() {
            return Ok(());
        }
        for &b in &bits {
            pkt.corrupt_bit(b);
        }
        prop_assert!(!pkt.verify_crc(), "flips {bits:?} slipped past the CRC");

        let before = n.stats().crc_drops;
        let mp = shrimp_mesh::MeshPacket::new(NodeId(1), NodeId(0), pkt);
        prop_assert!(
            n.accept_packet(SimTime::ZERO, mp).is_err(),
            "accept_packet swallowed a corrupted frame (flips {bits:?})"
        );
        prop_assert_eq!(n.stats().crc_drops, before + 1);
    }

    /// The streaming checksum agrees with encode()-then-checksum for
    /// arbitrary packets, framed or not, no matter how the bytes are
    /// chunked on their way into the hasher.
    #[test]
    fn streamed_crc_matches_block_crc(
        payload in prop::collection::vec(any::<u8>(), 0usize..600),
        chunks in prop::collection::vec(1usize..97, 0usize..40),
        seq in any::<u32>(),
        framed in any::<bool>(),
    ) {
        let header = WireHeader {
            dst_coord: MeshCoord { x: 1, y: 0 },
            src: NodeId(0),
            dst_addr: PhysAddr::new(0x2468),
        };
        let pkt = if framed {
            ShrimpPacket::with_link(header, payload, LinkCtl { kind: FrameKind::Nack, seq })
        } else {
            ShrimpPacket::new(header, payload)
        };
        let encoded = pkt.encode();
        let body = &encoded[..encoded.len() - 4];

        // The packet's stored CRC (computed by streaming header, payload
        // and trailer separately) equals the block checksum of the
        // serialized body.
        prop_assert_eq!(pkt.crc(), crc32(body));
        prop_assert!(pkt.verify_crc());

        // Feeding the same bytes in arbitrary chunk sizes changes nothing.
        let mut streamed = Crc32::new();
        let mut off = 0;
        for c in chunks {
            if off >= body.len() {
                break;
            }
            let end = (off + c).min(body.len());
            streamed.update(&body[off..end]);
            off = end;
        }
        streamed.update(&body[off..]);
        prop_assert_eq!(streamed.finish(), pkt.crc());

        // And the wire image round-trips.
        let back = ShrimpPacket::decode(&encoded).expect("decode");
        prop_assert_eq!(back, pkt);
    }
}

#[test]
fn stats_never_lie_about_conservation() {
    // Deterministic end-to-end conservation check on the NIC alone:
    // packets out == packets queued, bytes preserved.
    let mut n = nic();
    n.nipt_mut()
        .set_out_segment(
            PageNum::new(2),
            OutSegment::full_page(NodeId(1), PageNum::new(7), UpdatePolicy::AutomaticSingle),
        )
        .unwrap();
    let mut bytes = 0;
    for i in 0..200u64 {
        let off = (i * 4) % PAGE_SIZE;
        n.snoop_write(
            SimTime::from_picos(i * 1000),
            PageNum::new(2).at_offset(off),
            &(i as u32).to_le_bytes(),
        );
        bytes += 4;
    }
    let far = SimTime::from_picos(u64::MAX / 2);
    let mut popped = 0;
    let mut popped_bytes = 0;
    while let Some(mp) = n.pop_outgoing(far) {
        let p = mp.into_payload();
        popped += 1;
        popped_bytes += p.payload().len() as u64;
    }
    let stats = n.stats();
    assert_eq!(stats.packets_sent, popped);
    assert_eq!(stats.bytes_sent, popped_bytes);
    assert_eq!(popped_bytes, bytes);
}
