//! Kernel error type.

use std::error::Error;
use std::fmt;

use shrimp_mem::{MemError, PageNum, VirtPageNum};
use shrimp_mesh::NodeId;

use crate::process::Pid;

/// Errors raised by the kernel model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// The named process does not exist on this node.
    NoSuchProcess(Pid),
    /// The node is out of physical frames.
    OutOfMemory,
    /// A virtual range was not fully mapped in the process.
    RangeNotMapped {
        /// The owning process.
        pid: Pid,
        /// First unmapped page.
        vpn: VirtPageNum,
    },
    /// No export covers the requested receive buffer.
    NotExported,
    /// The export exists but does not admit the requesting node.
    ExportRefused {
        /// The node that asked.
        node: NodeId,
    },
    /// The export is too small for the requested mapping.
    ExportTooSmall,
    /// The frame is pinned and cannot be paged out.
    FramePinned(PageNum),
    /// A pageout is already in progress for the frame.
    PageoutInProgress(PageNum),
    /// No pageout is in progress for the frame.
    NoPageout(PageNum),
    /// An underlying memory-system error.
    Mem(MemError),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NoSuchProcess(pid) => write!(f, "no such process {pid}"),
            OsError::OutOfMemory => write!(f, "out of physical frames"),
            OsError::RangeNotMapped { pid, vpn } => {
                write!(f, "{vpn} is not mapped in process {pid}")
            }
            OsError::NotExported => write!(f, "receive buffer was not exported"),
            OsError::ExportRefused { node } => {
                write!(f, "export does not admit node {node}")
            }
            OsError::ExportTooSmall => write!(f, "export smaller than requested mapping"),
            OsError::FramePinned(p) => write!(f, "frame {p} is pinned"),
            OsError::PageoutInProgress(p) => write!(f, "pageout already in progress for {p}"),
            OsError::NoPageout(p) => write!(f, "no pageout in progress for {p}"),
            OsError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for OsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OsError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for OsError {
    fn from(e: MemError) -> Self {
        OsError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::VirtAddr;

    #[test]
    fn displays_and_source() {
        assert!(OsError::OutOfMemory.to_string().contains("frames"));
        let e = OsError::from(MemError::NotMapped {
            addr: VirtAddr::new(0),
        });
        assert!(e.to_string().contains("memory error"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&OsError::NotExported).is_none());
    }
}
