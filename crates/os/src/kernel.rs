//! The per-node kernel.
//!
//! The kernel owns everything the `map` system call must get right so
//! that the data path can be protection-free:
//!
//! * **Exports** — a receiving process grants standing permission for a
//!   buffer to be mapped in (optionally restricted to one sending node).
//!   `map` on the sender side names an export; the receiving kernel
//!   verifies it. This is the protection check of paper §2.
//! * **Sender half** ([`Kernel::prepare_out_mapping`]) — validates the
//!   send buffer and switches its pages to write-through caching so the
//!   NIC can snoop every store (§3.1).
//! * **Receiver half** ([`Kernel::grant_in_mapping`]) — validates the
//!   export, then either **pins** the frames (the simple §4.4 policy) or
//!   merely records the importing node (the invalidate policy).
//! * **Mapping consistency** (§4.4) — before replacing an imported frame,
//!   the kernel broadcasts `InvalidateNipt` to every importer, which
//!   marks its source pages read-only (so the next store faults and the
//!   mapping can be re-established) and acknowledges; the frame is only
//!   replaced when all acks are in.

use std::collections::{BTreeMap, BTreeSet};

use shrimp_mem::{CacheMode, PageNum, Protection, VirtAddr, VirtPageNum};
use shrimp_mesh::NodeId;

use crate::error::OsError;
use crate::msg::KernelMsg;
use crate::process::{Pid, Process};

/// Identifies one export on its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExportId(pub u32);

/// A standing permission to map a buffer in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Export {
    /// The export's id.
    pub id: ExportId,
    /// Owning process.
    pub pid: Pid,
    /// First virtual page of the buffer.
    pub vpn: VirtPageNum,
    /// Length in pages.
    pub pages: u64,
    /// `None` admits any node; `Some(n)` admits only node `n`.
    pub allowed: Option<NodeId>,
}

/// What [`Kernel::grant_in_mapping`] hands back for the sender's NIPT:
/// the receiver-side physical frames, in buffer order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapToken {
    /// Receiver frames backing the buffer.
    pub frames: Vec<PageNum>,
}

/// How the kernel keeps remote NIPTs consistent with local paging (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyPolicy {
    /// Pin every frame with an incoming mapping; replacement of such a
    /// frame is simply refused. "Satisfactory if there are not too many
    /// communication mappings."
    Pin,
    /// Allow replacement after an invalidation round-trip with every
    /// importer (the TLB-shootdown-style protocol).
    Invalidate,
}

/// A sender-side outgoing mapping record (used to service invalidations
/// and faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutgoingRecord {
    /// Destination node.
    pub dst_node: NodeId,
    /// Destination frame.
    pub dst_frame: PageNum,
    /// Local owning process.
    pub pid: Pid,
    /// Local source virtual page.
    pub vpn: VirtPageNum,
    /// Local source frame.
    pub src_frame: PageNum,
}

/// The kernel of one node.
///
/// See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Kernel {
    node: NodeId,
    policy: ConsistencyPolicy,
    procs: BTreeMap<Pid, Process>,
    free_frames: Vec<PageNum>,
    next_pid: u32,
    next_export: u32,
    exports: Vec<Export>,
    /// Local frames remote NIPTs send into → the importing nodes.
    importers: BTreeMap<PageNum, BTreeSet<NodeId>>,
    /// Local outgoing mappings, per source frame.
    outgoing: Vec<OutgoingRecord>,
    /// Pageouts awaiting acknowledgements: frame → nodes still to ack.
    pageouts: BTreeMap<PageNum, BTreeSet<NodeId>>,
    /// Outgoing mappings invalidated by a remote pageout, waiting for a
    /// write fault to trigger re-establishment.
    invalidated: BTreeMap<(Pid, VirtPageNum), OutgoingRecord>,
}

impl Kernel {
    /// Creates a kernel managing `num_frames` frames with the pin policy.
    pub fn new(node: NodeId, num_frames: u64) -> Self {
        Kernel::with_policy(node, num_frames, ConsistencyPolicy::Pin)
    }

    /// Creates a kernel with an explicit consistency policy.
    pub fn with_policy(node: NodeId, num_frames: u64, policy: ConsistencyPolicy) -> Self {
        Kernel {
            node,
            policy,
            procs: BTreeMap::new(),
            // Reverse order so allocation hands out ascending frames.
            free_frames: (0..num_frames).rev().map(PageNum::new).collect(),
            next_pid: 1,
            next_export: 1,
            exports: Vec::new(),
            importers: BTreeMap::new(),
            outgoing: Vec::new(),
            pageouts: BTreeMap::new(),
            invalidated: BTreeMap::new(),
        }
    }

    /// This kernel's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The consistency policy in force.
    pub fn policy(&self) -> ConsistencyPolicy {
        self.policy
    }

    /// Frames not currently allocated.
    pub fn free_frame_count(&self) -> usize {
        self.free_frames.len()
    }

    // ─────────────────────────── processes ──────────────────────────────

    /// Creates an empty process.
    pub fn create_process(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid, Process::new(pid));
        pid
    }

    /// The process table entry.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable process table entry.
    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// All pids on this node.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Allocates and maps `pages` fresh frames into `pid`, read-write,
    /// write-back. Returns the first virtual page.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] or [`OsError::OutOfMemory`].
    pub fn alloc_pages(&mut self, pid: Pid, pages: u64) -> Result<VirtPageNum, OsError> {
        if !self.procs.contains_key(&pid) {
            return Err(OsError::NoSuchProcess(pid));
        }
        if (self.free_frames.len() as u64) < pages {
            return Err(OsError::OutOfMemory);
        }
        let proc = self.procs.get_mut(&pid).expect("checked above");
        let base = proc.reserve_vpns(pages);
        for i in 0..pages {
            let frame = self.free_frames.pop().expect("checked above");
            proc.page_table_mut().map(
                VirtPageNum::new(base.raw() + i),
                frame,
                shrimp_mem::PageFlags::default(),
            );
        }
        Ok(base)
    }

    /// The frame backing `(pid, vpn)`.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] / [`OsError::RangeNotMapped`].
    pub fn frame_of(&self, pid: Pid, vpn: VirtPageNum) -> Result<PageNum, OsError> {
        let proc = self.procs.get(&pid).ok_or(OsError::NoSuchProcess(pid))?;
        proc.page_table()
            .entry(vpn)
            .map(|(f, _)| f)
            .ok_or(OsError::RangeNotMapped { pid, vpn })
    }

    // ─────────────────────────── exports ────────────────────────────────

    /// Records a standing permission for `[vpn, vpn + pages)` of `pid` to
    /// be mapped in, optionally restricted to one node.
    ///
    /// # Errors
    ///
    /// [`OsError::RangeNotMapped`] if any page of the range is unmapped.
    pub fn export_buffer(
        &mut self,
        pid: Pid,
        vpn: VirtPageNum,
        pages: u64,
        allowed: Option<NodeId>,
    ) -> Result<ExportId, OsError> {
        let proc = self.procs.get(&pid).ok_or(OsError::NoSuchProcess(pid))?;
        if !proc.range_mapped(vpn, pages) {
            return Err(OsError::RangeNotMapped { pid, vpn });
        }
        let id = ExportId(self.next_export);
        self.next_export += 1;
        self.exports.push(Export {
            id,
            pid,
            vpn,
            pages,
            allowed,
        });
        Ok(id)
    }

    /// Looks up an export.
    pub fn export(&self, id: ExportId) -> Option<&Export> {
        self.exports.iter().find(|e| e.id == id)
    }

    /// Revokes an export (already-established mappings stay; new `map`
    /// calls fail). Returns whether it existed.
    pub fn revoke_export(&mut self, id: ExportId) -> bool {
        let before = self.exports.len();
        self.exports.retain(|e| e.id != id);
        before != self.exports.len()
    }

    // ──────────────────── map(): the two kernel halves ──────────────────

    /// Sender half of `map`: validates `[vpn, vpn+pages)` of `pid` as a
    /// send buffer, switches its pages to write-through caching, and
    /// records the outgoing mapping for §4.4 bookkeeping. Returns the
    /// local frames in order.
    ///
    /// # Errors
    ///
    /// [`OsError::RangeNotMapped`] if the buffer is not fully mapped.
    pub fn prepare_out_mapping(
        &mut self,
        pid: Pid,
        vpn: VirtPageNum,
        pages: u64,
        dst_node: NodeId,
        dst_frames: &[PageNum],
    ) -> Result<Vec<PageNum>, OsError> {
        assert_eq!(dst_frames.len() as u64, pages, "one destination frame per page");
        let proc = self.procs.get_mut(&pid).ok_or(OsError::NoSuchProcess(pid))?;
        if !proc.range_mapped(vpn, pages) {
            return Err(OsError::RangeNotMapped { pid, vpn });
        }
        let mut frames = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let v = VirtPageNum::new(vpn.raw() + i);
            let (frame, _) = proc.page_table().entry(v).expect("range checked");
            proc.page_table_mut().set_cache_mode(v, CacheMode::WriteThrough);
            frames.push(frame);
            self.outgoing.push(OutgoingRecord {
                dst_node,
                dst_frame: dst_frames[i as usize],
                pid,
                vpn: v,
                src_frame: frame,
            });
        }
        Ok(frames)
    }

    /// Receiver half of `map`: checks the export admits `from_node` and
    /// covers `[offset_pages, offset_pages + pages)`, pins frames under
    /// the pin policy, records the importer, and returns the frames for
    /// the sender's NIPT.
    ///
    /// # Errors
    ///
    /// [`OsError::NotExported`], [`OsError::ExportRefused`],
    /// [`OsError::ExportTooSmall`].
    pub fn grant_in_mapping(
        &mut self,
        export_id: ExportId,
        from_node: NodeId,
        offset_pages: u64,
        pages: u64,
    ) -> Result<MapToken, OsError> {
        let export = *self.export(export_id).ok_or(OsError::NotExported)?;
        if let Some(allowed) = export.allowed {
            if allowed != from_node {
                return Err(OsError::ExportRefused { node: from_node });
            }
        }
        if offset_pages + pages > export.pages {
            return Err(OsError::ExportTooSmall);
        }
        let pin = self.policy == ConsistencyPolicy::Pin;
        let proc = self
            .procs
            .get_mut(&export.pid)
            .ok_or(OsError::NoSuchProcess(export.pid))?;
        let mut frames = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let v = VirtPageNum::new(export.vpn.raw() + offset_pages + i);
            let (frame, _) = proc
                .page_table()
                .entry(v)
                .ok_or(OsError::RangeNotMapped { pid: export.pid, vpn: v })?;
            if pin {
                proc.page_table_mut().set_pinned(v, true);
            }
            frames.push(frame);
        }
        for &frame in &frames {
            self.importers.entry(frame).or_default().insert(from_node);
        }
        Ok(MapToken { frames })
    }

    /// Ensures `(pid, vpn)` is backed by a frame, allocating one if the
    /// page was replaced — the "page back in" step of §4.4
    /// re-establishment. Returns the backing frame.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] / [`OsError::OutOfMemory`].
    pub fn ensure_mapped(&mut self, pid: Pid, vpn: VirtPageNum) -> Result<PageNum, OsError> {
        if let Ok(f) = self.frame_of(pid, vpn) {
            return Ok(f);
        }
        let frame = self.free_frames.pop().ok_or(OsError::OutOfMemory)?;
        self.procs
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess(pid))?
            .page_table_mut()
            .map(vpn, frame, shrimp_mem::PageFlags::default());
        Ok(frame)
    }

    /// Records an additional outgoing mapping (used by the machine for
    /// split-page mappings, where one source page targets two remote
    /// frames and both must be tracked for invalidation).
    pub fn add_outgoing_record(&mut self, rec: OutgoingRecord) {
        self.outgoing.push(rec);
    }

    /// Removes every outgoing record of `(pid, vpn)` towards `dst_node`,
    /// returning them (the sender half of `unmap`).
    pub fn remove_outgoing(
        &mut self,
        pid: Pid,
        vpn: VirtPageNum,
        dst_node: NodeId,
    ) -> Vec<OutgoingRecord> {
        let mut removed = Vec::new();
        self.outgoing.retain(|r| {
            if r.pid == pid && r.vpn == vpn && r.dst_node == dst_node {
                removed.push(*r);
                false
            } else {
                true
            }
        });
        self.invalidated.remove(&(pid, vpn));
        removed
    }

    /// Releases `from`'s import of local `frame` (the receiver half of
    /// `unmap`). Returns true when no importer remains, so the caller can
    /// clear the mapped-in bit and unpin.
    pub fn release_import(&mut self, frame: PageNum, from: NodeId) -> bool {
        match self.importers.get_mut(&frame) {
            Some(set) => {
                set.remove(&from);
                if set.is_empty() {
                    self.importers.remove(&frame);
                    for proc in self.procs.values_mut() {
                        for v in proc.page_table().virt_pages_of_frame(frame) {
                            proc.page_table_mut().set_pinned(v, false);
                        }
                    }
                    true
                } else {
                    false
                }
            }
            None => true,
        }
    }

    /// The outgoing mapping records for a local source frame.
    pub fn outgoing_for_frame(&self, frame: PageNum) -> Vec<OutgoingRecord> {
        self.outgoing
            .iter()
            .filter(|r| r.src_frame == frame)
            .copied()
            .collect()
    }

    /// The nodes currently importing (sending into) a local frame.
    pub fn importers_of(&self, frame: PageNum) -> Vec<NodeId> {
        self.importers
            .get(&frame)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    // ───────────────── §4.4 mapping-consistency protocol ────────────────

    /// Starts replacing local frame `frame`, which remote NIPTs send
    /// into. Returns `(destination, message)` pairs to transport.
    ///
    /// # Errors
    ///
    /// [`OsError::FramePinned`] under the pin policy,
    /// [`OsError::PageoutInProgress`] if already started,
    /// [`OsError::NoPageout`] if nothing imports the frame (no protocol
    /// is needed — pages with only outgoing mappings "can safely be
    /// replaced").
    pub fn begin_pageout(&mut self, frame: PageNum) -> Result<Vec<(NodeId, KernelMsg)>, OsError> {
        if self.policy == ConsistencyPolicy::Pin && self.importers.contains_key(&frame) {
            return Err(OsError::FramePinned(frame));
        }
        if self.pageouts.contains_key(&frame) {
            return Err(OsError::PageoutInProgress(frame));
        }
        let importers = self
            .importers
            .get(&frame)
            .cloned()
            .filter(|s| !s.is_empty())
            .ok_or(OsError::NoPageout(frame))?;
        let msgs: Vec<(NodeId, KernelMsg)> = importers
            .iter()
            .map(|&n| {
                (
                    n,
                    KernelMsg::InvalidateNipt {
                        from: self.node,
                        frame,
                    },
                )
            })
            .collect();
        self.pageouts.insert(frame, importers);
        Ok(msgs)
    }

    /// The nodes a pageout of `frame` is still waiting on.
    pub fn pending_acks(&self, frame: PageNum) -> Vec<NodeId> {
        self.pageouts
            .get(&frame)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Handles an incoming kernel message, returning replies to transport
    /// and the local source frames whose NIPT out-segments towards the
    /// requester must be cleared by the machine.
    pub fn handle_msg(&mut self, msg: KernelMsg) -> (Vec<KernelMsg>, Vec<PageNum>) {
        match msg {
            KernelMsg::InvalidateNipt { from, frame } => {
                // We are a sender whose NIPT points at (from, frame):
                // invalidate by marking source pages read-only; the next
                // store faults and re-establishes (§4.4).
                let mut scrub = Vec::new();
                let mut keep = Vec::with_capacity(self.outgoing.len());
                for rec in self.outgoing.drain(..) {
                    if rec.dst_node == from && rec.dst_frame == frame {
                        if let Some(proc) = self.procs.get_mut(&rec.pid) {
                            proc.page_table_mut()
                                .set_protection(rec.vpn, Protection::ReadOnly);
                        }
                        self.invalidated.insert((rec.pid, rec.vpn), rec);
                        scrub.push(rec.src_frame);
                    } else {
                        keep.push(rec);
                    }
                }
                self.outgoing = keep;
                (
                    vec![KernelMsg::InvalidateAck {
                        from: self.node,
                        frame,
                    }],
                    scrub,
                )
            }
            KernelMsg::InvalidateAck { from, frame } => {
                if let Some(waiting) = self.pageouts.get_mut(&frame) {
                    waiting.remove(&from);
                }
                (Vec::new(), Vec::new())
            }
        }
    }

    /// True once every importer acknowledged the invalidation of `frame`.
    pub fn pageout_complete(&self, frame: PageNum) -> bool {
        self.pageouts.get(&frame).is_some_and(|s| s.is_empty())
    }

    /// Finishes a pageout: forgets importer state and frees the frame
    /// (unmapping it from its owner).
    ///
    /// # Errors
    ///
    /// [`OsError::NoPageout`] if no complete pageout is pending.
    pub fn complete_pageout(&mut self, frame: PageNum) -> Result<(), OsError> {
        if !self.pageout_complete(frame) {
            return Err(OsError::NoPageout(frame));
        }
        self.pageouts.remove(&frame);
        self.importers.remove(&frame);
        for proc in self.procs.values_mut() {
            let vpns = proc.page_table().virt_pages_of_frame(frame);
            for v in vpns {
                proc.page_table_mut().set_pinned(v, false);
                proc.page_table_mut().unmap(v);
            }
        }
        self.free_frames.push(frame);
        Ok(())
    }

    /// Number of outgoing mappings currently invalidated by a remote
    /// pageout and waiting for a local write fault to re-arm. While this
    /// is non-zero, a write fault on this node may mutate the *remote*
    /// pageout node during the remapping handshake, so the parallel
    /// engine refuses to open a lookahead window (DESIGN.md §5e).
    pub fn armed_invalidations(&self) -> usize {
        self.invalidated.len()
    }

    /// Services a write fault at `addr` in `pid`. If the page's outgoing
    /// mapping was invalidated by a remote pageout, the invalidation
    /// record is returned so the machine can re-run the mapping
    /// handshake, and the page becomes writable again.
    ///
    /// # Errors
    ///
    /// [`OsError::RangeNotMapped`] for faults the kernel cannot explain
    /// (a genuine protection violation — the process is misbehaving).
    pub fn handle_write_fault(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
    ) -> Result<OutgoingRecord, OsError> {
        let vpn = addr.page();
        let rec = self
            .invalidated
            .remove(&(pid, vpn))
            .ok_or(OsError::RangeNotMapped { pid, vpn })?;
        if let Some(proc) = self.procs.get_mut(&pid) {
            proc.page_table_mut()
                .set_protection(vpn, Protection::ReadWrite);
        }
        self.outgoing.push(rec);
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(NodeId(0), 32)
    }

    #[test]
    fn alloc_maps_fresh_frames() {
        let mut k = kernel();
        let pid = k.create_process();
        let base = k.alloc_pages(pid, 4).unwrap();
        assert!(k.process(pid).unwrap().range_mapped(base, 4));
        assert_eq!(k.free_frame_count(), 28);
        // Frames ascend.
        let f0 = k.frame_of(pid, base).unwrap();
        let f1 = k.frame_of(pid, VirtPageNum::new(base.raw() + 1)).unwrap();
        assert_eq!(f1.raw(), f0.raw() + 1);
    }

    #[test]
    fn alloc_fails_when_out_of_frames() {
        let mut k = Kernel::new(NodeId(0), 2);
        let pid = k.create_process();
        assert!(matches!(k.alloc_pages(pid, 3), Err(OsError::OutOfMemory)));
        assert!(matches!(
            k.alloc_pages(Pid(99), 1),
            Err(OsError::NoSuchProcess(_))
        ));
    }

    #[test]
    fn export_requires_mapped_range() {
        let mut k = kernel();
        let pid = k.create_process();
        let base = k.alloc_pages(pid, 2).unwrap();
        assert!(k.export_buffer(pid, base, 3, None).is_err());
        let id = k.export_buffer(pid, base, 2, Some(NodeId(1))).unwrap();
        assert_eq!(k.export(id).unwrap().allowed, Some(NodeId(1)));
        assert!(k.revoke_export(id));
        assert!(!k.revoke_export(id));
        assert!(k.export(id).is_none());
    }

    #[test]
    fn grant_checks_export_permissions() {
        let mut k = kernel();
        let pid = k.create_process();
        let base = k.alloc_pages(pid, 4).unwrap();
        let id = k.export_buffer(pid, base, 4, Some(NodeId(2))).unwrap();
        assert!(matches!(
            k.grant_in_mapping(id, NodeId(3), 0, 4),
            Err(OsError::ExportRefused { .. })
        ));
        assert!(matches!(
            k.grant_in_mapping(id, NodeId(2), 2, 3),
            Err(OsError::ExportTooSmall)
        ));
        assert!(matches!(
            k.grant_in_mapping(ExportId(999), NodeId(2), 0, 1),
            Err(OsError::NotExported)
        ));
        let token = k.grant_in_mapping(id, NodeId(2), 1, 2).unwrap();
        assert_eq!(token.frames.len(), 2);
        // Pin policy: frames pinned and importer recorded.
        let (_, flags) = k
            .process(pid)
            .unwrap()
            .page_table()
            .entry(VirtPageNum::new(base.raw() + 1))
            .unwrap();
        assert!(flags.pinned);
        assert_eq!(k.importers_of(token.frames[0]), vec![NodeId(2)]);
    }

    #[test]
    fn prepare_out_sets_write_through() {
        let mut k = kernel();
        let pid = k.create_process();
        let base = k.alloc_pages(pid, 2).unwrap();
        let dst = [PageNum::new(7), PageNum::new(8)];
        let frames = k
            .prepare_out_mapping(pid, base, 2, NodeId(1), &dst)
            .unwrap();
        assert_eq!(frames.len(), 2);
        let (_, flags) = k.process(pid).unwrap().page_table().entry(base).unwrap();
        assert_eq!(flags.cache_mode, CacheMode::WriteThrough);
        assert_eq!(k.outgoing_for_frame(frames[0]).len(), 1);
        assert_eq!(k.outgoing_for_frame(frames[0])[0].dst_frame, PageNum::new(7));
    }

    #[test]
    fn pin_policy_refuses_pageout() {
        let mut k = kernel();
        let pid = k.create_process();
        let base = k.alloc_pages(pid, 1).unwrap();
        let id = k.export_buffer(pid, base, 1, None).unwrap();
        let token = k.grant_in_mapping(id, NodeId(1), 0, 1).unwrap();
        assert!(matches!(
            k.begin_pageout(token.frames[0]),
            Err(OsError::FramePinned(_))
        ));
    }

    #[test]
    fn invalidate_protocol_full_round() {
        // Receiver kernel (node 0, invalidate policy) and sender kernel
        // (node 1).
        let mut recv = Kernel::with_policy(NodeId(0), 16, ConsistencyPolicy::Invalidate);
        let mut send = Kernel::new(NodeId(1), 16);

        let rpid = recv.create_process();
        let rbuf = recv.alloc_pages(rpid, 1).unwrap();
        let id = recv.export_buffer(rpid, rbuf, 1, None).unwrap();
        let token = recv.grant_in_mapping(id, NodeId(1), 0, 1).unwrap();
        let frame = token.frames[0];

        let spid = send.create_process();
        let sbuf = send.alloc_pages(spid, 1).unwrap();
        send.prepare_out_mapping(spid, sbuf, 1, NodeId(0), &token.frames)
            .unwrap();

        // Receiver starts the pageout.
        let msgs = recv.begin_pageout(frame).unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(!recv.pageout_complete(frame));
        assert_eq!(recv.pending_acks(frame), vec![NodeId(1)]);

        // Sender handles the invalidation: source page goes read-only.
        let (dst, msg) = msgs[0];
        assert_eq!(dst, NodeId(1));
        let (replies, scrub) = send.handle_msg(msg);
        assert_eq!(replies.len(), 1);
        assert_eq!(scrub.len(), 1);
        let (_, flags) = send.process(spid).unwrap().page_table().entry(sbuf).unwrap();
        assert_eq!(flags.protection, Protection::ReadOnly);

        // Receiver collects the ack and completes.
        recv.handle_msg(replies[0]);
        assert!(recv.pageout_complete(frame));
        let free_before = recv.free_frame_count();
        recv.complete_pageout(frame).unwrap();
        assert_eq!(recv.free_frame_count(), free_before + 1);
        assert!(recv
            .process(rpid)
            .unwrap()
            .page_table()
            .entry(rbuf)
            .is_none());

        // Sender's next store faults; the kernel returns the record for
        // re-establishment and restores writability.
        let rec = send
            .handle_write_fault(spid, sbuf.base())
            .expect("invalidated mapping must be recognized");
        assert_eq!(rec.dst_node, NodeId(0));
        let (_, flags) = send.process(spid).unwrap().page_table().entry(sbuf).unwrap();
        assert_eq!(flags.protection, Protection::ReadWrite);
        // A second fault at the same page is a genuine violation.
        assert!(send.handle_write_fault(spid, sbuf.base()).is_err());
    }

    #[test]
    fn pageout_without_importers_is_trivial() {
        let mut k = Kernel::with_policy(NodeId(0), 16, ConsistencyPolicy::Invalidate);
        let pid = k.create_process();
        let base = k.alloc_pages(pid, 1).unwrap();
        let frame = k.frame_of(pid, base).unwrap();
        // "There is no consistency problem for pages that have only
        // outgoing communication mappings."
        assert!(matches!(k.begin_pageout(frame), Err(OsError::NoPageout(_))));
    }

    #[test]
    fn double_pageout_rejected() {
        let mut k = Kernel::with_policy(NodeId(0), 16, ConsistencyPolicy::Invalidate);
        let pid = k.create_process();
        let base = k.alloc_pages(pid, 1).unwrap();
        let id = k.export_buffer(pid, base, 1, None).unwrap();
        let token = k.grant_in_mapping(id, NodeId(1), 0, 1).unwrap();
        k.begin_pageout(token.frames[0]).unwrap();
        assert!(matches!(
            k.begin_pageout(token.frames[0]),
            Err(OsError::PageoutInProgress(_))
        ));
        assert!(matches!(
            k.complete_pageout(token.frames[0]),
            Err(OsError::NoPageout(_))
        ));
    }

    #[test]
    fn pids_listing() {
        let mut k = kernel();
        let a = k.create_process();
        let b = k.create_process();
        assert_eq!(k.pids(), vec![a, b]);
        assert_ne!(a, b);
    }
}
