//! The operating-system model of a SHRIMP node.
//!
//! SHRIMP moves *protection* out of the message-passing fast path and
//! into the kernel's `map` system call (paper §2). This crate models the
//! kernel state and policies that make that sound:
//!
//! * [`process`] — processes and their address spaces.
//! * [`kernel`] — the per-node [`Kernel`]: frame allocation, buffer
//!   *exports* (a process's standing permission for a remote process to
//!   map its memory), the two halves of the `map` call
//!   ([`Kernel::prepare_out_mapping`] configures write-through caching on
//!   the sender; [`Kernel::grant_in_mapping`] checks the export and pins
//!   frames on the receiver), and the §4.4 mapping-consistency protocol
//!   (invalidate → acknowledge → replace, with page-fault
//!   re-establishment).
//! * [`msg`] — kernel-to-kernel messages carried by the machine model.
//! * [`sched`] — round-robin and gang schedulers; SHRIMP's protection
//!   story is *independent* of the choice, which is the point of §1's
//!   multiprogramming argument.
//! * [`error`] — [`OsError`].
//!
//! Cross-node coordination (the two halves of `map`, invalidations and
//! acks) is expressed as [`msg::KernelMsg`] values; the machine model in
//! `shrimp-core` transports them between kernels.
//!
//! # Examples
//!
//! ```
//! use shrimp_os::{Kernel, OsError};
//! use shrimp_mesh::NodeId;
//!
//! let mut kernel = Kernel::new(NodeId(0), 64);
//! let pid = kernel.create_process();
//! let buf = kernel.alloc_pages(pid, 4)?;
//! // The process offers the buffer to any node:
//! let export = kernel.export_buffer(pid, buf, 4, None)?;
//! assert_eq!(kernel.export(export).unwrap().pages, 4);
//! # Ok::<(), OsError>(())
//! ```

pub mod error;
pub mod kernel;
pub mod msg;
pub mod process;
pub mod sched;

pub use error::OsError;
pub use kernel::{ExportId, Kernel, MapToken};
pub use msg::KernelMsg;
pub use process::{Pid, Process};
pub use sched::{GangScheduler, RoundRobin, SchedDecision};
