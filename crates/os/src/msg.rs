//! Kernel-to-kernel messages.
//!
//! The mapping-consistency protocol of paper §4.4 ("borrowing the
//! standard [TLB shootdown] solution") exchanges messages between node
//! kernels. The machine model transports these values between
//! [`crate::Kernel`]s with a configurable latency.

use shrimp_mem::PageNum;
use shrimp_mesh::NodeId;

/// A message from one node kernel to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMsg {
    /// "I am about to replace my physical frame `frame`; invalidate every
    /// NIPT entry of yours that maps out to it and acknowledge."
    InvalidateNipt {
        /// The kernel asking.
        from: NodeId,
        /// The importer-side frame being replaced.
        frame: PageNum,
    },
    /// Acknowledgement of [`KernelMsg::InvalidateNipt`].
    InvalidateAck {
        /// The kernel acknowledging.
        from: NodeId,
        /// The frame named in the request.
        frame: PageNum,
    },
}

impl KernelMsg {
    /// The destination-relevant frame of the message.
    pub fn frame(&self) -> PageNum {
        match self {
            KernelMsg::InvalidateNipt { frame, .. } | KernelMsg::InvalidateAck { frame, .. } => {
                *frame
            }
        }
    }

    /// The sending kernel.
    pub fn from(&self) -> NodeId {
        match self {
            KernelMsg::InvalidateNipt { from, .. } | KernelMsg::InvalidateAck { from, .. } => *from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = KernelMsg::InvalidateNipt {
            from: NodeId(2),
            frame: PageNum::new(5),
        };
        assert_eq!(m.frame(), PageNum::new(5));
        assert_eq!(m.from(), NodeId(2));
        let a = KernelMsg::InvalidateAck {
            from: NodeId(3),
            frame: PageNum::new(5),
        };
        assert_eq!(a.from(), NodeId(3));
    }
}
