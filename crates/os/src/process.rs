//! Processes and address spaces.

use std::fmt;

use shrimp_mem::{PageTable, VirtPageNum};

/// A process identifier, unique per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// One process: an address space plus allocation state.
///
/// The CPU context (registers, pc) lives with the machine model; the
/// kernel only needs the memory view.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    page_table: PageTable,
    next_vpn: VirtPageNum,
}

impl Process {
    /// Creates an empty process. User mappings are allocated upward from
    /// virtual page 16, leaving low pages unmapped so null-ish pointers
    /// fault.
    pub fn new(pid: Pid) -> Self {
        Process {
            pid,
            page_table: PageTable::new(),
            next_vpn: VirtPageNum::new(16),
        }
    }

    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The address space.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable address space (kernel use).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Reserves `pages` consecutive virtual pages, returning the first.
    pub fn reserve_vpns(&mut self, pages: u64) -> VirtPageNum {
        let first = self.next_vpn;
        self.next_vpn = VirtPageNum::new(first.raw() + pages);
        first
    }

    /// True if `[vpn, vpn + pages)` is fully mapped.
    pub fn range_mapped(&self, vpn: VirtPageNum, pages: u64) -> bool {
        (0..pages).all(|i| {
            self.page_table
                .entry(VirtPageNum::new(vpn.raw() + i))
                .is_some()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::{PageFlags, PageNum};

    #[test]
    fn vpn_reservation_is_monotonic() {
        let mut p = Process::new(Pid(1));
        let a = p.reserve_vpns(4);
        let b = p.reserve_vpns(2);
        assert_eq!(b.raw(), a.raw() + 4);
        assert_eq!(p.pid(), Pid(1));
    }

    #[test]
    fn range_mapped_checks_every_page() {
        let mut p = Process::new(Pid(1));
        let base = p.reserve_vpns(3);
        for i in [0u64, 2] {
            p.page_table_mut().map(
                VirtPageNum::new(base.raw() + i),
                PageNum::new(i),
                PageFlags::default(),
            );
        }
        assert!(!p.range_mapped(base, 3), "middle page missing");
        p.page_table_mut().map(
            VirtPageNum::new(base.raw() + 1),
            PageNum::new(9),
            PageFlags::default(),
        );
        assert!(p.range_mapped(base, 3));
    }

    #[test]
    fn display() {
        assert_eq!(Pid(7).to_string(), "pid7");
    }
}
