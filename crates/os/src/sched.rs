//! Process schedulers.
//!
//! SHRIMP's protection does not depend on the scheduling policy —
//! "having hardware that supports general multiprogramming gives us the
//! ability to experiment with various scheduling policies" (paper §1).
//! Two policies are provided: per-node round-robin (general
//! multiprogramming), and gang scheduling (the CM-5's requirement,
//! included as the contrast case and for ablation benches).

use std::collections::VecDeque;

use shrimp_sim::{SimDuration, SimTime};

use crate::process::Pid;

/// The scheduler's answer for "who runs now".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedDecision {
    /// Run this process until the reported slice end.
    Run {
        /// The chosen process.
        pid: Pid,
        /// End of its quantum.
        until: SimTime,
    },
    /// Nothing runnable.
    Idle,
}

/// A per-node round-robin scheduler with a fixed quantum.
///
/// # Examples
///
/// ```
/// use shrimp_os::{RoundRobin, SchedDecision, Pid};
/// use shrimp_sim::{SimTime, SimDuration};
///
/// let mut rr = RoundRobin::new(SimDuration::from_ms(10));
/// rr.add(Pid(1));
/// rr.add(Pid(2));
/// let SchedDecision::Run { pid, .. } = rr.tick(SimTime::ZERO) else { panic!() };
/// assert_eq!(pid, Pid(1));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    quantum: SimDuration,
    ready: VecDeque<Pid>,
    current: Option<(Pid, SimTime)>,
    context_switches: u64,
}

impl RoundRobin {
    /// Creates an empty scheduler.
    pub fn new(quantum: SimDuration) -> Self {
        RoundRobin {
            quantum,
            ready: VecDeque::new(),
            current: None,
            context_switches: 0,
        }
    }

    /// Adds a runnable process.
    pub fn add(&mut self, pid: Pid) {
        if !self.ready.contains(&pid) && self.current.map(|(p, _)| p) != Some(pid) {
            self.ready.push_back(pid);
        }
    }

    /// Removes a process (exit or block). Returns whether it was known.
    pub fn remove(&mut self, pid: Pid) -> bool {
        if self.current.map(|(p, _)| p) == Some(pid) {
            self.current = None;
            return true;
        }
        let before = self.ready.len();
        self.ready.retain(|&p| p != pid);
        before != self.ready.len()
    }

    /// Decides who runs at `now`, preempting at quantum boundaries.
    pub fn tick(&mut self, now: SimTime) -> SchedDecision {
        if let Some((pid, until)) = self.current {
            if now < until {
                return SchedDecision::Run { pid, until };
            }
            // Quantum expired: requeue.
            self.ready.push_back(pid);
            self.current = None;
        }
        match self.ready.pop_front() {
            Some(pid) => {
                let until = now + self.quantum;
                self.current = Some((pid, until));
                self.context_switches += 1;
                SchedDecision::Run { pid, until }
            }
            None => SchedDecision::Idle,
        }
    }

    /// The currently running process, if any.
    pub fn current(&self) -> Option<Pid> {
        self.current.map(|(p, _)| p)
    }

    /// Restarts the current process's quantum at `now` — called by the
    /// machine when a context switch completes, so time spent switching
    /// is not billed against the incoming process's slice (otherwise a
    /// quantum shorter than the switch cost would thrash forever).
    pub fn restart_quantum(&mut self, now: SimTime) {
        if let Some((pid, _)) = self.current {
            self.current = Some((pid, now + self.quantum));
        }
    }

    /// Context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// The configured quantum.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }
}

/// A machine-wide gang scheduler: all nodes run the same *job* during the
/// same quantum. This is the CM-5-style constraint SHRIMP does **not**
/// need; it exists for comparison.
#[derive(Debug, Clone)]
pub struct GangScheduler {
    quantum: SimDuration,
    jobs: Vec<u32>,
}

impl GangScheduler {
    /// Creates a gang scheduler over `jobs` job ids.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty.
    pub fn new(quantum: SimDuration, jobs: Vec<u32>) -> Self {
        assert!(!jobs.is_empty(), "gang scheduler needs at least one job");
        GangScheduler { quantum, jobs }
    }

    /// The job running machine-wide at `now`, plus the end of its slot.
    pub fn job_at(&self, now: SimTime) -> (u32, SimTime) {
        let q = self.quantum.as_picos();
        let slot = now.as_picos() / q;
        let job = self.jobs[(slot % self.jobs.len() as u64) as usize];
        let until = SimTime::from_picos((slot + 1) * q);
        (job, until)
    }

    /// The jobs in rotation.
    pub fn jobs(&self) -> &[u32] {
        &self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_ms(n)
    }

    fn t(ms_: u64) -> SimTime {
        SimTime::ZERO + ms(ms_)
    }

    #[test]
    fn round_robin_rotates_at_quantum() {
        let mut rr = RoundRobin::new(ms(10));
        rr.add(Pid(1));
        rr.add(Pid(2));
        let SchedDecision::Run { pid, until } = rr.tick(t(0)) else {
            panic!()
        };
        assert_eq!((pid, until), (Pid(1), t(10)));
        // Mid-quantum tick keeps the same process.
        assert_eq!(
            rr.tick(t(5)),
            SchedDecision::Run { pid: Pid(1), until: t(10) }
        );
        // Quantum boundary switches.
        let SchedDecision::Run { pid, .. } = rr.tick(t(10)) else {
            panic!()
        };
        assert_eq!(pid, Pid(2));
        let SchedDecision::Run { pid, .. } = rr.tick(t(20)) else {
            panic!()
        };
        assert_eq!(pid, Pid(1));
        assert_eq!(rr.context_switches(), 3);
    }

    #[test]
    fn empty_scheduler_idles() {
        let mut rr = RoundRobin::new(ms(10));
        assert_eq!(rr.tick(t(0)), SchedDecision::Idle);
        assert_eq!(rr.current(), None);
    }

    #[test]
    fn remove_current_and_queued() {
        let mut rr = RoundRobin::new(ms(10));
        rr.add(Pid(1));
        rr.add(Pid(2));
        rr.tick(t(0));
        assert!(rr.remove(Pid(1)), "current process removable");
        let SchedDecision::Run { pid, .. } = rr.tick(t(1)) else {
            panic!()
        };
        assert_eq!(pid, Pid(2));
        assert!(!rr.remove(Pid(9)));
    }

    #[test]
    fn restart_quantum_rebases_the_slice() {
        let mut rr = RoundRobin::new(ms(10));
        rr.add(Pid(1));
        rr.tick(t(0)); // slice [0, 10)
        // A context switch completed at t=7: the slice restarts there.
        rr.restart_quantum(t(7));
        assert_eq!(
            rr.tick(t(12)),
            SchedDecision::Run { pid: Pid(1), until: t(17) },
            "slice must now end at 7 + quantum"
        );
        // Restart with nothing running is a no-op.
        let mut idle = RoundRobin::new(ms(10));
        idle.restart_quantum(t(3));
        assert_eq!(idle.tick(t(3)), SchedDecision::Idle);
    }

    #[test]
    fn duplicate_add_is_ignored() {
        let mut rr = RoundRobin::new(ms(10));
        rr.add(Pid(1));
        rr.add(Pid(1));
        rr.tick(t(0));
        rr.add(Pid(1)); // already current
        assert_eq!(rr.tick(t(10)), SchedDecision::Run { pid: Pid(1), until: t(20) });
    }

    #[test]
    fn gang_schedule_is_globally_consistent() {
        let g = GangScheduler::new(ms(10), vec![7, 8]);
        assert_eq!(g.job_at(t(0)), (7, t(10)));
        assert_eq!(g.job_at(t(9)), (7, t(10)));
        assert_eq!(g.job_at(t(10)), (8, t(20)));
        assert_eq!(g.job_at(t(25)), (7, t(30)));
        assert_eq!(g.jobs(), &[7, 8]);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_gang_rejected() {
        GangScheduler::new(ms(1), Vec::new());
    }
}
