//! Multi-node consistency-protocol tests (paper §4.4) at the kernel
//! level, with the test harness playing the message transport.

use shrimp_mem::{Protection, VirtPageNum};
use shrimp_mesh::NodeId;
use shrimp_os::kernel::ConsistencyPolicy;
use shrimp_os::{Kernel, KernelMsg};

/// Builds one receiver (invalidate policy) and `n` sender kernels all
/// importing the same receiver frame.
fn world(n: u16) -> (Kernel, Vec<(Kernel, shrimp_os::Pid, VirtPageNum)>, shrimp_mem::PageNum) {
    let mut recv = Kernel::with_policy(NodeId(0), 32, ConsistencyPolicy::Invalidate);
    let rpid = recv.create_process();
    let rbuf = recv.alloc_pages(rpid, 1).unwrap();
    let export = recv.export_buffer(rpid, rbuf, 1, None).unwrap();
    let frame = recv.frame_of(rpid, rbuf).unwrap();

    let mut senders = Vec::new();
    for i in 1..=n {
        let mut k = Kernel::new(NodeId(i), 32);
        let pid = k.create_process();
        let buf = k.alloc_pages(pid, 1).unwrap();
        let token = recv.grant_in_mapping(export, NodeId(i), 0, 1).unwrap();
        k.prepare_out_mapping(pid, buf, 1, NodeId(0), &token.frames)
            .unwrap();
        senders.push((k, pid, buf));
    }
    (recv, senders, frame)
}

#[test]
fn shootdown_with_three_importers() {
    let (mut recv, mut senders, frame) = world(3);
    assert_eq!(recv.importers_of(frame).len(), 3);

    let msgs = recv.begin_pageout(frame).unwrap();
    assert_eq!(msgs.len(), 3, "one invalidation per importer");
    assert_eq!(recv.pending_acks(frame).len(), 3);

    // Deliver invalidations out of order; collect acks.
    let mut acks = Vec::new();
    for &(dst, msg) in msgs.iter().rev() {
        let sender = senders
            .iter_mut()
            .find(|(k, _, _)| k.node() == dst)
            .expect("message addressed to a sender");
        let (replies, scrub) = sender.0.handle_msg(msg);
        assert_eq!(replies.len(), 1);
        assert_eq!(scrub.len(), 1);
        // The source page is now read-only.
        let (_, flags) = sender
            .0
            .process(sender.1)
            .unwrap()
            .page_table()
            .entry(sender.2)
            .unwrap();
        assert_eq!(flags.protection, Protection::ReadOnly);
        acks.extend(replies);
    }

    // Completion requires every ack.
    for (i, ack) in acks.iter().enumerate() {
        assert!(!recv.pageout_complete(frame), "incomplete after {i} acks");
        recv.handle_msg(*ack);
    }
    assert!(recv.pageout_complete(frame));
    recv.complete_pageout(frame).unwrap();
    assert!(recv.importers_of(frame).is_empty());

    // Each sender independently re-establishes on its next fault.
    for (k, pid, buf) in &mut senders {
        let rec = k.handle_write_fault(*pid, buf.base()).unwrap();
        assert_eq!(rec.dst_node, NodeId(0));
    }
}

#[test]
fn unrelated_mappings_survive_a_shootdown() {
    let (mut recv, mut senders, frame) = world(2);
    // Sender 1 also maps a second, unrelated page out.
    let (k, pid, _) = &mut senders[0];
    let other = k.alloc_pages(*pid, 1).unwrap();
    k.prepare_out_mapping(*pid, other, 1, NodeId(0), &[shrimp_mem::PageNum::new(9)])
        .unwrap();

    let msgs = recv.begin_pageout(frame).unwrap();
    for &(dst, msg) in &msgs {
        if dst == senders[0].0.node() {
            let (_, scrub) = senders[0].0.handle_msg(msg);
            assert_eq!(scrub.len(), 1, "only the targeted mapping is scrubbed");
        }
    }
    // The unrelated page stays read-write.
    let (k, pid, _) = &senders[0];
    let (_, flags) = k.process(*pid).unwrap().page_table().entry(other).unwrap();
    assert_eq!(flags.protection, Protection::ReadWrite);
}

#[test]
fn release_import_unpins_under_pin_policy() {
    let mut recv = Kernel::new(NodeId(0), 16); // pin policy
    let rpid = recv.create_process();
    let rbuf = recv.alloc_pages(rpid, 1).unwrap();
    let export = recv.export_buffer(rpid, rbuf, 1, None).unwrap();
    let t1 = recv.grant_in_mapping(export, NodeId(1), 0, 1).unwrap();
    let _t2 = recv.grant_in_mapping(export, NodeId(2), 0, 1).unwrap();
    let frame = t1.frames[0];

    assert!(!recv.release_import(frame, NodeId(1)), "node 2 still imports");
    let (_, flags) = recv.process(rpid).unwrap().page_table().entry(rbuf).unwrap();
    assert!(flags.pinned, "still pinned while imported");

    assert!(recv.release_import(frame, NodeId(2)), "last importer gone");
    let (_, flags) = recv.process(rpid).unwrap().page_table().entry(rbuf).unwrap();
    assert!(!flags.pinned, "unpinned once nobody imports");
}

#[test]
fn ensure_mapped_pages_back_in() {
    let mut k = Kernel::with_policy(NodeId(0), 16, ConsistencyPolicy::Invalidate);
    let pid = k.create_process();
    let buf = k.alloc_pages(pid, 1).unwrap();
    let frame = k.frame_of(pid, buf).unwrap();
    // Simulate a completed pageout by hand: grant, invalidate, complete.
    let export = k.export_buffer(pid, buf, 1, None).unwrap();
    k.grant_in_mapping(export, NodeId(1), 0, 1).unwrap();
    let msgs = k.begin_pageout(frame).unwrap();
    assert_eq!(msgs.len(), 1);
    k.handle_msg(KernelMsg::InvalidateAck {
        from: NodeId(1),
        frame,
    });
    k.complete_pageout(frame).unwrap();
    assert!(k.frame_of(pid, buf).is_err(), "page is out");

    let new_frame = k.ensure_mapped(pid, buf).unwrap();
    assert_eq!(k.frame_of(pid, buf).unwrap(), new_frame);
    // Idempotent.
    assert_eq!(k.ensure_mapped(pid, buf).unwrap(), new_frame);
}
