//! Vendored subset of the `proptest` crate.
//!
//! The build container cannot reach a crates.io mirror, so the workspace
//! carries the slice of proptest its test suites actually use: the
//! `proptest!` / `prop_assert*` / `prop_oneof!` macros, `any::<T>()`,
//! integer-range strategies, tuples, `prop::collection::{vec, btree_map}`,
//! `prop::option::of` and `prop::sample::Index`.
//!
//! Semantics differ from upstream in two deliberate ways: inputs are drawn
//! from a generator seeded by the test's full path (so failures reproduce
//! across runs without a persistence file), and there is no shrinking — a
//! failing case reports the case number and panics with the assertion
//! message.

use std::rc::Rc;

/// Number of random cases each property runs.
pub const CASES: u32 = 64;

/// Error type returned by a failing property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test random source (splitmix64 over an FNV-1a hash
/// of the test path).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string, typically the test's module path.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` via Lemire's multiply-shift.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sample range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees to support shrinking; this subset generates values directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice among same-valued strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Integer types usable as range strategies.
pub trait RangeInt: Copy {
    /// Converts to a signed 128-bit value for span arithmetic.
    fn to_i128(self) -> i128;
    /// Converts back; the value is guaranteed in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> $t { v as $t }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_span<T: RangeInt>(rng: &mut TestRng, lo: T, span: i128) -> T {
    assert!(span > 0, "empty range strategy");
    assert!(span <= u64::MAX as i128, "range span too large");
    let off = rng.below(span as u64) as i128;
    T::from_i128(lo.to_i128() + off)
}

impl<T: RangeInt> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        sample_span(rng, self.start, self.end.to_i128() - self.start.to_i128())
    }
}

impl<T: RangeInt> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = *self.start();
        sample_span(rng, lo, self.end().to_i128() - lo.to_i128() + 1)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A/0);
tuple_strategy!(A/0, B/1);
tuple_strategy!(A/0, B/1, C/2);
tuple_strategy!(A/0, B/1, C/2, D/3);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            super::sample_span(rng, self.lo, self.hi_inclusive as i128 - self.lo as i128 + 1)
        }
    }

    /// Strategy for `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s; duplicate keys collapse, so the result
    /// may be smaller than the sampled size (upstream retries instead).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `prop::collection::btree_map`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some` from the inner strategy half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete collection length.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Runs `f` for [`CASES`] deterministic cases, panicking on the first
/// failure with its case number. Used by the `proptest!` expansion.
pub fn run_cases<F>(name: &str, f: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    for case in 0..CASES {
        if let Err(e) = f(&mut rng) {
            panic!("property {name} failed at case {case}/{CASES}: {e}");
        }
    }
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// What test files `use`; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Strategy, TestCaseError, Union,
    };

    /// Mirrors the upstream `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5i32..=5, n in 1usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u8..4).prop_map(|x| x as u32),
                (10u8..14, any::<bool>()).prop_map(|(x, _)| x as u32),
            ]
        ) {
            prop_assert!(v < 4 || (10..14).contains(&v));
        }

        #[test]
        fn option_produces_both(ops in prop::collection::vec(prop::option::of(0u64..10), 40..60)) {
            prop_assert!(ops.iter().any(|o| o.is_some()));
            prop_assert!(ops.iter().any(|o| o.is_none()));
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(ix.index(len) < len);
        }
    }
}
