//! A two-level calendar (bucket) queue with exact `(time, seq)` ordering.
//!
//! The global [`EventQueue`](crate::EventQueue) binary heap pays
//! `O(log n)` per operation over *all* pending events in the machine.
//! Per-node event populations are tiny and strongly time-clustered, so
//! the sharded scheduler keeps one [`CalendarQueue`] per node: a ring of
//! near-future buckets (each an append-mostly deque, sorted lazily when
//! it becomes the head bucket) plus a far-future overflow heap for
//! events beyond the bucket horizon. Pushes into the head bucket keep it
//! sorted by binary-search insertion; everything else is an append.
//!
//! Unlike a classic calendar queue, ordering is *exact*, never
//! approximate: the pop order is the total order `(time, seq)` for any
//! push/pop interleaving, which `tests/` pins against the binary-heap
//! reference with a property test. Sequence numbers are assigned by the
//! caller (the sharded scheduler owns one shared counter across shards)
//! so FIFO ties behave exactly like the single global queue.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Number of near-future buckets. Events up to `NUM_BUCKETS ×
/// bucket_width` past the current epoch live in the ring; later events
/// overflow to the far heap and are re-bucketed when the ring drains.
const NUM_BUCKETS: usize = 64;

/// Default bucket width: 1 ns, a few CPU/NIC events per bucket under
/// the prototype timing model.
const DEFAULT_BUCKET_WIDTH_PS: u64 = 1_000;

#[derive(Debug, Clone)]
struct FarEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for FarEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for FarEntry<E> {}
impl<E> PartialOrd for FarEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for FarEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: invert so the earliest (time, seq) is at the top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One calendar bucket: ascending `(time, seq)` order when `sorted`,
/// append-dirty otherwise.
#[derive(Debug, Clone)]
struct Bucket<E> {
    items: VecDeque<(SimTime, u64, E)>,
    sorted: bool,
}

impl<E> Bucket<E> {
    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn settle(&mut self) {
        if !self.sorted {
            self.items
                .make_contiguous()
                .sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            self.sorted = true;
        }
    }

    fn head(&self) -> Option<(SimTime, u64)> {
        debug_assert!(self.sorted || self.is_empty());
        self.items.front().map(|e| (e.0, e.1))
    }
}

/// A time-ordered queue over `(time, seq, event)` triples with exact
/// `(time, seq)` pop order.
///
/// # Examples
///
/// ```
/// use shrimp_sim::{CalendarQueue, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.push(SimTime::from_picos(10), 0, "b");
/// q.push(SimTime::from_picos(10), 1, "c");
/// q.push(SimTime::from_picos(5), 2, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    buckets: Vec<Bucket<E>>,
    /// Picosecond width of one bucket.
    width: u64,
    /// Picosecond time at which `buckets[0]` starts.
    epoch: u64,
    /// First possibly non-empty bucket; buckets before it are empty.
    cursor: usize,
    far: BinaryHeap<FarEntry<E>>,
    len: usize,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with the default bucket geometry.
    pub fn new() -> Self {
        Self::with_bucket_width(DEFAULT_BUCKET_WIDTH_PS)
    }

    /// Creates an empty queue whose near ring covers
    /// `NUM_BUCKETS × width_ps` picoseconds past the epoch.
    pub fn with_bucket_width(width_ps: u64) -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        for _ in 0..NUM_BUCKETS {
            buckets.push(Bucket {
                items: VecDeque::new(),
                sorted: true,
            });
        }
        CalendarQueue {
            buckets,
            width: width_ps.max(1),
            epoch: 0,
            cursor: 0,
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn horizon(&self) -> u64 {
        self.epoch.saturating_add(self.width * NUM_BUCKETS as u64)
    }

    /// The ring index for `t`, clamping past times into the head bucket
    /// (a re-scheduled event in the past still pops first: the head
    /// bucket is settled before its minimum is read).
    fn bucket_index(&self, t: u64) -> usize {
        let floor = self.epoch + self.cursor as u64 * self.width;
        if t <= floor {
            self.cursor
        } else {
            (((t - self.epoch) / self.width) as usize).min(NUM_BUCKETS - 1)
        }
    }

    /// Schedules `event` at `time` with the caller-assigned tie-break
    /// sequence number.
    pub fn push(&mut self, time: SimTime, seq: u64, event: E) {
        let t = time.as_picos();
        if self.len == 0 {
            // Empty queue: re-anchor the ring at this event.
            self.epoch = t - (t % self.width);
            self.cursor = 0;
        }
        self.len += 1;
        if t >= self.horizon() {
            self.far.push(FarEntry { time, seq, event });
            return;
        }
        let idx = self.bucket_index(t);
        let b = &mut self.buckets[idx];
        match b.items.back() {
            Some(last) if b.sorted && (last.0, last.1) > (time, seq) => {
                if idx == self.cursor {
                    // Keep the head bucket sorted: O(k) insert, k small.
                    let pos = b
                        .items
                        .binary_search_by(|e| (e.0, e.1).cmp(&(time, seq)))
                        .unwrap_or_else(|p| p);
                    b.items.insert(pos, (time, seq, event));
                } else {
                    b.items.push_back((time, seq, event));
                    b.sorted = false;
                }
            }
            _ => b.items.push_back((time, seq, event)),
        }
    }

    /// Advances `cursor` to the first non-empty bucket, refilling the
    /// ring from the far heap when it drains, and settles the head
    /// bucket. After this, the head bucket's front is the global
    /// minimum.
    fn advance_cursor(&mut self) {
        loop {
            while self.cursor < NUM_BUCKETS && self.buckets[self.cursor].is_empty() {
                self.buckets[self.cursor].sorted = true;
                self.cursor += 1;
            }
            if self.cursor < NUM_BUCKETS {
                self.buckets[self.cursor].settle();
                return;
            }
            // Near ring exhausted: re-seed from the far heap.
            self.cursor = 0;
            for b in &mut self.buckets {
                b.sorted = true;
            }
            if let Some(min) = self.far.peek() {
                let t = min.time.as_picos();
                self.epoch = t - (t % self.width);
                let horizon = self.horizon();
                while self.far.peek().is_some_and(|e| e.time.as_picos() < horizon) {
                    let e = self.far.pop().expect("peeked entry");
                    let idx = (((e.time.as_picos() - self.epoch) / self.width) as usize)
                        .min(NUM_BUCKETS - 1);
                    let b = &mut self.buckets[idx];
                    // The heap yields ascending (time, seq), so appends
                    // keep each bucket sorted.
                    b.items.push_back((e.time, e.seq, e.event));
                }
            } else {
                return; // fully empty
            }
        }
    }

    /// The earliest `(time, seq)` without consuming it.
    pub fn head(&mut self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        self.advance_cursor();
        self.buckets[self.cursor].head()
    }

    /// The earliest entry without consuming it.
    pub fn peek(&mut self) -> Option<(SimTime, u64, &E)> {
        self.head()?;
        self.buckets[self.cursor]
            .items
            .front()
            .map(|e| (e.0, e.1, &e.2))
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.head()?;
        self.len -= 1;
        self.buckets[self.cursor].items.pop_front()
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_picos(ps)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(t(30), 0, "c");
        q.push(t(10), 1, "a");
        q.push(t(10), 2, "b");
        q.push(t(20), 3, "z");
        assert_eq!(q.pop(), Some((t(10), 1, "a")));
        assert_eq!(q.pop(), Some((t(10), 2, "b")));
        assert_eq!(q.pop(), Some((t(20), 3, "z")));
        assert_eq!(q.pop(), Some((t(30), 0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut q = CalendarQueue::with_bucket_width(10);
        // Horizon = 640 ps: everything below goes near, the rest far.
        for i in 0..200u64 {
            q.push(t(i * 37 % 10_000), i, i);
        }
        let mut prev = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((time, seq, _)) = q.pop() {
            assert!((time, seq) >= prev, "out of order at {time:?}/{seq}");
            prev = (time, seq);
            n += 1;
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn past_time_push_pops_first() {
        let mut q = CalendarQueue::with_bucket_width(10);
        for i in 0..50u64 {
            q.push(t(1_000 + i * 10), i, i);
        }
        for _ in 0..20 {
            q.pop();
        }
        // Push an event earlier than everything remaining (a kill-path
        // reschedule into the window's past).
        q.push(t(0), 999, 999);
        assert_eq!(q.pop().map(|e| e.2), Some(999));
    }

    #[test]
    fn interleaved_push_pop_keeps_exact_order() {
        let mut q = CalendarQueue::with_bucket_width(100);
        let mut reference = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |q: &mut CalendarQueue<u64>,
                        reference: &mut std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
                        time: u64| {
            q.push(t(time), seq, seq);
            reference.push(std::cmp::Reverse((time, seq)));
            seq += 1;
        };
        for round in 0..300u64 {
            push(&mut q, &mut reference, round * 97 % 50_000);
            push(&mut q, &mut reference, round * 13 % 700);
            if round % 3 == 0 {
                let got = q.pop();
                let want = reference.pop().map(|r| r.0);
                assert_eq!(got.map(|(time, s, _)| (time.as_picos(), s)), want);
            }
        }
        while let Some(std::cmp::Reverse(want)) = reference.pop() {
            let got = q.pop().map(|(time, s, _)| (time.as_picos(), s)).unwrap();
            assert_eq!(got, want);
        }
        assert!(q.is_empty());
    }
}
