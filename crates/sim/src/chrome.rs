//! Chrome trace-event (Perfetto / `chrome://tracing`) exporter.
//!
//! Converts a stream of typed [`TraceEvent`]s into the Chrome
//! trace-event JSON format: duration events (`ph:"B"`/`"E"`) for spans
//! with distinct begin/end trace points (FIFO backpressure episodes,
//! incoming DMA bursts) and instant events (`ph:"i"`) for everything
//! else, grouped into one process per node with named per-component
//! tracks. Timestamps are microseconds (the format's unit), derived
//! from the picosecond [`SimTime`]s.
//!
//! Guarantees: output `traceEvents` are sorted by non-decreasing `ts`
//! (stable, so same-instant events keep emission order), and every `B`
//! has a matching later `E` on the same `(pid, tid)` track — a span
//! still open when the trace ends is dropped rather than emitted
//! unmatched.

use crate::json::Value;
use crate::time::SimTime;
use crate::trace::{TraceData, TraceEvent};

/// Track ids within one process (= one node) in the exported trace.
const TID_PACKETS: u64 = 0;
const TID_FIFO_OUT: u64 = 1;
const TID_FIFO_IN: u64 = 2;
const TID_DMA: u64 = 3;
const TID_RETX: u64 = 4;
const TID_ENGINE: u64 = 5;

fn tid_name(tid: u64) -> &'static str {
    match tid {
        TID_FIFO_OUT => "fifo.out",
        TID_FIFO_IN => "fifo.in",
        TID_DMA => "dma",
        TID_RETX => "retx",
        TID_ENGINE => "engine.profile",
        _ => "packets",
    }
}

fn ts_us(t: SimTime) -> f64 {
    t.as_picos() as f64 / 1e6
}

struct Entry {
    pid: u64,
    tid: u64,
    ph: char,
    name: String,
    ts: f64,
    args: Vec<(String, Value)>,
}

fn classify(event: &TraceEvent) -> Entry {
    let pid = event.component.index.map(|i| i as u64 + 1).unwrap_or(0);
    let arg_u = |k: &str, v: u64| (k.to_string(), Value::Uint(v));
    match &event.data {
        TraceData::FifoThreshold {
            fifo,
            raised,
            occupancy,
        } => Entry {
            pid,
            tid: if *fifo == "in" { TID_FIFO_IN } else { TID_FIFO_OUT },
            ph: if *raised { 'B' } else { 'E' },
            name: format!("{fifo}FIFO backpressure"),
            ts: ts_us(event.time),
            args: vec![arg_u("occupancy_bytes", *occupancy)],
        },
        TraceData::DmaStart { node, bytes } => Entry {
            pid,
            tid: TID_DMA,
            ph: 'B',
            name: "dma burst".into(),
            ts: ts_us(event.time),
            args: vec![arg_u("node", *node as u64), arg_u("bytes", *bytes as u64)],
        },
        TraceData::DmaEnd { node, bytes } => Entry {
            pid,
            tid: TID_DMA,
            ph: 'E',
            name: "dma burst".into(),
            ts: ts_us(event.time),
            args: vec![arg_u("node", *node as u64), arg_u("bytes", *bytes as u64)],
        },
        TraceData::RetxTimeout { .. } | TraceData::Retransmit { .. } => Entry {
            pid,
            tid: TID_RETX,
            ph: 'i',
            name: event.data.to_string(),
            ts: ts_us(event.time),
            args: Vec::new(),
        },
        data => Entry {
            pid,
            tid: TID_PACKETS,
            ph: 'i',
            name: data.to_string(),
            ts: ts_us(event.time),
            args: Vec::new(),
        },
    }
}

/// One sample on a Perfetto counter track (`ph:"C"`), rendered as a
/// stacked-area series on the machine process's `engine.profile` track.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Counter/series name (e.g. `engine.profile.commit_ms`).
    pub name: String,
    /// Sample timestamp in trace microseconds.
    pub ts_us: f64,
    /// Sample value.
    pub value: f64,
}

/// Serializes `events` (any order; sorted internally) into a Chrome
/// trace-event JSON document.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    to_chrome_json_with_counters(events, &[])
}

/// Like [`to_chrome_json`], additionally interleaving `counters` as
/// `ph:"C"` samples on the machine process's engine-profile track. The
/// sort and B/E-matching guarantees are unchanged; counter samples do
/// not participate in span matching.
pub fn to_chrome_json_with_counters(events: &[TraceEvent], counters: &[CounterSample]) -> String {
    let mut entries: Vec<Entry> = events.iter().map(classify).collect();
    entries.extend(counters.iter().map(|c| Entry {
        pid: 0,
        tid: TID_ENGINE,
        ph: 'C',
        name: c.name.clone(),
        ts: c.ts_us,
        args: vec![("value".to_string(), Value::Float(c.value))],
    }));
    entries.sort_by(|a, b| a.ts.total_cmp(&b.ts));

    // Enforce matched B/E per (pid, tid): drop E with no open B (a
    // threshold already raised when tracing started) and B left open at
    // the end of the trace.
    let mut open: Vec<(u64, u64, usize)> = Vec::new();
    let mut keep = vec![true; entries.len()];
    for (i, e) in entries.iter().enumerate() {
        match e.ph {
            'B' => open.push((e.pid, e.tid, i)),
            'E' => {
                if let Some(pos) = open.iter().rposition(|&(p, t, _)| p == e.pid && t == e.tid) {
                    open.remove(pos);
                } else {
                    keep[i] = false;
                }
            }
            _ => {}
        }
    }
    for (_, _, i) in open {
        keep[i] = false;
    }

    let mut out: Vec<Value> = Vec::new();
    let mut seen: Vec<(u64, u64)> = Vec::new();
    for e in entries.iter() {
        if !seen.contains(&(e.pid, e.tid)) {
            seen.push((e.pid, e.tid));
        }
    }
    seen.sort_unstable();
    let mut named_pids: Vec<u64> = Vec::new();
    for &(pid, tid) in &seen {
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            out.push(metadata(pid, 0, "process_name", process_name(pid)));
        }
        out.push(metadata(pid, tid, "thread_name", tid_name(tid).into()));
    }

    for (e, keep) in entries.into_iter().zip(keep) {
        if !keep {
            continue;
        }
        let mut fields = vec![
            ("name".into(), Value::Str(e.name)),
            ("ph".into(), Value::Str(e.ph.to_string())),
            ("ts".into(), Value::Float(e.ts)),
            ("pid".into(), Value::Uint(e.pid)),
            ("tid".into(), Value::Uint(e.tid)),
        ];
        if e.ph == 'i' {
            fields.push(("s".into(), Value::Str("t".into())));
        }
        if !e.args.is_empty() {
            fields.push(("args".into(), Value::Object(e.args)));
        }
        out.push(Value::Object(fields));
    }

    Value::Object(vec![
        ("traceEvents".into(), Value::Array(out)),
        ("displayTimeUnit".into(), Value::Str("ns".into())),
    ])
    .to_json()
}

fn process_name(pid: u64) -> String {
    if pid == 0 {
        "machine".into()
    } else {
        format!("node{}", pid - 1)
    }
}

fn metadata(pid: u64, tid: u64, name: &str, value: String) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str("M".into())),
        ("ts".into(), Value::Uint(0)),
        ("pid".into(), Value::Uint(pid)),
        ("tid".into(), Value::Uint(tid)),
        (
            "args".into(),
            Value::Object(vec![("name".into(), Value::Str(value))]),
        ),
    ])
}

/// Checks a Chrome trace document for the invariants the exporter
/// promises: well-formed JSON, non-decreasing `ts` over non-metadata
/// events, and strictly matched `B`/`E` pairs per `(pid, tid)`.
/// Returns the number of non-metadata events on success.
pub fn validate_chrome_json(text: &str) -> Result<usize, String> {
    let doc = Value::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut last_ts = f64::NEG_INFINITY;
    let mut open: Vec<(u64, u64)> = Vec::new();
    let mut counted = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        counted += 1;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < last_ts {
            return Err(format!("event {i}: ts {ts} < previous {last_ts}"));
        }
        last_ts = ts;
        let pid = e.get("pid").and_then(Value::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
        match ph {
            "B" => open.push((pid, tid)),
            "E" => {
                let pos = open
                    .iter()
                    .rposition(|&t| t == (pid, tid))
                    .ok_or_else(|| format!("event {i}: E without B on ({pid},{tid})"))?;
                open.remove(pos);
            }
            _ => {}
        }
    }
    if !open.is_empty() {
        return Err(format!("{} B event(s) left unclosed: {open:?}", open.len()));
    }
    Ok(counted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ComponentId, TraceLevel};

    fn ev(ps: u64, component: ComponentId, data: TraceData) -> TraceEvent {
        TraceEvent {
            time: SimTime::ZERO + crate::SimDuration::from_picos(ps),
            level: TraceLevel::Info,
            component,
            data,
        }
    }

    #[test]
    fn export_sorts_and_validates() {
        let events = vec![
            ev(
                5_000_000,
                ComponentId::nic(1),
                TraceData::DmaEnd { node: 1, bytes: 64 },
            ),
            ev(
                1_000_000,
                ComponentId::nic(0),
                TraceData::PacketInjected {
                    src: 0,
                    dst: 1,
                    bytes: 22,
                    seq: None,
                },
            ),
            ev(
                2_000_000,
                ComponentId::nic(1),
                TraceData::DmaStart { node: 1, bytes: 64 },
            ),
        ];
        let text = to_chrome_json(&events);
        let n = validate_chrome_json(&text).expect("exporter output must validate");
        assert_eq!(n, 3);
    }

    #[test]
    fn unmatched_spans_are_dropped() {
        // A clear with no raise, and a raise never cleared: both must
        // vanish so the output still validates.
        let events = vec![
            ev(
                1_000,
                ComponentId::nic(0),
                TraceData::FifoThreshold {
                    fifo: "out",
                    raised: false,
                    occupancy: 0,
                },
            ),
            ev(
                2_000,
                ComponentId::nic(0),
                TraceData::FifoThreshold {
                    fifo: "out",
                    raised: true,
                    occupancy: 4096,
                },
            ),
            ev(
                3_000,
                ComponentId::nic(0),
                TraceData::FifoThreshold {
                    fifo: "out",
                    raised: false,
                    occupancy: 100,
                },
            ),
            ev(
                4_000,
                ComponentId::nic(0),
                TraceData::FifoThreshold {
                    fifo: "out",
                    raised: true,
                    occupancy: 5000,
                },
            ),
        ];
        let text = to_chrome_json(&events);
        let n = validate_chrome_json(&text).expect("must validate after dropping strays");
        assert_eq!(n, 2, "only the matched raise/clear pair survives");
    }

    #[test]
    fn counter_samples_interleave_and_validate() {
        let events = vec![ev(
            2_000_000,
            ComponentId::nic(0),
            TraceData::PacketInjected {
                src: 0,
                dst: 1,
                bytes: 22,
                seq: None,
            },
        )];
        let counters = vec![
            CounterSample {
                name: "engine.profile.commit_ms".into(),
                ts_us: 1.0,
                value: 0.5,
            },
            CounterSample {
                name: "engine.profile.commit_ms".into(),
                ts_us: 3.0,
                value: 1.25,
            },
        ];
        let text = to_chrome_json_with_counters(&events, &counters);
        let n = validate_chrome_json(&text).expect("counter traces must validate");
        assert_eq!(n, 3, "instant event plus two counter samples");
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("engine.profile"));
        // Empty counter slice degrades to the plain exporter.
        assert_eq!(to_chrome_json(&events), to_chrome_json_with_counters(&events, &[]));
    }

    #[test]
    fn validator_rejects_broken_traces() {
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("{}").is_err());
        let out_of_order = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":5,"pid":0,"tid":0},
            {"name":"b","ph":"i","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_json(out_of_order).is_err());
        let unmatched = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_json(unmatched).is_err());
    }
}
