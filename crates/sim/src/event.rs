//! Deterministic event queue.
//!
//! Events are ordered by timestamp; events scheduled for the same instant
//! pop in insertion (FIFO) order. That tie-break is what makes whole-machine
//! runs bit-for-bit reproducible regardless of hash seeds or allocation
//! order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered priority queue of simulation events with FIFO
/// tie-breaking.
///
/// # Examples
///
/// ```
/// use shrimp_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_picos(10), "b");
/// q.push(SimTime::from_picos(10), "c");
/// q.push(SimTime::from_picos(5), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The earliest pending event without consuming it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (the sequence counter keeps advancing so
    /// determinism is unaffected).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_picos(ps)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_pushes_keep_fifo_within_instant() {
        let mut q = EventQueue::new();
        q.push(t(5), "a");
        q.push(t(1), "early");
        q.push(t(5), "b");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(42), ());
        assert_eq!(q.peek_time(), Some(t(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_but_preserves_determinism() {
        let mut q = EventQueue::new();
        q.push(t(1), 1);
        q.clear();
        assert!(q.is_empty());
        // New events still pop FIFO at equal times after a clear.
        q.push(t(2), 10);
        q.push(t(2), 11);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 11);
    }
}
