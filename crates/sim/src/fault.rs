//! Deterministic, seeded fault injection.
//!
//! The simulator's reliability machinery (per-packet CRC-32, FIFO
//! backpressure, the overflow queue and — with retransmission enabled —
//! the go-back-N engine) is only load-bearing if something actually goes
//! wrong. This module supplies the "something": per-link packet drops
//! (Bernoulli or bursty), wire bit-flips, link latency jitter, and
//! transient NIC FIFO stalls.
//!
//! # Stream-splitting rule
//!
//! Every fault *site* (one directed mesh link, one NIC) owns a private
//! [`SimRng`] created with [`SimRng::stream_from`] on a stream id of the
//! form `(kind << 56) | site_index`. Named streams never touch shared
//! state, so:
//!
//! - enabling a fault never perturbs workload randomness (the workload
//!   draws from entirely different streams), and
//! - enabling one site never shifts the draws of another site.
//!
//! The result is that a fault scenario is a pure function of
//! `(FaultConfig, workload)` — the property the chaos soak test pins.
//!
//! With every rate at zero (the default) no site is created and no RNG
//! is ever constructed: the fault layer is pay-for-what-you-use.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Stream-id tag for per-directed-link fault sites.
pub const STREAM_KIND_LINK: u64 = 1 << 56;
/// Stream-id tag for per-NIC fault sites.
pub const STREAM_KIND_NIC: u64 = 2 << 56;
/// Stream-id tag for per-directed-link churn schedules.
pub const STREAM_KIND_CHURN: u64 = 3 << 56;

/// Faults applied on every directed mesh link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultConfig {
    /// Bernoulli probability that a packet is dropped as it crosses the
    /// link (the bytes still occupy the wire; the packet never arrives).
    pub drop_rate: f64,
    /// When a Bernoulli drop fires, this many *additional* back-to-back
    /// packets on the same link are also dropped, drawn uniformly from
    /// the inclusive range. `(0, 0)` disables bursts.
    pub burst_extra: (u32, u32),
    /// Probability that a packet crosses the link with flipped bits.
    pub corrupt_rate: f64,
    /// Number of bits flipped per corruption event, drawn uniformly from
    /// the inclusive range. Positions are uniform over the wire image.
    pub corrupt_bits: (u32, u32),
    /// Probability that a packet sees extra propagation delay.
    pub jitter_rate: f64,
    /// Extra delay per jitter event, uniform over the inclusive range.
    pub jitter: (SimDuration, SimDuration),
}

impl Default for LinkFaultConfig {
    fn default() -> Self {
        LinkFaultConfig {
            drop_rate: 0.0,
            burst_extra: (0, 0),
            corrupt_rate: 0.0,
            corrupt_bits: (1, 4),
            jitter_rate: 0.0,
            jitter: (SimDuration::ZERO, SimDuration::ZERO),
        }
    }
}

impl LinkFaultConfig {
    /// True when any link fault can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0 || self.corrupt_rate > 0.0 || self.jitter_rate > 0.0
    }
}

/// Seeded link up/down churn: every directed link fails and repairs on
/// its own schedule, drawn once (at arm time) from a per-link stream.
///
/// Drawing the whole schedule up front — rather than deciding lazily as
/// the simulation advances — makes the event set a pure function of
/// `(seed, link_index)`, independent of traffic, worker count, or how
/// far any particular run happens to advance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkChurnConfig {
    /// Number of fail/repair cycles per directed link. 0 disables churn.
    pub times: u32,
    /// Uptime before each failure, uniform over the inclusive range.
    pub fail_after: (SimDuration, SimDuration),
    /// Downtime before the matching repair, uniform over the inclusive
    /// range.
    pub repair_after: (SimDuration, SimDuration),
}

impl Default for LinkChurnConfig {
    fn default() -> Self {
        LinkChurnConfig {
            times: 0,
            fail_after: (SimDuration::ZERO, SimDuration::ZERO),
            repair_after: (SimDuration::ZERO, SimDuration::ZERO),
        }
    }
}

impl LinkChurnConfig {
    /// True when links will actually fail.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.times > 0
    }
}

/// Faults applied at a NIC's network-receive port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicFaultConfig {
    /// Probability, per accepted packet, that the receive FIFO then
    /// stalls (stops accepting from the network) for a while.
    pub stall_rate: f64,
    /// Stall length, uniform over the inclusive range.
    pub stall: (SimDuration, SimDuration),
}

impl Default for NicFaultConfig {
    fn default() -> Self {
        NicFaultConfig {
            stall_rate: 0.0,
            stall: (SimDuration::ZERO, SimDuration::ZERO),
        }
    }
}

impl NicFaultConfig {
    /// True when the stall fault can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.stall_rate > 0.0
    }
}

/// Top-level fault plan for a machine. Defaults to everything off.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Master seed; every site stream derives from it.
    pub seed: u64,
    /// Per-link faults.
    pub link: LinkFaultConfig,
    /// Per-NIC faults.
    pub nic: NicFaultConfig,
    /// Per-link up/down churn schedule.
    pub churn: LinkChurnConfig,
}

impl FaultConfig {
    /// True when any fault site would be created.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.link.is_active() || self.nic.is_active() || self.churn.is_active()
    }

    /// The full fail/repair schedule for one directed link as
    /// `(down_at, up_at)` offsets from simulation start, strictly
    /// increasing. Empty when churn is disabled.
    #[must_use]
    pub fn churn_windows(&self, link_index: u64) -> Vec<(SimDuration, SimDuration)> {
        if !self.churn.is_active() {
            return Vec::new();
        }
        let mut rng = SimRng::stream_from(self.seed, STREAM_KIND_CHURN | link_index);
        let mut draw = |(lo, hi): (SimDuration, SimDuration)| {
            SimDuration::from_picos(rng.gen_range(lo.as_picos()..=hi.as_picos()))
        };
        let mut at = SimDuration::ZERO;
        let mut windows = Vec::with_capacity(self.churn.times as usize);
        for _ in 0..self.churn.times {
            let down_at = at + draw(self.churn.fail_after);
            let up_at = down_at + draw(self.churn.repair_after);
            windows.push((down_at, up_at));
            at = up_at;
        }
        windows
    }

    /// Builds the fault site for one directed link, or `None` when link
    /// faults are disabled.
    #[must_use]
    pub fn link_site(&self, link_index: u64) -> Option<LinkFaultSite> {
        self.link.is_active().then(|| LinkFaultSite {
            cfg: self.link,
            rng: SimRng::stream_from(self.seed, STREAM_KIND_LINK | link_index),
            burst_remaining: 0,
        })
    }

    /// Builds the fault site for one NIC, or `None` when NIC faults are
    /// disabled.
    #[must_use]
    pub fn nic_site(&self, node_index: u64) -> Option<NicFaultSite> {
        self.nic.is_active().then(|| NicFaultSite {
            cfg: self.nic,
            rng: SimRng::stream_from(self.seed, STREAM_KIND_NIC | node_index),
        })
    }
}

/// What a link decided to do to one packet traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// The packet is consumed by the wire but never arrives.
    pub drop: bool,
    /// Number of bit positions to flip in the wire image (0 = clean).
    pub corrupt_bits: u32,
    /// Extra propagation delay added to this traversal.
    pub jitter: SimDuration,
}

impl LinkFault {
    /// A traversal with no fault at all.
    pub const NONE: LinkFault = LinkFault {
        drop: false,
        corrupt_bits: 0,
        jitter: SimDuration::ZERO,
    };
}

/// Mutable fault state for one directed mesh link.
#[derive(Debug, Clone)]
pub struct LinkFaultSite {
    cfg: LinkFaultConfig,
    rng: SimRng,
    burst_remaining: u32,
}

impl LinkFaultSite {
    /// Decides the fate of one packet traversal.
    pub fn decide(&mut self) -> LinkFault {
        let mut fault = LinkFault::NONE;
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            fault.drop = true;
            return fault;
        }
        if self.cfg.drop_rate > 0.0 && self.rng.chance(self.cfg.drop_rate) {
            fault.drop = true;
            let (lo, hi) = self.cfg.burst_extra;
            if hi > 0 {
                self.burst_remaining = self.rng.gen_range(lo..=hi);
            }
            return fault;
        }
        if self.cfg.corrupt_rate > 0.0 && self.rng.chance(self.cfg.corrupt_rate) {
            let (lo, hi) = self.cfg.corrupt_bits;
            fault.corrupt_bits = self.rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));
        }
        if self.cfg.jitter_rate > 0.0 && self.rng.chance(self.cfg.jitter_rate) {
            let (lo, hi) = self.cfg.jitter;
            fault.jitter =
                SimDuration::from_picos(self.rng.gen_range(lo.as_picos()..=hi.as_picos()));
        }
        fault
    }

    /// Draws a uniform bit position in `0..total_bits` for a corruption
    /// event (the site cannot know the packet's length up front).
    pub fn pick_bit(&mut self, total_bits: u64) -> u64 {
        self.rng.gen_range(0..total_bits)
    }
}

/// Mutable fault state for one NIC's receive port.
#[derive(Debug, Clone)]
pub struct NicFaultSite {
    cfg: NicFaultConfig,
    rng: SimRng,
}

impl NicFaultSite {
    /// Decides, after one accepted packet, whether the receive FIFO
    /// stalls, and for how long.
    pub fn decide_stall(&mut self) -> Option<SimDuration> {
        if self.cfg.stall_rate > 0.0 && self.rng.chance(self.cfg.stall_rate) {
            let (lo, hi) = self.cfg.stall;
            Some(SimDuration::from_picos(
                self.rng.gen_range(lo.as_picos()..=hi.as_picos()),
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> FaultConfig {
        FaultConfig {
            seed: 11,
            link: LinkFaultConfig {
                drop_rate: 0.5,
                corrupt_rate: 0.25,
                jitter_rate: 0.25,
                jitter: (SimDuration::from_ns(1), SimDuration::from_ns(50)),
                ..LinkFaultConfig::default()
            },
            nic: NicFaultConfig {
                stall_rate: 0.5,
                stall: (SimDuration::from_ns(10), SimDuration::from_ns(10)),
            },
            churn: LinkChurnConfig::default(),
        }
    }

    #[test]
    fn default_config_creates_no_sites() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        assert!(cfg.link_site(0).is_none());
        assert!(cfg.nic_site(0).is_none());
    }

    #[test]
    fn sites_are_reproducible_and_independent() {
        let cfg = lossy();
        let mut a = cfg.link_site(3).unwrap();
        let mut b = cfg.link_site(3).unwrap();
        for _ in 0..256 {
            assert_eq!(a.decide(), b.decide());
        }
        // A different site index gives a different sequence.
        let seq = |mut s: LinkFaultSite| -> Vec<LinkFault> {
            (0..64).map(|_| s.decide()).collect()
        };
        assert_ne!(
            seq(cfg.link_site(3).unwrap()),
            seq(cfg.link_site(4).unwrap())
        );
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let cfg = FaultConfig {
            seed: 5,
            link: LinkFaultConfig {
                drop_rate: 0.1,
                ..LinkFaultConfig::default()
            },
            ..FaultConfig::default()
        };
        let mut site = cfg.link_site(0).unwrap();
        let drops = (0..10_000).filter(|_| site.decide().drop).count();
        assert!((800..1200).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn bursts_extend_drops() {
        let cfg = FaultConfig {
            seed: 5,
            link: LinkFaultConfig {
                drop_rate: 0.05,
                burst_extra: (2, 2),
                ..LinkFaultConfig::default()
            },
            ..FaultConfig::default()
        };
        let mut site = cfg.link_site(0).unwrap();
        let mut run = 0u32;
        let mut max_run = 0u32;
        for _ in 0..10_000 {
            if site.decide().drop {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run >= 3, "bursts must chain drops (max run {max_run})");
    }

    #[test]
    fn churn_windows_are_ordered_and_reproducible() {
        let cfg = FaultConfig {
            seed: 9,
            churn: LinkChurnConfig {
                times: 4,
                fail_after: (SimDuration::from_us(1), SimDuration::from_us(5)),
                repair_after: (SimDuration::from_us(2), SimDuration::from_us(3)),
            },
            ..FaultConfig::default()
        };
        let a = cfg.churn_windows(7);
        assert_eq!(a, cfg.churn_windows(7), "same link, same schedule");
        assert_ne!(a, cfg.churn_windows(8), "links draw independent schedules");
        assert_eq!(a.len(), 4);
        let mut prev = SimDuration::ZERO;
        for &(down_at, up_at) in &a {
            assert!(down_at >= prev, "cycles do not overlap");
            assert!(up_at > down_at, "every failure is eventually repaired");
            prev = up_at;
        }
        assert!(FaultConfig::default().churn_windows(0).is_empty());
    }

    #[test]
    fn nic_stall_draws_duration_in_range() {
        let cfg = lossy();
        let mut site = cfg.nic_site(1).unwrap();
        let mut hits = 0;
        for _ in 0..256 {
            if let Some(d) = site.decide_stall() {
                hits += 1;
                assert_eq!(d, SimDuration::from_ns(10));
            }
        }
        assert!(hits > 0, "a 50% stall rate must fire in 256 draws");
    }
}
