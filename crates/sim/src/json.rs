//! A minimal JSON value model, writer and recursive-descent parser.
//!
//! The telemetry layer serializes [`crate::metrics::MetricsSnapshot`]s and
//! Chrome trace files without external dependencies; this module is the
//! shared substrate. It supports the full JSON data model with two
//! deliberate simplifications: numbers are kept as `u64` when they are
//! non-negative integers (so counters round-trip exactly) and as `f64`
//! otherwise, and object key order is preserved as written.
//!
//! # Examples
//!
//! ```
//! use shrimp_sim::json::Value;
//!
//! let v = Value::parse("{\"a\": [1, 2.5, \"x\"], \"b\": true}").unwrap();
//! assert_eq!(v.get("a").unwrap().index(0).unwrap().as_u64(), Some(1));
//! assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
//! ```

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, timestamps).
    Uint(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Uint(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates collapse to the replacement char;
                            // the telemetry writer never emits them.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Uint(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"a":[1,2.5,"x\n",null,true],"b":{"c":18446744073709551615}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn preserves_integer_precision() {
        // f64 cannot hold u64::MAX exactly; the Uint variant must.
        let v = Value::parse("9007199254740993").unwrap();
        assert_eq!(v, Value::Uint(9_007_199_254_740_993));
        assert_eq!(v.to_json(), "9007199254740993");
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\"b\\c\n\u{1}".into());
        let text = v.to_json();
        assert_eq!(Value::parse(&text).unwrap(), v);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn negative_and_exponent_numbers_parse_as_floats() {
        assert_eq!(Value::parse("-3").unwrap(), Value::Float(-3.0));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
    }
}
