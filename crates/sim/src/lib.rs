//! Deterministic discrete-event simulation kernel for the SHRIMP
//! reproduction.
//!
//! Every component of the simulated SHRIMP multicomputer — CPUs, buses,
//! the network interface, the mesh backplane — advances on a single global
//! event loop driven by the primitives in this crate:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond timestamps, so all
//!   arithmetic is exact and runs are bit-for-bit reproducible.
//! * [`EventQueue`] — a priority queue with deterministic FIFO tie-breaking
//!   for events scheduled at the same instant.
//! * [`SerialResource`] and [`BandwidthResource`] — occupancy models for
//!   one-at-a-time hardware (buses, links, DMA engines).
//! * [`stats`] — counters and histograms used by the benchmark harness.
//! * [`SimRng`] — a seeded ChaCha RNG so workloads are reproducible.
//!
//! # Examples
//!
//! ```
//! use shrimp_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_ns(5), "later");
//! queue.push(SimTime::ZERO, "now");
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(ev, "now");
//! assert_eq!(t, SimTime::ZERO);
//! ```

pub mod calendar;
pub mod chrome;
pub mod event;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod trace;

pub use calendar::CalendarQueue;
pub use chrome::{to_chrome_json, to_chrome_json_with_counters, validate_chrome_json, CounterSample};
pub use event::EventQueue;
pub use fault::{
    FaultConfig, LinkChurnConfig, LinkFault, LinkFaultConfig, LinkFaultSite, NicFaultConfig,
    NicFaultSite,
};
pub use metrics::{
    validate_metrics_json, CounterId, HistogramSummary, MetricSet, MetricValue, MetricsRegistry,
    MetricsSnapshot,
};
pub use profile::{BarrierCause, EnginePhase, EngineProfileReport, EngineProfiler, WindowStats};
pub use recorder::{FlightEntry, FlightRecorder};
pub use resource::{BandwidthResource, SerialResource};
pub use rng::SimRng;
pub use sched::{step, Component, Scheduler, SimHost, StepBound, StepOutcome};
pub use stats::{Counter, Histogram, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{ComponentId, TelemetryConfig, TraceData, TraceEvent, TraceLevel, Tracer};
